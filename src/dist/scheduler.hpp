// Work partitioning and static schedulers.
//
// chunk_plan / suggest_chunk_size split the photon budget into tasks for
// dynamic self-scheduling. The StaticScheduler hierarchy precomputes a
// task → processor assignment for heterogeneous fleets instead:
// rate-blind round-robin, greedy LPT (earliest-finish-time on related
// machines), and the genetic-algorithm scheduler reproducing the paper's
// ref. [4] (Page & Naughton 2005). Quality is compared by makespan under
// the simple load/rate machine model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phodis::dist {

/// Split `total` into ceil(total/chunk) task sizes: full chunks plus the
/// remainder as the (smaller) last chunk. Both arguments must be > 0.
std::vector<std::uint64_t> chunk_plan(std::uint64_t total,
                                      std::uint64_t chunk);

/// Chunk size giving each of `processors` about `pulls_per_processor`
/// task pulls, floored at 1. `total` and `processors` must be > 0.
std::uint64_t suggest_chunk_size(std::uint64_t total, std::size_t processors,
                                 std::uint64_t pulls_per_processor = 4);

/// Makespan of `assignment` (task index -> processor index) under the
/// related-machines model: max over processors of (assigned work / rate).
double schedule_makespan(const std::vector<double>& sizes,
                         const std::vector<double>& rates,
                         const std::vector<std::size_t>& assignment);

/// A precomputed assignment with its model makespan.
struct Schedule {
  std::vector<std::size_t> assignment;
  double makespan = 0.0;
};

class StaticScheduler {
 public:
  virtual ~StaticScheduler() = default;

  /// Assign each task (work size) to a processor (rate). Both vectors
  /// must be non-empty and rates must be positive.
  virtual Schedule schedule(const std::vector<double>& sizes,
                            const std::vector<double>& rates) = 0;

  virtual std::string name() const = 0;
};

/// Rate-blind cyclic assignment: task i -> processor i mod m.
class RoundRobinScheduler final : public StaticScheduler {
 public:
  Schedule schedule(const std::vector<double>& sizes,
                    const std::vector<double>& rates) override;
  std::string name() const override { return "round-robin"; }
};

/// Greedy LPT for related machines: tasks in decreasing size order, each
/// to the processor that would finish it earliest.
class GreedyScheduler final : public StaticScheduler {
 public:
  Schedule schedule(const std::vector<double>& sizes,
                    const std::vector<double>& rates) override;
  std::string name() const override { return "greedy-lpt"; }
};

/// Best-move local-search descent: repeatedly move a task off the
/// critical (last-finishing) processor so that both touched processors
/// end strictly below the current critical finish, picking the move
/// that minimises their new peak. The sorted finish profile decreases
/// lexicographically on every move, so the descent cannot cycle — but
/// the *global* makespan may stay flat for several moves while tied
/// critical processors are worked off one by one. Stops when no such
/// move exists or after `max_moves`. Deterministic (ties break toward
/// the lowest task index and processor). Returns the moves applied.
std::size_t best_move_descent(std::vector<std::size_t>& assignment,
                              const std::vector<double>& sizes,
                              const std::vector<double>& rates,
                              std::size_t max_moves);

/// Genetic-algorithm scheduler: chromosomes are assignments, fitness is
/// makespan; tournament selection, uniform crossover, per-gene mutation,
/// elitism, plus an optional load-aware move mutation (shift a task off
/// the processor that finishes last onto the one that would finish it
/// earliest — directed repair of exactly the gene that binds the
/// fitness, where blind per-gene mutation almost never lands) and an
/// optional best-move local-search descent on the elites each
/// generation (memetic intensification: crossover explores, the elites
/// are polished to a single-move local optimum).
/// Deterministic for a fixed seed.
class GaScheduler final : public StaticScheduler {
 public:
  struct Params {
    std::size_t population = 32;
    std::size_t generations = 100;
    std::size_t elites = 2;        ///< best kept unchanged each generation
    double mutation_rate = 0.02;   ///< per-gene reassignment probability
    /// Per-child probability of the load-aware move mutation. 0 restores
    /// the pure random-mutation GA of the paper's ref. [4].
    double move_mutation_rate = 0.2;
    /// Best-move descent steps applied to each elite per generation
    /// (see best_move_descent); 0 disables the local search.
    std::size_t elite_descent_moves = 0;
    std::size_t tournament = 3;    ///< selection tournament size
    bool seed_with_greedy = true;  ///< plant the LPT schedule in gen 0
    std::uint64_t seed = 2006;

    void validate() const;
  };

  GaScheduler() : GaScheduler(Params{}) {}
  explicit GaScheduler(Params params);

  Schedule schedule(const std::vector<double>& sizes,
                    const std::vector<double>& rates) override;
  std::string name() const override { return "genetic"; }

  /// Best makespan per generation of the last schedule() call (entry 0
  /// is the initial population's best).
  const std::vector<double>& convergence() const noexcept {
    return convergence_;
  }

 private:
  Params params_;
  std::vector<double> convergence_;
};

}  // namespace phodis::dist
