// DataManager — the server-side task pool of the paper's platform.
//
//   "The DataManager, which resides on the server, assigns simulations to
//    client PCs and processes the returned results."
//
// Tasks are leased to workers FIFO with a deadline; a lease that expires
// (worker too slow, dead, or its assignment lost on the wire) puts the
// task back in the queue. Completion is exactly-once: the first result
// for a task wins, late or duplicate copies are counted and discarded.
// All operations are thread-safe. Time is passed in explicitly (seconds,
// any monotonic origin) so tests and the discrete-event simulator can
// drive the clock.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace phodis::dist {

/// One unit of work: an opaque payload keyed by task id.
struct TaskRecord {
  std::uint64_t task_id = 0;
  std::vector<std::uint8_t> payload;
};

struct DataManagerStats {
  std::uint64_t tasks_added = 0;
  std::uint64_t assignments = 0;        ///< leases issued (re-issues count)
  std::uint64_t completions = 0;        ///< first-time completions
  std::uint64_t lease_expirations = 0;  ///< leases reclaimed by expiry
  std::uint64_t duplicate_results = 0;  ///< results for already-done tasks
  std::uint64_t unknown_results = 0;    ///< results for unknown task ids
};

/// Receives each task's first-accepted result bytes exactly once (see
/// set_result_sink). Invoked outside the manager's lock, in completion
/// order; must be thread-safe if complete() is called concurrently.
using ResultSink =
    std::function<void(std::uint64_t task_id, std::vector<std::uint8_t>)>;

class DataManager {
 public:
  /// `lease_duration_s` must be > 0.
  explicit DataManager(double lease_duration_s);

  /// Register a new task. Duplicate ids (including completed ones) throw.
  void add_task(std::uint64_t task_id, std::vector<std::uint8_t> payload);

  /// Lease the oldest pending task to `worker` until now + lease duration.
  std::optional<TaskRecord> lease_next(const std::string& worker, double now);

  /// Accept a result. Returns true exactly once per task — for the first
  /// result, from whichever worker delivers it (even one whose lease has
  /// since expired). Duplicates and unknown ids return false. The
  /// first-accepted `result` bytes are retained (the paper's DataManager
  /// "processes the returned results"); late copies are discarded.
  bool complete(std::uint64_t task_id, const std::string& worker, double now,
                std::vector<std::uint8_t> result = {});

  /// Stream results instead of retaining them: every first-accepted
  /// result is handed to `sink` and its bytes are no longer stored, so
  /// server memory stays bounded however many tasks complete (the
  /// ROADMAP's 1e9-photon concern). Must be set before any completion;
  /// exactly-once semantics are unchanged (duplicates never reach the
  /// sink). results() returns an empty map in this mode — the sink owner
  /// holds the reduced state and persists it via the checkpoint
  /// `sink_state` parameter.
  void set_result_sink(ResultSink sink);

  /// First-accepted result bytes of every completed task, keyed by id
  /// (empty when a result sink is streaming them instead).
  std::map<std::uint64_t, std::vector<std::uint8_t>> results() const;

  /// Requeue every lease whose deadline has been reached. Returns how
  /// many were reclaimed.
  std::size_t expire_leases(double now);

  /// Requeue every task currently leased to `worker` (worker declared
  /// dead). Returns how many leases were reclaimed.
  std::size_t evict_worker(const std::string& worker);

  std::size_t pending_count() const;
  std::size_t in_flight_count() const;
  std::uint64_t completed_count() const;
  /// True when every registered task has completed (vacuously true when
  /// no tasks were ever added).
  bool all_done() const;

  DataManagerStats stats() const;

  /// Serialise the pool: every task's payload, its completion bit, and
  /// (for completed tasks) its result bytes. In-flight leases are not
  /// persisted — on restore they are pending again (the restore-side
  /// server re-issues them).
  void checkpoint(util::ByteWriter& writer) const;

  /// Rebuild the pool from a checkpoint. Only valid on a manager that
  /// has never held tasks (throws std::logic_error otherwise); malformed
  /// input throws without mutating the manager.
  void restore(util::ByteReader& reader);

  /// Persist a checkpoint to disk atomically: the bytes are written to
  /// `path`.tmp and renamed over `path`, so a crash mid-write leaves
  /// either the previous checkpoint or the new one, never a torn file.
  /// `sink_state` is an opaque blob stored alongside the pool (the
  /// result sink's reduced state in streaming mode; empty otherwise).
  /// Throws std::runtime_error on I/O failure.
  void checkpoint_to_file(const std::string& path,
                          const std::vector<std::uint8_t>& sink_state = {})
      const;

  /// Restore from a file written by checkpoint_to_file and return the
  /// sink-state blob it carried (empty when none). Same preconditions
  /// as restore(); additionally validates the file's magic and format
  /// version.
  std::vector<std::uint8_t> restore_from_file(const std::string& path);

 private:
  enum class State : std::uint8_t { kPending, kInFlight, kCompleted };

  struct Task {
    std::vector<std::uint8_t> payload;
    State state = State::kPending;
    std::string worker;                ///< lease holder when in flight
    double lease_deadline = 0.0;       ///< when in flight
    std::vector<std::uint8_t> result;  ///< when completed
  };

  mutable std::mutex mutex_;
  double lease_duration_s_;
  ResultSink result_sink_;  ///< when set, results stream instead of persist
  std::map<std::uint64_t, Task> tasks_;
  /// FIFO of candidate ids; may hold stale entries for tasks that left
  /// the pending state (lease_next skips those lazily).
  std::deque<std::uint64_t> queue_;
  std::size_t pending_ = 0;
  std::size_t in_flight_ = 0;
  std::uint64_t completed_ = 0;
  DataManagerStats stats_;
};

}  // namespace phodis::dist
