// Wire messages of the master/worker protocol.
//
// The paper's platform exchanges serialised Java objects between the
// DataManager and its clients; here every protocol step is an explicit
// framed byte buffer so the encode → transfer → decode path is exercised
// even for the in-process loopback transport. Decoding is strict: a
// malformed frame from a worker must never take down the server, so every
// defect (unknown type, truncated header, length mismatch, trailing
// bytes) raises a typed exception at the frame boundary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phodis::dist {

/// Protocol message kinds, in wire order. Values are the on-wire tag byte
/// and must never be renumbered.
enum class MessageType : std::uint8_t {
  kRequestWork = 0,      ///< worker -> server: idle, give me a task
  kAssignTask = 1,       ///< server -> worker: task_id + payload to execute
  kTaskResult = 2,       ///< worker -> server: task_id + result payload
  kNoWork = 3,           ///< server -> worker: pool empty but run not done
  kShutdown = 4,         ///< server -> worker: run complete, exit
  kMetricsSnapshot = 5,  ///< worker -> server: encoded obs::Snapshot payload
};

std::string to_string(MessageType type);

/// One framed protocol message.
struct Message {
  MessageType type = MessageType::kRequestWork;
  std::uint64_t task_id = 0;
  std::string sender;
  std::vector<std::uint8_t> payload;

  /// Serialise to a self-contained frame.
  std::vector<std::uint8_t> encode() const;

  /// Parse a frame. Throws std::invalid_argument on an unknown type tag,
  /// std::out_of_range on truncation, and std::length_error on trailing
  /// bytes after the payload.
  static Message decode(const std::vector<std::uint8_t>& frame);

  bool operator==(const Message&) const = default;
};

/// Fault-injection knobs for a transport.
struct FaultSpec {
  /// Probability that any sent frame is silently dropped, in [0, 1).
  double drop_probability = 0.0;
  /// Seed of the drop-decision stream (faults are reproducible).
  std::uint64_t seed = 2006;

  void validate() const;
};

}  // namespace phodis::dist
