#include "dist/message.hpp"

#include <stdexcept>

#include "util/bytes.hpp"

namespace phodis::dist {

namespace {
constexpr std::uint8_t kMaxTypeTag =
    static_cast<std::uint8_t>(MessageType::kMetricsSnapshot);
}  // namespace

std::string to_string(MessageType type) {
  switch (type) {
    case MessageType::kRequestWork:
      return "RequestWork";
    case MessageType::kAssignTask:
      return "AssignTask";
    case MessageType::kTaskResult:
      return "TaskResult";
    case MessageType::kNoWork:
      return "NoWork";
    case MessageType::kShutdown:
      return "Shutdown";
    case MessageType::kMetricsSnapshot:
      return "MetricsSnapshot";
  }
  return "Unknown";
}

std::vector<std::uint8_t> Message::encode() const {
  util::ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(type));
  writer.u64(task_id);
  writer.str(sender);
  writer.blob(payload);
  return writer.take();
}

Message Message::decode(const std::vector<std::uint8_t>& frame) {
  util::ByteReader reader(frame);
  Message msg;
  const std::uint8_t tag = reader.u8();
  if (tag > kMaxTypeTag) {
    throw std::invalid_argument("Message: unknown type tag " +
                                std::to_string(tag));
  }
  msg.type = static_cast<MessageType>(tag);
  msg.task_id = reader.u64();
  msg.sender = reader.str();
  msg.payload = reader.blob();
  if (!reader.exhausted()) {
    throw std::length_error("Message: trailing bytes after payload");
  }
  return msg;
}

void FaultSpec::validate() const {
  if (!(drop_probability >= 0.0) || drop_probability >= 1.0) {
    throw std::invalid_argument(
        "FaultSpec: drop_probability must be in [0, 1)");
  }
}

}  // namespace phodis::dist
