#include "dist/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace phodis::dist {

namespace {

void validate_inputs(const std::vector<double>& sizes,
                     const std::vector<double>& rates) {
  if (sizes.empty()) {
    throw std::invalid_argument("scheduler: no tasks to schedule");
  }
  if (rates.empty()) {
    throw std::invalid_argument("scheduler: no processors");
  }
  for (double rate : rates) {
    if (!(rate > 0.0)) {
      throw std::invalid_argument("scheduler: rates must be > 0");
    }
  }
}

/// Makespan of an assignment assumed to be in range (internal fast path).
double makespan_of(const std::vector<double>& sizes,
                   const std::vector<double>& rates,
                   const std::vector<std::size_t>& assignment) {
  std::vector<double> loads(rates.size(), 0.0);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    loads[assignment[i]] += sizes[i];
  }
  double makespan = 0.0;
  for (std::size_t p = 0; p < rates.size(); ++p) {
    makespan = std::max(makespan, loads[p] / rates[p]);
  }
  return makespan;
}

/// Load-aware move mutation: take a random task off the processor that
/// finishes last and hand it to the processor that would finish it
/// earliest. Repairs the one gene that binds the makespan, which blind
/// per-gene mutation hits with probability ~1/(n·m).
void load_aware_move(std::vector<std::size_t>& genes,
                     const std::vector<double>& sizes,
                     const std::vector<double>& rates,
                     util::Xoshiro256pp& rng) {
  if (rates.size() < 2) return;
  std::vector<double> loads(rates.size(), 0.0);
  for (std::size_t i = 0; i < genes.size(); ++i) {
    loads[genes[i]] += sizes[i];
  }
  std::size_t hot = 0;
  for (std::size_t p = 1; p < rates.size(); ++p) {
    if (loads[p] / rates[p] > loads[hot] / rates[hot]) hot = p;
  }
  std::vector<std::size_t> on_hot;
  for (std::size_t i = 0; i < genes.size(); ++i) {
    if (genes[i] == hot) on_hot.push_back(i);
  }
  if (on_hot.empty()) return;  // every size on `hot` is zero-weight
  const std::size_t task = on_hot[rng.next() % on_hot.size()];
  std::size_t best = hot;
  double best_finish = loads[hot] / rates[hot];  // keeping it is the bar
  for (std::size_t p = 0; p < rates.size(); ++p) {
    if (p == hot) continue;
    const double finish = (loads[p] + sizes[task]) / rates[p];
    if (finish < best_finish) {
      best_finish = finish;
      best = p;
    }
  }
  genes[task] = best;
}

/// One best-move descent step on the critical (last-finishing)
/// processor: move a task off it so that both its new finish and the
/// destination's stay strictly below the current critical finish,
/// choosing the move that minimises max(new source, new destination)
/// finish. This strictly decreases the sorted finish profile
/// lexicographically, so descent cannot cycle even while the global
/// makespan plateaus across several tied critical processors (the
/// common case on large fleets — a plain "makespan must drop" rule
/// stalls there). Returns true when a move was applied; `loads` is
/// kept in sync.
bool best_move_step(std::vector<std::size_t>& assignment,
                    const std::vector<double>& sizes,
                    const std::vector<double>& rates,
                    std::vector<double>& loads) {
  const std::size_t m = rates.size();
  if (m < 2) return false;
  std::size_t hot = 0;
  double hot_finish = -1.0;
  for (std::size_t p = 0; p < m; ++p) {
    if (loads[p] / rates[p] > hot_finish) {
      hot = p;
      hot_finish = loads[p] / rates[p];
    }
  }

  std::size_t best_task = sizes.size();
  std::size_t best_proc = m;
  double best_peak = hot_finish;
  for (std::size_t task = 0; task < assignment.size(); ++task) {
    if (assignment[task] != hot || sizes[task] <= 0.0) continue;
    const double new_hot = (loads[hot] - sizes[task]) / rates[hot];
    for (std::size_t p = 0; p < m; ++p) {
      if (p == hot) continue;
      const double new_p = (loads[p] + sizes[task]) / rates[p];
      const double peak = std::max(new_hot, new_p);
      if (peak < best_peak) {
        best_peak = peak;
        best_task = task;
        best_proc = p;
      }
    }
  }
  if (best_proc == m) return false;  // local optimum for single moves
  loads[hot] -= sizes[best_task];
  loads[best_proc] += sizes[best_task];
  assignment[best_task] = best_proc;
  return true;
}

std::vector<std::size_t> greedy_lpt_assignment(
    const std::vector<double>& sizes, const std::vector<double>& rates) {
  std::vector<std::size_t> order(sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return sizes[a] > sizes[b];
                   });
  std::vector<double> loads(rates.size(), 0.0);
  std::vector<std::size_t> assignment(sizes.size(), 0);
  for (std::size_t task : order) {
    std::size_t best = 0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < rates.size(); ++p) {
      const double finish = (loads[p] + sizes[task]) / rates[p];
      if (finish < best_finish) {
        best_finish = finish;
        best = p;
      }
    }
    loads[best] += sizes[task];
    assignment[task] = best;
  }
  return assignment;
}

}  // namespace

std::vector<std::uint64_t> chunk_plan(std::uint64_t total,
                                      std::uint64_t chunk) {
  if (total == 0 || chunk == 0) {
    throw std::invalid_argument("chunk_plan: total and chunk must be > 0");
  }
  std::vector<std::uint64_t> chunks(total / chunk, chunk);
  if (const std::uint64_t remainder = total % chunk; remainder != 0) {
    chunks.push_back(remainder);
  }
  return chunks;
}

std::uint64_t suggest_chunk_size(std::uint64_t total, std::size_t processors,
                                 std::uint64_t pulls_per_processor) {
  if (total == 0 || processors == 0 || pulls_per_processor == 0) {
    throw std::invalid_argument(
        "suggest_chunk_size: all arguments must be > 0");
  }
  const std::uint64_t pulls = processors * pulls_per_processor;
  return std::max<std::uint64_t>(1, total / pulls);
}

std::size_t best_move_descent(std::vector<std::size_t>& assignment,
                              const std::vector<double>& sizes,
                              const std::vector<double>& rates,
                              std::size_t max_moves) {
  validate_inputs(sizes, rates);
  if (assignment.size() != sizes.size()) {
    throw std::invalid_argument(
        "best_move_descent: assignment/sizes length mismatch");
  }
  for (std::size_t p : assignment) {
    if (p >= rates.size()) {
      throw std::invalid_argument(
          "best_move_descent: assignment names an unknown processor");
    }
  }
  std::vector<double> loads(rates.size(), 0.0);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    loads[assignment[i]] += sizes[i];
  }
  std::size_t moves = 0;
  while (moves < max_moves &&
         best_move_step(assignment, sizes, rates, loads)) {
    ++moves;
  }
  return moves;
}

double schedule_makespan(const std::vector<double>& sizes,
                         const std::vector<double>& rates,
                         const std::vector<std::size_t>& assignment) {
  validate_inputs(sizes, rates);
  if (assignment.size() != sizes.size()) {
    throw std::invalid_argument(
        "schedule_makespan: assignment/sizes length mismatch");
  }
  for (std::size_t p : assignment) {
    if (p >= rates.size()) {
      throw std::invalid_argument(
          "schedule_makespan: assignment names an unknown processor");
    }
  }
  return makespan_of(sizes, rates, assignment);
}

Schedule RoundRobinScheduler::schedule(const std::vector<double>& sizes,
                                       const std::vector<double>& rates) {
  validate_inputs(sizes, rates);
  Schedule result;
  result.assignment.resize(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    result.assignment[i] = i % rates.size();
  }
  result.makespan = makespan_of(sizes, rates, result.assignment);
  return result;
}

Schedule GreedyScheduler::schedule(const std::vector<double>& sizes,
                                   const std::vector<double>& rates) {
  validate_inputs(sizes, rates);
  Schedule result;
  result.assignment = greedy_lpt_assignment(sizes, rates);
  result.makespan = makespan_of(sizes, rates, result.assignment);
  return result;
}

void GaScheduler::Params::validate() const {
  if (population < 2) {
    throw std::invalid_argument("GaScheduler: population must be >= 2");
  }
  if (elites >= population) {
    throw std::invalid_argument("GaScheduler: elites must be < population");
  }
  if (mutation_rate < 0.0 || mutation_rate > 1.0) {
    throw std::invalid_argument(
        "GaScheduler: mutation_rate must be in [0, 1]");
  }
  if (move_mutation_rate < 0.0 || move_mutation_rate > 1.0) {
    throw std::invalid_argument(
        "GaScheduler: move_mutation_rate must be in [0, 1]");
  }
  if (tournament == 0) {
    throw std::invalid_argument("GaScheduler: tournament must be >= 1");
  }
}

GaScheduler::GaScheduler(Params params) : params_(params) {
  params_.validate();
}

Schedule GaScheduler::schedule(const std::vector<double>& sizes,
                               const std::vector<double>& rates) {
  validate_inputs(sizes, rates);
  const std::size_t n = sizes.size();
  const std::size_t m = rates.size();
  util::Xoshiro256pp rng(params_.seed);
  const auto random_processor = [&] {
    return static_cast<std::size_t>(rng.next() % m);
  };

  struct Individual {
    std::vector<std::size_t> genes;
    double fitness = 0.0;  // makespan, lower is better
  };
  const auto evaluate = [&](Individual& ind) {
    ind.fitness = makespan_of(sizes, rates, ind.genes);
  };

  std::vector<Individual> population(params_.population);
  for (Individual& ind : population) {
    ind.genes.resize(n);
    for (std::size_t& gene : ind.genes) gene = random_processor();
    evaluate(ind);
  }
  if (params_.seed_with_greedy) {
    population.front().genes = greedy_lpt_assignment(sizes, rates);
    evaluate(population.front());
  }

  const auto by_fitness = [](const Individual& a, const Individual& b) {
    return a.fitness < b.fitness;
  };
  // stable_sort keeps ties in a deterministic order.
  std::stable_sort(population.begin(), population.end(), by_fitness);
  convergence_.clear();
  convergence_.reserve(params_.generations + 1);
  convergence_.push_back(population.front().fitness);

  const auto tournament_pick = [&]() -> const Individual& {
    std::size_t best = rng.next() % params_.population;
    for (std::size_t k = 1; k < params_.tournament; ++k) {
      const std::size_t challenger = rng.next() % params_.population;
      if (population[challenger].fitness < population[best].fitness) {
        best = challenger;
      }
    }
    return population[best];
  };

  std::vector<Individual> next(params_.population);
  for (std::size_t gen = 0; gen < params_.generations; ++gen) {
    for (std::size_t e = 0; e < params_.elites; ++e) {
      next[e] = population[e];
    }
    for (std::size_t i = params_.elites; i < params_.population; ++i) {
      const Individual& mother = tournament_pick();
      const Individual& father = tournament_pick();
      Individual& child = next[i];
      child.genes.resize(n);
      for (std::size_t g = 0; g < n; ++g) {
        child.genes[g] =
            (rng.next() & 1) ? mother.genes[g] : father.genes[g];
        if (rng.uniform() < params_.mutation_rate) {
          child.genes[g] = random_processor();
        }
      }
      if (params_.move_mutation_rate > 0.0 &&
          rng.uniform() < params_.move_mutation_rate) {
        load_aware_move(child.genes, sizes, rates, rng);
      }
      evaluate(child);
    }
    population.swap(next);
    std::stable_sort(population.begin(), population.end(), by_fitness);
    if (params_.elite_descent_moves > 0) {
      // Memetic step: polish the generation's best towards a single-move
      // local optimum. Descent only ever improves, so elitist
      // monotonicity is preserved.
      for (std::size_t e = 0; e < params_.elites; ++e) {
        if (best_move_descent(population[e].genes, sizes, rates,
                              params_.elite_descent_moves) > 0) {
          evaluate(population[e]);
        }
      }
      std::stable_sort(population.begin(), population.end(), by_fitness);
    }
    convergence_.push_back(population.front().fitness);
  }

  if (params_.elite_descent_moves > 0) {
    // Final intensification: drive the winner to a (budgeted) local
    // optimum — per-generation descent polishes, this finishes the job.
    best_move_descent(population.front().genes, sizes, rates,
                      params_.elite_descent_moves *
                          (params_.generations + 1));
    evaluate(population.front());
    convergence_.back() =
        std::min(convergence_.back(), population.front().fitness);
  }

  Schedule result;
  result.assignment = population.front().genes;
  result.makespan = population.front().fitness;
  return result;
}

}  // namespace phodis::dist
