#include "dist/transport.hpp"

#include <chrono>

namespace phodis::dist {

LoopbackTransport::LoopbackTransport(const FaultSpec& faults)
    : drops_(faults) {}

void LoopbackTransport::send(const std::string& endpoint,
                             const Message& msg) {
  std::vector<std::uint8_t> frame = msg.encode();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    ++frames_sent_;
    bytes_sent_ += frame.size();
    if (drops_.should_drop()) {
      ++frames_dropped_;
      return;
    }
    queues_[endpoint].push_back(std::move(frame));
  }
  cv_.notify_all();
}

std::optional<Message> LoopbackTransport::try_receive(
    const std::string& endpoint) {
  std::vector<std::uint8_t> frame;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return std::nullopt;
    auto it = queues_.find(endpoint);
    if (it == queues_.end() || it->second.empty()) return std::nullopt;
    frame = std::move(it->second.front());
    it->second.pop_front();
  }
  return Message::decode(frame);
}

std::optional<Message> LoopbackTransport::receive(
    const std::string& endpoint, std::int64_t timeout_ms) {
  std::vector<std::uint8_t> frame;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto& queue = queues_[endpoint];
    cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                 [&] { return shutdown_ || !queue.empty(); });
    if (shutdown_ || queue.empty()) return std::nullopt;
    frame = std::move(queue.front());
    queue.pop_front();
  }
  return Message::decode(frame);
}

void LoopbackTransport::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

bool LoopbackTransport::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_;
}

std::uint64_t LoopbackTransport::frames_sent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_sent_;
}

std::uint64_t LoopbackTransport::frames_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_dropped_;
}

std::uint64_t LoopbackTransport::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_sent_;
}

}  // namespace phodis::dist
