#include "dist/runtime.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "dist/transport.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace phodis::dist {

namespace {

constexpr const char* kServerEndpoint = "server";
/// Worker-side wait for a server reply; short so lost frames are retried
/// well inside even sub-second lease durations.
constexpr std::int64_t kWorkerReplyTimeoutMs = 20;
/// Server-side receive timeout, which also bounds the lease-expiry poll
/// interval.
constexpr std::int64_t kServerPollTimeoutMs = 5;

}  // namespace

void RuntimeConfig::validate() const {
  if (worker_count == 0) {
    throw std::invalid_argument("RuntimeConfig: need >= 1 worker");
  }
  if (!(lease_duration_s > 0.0)) {
    throw std::invalid_argument("RuntimeConfig: lease must be > 0");
  }
  transport_faults.validate();
  if (worker_death_probability < 0.0 || worker_death_probability >= 1.0) {
    throw std::invalid_argument(
        "RuntimeConfig: worker_death_probability must be in [0, 1)");
  }
}

Runtime::Runtime(RuntimeConfig config) : config_(config) {
  config_.validate();
}

RuntimeReport Runtime::run(const std::vector<TaskRecord>& tasks,
                           const TaskExecutor& executor) {
  util::Stopwatch clock;
  LoopbackTransport transport(config_.transport_faults);
  DataManager manager(config_.lease_duration_s);
  for (const TaskRecord& task : tasks) {
    manager.add_task(task.task_id, task.payload);
  }

  std::atomic<bool> done{false};
  std::atomic<std::size_t> deaths{0};
  // Current endpoint name per worker slot, so the server can address the
  // final Shutdown even after reincarnations.
  std::vector<std::string> names(config_.worker_count);
  std::mutex names_mutex;
  for (std::size_t i = 0; i < config_.worker_count; ++i) {
    names[i] = "w" + std::to_string(i);
  }

  const auto worker_main = [&](std::size_t slot) {
    util::Xoshiro256pp death_rng(util::mix64(config_.fault_seed, slot));
    std::size_t incarnation = 0;
    std::string name = "w" + std::to_string(slot);
    while (!done.load()) {
      Message request;
      request.type = MessageType::kRequestWork;
      request.sender = name;
      transport.send(kServerEndpoint, request);
      const auto reply = transport.receive(name, kWorkerReplyTimeoutMs);
      if (!reply) continue;  // lost frame, timeout, or transport shutdown
      switch (reply->type) {
        case MessageType::kAssignTask: {
          if (config_.worker_death_probability > 0.0 &&
              death_rng.uniform() < config_.worker_death_probability) {
            // The worker dies holding this assignment; the lease expires
            // server-side. A replacement joins under a fresh name (frames
            // still in flight to the dead name are orphaned on purpose).
            deaths.fetch_add(1);
            ++incarnation;
            name = "w" + std::to_string(slot) + "#" +
                   std::to_string(incarnation);
            std::lock_guard<std::mutex> lock(names_mutex);
            names[slot] = name;
            break;
          }
          Message result;
          result.type = MessageType::kTaskResult;
          result.task_id = reply->task_id;
          result.sender = name;
          result.payload = executor(reply->task_id, reply->payload);
          transport.send(kServerEndpoint, result);
          break;
        }
        case MessageType::kNoWork:
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          break;
        case MessageType::kShutdown:
          return;
        default:
          break;  // protocol noise; ignore
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(config_.worker_count);
  for (std::size_t i = 0; i < config_.worker_count; ++i) {
    workers.emplace_back(worker_main, i);
  }

  RuntimeReport report;
  while (!manager.all_done()) {
    auto msg = transport.receive(kServerEndpoint, kServerPollTimeoutMs);
    const double now = clock.seconds();
    manager.expire_leases(now);
    if (!msg) continue;
    if (msg->type == MessageType::kRequestWork) {
      Message reply;
      reply.sender = kServerEndpoint;
      if (auto task = manager.lease_next(msg->sender, now)) {
        reply.type = MessageType::kAssignTask;
        reply.task_id = task->task_id;
        reply.payload = std::move(task->payload);
      } else {
        reply.type = manager.all_done() ? MessageType::kShutdown
                                        : MessageType::kNoWork;
      }
      transport.send(msg->sender, reply);
    } else if (msg->type == MessageType::kTaskResult) {
      if (manager.complete(msg->task_id, msg->sender, now)) {
        report.results.emplace(msg->task_id, std::move(msg->payload));
      }
    }
  }

  // Drain: tell every live worker to exit, then close the transport so
  // any receiver that missed (or lost) its Shutdown frame wakes up too.
  {
    std::lock_guard<std::mutex> lock(names_mutex);
    for (const std::string& name : names) {
      Message shutdown_msg;
      shutdown_msg.type = MessageType::kShutdown;
      shutdown_msg.sender = kServerEndpoint;
      transport.send(name, shutdown_msg);
    }
  }
  done.store(true);
  transport.shutdown();
  for (std::thread& worker : workers) worker.join();

  report.manager_stats = manager.stats();
  report.frames_sent = transport.frames_sent();
  report.frames_dropped = transport.frames_dropped();
  report.bytes_sent = transport.bytes_sent();
  report.workers_died = deaths.load();
  report.wall_seconds = clock.seconds();
  return report;
}

}  // namespace phodis::dist
