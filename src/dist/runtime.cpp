#include "dist/runtime.hpp"

#include <atomic>
#include <chrono>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>

#include "obs/kernel_counters.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace phodis::dist {

namespace {

/// One messages-by-type counter handle per wire tag, resolved up front so
/// the receive loops increment an atomic without re-touching the registry.
std::vector<obs::Counter*> message_counters(const std::string& name) {
  std::vector<obs::Counter*> counters;
  for (std::uint8_t tag = 0;
       tag <= static_cast<std::uint8_t>(MessageType::kMetricsSnapshot);
       ++tag) {
    counters.push_back(&obs::registry().counter(
        name, {{"type", to_string(static_cast<MessageType>(tag))}}));
  }
  return counters;
}

}  // namespace

void ServerLoopOptions::validate() const {
  if (endpoint.empty()) {
    throw std::invalid_argument("ServerLoopOptions: endpoint must be named");
  }
  if (poll_timeout_ms <= 0) {
    throw std::invalid_argument(
        "ServerLoopOptions: poll_timeout_ms must be > 0");
  }
  if (!checkpoint_path.empty() && checkpoint_every == 0) {
    throw std::invalid_argument(
        "ServerLoopOptions: checkpoint_every must be > 0");
  }
  if (metrics_drain_ms < 0) {
    throw std::invalid_argument(
        "ServerLoopOptions: metrics_drain_ms must be >= 0");
  }
}

void WorkerLoopOptions::validate() const {
  if (name.empty() || server_endpoint.empty()) {
    throw std::invalid_argument(
        "WorkerLoopOptions: endpoints must be named");
  }
  if (reply_timeout_ms <= 0 || no_work_backoff_ms < 0) {
    throw std::invalid_argument("WorkerLoopOptions: bad timeouts");
  }
  if (death_probability < 0.0 || death_probability >= 1.0) {
    throw std::invalid_argument(
        "WorkerLoopOptions: death_probability must be in [0, 1)");
  }
}

void run_server_loop(Transport& transport, DataManager& manager,
                     const ServerLoopOptions& options) {
  options.validate();
  util::Stopwatch clock;
  // Observability handles (all out-of-band of the protocol): messages by
  // wire type, scheduling events, and per-task spans measured against the
  // trace recorder's epoch.
  obs::Registry& reg = obs::registry();
  const std::vector<obs::Counter*> msg_counters =
      message_counters("dist_server_messages_total");
  obs::Counter& leases_issued = reg.counter("dist_server_leases_issued_total");
  obs::Counter& releases = reg.counter("dist_server_releases_total");
  obs::Counter& completions = reg.counter("dist_server_completions_total");
  obs::Counter& expirations =
      reg.counter("dist_server_lease_expirations_total");
  obs::Counter& checkpoint_writes =
      reg.counter("dist_server_checkpoint_writes_total");
  obs::Counter& snapshots_received =
      reg.counter("dist_server_metrics_snapshots_total");
  std::set<std::uint64_t> ever_leased;
  std::map<std::uint64_t, double> task_trace_start_s;
  obs::TraceRecorder& recorder = obs::TraceRecorder::global();

  // Every name that ever asked for work, so the final Shutdown reaches
  // even workers that only joined for one pull.
  std::set<std::string> seen_workers;
  std::uint64_t completions_since_checkpoint = 0;
  const auto write_checkpoint = [&] {
    manager.checkpoint_to_file(
        options.checkpoint_path,
        options.checkpoint_state ? options.checkpoint_state()
                                 : std::vector<std::uint8_t>{});
    checkpoint_writes.inc();
  };
  const auto handle_snapshot = [&](const Message& msg) {
    snapshots_received.inc();
    if (options.metrics_snapshot_sink) {
      options.metrics_snapshot_sink(msg.sender, msg.payload);
    }
  };

  while (!manager.all_done()) {
    auto msg = transport.receive(options.endpoint, options.poll_timeout_ms);
    const double now = clock.seconds();
    expirations.inc(manager.expire_leases(now));
    if (!msg) {
      if (transport.closed()) {
        throw std::runtime_error(
            "run_server_loop: transport closed with tasks outstanding");
      }
      continue;
    }
    msg_counters[static_cast<std::uint8_t>(msg->type)]->inc();
    switch (msg->type) {
      case MessageType::kRequestWork: {
        seen_workers.insert(msg->sender);
        Message reply;
        reply.sender = options.endpoint;
        if (auto task = manager.lease_next(msg->sender, now)) {
          reply.type = MessageType::kAssignTask;
          reply.task_id = task->task_id;
          reply.payload = std::move(task->payload);
          leases_issued.inc();
          if (!ever_leased.insert(task->task_id).second) releases.inc();
          if (recorder.enabled()) {
            task_trace_start_s[task->task_id] = recorder.elapsed_s();
          }
        } else {
          reply.type = manager.all_done() ? MessageType::kShutdown
                                          : MessageType::kNoWork;
        }
        transport.send(msg->sender, reply);
        break;
      }
      case MessageType::kTaskResult: {
        const std::uint64_t task_id = msg->task_id;
        const std::string sender = msg->sender;
        if (manager.complete(task_id, sender, now, std::move(msg->payload))) {
          completions.inc();
          if (recorder.enabled()) {
            // Server-side span of the task's last lease: from the assign
            // that won to the first accepted result.
            const auto it = task_trace_start_s.find(task_id);
            if (it != task_trace_start_s.end()) {
              obs::TraceEvent event;
              event.name = "task";
              event.category = "dist";
              event.ts_us = static_cast<std::uint64_t>(it->second * 1e6);
              const double dur_s = recorder.elapsed_s() - it->second;
              event.dur_us =
                  dur_s > 0.0 ? static_cast<std::uint64_t>(dur_s * 1e6) : 0;
              event.tid = obs::TraceRecorder::thread_id();
              event.args.emplace_back("task_id", std::to_string(task_id));
              event.args.emplace_back("worker", sender);
              recorder.record(std::move(event));
            }
          }
          task_trace_start_s.erase(task_id);
          if (!options.checkpoint_path.empty() &&
              ++completions_since_checkpoint >= options.checkpoint_every) {
            write_checkpoint();
            completions_since_checkpoint = 0;
          }
        }
        break;
      }
      case MessageType::kMetricsSnapshot:
        handle_snapshot(*msg);
        break;
      case MessageType::kAssignTask:
      case MessageType::kNoWork:
      case MessageType::kShutdown:
        break;  // server->worker kinds echoed back to us; ignore
    }
  }

  if (!options.checkpoint_path.empty()) {
    write_checkpoint();
  }

  // Tell every worker we ever heard from to exit; whoever misses the
  // frame (drop, death, reconnect) gets a Shutdown reply to its next
  // RequestWork or sees the transport close.
  for (const std::string& worker : seen_workers) {
    Message shutdown_msg;
    shutdown_msg.type = MessageType::kShutdown;
    shutdown_msg.sender = options.endpoint;
    transport.send(worker, shutdown_msg);
  }

  // Post-shutdown drain: workers that opted into send_metrics_snapshot
  // ship their registry on Shutdown receipt; give those frames a bounded
  // window to land. Late RequestWork frames (a reconnecting worker that
  // missed the broadcast) still get a Shutdown so they can exit.
  if (options.metrics_drain_ms > 0) {
    util::Stopwatch drain_clock;
    while (drain_clock.milliseconds() < options.metrics_drain_ms) {
      auto msg = transport.receive(options.endpoint, options.poll_timeout_ms);
      if (!msg) {
        if (transport.closed()) break;
        continue;
      }
      msg_counters[static_cast<std::uint8_t>(msg->type)]->inc();
      switch (msg->type) {
        case MessageType::kMetricsSnapshot:
          handle_snapshot(*msg);
          break;
        case MessageType::kRequestWork: {
          Message reply;
          reply.type = MessageType::kShutdown;
          reply.sender = options.endpoint;
          transport.send(msg->sender, reply);
          break;
        }
        case MessageType::kAssignTask:
        case MessageType::kNoWork:
        case MessageType::kShutdown:
        case MessageType::kTaskResult:
          break;  // too late to matter during the drain; ignore
      }
    }
  }
}

WorkerLoopOutcome run_worker_loop(Transport& transport,
                                  const TaskExecutor& executor,
                                  const WorkerLoopOptions& options) {
  options.validate();
  util::Xoshiro256pp death_rng(options.death_seed);
  WorkerLoopOutcome outcome;
  std::string name = options.name;
  std::size_t incarnation = 0;

  obs::Registry& reg = obs::registry();
  obs::Counter& tasks_executed = reg.counter("dist_worker_tasks_total");
  obs::Counter& deaths = reg.counter("dist_worker_deaths_total");
  obs::Counter& no_work = reg.counter("dist_worker_no_work_total");
  obs::Counter& reply_timeouts =
      reg.counter("dist_worker_reply_timeouts_total");

  const auto alive = [&] {
    return !transport.closed() &&
           (!options.keep_running || options.keep_running());
  };

  while (alive()) {
    Message request;
    request.type = MessageType::kRequestWork;
    request.sender = name;
    transport.send(options.server_endpoint, request);
    const auto reply = transport.receive(name, options.reply_timeout_ms);
    if (!reply) {
      reply_timeouts.inc();
      continue;  // lost frame, timeout, or transport shutdown
    }
    switch (reply->type) {
      case MessageType::kAssignTask: {
        if (options.death_probability > 0.0 &&
            death_rng.uniform() < options.death_probability) {
          // The worker dies holding this assignment; the lease expires
          // server-side. A replacement joins under a fresh name (frames
          // still in flight to the dead name are orphaned on purpose).
          ++outcome.deaths;
          deaths.inc();
          ++incarnation;
          name = options.name + "#" + std::to_string(incarnation);
          break;
        }
        Message result;
        result.type = MessageType::kTaskResult;
        result.task_id = reply->task_id;
        result.sender = name;
        {
          obs::ScopedSpan span("task_execute", "dist");
          span.arg("task_id", std::to_string(reply->task_id));
          span.arg("worker", name);
          result.payload = executor(reply->task_id, reply->payload);
        }
        transport.send(options.server_endpoint, result);
        ++outcome.tasks_executed;
        tasks_executed.inc();
        break;
      }
      case MessageType::kNoWork:
        no_work.inc();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.no_work_backoff_ms));
        break;
      case MessageType::kShutdown:
        outcome.saw_shutdown = true;
        outcome.final_name = name;
        if (options.send_metrics_snapshot) {
          // Ship the whole process registry (plus compile-gated kernel
          // counters); the server folds it into the cluster-wide report.
          obs::Snapshot snapshot = obs::registry().snapshot();
          obs::append_kernel_counters(snapshot);
          Message metrics_msg;
          metrics_msg.type = MessageType::kMetricsSnapshot;
          metrics_msg.sender = name;
          metrics_msg.payload = snapshot.encode();
          transport.send(options.server_endpoint, metrics_msg);
        }
        return outcome;
      case MessageType::kRequestWork:
      case MessageType::kTaskResult:
      case MessageType::kMetricsSnapshot:
        break;  // worker->server kinds misrouted to a worker; ignore
    }
  }
  outcome.final_name = name;
  return outcome;
}

void RuntimeConfig::validate() const {
  if (worker_count == 0) {
    throw std::invalid_argument("RuntimeConfig: need >= 1 worker");
  }
  if (!(lease_duration_s > 0.0)) {
    throw std::invalid_argument("RuntimeConfig: lease must be > 0");
  }
  transport_faults.validate();
  if (worker_death_probability < 0.0 || worker_death_probability >= 1.0) {
    throw std::invalid_argument(
        "RuntimeConfig: worker_death_probability must be in [0, 1)");
  }
}

Runtime::Runtime(RuntimeConfig config) : config_(config) {
  config_.validate();
}

Runtime::Runtime(RuntimeConfig config, Transport& transport)
    : config_(config), transport_(&transport) {
  config_.validate();
}

RuntimeReport Runtime::run(const std::vector<TaskRecord>& tasks,
                           const TaskExecutor& executor) {
  util::Stopwatch clock;
  std::optional<LoopbackTransport> owned_transport;
  Transport* transport = transport_;
  if (transport == nullptr) {
    owned_transport.emplace(config_.transport_faults);
    transport = &*owned_transport;
  }

  DataManager manager(config_.lease_duration_s);
  for (const TaskRecord& task : tasks) {
    manager.add_task(task.task_id, task.payload);
  }

  std::atomic<bool> done{false};
  std::atomic<std::size_t> deaths{0};
  std::vector<std::thread> workers;
  workers.reserve(config_.worker_count);
  for (std::size_t slot = 0; slot < config_.worker_count; ++slot) {
    workers.emplace_back([&, slot] {
      WorkerLoopOptions options;
      options.name = "w";
      options.name += std::to_string(slot);
      options.death_probability = config_.worker_death_probability;
      options.death_seed = util::mix64(config_.fault_seed, slot);
      options.keep_running = [&done] { return !done.load(); };
      const WorkerLoopOutcome outcome =
          run_worker_loop(*transport, executor, options);
      deaths.fetch_add(outcome.deaths);
    });
  }

  // Drain: on the happy path the server loop has addressed a Shutdown to
  // every worker it heard from; closing the transport wakes any receiver
  // that missed (or lost) its frame. Must also run when the server loop
  // throws (checkpoint I/O failure, transport closed under us) — letting
  // joinable std::threads unwind would std::terminate the process.
  const auto drain = [&] {
    done.store(true);
    transport->shutdown();
    for (std::thread& worker : workers) worker.join();
    workers.clear();
  };
  ServerLoopOptions server_options;
  server_options.checkpoint_path = config_.checkpoint_path;
  try {
    run_server_loop(*transport, manager, server_options);
  } catch (...) {
    drain();
    throw;
  }
  drain();

  RuntimeReport report;
  report.results = manager.results();
  report.manager_stats = manager.stats();
  report.frames_sent = transport->frames_sent();
  report.frames_dropped = transport->frames_dropped();
  report.bytes_sent = transport->bytes_sent();
  report.workers_died = deaths.load();
  report.wall_seconds = clock.seconds();
  return report;
}

}  // namespace phodis::dist
