// Transport — how protocol messages move between endpoints.
//
// Endpoints are named mailboxes: send(endpoint, msg) delivers an encoded
// frame to whoever receives on that name. The server receives on its own
// well-known endpoint and replies to the sender names it sees; workers
// receive on their own names. Implementations are free to realise that
// namespace in-process (LoopbackTransport) or across machines
// (net::Server / net::Client over TCP or Unix-domain sockets); the
// protocol loops in runtime.cpp run unchanged over either.
//
// Sends may be dropped with a configured, seeded probability (FaultSpec);
// drop decisions are taken before the frame leaves the sender, so fault
// tests behave the same on every transport. All operations are
// thread-safe.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dist/message.hpp"
#include "util/rng.hpp"

namespace phodis::dist {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Encode and deliver `msg` to `endpoint` (or drop it, per the fault
  /// spec). After shutdown() this is a silent no-op; a frame lost on the
  /// way (full queue, broken socket) is equally silent — the protocol
  /// retries, it never relies on delivery.
  virtual void send(const std::string& endpoint, const Message& msg) = 0;

  /// Pop the next frame for `endpoint` without blocking.
  virtual std::optional<Message> try_receive(const std::string& endpoint) = 0;

  /// Pop the next frame for `endpoint`, waiting up to `timeout_ms`.
  /// Returns nullopt on timeout or transport shutdown.
  virtual std::optional<Message> receive(const std::string& endpoint,
                                         std::int64_t timeout_ms) = 0;

  /// Stop all traffic and wake every blocked receiver.
  virtual void shutdown() = 0;

  /// True once the transport can no longer deliver traffic — after
  /// shutdown(), or when a connection-oriented implementation has
  /// exhausted its reconnect budget. Protocol loops use this to stop
  /// retrying instead of spinning forever.
  virtual bool closed() const = 0;

  virtual std::uint64_t frames_sent() const = 0;
  virtual std::uint64_t frames_dropped() const = 0;
  virtual std::uint64_t bytes_sent() const = 0;
};

/// Seeded Bernoulli drop decisions shared by every transport's fault
/// injection. Not thread-safe on its own: callers draw under their lock.
class DropInjector {
 public:
  explicit DropInjector(const FaultSpec& faults)
      : rng_(faults.seed), probability_(faults.drop_probability) {
    faults.validate();
  }

  /// Decide the fate of one send. Draws from the stream only when drops
  /// are enabled, so a zero-probability spec never perturbs anything.
  bool should_drop() {
    return probability_ > 0.0 && rng_.uniform() < probability_;
  }

 private:
  util::Xoshiro256pp rng_;
  double probability_;
};

/// In-process implementation: endpoints are FIFO queues of encoded
/// frames, so even a loopback run pays (and tests) the full
/// encode/decode cost a socket transport would.
class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport() : LoopbackTransport(FaultSpec{}) {}
  explicit LoopbackTransport(const FaultSpec& faults);

  void send(const std::string& endpoint, const Message& msg) override;
  std::optional<Message> try_receive(const std::string& endpoint) override;
  std::optional<Message> receive(const std::string& endpoint,
                                 std::int64_t timeout_ms) override;
  void shutdown() override;
  bool closed() const override;

  std::uint64_t frames_sent() const override;
  std::uint64_t frames_dropped() const override;
  std::uint64_t bytes_sent() const override;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, std::deque<std::vector<std::uint8_t>>> queues_;
  DropInjector drops_;
  bool shutdown_ = false;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace phodis::dist
