// In-process loopback transport with fault injection.
//
// Endpoints are named mailboxes holding encoded frames in FIFO order, so
// even an in-process run pays (and tests) the full encode/decode cost a
// socket transport would. Sends may be dropped with a configured,
// seeded probability; drop decisions are reproducible. All operations
// are thread-safe.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dist/message.hpp"
#include "util/rng.hpp"

namespace phodis::dist {

class LoopbackTransport {
 public:
  LoopbackTransport() : LoopbackTransport(FaultSpec{}) {}
  explicit LoopbackTransport(const FaultSpec& faults);

  /// Encode and enqueue `msg` for `endpoint` (or drop it, per the fault
  /// spec). After shutdown() this is a silent no-op.
  void send(const std::string& endpoint, const Message& msg);

  /// Pop the next frame for `endpoint` without blocking.
  std::optional<Message> try_receive(const std::string& endpoint);

  /// Pop the next frame for `endpoint`, waiting up to `timeout_ms`.
  /// Returns nullopt on timeout or transport shutdown.
  std::optional<Message> receive(const std::string& endpoint,
                                 std::int64_t timeout_ms);

  /// Stop all traffic and wake every blocked receiver.
  void shutdown();

  std::uint64_t frames_sent() const;
  std::uint64_t frames_dropped() const;
  std::uint64_t bytes_sent() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, std::deque<std::vector<std::uint8_t>>> queues_;
  util::Xoshiro256pp drop_rng_;
  double drop_probability_;
  bool shutdown_ = false;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace phodis::dist
