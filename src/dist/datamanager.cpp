#include "dist/datamanager.hpp"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

namespace phodis::dist {

namespace {
/// File header of checkpoint_to_file: 8 magic bytes + a format version.
/// Version 2 added the sink-state blob between the header and the task
/// table (streaming-merge mode); v1 files are refused.
constexpr char kCheckpointMagic[8] = {'P', 'H', 'O', 'D', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kCheckpointVersion = 2;
}  // namespace

DataManager::DataManager(double lease_duration_s)
    : lease_duration_s_(lease_duration_s) {
  if (!(lease_duration_s > 0.0)) {
    throw std::invalid_argument("DataManager: lease duration must be > 0");
  }
}

void DataManager::add_task(std::uint64_t task_id,
                           std::vector<std::uint8_t> payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = tasks_.emplace(
      task_id, Task{std::move(payload), State::kPending, {}, 0.0, {}});
  if (!inserted) {
    throw std::invalid_argument("DataManager: duplicate task id " +
                                std::to_string(task_id));
  }
  queue_.push_back(task_id);
  ++pending_;
  ++stats_.tasks_added;
}

std::optional<TaskRecord> DataManager::lease_next(const std::string& worker,
                                                  double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (!queue_.empty()) {
    const std::uint64_t id = queue_.front();
    queue_.pop_front();
    Task& task = tasks_.at(id);
    if (task.state != State::kPending) continue;  // stale queue entry
    task.state = State::kInFlight;
    task.worker = worker;
    task.lease_deadline = now + lease_duration_s_;
    --pending_;
    ++in_flight_;
    ++stats_.assignments;
    return TaskRecord{id, task.payload};
  }
  return std::nullopt;
}

bool DataManager::complete(std::uint64_t task_id,
                           const std::string& /*worker*/, double /*now*/,
                           std::vector<std::uint8_t> result) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = tasks_.find(task_id);
    if (it == tasks_.end()) {
      ++stats_.unknown_results;
      return false;
    }
    Task& task = it->second;
    switch (task.state) {
      case State::kCompleted:
        ++stats_.duplicate_results;
        return false;
      case State::kInFlight:
        --in_flight_;
        break;
      case State::kPending:
        // Expired-and-requeued task whose original worker finally answered;
        // its stale queue entry will be skipped by lease_next.
        --pending_;
        break;
    }
    task.state = State::kCompleted;
    task.worker.clear();
    if (!result_sink_) task.result = std::move(result);
    ++completed_;
    ++stats_.completions;
  }
  // First acceptance only (duplicates returned above): stream the bytes
  // out instead of retaining them. Outside the lock so the sink may use
  // the manager (e.g. checkpoint) without deadlocking.
  if (result_sink_) result_sink_(task_id, std::move(result));
  return true;
}

void DataManager::set_result_sink(ResultSink sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (completed_ != 0) {
    throw std::logic_error(
        "DataManager: result sink must be set before any completion");
  }
  result_sink_ = std::move(sink);
}

std::map<std::uint64_t, std::vector<std::uint8_t>> DataManager::results()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::uint64_t, std::vector<std::uint8_t>> out;
  if (result_sink_) return out;  // streamed to the sink, not retained
  for (const auto& [id, task] : tasks_) {
    if (task.state == State::kCompleted) out.emplace(id, task.result);
  }
  return out;
}

std::size_t DataManager::expire_leases(double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t reclaimed = 0;
  for (auto& [id, task] : tasks_) {
    if (task.state == State::kInFlight && now >= task.lease_deadline) {
      task.state = State::kPending;
      task.worker.clear();
      queue_.push_back(id);
      --in_flight_;
      ++pending_;
      ++stats_.lease_expirations;
      ++reclaimed;
    }
  }
  return reclaimed;
}

std::size_t DataManager::evict_worker(const std::string& worker) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t reclaimed = 0;
  for (auto& [id, task] : tasks_) {
    if (task.state == State::kInFlight && task.worker == worker) {
      task.state = State::kPending;
      task.worker.clear();
      queue_.push_back(id);
      --in_flight_;
      ++pending_;
      ++reclaimed;
    }
  }
  return reclaimed;
}

std::size_t DataManager::pending_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

std::size_t DataManager::in_flight_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

std::uint64_t DataManager::completed_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

bool DataManager::all_done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_ == tasks_.size();
}

DataManagerStats DataManager::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void DataManager::checkpoint(util::ByteWriter& writer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  writer.u64(tasks_.size());
  for (const auto& [id, task] : tasks_) {
    writer.u64(id);
    writer.boolean(task.state == State::kCompleted);
    writer.blob(task.payload);
    writer.blob(task.result);
  }
}

void DataManager::restore(util::ByteReader& reader) {
  // Stage fully before touching any member, so malformed input (truncation,
  // duplicate ids) leaves the manager untouched.
  const std::uint64_t count = reader.u64();
  std::map<std::uint64_t, Task> staged;
  std::deque<std::uint64_t> staged_queue;
  std::uint64_t staged_completed = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t id = reader.u64();
    Task task;
    task.state = reader.boolean() ? State::kCompleted : State::kPending;
    task.payload = reader.blob();
    task.result = reader.blob();
    const bool completed = task.state == State::kCompleted;
    if (!staged.emplace(id, std::move(task)).second) {
      throw std::invalid_argument(
          "DataManager: duplicate task id in checkpoint");
    }
    if (completed) {
      ++staged_completed;
    } else {
      staged_queue.push_back(id);
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (!tasks_.empty()) {
    throw std::logic_error(
        "DataManager: restore target already holds tasks");
  }
  tasks_ = std::move(staged);
  queue_ = std::move(staged_queue);
  pending_ = queue_.size();
  completed_ = staged_completed;
  stats_.tasks_added += count;
}

void DataManager::checkpoint_to_file(
    const std::string& path,
    const std::vector<std::uint8_t>& sink_state) const {
  util::ByteWriter writer;
  for (char byte : kCheckpointMagic) {
    writer.u8(static_cast<std::uint8_t>(byte));
  }
  writer.u32(kCheckpointVersion);
  writer.blob(sink_state);
  checkpoint(writer);

  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("DataManager: cannot open " + tmp_path +
                               " for writing");
    }
    out.write(reinterpret_cast<const char*>(writer.bytes().data()),
              static_cast<std::streamsize>(writer.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("DataManager: short write to " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("DataManager: cannot rename " + tmp_path +
                             " over " + path);
  }
}

std::vector<std::uint8_t> DataManager::restore_from_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("DataManager: cannot open checkpoint " + path);
  }
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  util::ByteReader reader(bytes);
  for (char expected : kCheckpointMagic) {
    if (reader.u8() != static_cast<std::uint8_t>(expected)) {
      throw std::invalid_argument("DataManager: " + path +
                                  " is not a phodis checkpoint");
    }
  }
  if (const std::uint32_t version = reader.u32();
      version != kCheckpointVersion) {
    throw std::invalid_argument("DataManager: checkpoint version " +
                                std::to_string(version) + " not supported");
  }
  std::vector<std::uint8_t> sink_state = reader.blob();
  restore(reader);
  if (!reader.exhausted()) {
    throw std::length_error("DataManager: trailing bytes in checkpoint " +
                            path);
  }
  return sink_state;
}

}  // namespace phodis::dist
