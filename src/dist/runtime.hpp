// The distributed runtime: the RequestWork/AssignTask/TaskResult
// protocol, factored into a server loop and a worker loop that run over
// any Transport — the in-process loopback (Runtime bundles both sides
// behind one call, the original threaded simulation) or real sockets
// (phodis_server runs run_server_loop over a net::Server, each
// phodis_worker process runs run_worker_loop over a net::Client).
//
// Faults are first-class: frames may be dropped (FaultSpec) and workers
// may die mid-assignment (death_probability, or a real SIGKILL); lease
// expiry plus exactly-once completion in the DataManager guarantee every
// task's result is collected exactly once regardless. A dead in-process
// worker is replaced immediately (the fleet keeps its size), modelling
// the paper's non-dedicated client churn.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dist/datamanager.hpp"
#include "dist/message.hpp"
#include "dist/transport.hpp"

namespace phodis::dist {

/// Computes a task's result bytes from (task_id, payload). Must be
/// thread-safe; called concurrently from worker threads.
using TaskExecutor = std::function<std::vector<std::uint8_t>(
    std::uint64_t, const std::vector<std::uint8_t>&)>;

struct ServerLoopOptions {
  /// The server's well-known mailbox name.
  std::string endpoint = "server";
  /// Receive timeout, which also bounds the lease-expiry poll interval.
  std::int64_t poll_timeout_ms = 5;
  /// Persist the DataManager (tasks, completion bits, results) here so a
  /// restarted server resumes instead of recomputing. Empty = off.
  std::string checkpoint_path;
  /// Checkpoint after this many new completions (and always once at the
  /// end of the run).
  std::uint64_t checkpoint_every = 16;
  /// Snapshot of the result sink's reduced state, stored inside each
  /// checkpoint (streaming-merge mode, see DataManager::set_result_sink);
  /// empty = no extra state. Called on the server-loop thread right
  /// before the checkpoint is written.
  std::function<std::vector<std::uint8_t>()> checkpoint_state;

  /// Called once per MetricsSnapshot frame with the sender name and the
  /// raw payload (an encoded obs::Snapshot); empty = frames counted but
  /// otherwise ignored. Runs on the server-loop thread.
  std::function<void(const std::string& sender,
                     const std::vector<std::uint8_t>& payload)>
      metrics_snapshot_sink;
  /// After the Shutdown broadcast, keep receiving for this long so the
  /// workers' final MetricsSnapshot frames (sent on Shutdown receipt) can
  /// land. 0 = no drain. Best-effort by design: a killed worker or a
  /// dropped frame just means one fewer snapshot in the merged report.
  std::int64_t metrics_drain_ms = 0;

  void validate() const;
};

/// Drive `manager`'s tasks to completion over `transport` on the calling
/// thread: lease tasks to whoever asks, accept first results, requeue
/// expired leases. Before returning, every endpoint that ever requested
/// work is sent a Shutdown frame. Results land in the manager
/// (DataManager::results()).
void run_server_loop(Transport& transport, DataManager& manager,
                     const ServerLoopOptions& options = {});

struct WorkerLoopOptions {
  /// This worker's endpoint name (the sender field of its frames).
  std::string name = "worker";
  std::string server_endpoint = "server";
  /// Wait for a server reply; short so lost frames are retried well
  /// inside even sub-second lease durations.
  std::int64_t reply_timeout_ms = 20;
  /// Pause after a NoWork reply (pool momentarily empty).
  std::int64_t no_work_backoff_ms = 2;
  /// Per-assignment probability that the worker "dies" instead of
  /// executing, in [0, 1): it abandons the lease and rejoins under a
  /// fresh name, exactly like a real client crashing and rebooting.
  double death_probability = 0.0;
  /// Seed of the death stream (independent of transport faults).
  std::uint64_t death_seed = 2006;
  /// Extra liveness check polled each iteration (in-process pools use it
  /// to stop workers whose Shutdown frame was lost); empty = always on.
  std::function<bool()> keep_running;
  /// On Shutdown receipt, encode the process-global obs registry (plus
  /// kernel counters) and send it to the server as a MetricsSnapshot
  /// before returning. Off by default: in-process pools share one
  /// registry with the server, so only separate worker processes
  /// (phodis_worker) should ship theirs.
  bool send_metrics_snapshot = false;

  void validate() const;
};

struct WorkerLoopOutcome {
  std::size_t tasks_executed = 0;
  std::size_t deaths = 0;
  /// True when the loop ended on a Shutdown frame (vs transport closed
  /// or keep_running() false).
  bool saw_shutdown = false;
  /// The name after any death/rebirth renames.
  std::string final_name;
};

/// Pull and execute tasks over `transport` until a Shutdown frame
/// arrives, the transport closes, or keep_running() turns false.
WorkerLoopOutcome run_worker_loop(Transport& transport,
                                  const TaskExecutor& executor,
                                  const WorkerLoopOptions& options);

struct RuntimeConfig {
  std::size_t worker_count = 2;
  double lease_duration_s = 30.0;
  FaultSpec transport_faults;
  /// Per-assignment probability that a worker dies instead of
  /// executing, in [0, 1). Its replacement joins under a fresh name.
  double worker_death_probability = 0.0;
  /// Seed of the worker-death streams (independent of transport faults).
  std::uint64_t fault_seed = 2006;
  /// Server-side checkpointing (see ServerLoopOptions).
  std::string checkpoint_path;

  void validate() const;
};

struct RuntimeReport {
  /// First-accepted result per task, keyed (and hence iterated) by id.
  std::map<std::uint64_t, std::vector<std::uint8_t>> results;
  DataManagerStats manager_stats;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t bytes_sent = 0;
  std::size_t workers_died = 0;
  double wall_seconds = 0.0;
};

/// Both sides of the protocol behind one blocking call: a DataManager
/// fed by the server loop on the calling thread, plus a pool of worker
/// threads, all speaking over one shared transport.
class Runtime {
 public:
  /// Runs over an owned LoopbackTransport configured from
  /// `config.transport_faults`.
  explicit Runtime(RuntimeConfig config);

  /// Runs over `transport` (borrowed; must outlive run()). The
  /// transport's own fault configuration applies;
  /// `config.transport_faults` is ignored. Note run() shuts the
  /// transport down when the pool drains — a transport carries one run.
  Runtime(RuntimeConfig config, Transport& transport);

  /// Run every task to completion and collect the results. Blocks until
  /// the pool has drained; the server loop runs on the calling thread.
  RuntimeReport run(const std::vector<TaskRecord>& tasks,
                    const TaskExecutor& executor);

 private:
  RuntimeConfig config_;
  Transport* transport_ = nullptr;
};

}  // namespace phodis::dist
