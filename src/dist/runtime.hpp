// The in-process distributed runtime: a DataManager server plus a pool
// of worker threads speaking the RequestWork/AssignTask/TaskResult
// protocol over the loopback transport.
//
// Faults are first-class: frames may be dropped (FaultSpec) and workers
// may die mid-assignment (worker_death_probability); lease expiry plus
// exactly-once completion in the DataManager guarantee every task's
// result is collected exactly once regardless. A dead worker is replaced
// immediately (the fleet keeps its size), modelling the paper's
// non-dedicated client churn.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dist/datamanager.hpp"
#include "dist/message.hpp"

namespace phodis::dist {

struct RuntimeConfig {
  std::size_t worker_count = 2;
  double lease_duration_s = 30.0;
  FaultSpec transport_faults;
  /// Per-assignment probability that the worker dies instead of
  /// executing, in [0, 1). Its replacement joins under a fresh name.
  double worker_death_probability = 0.0;
  /// Seed of the worker-death streams (independent of transport faults).
  std::uint64_t fault_seed = 2006;

  void validate() const;
};

/// Computes a task's result bytes from (task_id, payload). Must be
/// thread-safe; called concurrently from worker threads.
using TaskExecutor = std::function<std::vector<std::uint8_t>(
    std::uint64_t, const std::vector<std::uint8_t>&)>;

struct RuntimeReport {
  /// First-accepted result per task, keyed (and hence iterated) by id.
  std::map<std::uint64_t, std::vector<std::uint8_t>> results;
  DataManagerStats manager_stats;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t bytes_sent = 0;
  std::size_t workers_died = 0;
  double wall_seconds = 0.0;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig config);

  /// Run every task to completion and collect the results. Blocks until
  /// the pool has drained; the server loop runs on the calling thread.
  RuntimeReport run(const std::vector<TaskRecord>& tasks,
                    const TaskExecutor& executor);

 private:
  RuntimeConfig config_;
};

}  // namespace phodis::dist
