// Diffusion-approximation references ("Light transport in tissue is
// analysed using radiative transport theory or the diffusion
// approximation" — paper §2). Used as independent cross-checks on the
// Monte Carlo kernel and to compute the NIRS quantities the paper's
// introduction motivates (differential pathlength, penetration depth).
#pragma once

#include "mc/optical.hpp"

namespace phodis::analysis {

/// Diffusion coefficient D = 1 / (3 (µa + µs')) [mm].
double diffusion_coefficient(const mc::OpticalProperties& props);

/// Effective attenuation µeff = sqrt(µa / D) [1/mm].
double effective_attenuation(const mc::OpticalProperties& props);

/// Steady-state fluence of an isotropic point source of unit power in an
/// infinite medium at distance r [mm]: φ(r) = exp(-µeff r) / (4π D r).
double infinite_medium_fluence(const mc::OpticalProperties& props, double r);

/// Spatially-resolved diffuse reflectance R(ρ) of a semi-infinite medium
/// for a normally-incident pencil beam, using the dipole (extrapolated
/// boundary) model of Farrell, Patterson & Wilson (1992). Matched
/// boundary unless `n_relative` != 1, in which case the internal
/// reflection parameter A follows Groenhuis' approximation.
double semi_infinite_reflectance(const mc::OpticalProperties& props,
                                 double rho_mm, double n_relative = 1.0);

/// Mean optical pathlength of detected photons at source-detector
/// separation ρ predicted by diffusion theory for a semi-infinite medium:
/// the differential pathlength the paper's §1 discusses. Asymptotic form
/// <L> ≈ (ρ/2) · sqrt(3µs'/µa) · [1/(1+µeff ρ)] · µeff ρ … reduced to the
/// standard large-ρ limit <L> = ρ µeff /(2 µa) · (µeff ρ)/(1+µeff ρ).
double mean_pathlength_semi_infinite(const mc::OpticalProperties& props,
                                     double rho_mm);

/// Differential pathlength factor DPF = <L> / ρ.
double differential_pathlength_factor(const mc::OpticalProperties& props,
                                      double rho_mm);

/// 1/e penetration depth of a broad beam in the diffusive regime,
/// δ = 1/µeff [mm].
double penetration_depth(const mc::OpticalProperties& props);

}  // namespace phodis::analysis
