// Quantitative description of the spatial sensitivity profile ("banana").
//
// Fig. 3 of the paper shows the most common paths of detected photons in
// homogeneous white matter forming a banana between source and detector.
// These metrics turn a detected-path visit grid into numbers a test or
// bench can assert on: the depth profile along the source-detector axis,
// its mid-point maximum, end-point anchoring, and left/right symmetry.
#pragma once

#include <cstddef>
#include <vector>

#include "mc/grid.hpp"

namespace phodis::analysis {

/// Weighted depth statistics of one x-column of the visit grid
/// (summed over y).
struct DepthProfilePoint {
  double x_mm = 0.0;
  double total_visits = 0.0;
  double mean_depth_mm = 0.0;  ///< visit-weighted mean z
  double mode_depth_mm = 0.0;  ///< z of the fullest voxel row
};

struct BananaMetrics {
  std::vector<DepthProfilePoint> profile;  ///< one entry per x-column
  double source_x_mm = 0.0;
  double detector_x_mm = 0.0;
  double midpoint_mean_depth_mm = 0.0;
  double endpoint_mean_depth_mm = 0.0;  ///< average of the two end columns
  /// Relative |left-right| asymmetry of visits about the midpoint, in
  /// [0, 1]; small for a converged banana.
  double asymmetry = 0.0;
  /// Fraction of total visit weight inside the column span
  /// [source_x, detector_x] (the banana should live between the optodes).
  double between_fraction = 0.0;

  /// The defining shape property: deepest in the middle, shallow at the
  /// optodes.
  bool is_banana_shaped() const noexcept {
    return midpoint_mean_depth_mm > endpoint_mean_depth_mm &&
           between_fraction > 0.5;
  }
};

/// Compute banana metrics from a detected-path visit grid, for a source at
/// x = 0 and detector at x = detector_x_mm (both at y = 0, z = 0).
BananaMetrics banana_metrics(const mc::VoxelGrid3D& grid,
                             double detector_x_mm);

/// Apply a relative threshold: zero every voxel below
/// `fraction_of_max` * max(grid). Returns the surviving visit fraction.
/// This is the paper's "after thresholding" step for Fig. 3.
double threshold_grid(mc::VoxelGrid3D& grid, double fraction_of_max);

/// RMS radial spread sqrt(<x²+y²>) of deposits in each z-slab of a fluence
/// grid — quantifies the paper's claim that "lasers do produce a small
/// beam in a highly scattering medium".
struct BeamSpreadPoint {
  double z_mm = 0.0;
  double rms_radius_mm = 0.0;
  double total_weight = 0.0;
};

std::vector<BeamSpreadPoint> beam_spread_by_depth(const mc::VoxelGrid3D& grid);

}  // namespace phodis::analysis
