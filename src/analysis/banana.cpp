#include "analysis/banana.hpp"

#include <algorithm>
#include <cmath>

namespace phodis::analysis {

BananaMetrics banana_metrics(const mc::VoxelGrid3D& grid,
                             double detector_x_mm) {
  const mc::GridSpec& spec = grid.spec();
  const double dx = (spec.x_max - spec.x_min) / static_cast<double>(spec.nx);
  const double dz = (spec.z_max - spec.z_min) / static_cast<double>(spec.nz);

  BananaMetrics metrics;
  metrics.source_x_mm = 0.0;
  metrics.detector_x_mm = detector_x_mm;
  metrics.profile.reserve(spec.nx);

  double grand_total = 0.0;
  double between_total = 0.0;

  for (std::size_t ix = 0; ix < spec.nx; ++ix) {
    DepthProfilePoint point;
    point.x_mm = spec.x_min + (static_cast<double>(ix) + 0.5) * dx;

    double sum_w = 0.0;
    double sum_wz = 0.0;
    double best_row = 0.0;
    std::size_t best_iz = 0;
    for (std::size_t iz = 0; iz < spec.nz; ++iz) {
      double row = 0.0;
      for (std::size_t iy = 0; iy < spec.ny; ++iy) {
        row += grid.at(ix, iy, iz);
      }
      const double z =
          spec.z_min + (static_cast<double>(iz) + 0.5) * dz;
      sum_w += row;
      sum_wz += row * z;
      if (row > best_row) {
        best_row = row;
        best_iz = iz;
      }
    }
    point.total_visits = sum_w;
    point.mean_depth_mm = sum_w > 0.0 ? sum_wz / sum_w : 0.0;
    point.mode_depth_mm =
        spec.z_min + (static_cast<double>(best_iz) + 0.5) * dz;
    grand_total += sum_w;
    if (point.x_mm >= 0.0 && point.x_mm <= detector_x_mm) {
      between_total += sum_w;
    }
    metrics.profile.push_back(point);
  }

  metrics.between_fraction =
      grand_total > 0.0 ? between_total / grand_total : 0.0;

  // Column nearest a given x.
  auto column_at = [&](double x) -> const DepthProfilePoint& {
    std::size_t best = 0;
    double best_dist = std::abs(metrics.profile[0].x_mm - x);
    for (std::size_t i = 1; i < metrics.profile.size(); ++i) {
      const double dist = std::abs(metrics.profile[i].x_mm - x);
      if (dist < best_dist) {
        best_dist = dist;
        best = i;
      }
    }
    return metrics.profile[best];
  };

  const double mid_x = 0.5 * detector_x_mm;
  metrics.midpoint_mean_depth_mm = column_at(mid_x).mean_depth_mm;
  metrics.endpoint_mean_depth_mm = 0.5 * (column_at(0.0).mean_depth_mm +
                                          column_at(detector_x_mm).mean_depth_mm);

  // Left/right visit symmetry about the midpoint, over the optode span.
  double left = 0.0;
  double right = 0.0;
  for (const DepthProfilePoint& point : metrics.profile) {
    if (point.x_mm < 0.0 || point.x_mm > detector_x_mm) continue;
    if (point.x_mm < mid_x) {
      left += point.total_visits;
    } else {
      right += point.total_visits;
    }
  }
  const double span_total = left + right;
  metrics.asymmetry =
      span_total > 0.0 ? std::abs(left - right) / span_total : 0.0;
  return metrics;
}

double threshold_grid(mc::VoxelGrid3D& grid, double fraction_of_max) {
  const double cutoff = grid.max_value() * fraction_of_max;
  const double before = grid.total();
  double kept = 0.0;
  for (double& v : grid.mutable_data()) {
    if (v < cutoff) {
      v = 0.0;
    } else {
      kept += v;
    }
  }
  return before > 0.0 ? kept / before : 0.0;
}

std::vector<BeamSpreadPoint> beam_spread_by_depth(
    const mc::VoxelGrid3D& grid) {
  const mc::GridSpec& spec = grid.spec();
  const double dz = (spec.z_max - spec.z_min) / static_cast<double>(spec.nz);

  std::vector<BeamSpreadPoint> series;
  series.reserve(spec.nz);
  for (std::size_t iz = 0; iz < spec.nz; ++iz) {
    BeamSpreadPoint point;
    point.z_mm = spec.z_min + (static_cast<double>(iz) + 0.5) * dz;
    double sum_w = 0.0;
    double sum_wr2 = 0.0;
    for (std::size_t iy = 0; iy < spec.ny; ++iy) {
      for (std::size_t ix = 0; ix < spec.nx; ++ix) {
        const double w = grid.at(ix, iy, iz);
        if (w <= 0.0) continue;
        const std::size_t flat = (iz * spec.ny + iy) * spec.nx + ix;
        const util::Vec3 c = grid.voxel_center(flat);
        sum_w += w;
        sum_wr2 += w * (c.x * c.x + c.y * c.y);
      }
    }
    point.total_weight = sum_w;
    point.rms_radius_mm = sum_w > 0.0 ? std::sqrt(sum_wr2 / sum_w) : 0.0;
    series.push_back(point);
  }
  return series;
}

}  // namespace phodis::analysis
