#include "analysis/diffusion.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace phodis::analysis {

namespace {

/// Groenhuis' internal-reflection parameter A(n_rel) for the extrapolated
/// boundary condition (polynomial fit, valid for 1 <= n_rel <= 1.6).
double internal_reflection_parameter(double n_rel) {
  if (n_rel == 1.0) return 1.0;
  const double r0 = -1.440 / (n_rel * n_rel) + 0.710 / n_rel + 0.668 +
                    0.0636 * n_rel;
  return (1.0 + r0) / (1.0 - r0);
}

}  // namespace

double diffusion_coefficient(const mc::OpticalProperties& props) {
  const double denom = 3.0 * (props.mua + props.mus_reduced());
  if (!(denom > 0.0)) {
    throw std::invalid_argument("diffusion_coefficient: non-interacting medium");
  }
  return 1.0 / denom;
}

double effective_attenuation(const mc::OpticalProperties& props) {
  return std::sqrt(props.mua / diffusion_coefficient(props));
}

double infinite_medium_fluence(const mc::OpticalProperties& props, double r) {
  if (!(r > 0.0)) {
    throw std::invalid_argument("infinite_medium_fluence: r must be > 0");
  }
  const double d = diffusion_coefficient(props);
  const double mueff = effective_attenuation(props);
  return std::exp(-mueff * r) / (4.0 * std::numbers::pi * d * r);
}

double semi_infinite_reflectance(const mc::OpticalProperties& props,
                                 double rho_mm, double n_relative) {
  if (!(rho_mm > 0.0)) {
    throw std::invalid_argument("semi_infinite_reflectance: rho must be > 0");
  }
  const double mus_p = props.mus_reduced();
  const double mut_p = props.mua + mus_p;
  const double z0 = 1.0 / mut_p;                      // source depth
  const double d = diffusion_coefficient(props);
  const double a_param = internal_reflection_parameter(n_relative);
  const double zb = 2.0 * a_param * d;                // extrapolated boundary
  const double mueff = effective_attenuation(props);

  const double r1 = std::hypot(rho_mm, z0);
  const double z_img = z0 + 2.0 * zb;
  const double r2 = std::hypot(rho_mm, z_img);

  // Farrell et al. (1992) eq. (14): flux reaching the surface from the
  // positive source and its image.
  const double term1 =
      z0 * (mueff + 1.0 / r1) * std::exp(-mueff * r1) / (r1 * r1);
  const double term2 =
      z_img * (mueff + 1.0 / r2) * std::exp(-mueff * r2) / (r2 * r2);
  return (term1 + term2) / (4.0 * std::numbers::pi);
}

double mean_pathlength_semi_infinite(const mc::OpticalProperties& props,
                                     double rho_mm) {
  if (!(rho_mm > 0.0)) {
    throw std::invalid_argument("mean_pathlength: rho must be > 0");
  }
  // d ln R / d µa of the single-dipole reflectance, evaluated analytically
  // in the large-ρ regime: <L> = (ρ² µeff / (2 µa)) / (ρ µeff + 1) · µeff.
  // Equivalent to the standard DPF expression
  //   DPF = (1/2) sqrt(3 µs'/µa) · ρµeff/(ρµeff + 1).
  const double mueff = effective_attenuation(props);
  const double dpf = 0.5 * std::sqrt(3.0 * props.mus_reduced() / props.mua) *
                     (mueff * rho_mm) / (mueff * rho_mm + 1.0);
  return dpf * rho_mm;
}

double differential_pathlength_factor(const mc::OpticalProperties& props,
                                      double rho_mm) {
  return mean_pathlength_semi_infinite(props, rho_mm) / rho_mm;
}

double penetration_depth(const mc::OpticalProperties& props) {
  return 1.0 / effective_attenuation(props);
}

}  // namespace phodis::analysis
