#include "analysis/render.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/csv.hpp"

namespace phodis::analysis {

namespace {

/// Extract the y-slice nearest `y_mm`, downsampled (by max-pooling) to at
/// most (max_cols x max_rows) cells. Returns cells[row][col] with row = z.
std::vector<std::vector<double>> slice_cells(const mc::VoxelGrid3D& grid,
                                             double y_mm,
                                             std::size_t max_cols,
                                             std::size_t max_rows) {
  const mc::GridSpec& spec = grid.spec();
  const double dy = (spec.y_max - spec.y_min) / static_cast<double>(spec.ny);
  std::size_t iy = 0;
  double best = std::abs(spec.y_min + 0.5 * dy - y_mm);
  for (std::size_t j = 1; j < spec.ny; ++j) {
    const double yc = spec.y_min + (static_cast<double>(j) + 0.5) * dy;
    if (std::abs(yc - y_mm) < best) {
      best = std::abs(yc - y_mm);
      iy = j;
    }
  }

  const std::size_t cols = std::min(max_cols, spec.nx);
  const std::size_t rows = std::min(max_rows, spec.nz);
  std::vector<std::vector<double>> cells(rows,
                                         std::vector<double>(cols, 0.0));
  for (std::size_t iz = 0; iz < spec.nz; ++iz) {
    const std::size_t r = iz * rows / spec.nz;
    for (std::size_t ix = 0; ix < spec.nx; ++ix) {
      const std::size_t c = ix * cols / spec.nx;
      cells[r][c] = std::max(cells[r][c], grid.at(ix, iy, iz));
    }
  }
  return cells;
}

double scaled_intensity(double value, double max_value, bool log_scale,
                        double floor_fraction) {
  if (value <= max_value * floor_fraction || max_value <= 0.0) return 0.0;
  if (!log_scale) return value / max_value;
  const double lo = std::log10(std::max(floor_fraction, 1e-300));
  const double t = (std::log10(value / max_value) - lo) / (0.0 - lo);
  return std::clamp(t, 0.0, 1.0);
}

}  // namespace

std::string render_ascii_slice(const mc::VoxelGrid3D& grid,
                               const RenderOptions& options) {
  static constexpr char kRamp[] = " .:-=+*#%@";
  constexpr std::size_t kRampSize = sizeof(kRamp) - 2;  // last index

  const auto cells =
      slice_cells(grid, options.y_mm, options.max_cols, options.max_rows);
  double max_value = 0.0;
  for (const auto& row : cells) {
    for (double v : row) max_value = std::max(max_value, v);
  }

  std::ostringstream out;
  for (const auto& row : cells) {
    for (double v : row) {
      const double t = scaled_intensity(v, max_value, options.log_scale,
                                        options.floor_fraction);
      out << kRamp[static_cast<std::size_t>(t * kRampSize)];
    }
    out << '\n';
  }
  return out.str();
}

void write_pgm_slice(const mc::VoxelGrid3D& grid, const std::string& path,
                     const RenderOptions& options) {
  const auto cells =
      slice_cells(grid, options.y_mm, options.max_cols, options.max_rows);
  double max_value = 0.0;
  for (const auto& row : cells) {
    for (double v : row) max_value = std::max(max_value, v);
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pgm_slice: cannot open " + path);
  out << "P5\n" << cells[0].size() << ' ' << cells.size() << "\n255\n";
  for (const auto& row : cells) {
    for (double v : row) {
      const double t = scaled_intensity(v, max_value, options.log_scale,
                                        options.floor_fraction);
      out.put(static_cast<char>(static_cast<unsigned char>(t * 255.0)));
    }
  }
}

void write_csv_slice(const mc::VoxelGrid3D& grid, const std::string& path,
                     double y_mm) {
  const mc::GridSpec& spec = grid.spec();
  const double dy = (spec.y_max - spec.y_min) / static_cast<double>(spec.ny);
  std::size_t iy = 0;
  double best = std::abs(spec.y_min + 0.5 * dy - y_mm);
  for (std::size_t j = 1; j < spec.ny; ++j) {
    const double yc = spec.y_min + (static_cast<double>(j) + 0.5) * dy;
    if (std::abs(yc - y_mm) < best) {
      best = std::abs(yc - y_mm);
      iy = j;
    }
  }

  util::CsvWriter csv(path);
  csv.header({"x_mm", "z_mm", "value"});
  const double dx = (spec.x_max - spec.x_min) / static_cast<double>(spec.nx);
  const double dz = (spec.z_max - spec.z_min) / static_cast<double>(spec.nz);
  for (std::size_t iz = 0; iz < spec.nz; ++iz) {
    for (std::size_t ix = 0; ix < spec.nx; ++ix) {
      csv.row({spec.x_min + (static_cast<double>(ix) + 0.5) * dx,
               spec.z_min + (static_cast<double>(iz) + 0.5) * dz,
               grid.at(ix, iy, iz)});
    }
  }
}

}  // namespace phodis::analysis
