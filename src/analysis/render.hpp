// Rendering of scoring grids: ASCII art for terminal output (the benches
// print Fig. 3/Fig. 4 as character maps), PGM images, and CSV slices for
// external plotting.
#pragma once

#include <string>

#include "mc/grid.hpp"

namespace phodis::analysis {

/// Options for slice rendering. Slices are taken through the y = `y_mm`
/// plane (the source-detector plane), x horizontal, z (depth) downward.
struct RenderOptions {
  double y_mm = 0.0;
  bool log_scale = true;       ///< map values through log10 before scaling
  double floor_fraction = 1e-4;  ///< values below max*floor render as blank
  std::size_t max_cols = 100;  ///< downsample wide grids to fit a terminal
  std::size_t max_rows = 50;
};

/// Render the y-slice as ASCII art using a density ramp " .:-=+*#%@".
std::string render_ascii_slice(const mc::VoxelGrid3D& grid,
                               const RenderOptions& options = {});

/// Write the y-slice as an 8-bit binary PGM image file.
void write_pgm_slice(const mc::VoxelGrid3D& grid, const std::string& path,
                     const RenderOptions& options = {});

/// Write the y-slice as CSV (header x_mm,z_mm,value; one row per voxel).
void write_csv_slice(const mc::VoxelGrid3D& grid, const std::string& path,
                     double y_mm = 0.0);

}  // namespace phodis::analysis
