// exec::ThreadPool — the reusable intra-process execution layer.
//
// The cluster runtime (src/dist/) parallelises *across* tasks; this pool
// parallelises *inside* one, so a 16-core worker is not 15/16 idle while
// it walks photons (the paper's whole point is extracting parallel
// speedup from the Fig. 1 kernel). It is deliberately a small, generic
// subsystem — fixed worker threads, a shared FIFO work queue, blocking
// batch submission with exception propagation — kept separate from both
// the physics kernel and the transport, in the style of the exafmm
// task-pool layers: kernels submit work, they do not own threads.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/stopwatch.hpp"

namespace phodis::exec {

/// Fixed-size pool of worker threads draining one FIFO job queue.
///
/// Work is submitted in blocking batches: `run` (a vector of jobs) and
/// `parallel_for` (an index range in chunks). A batch call returns when
/// every job of *that batch* has finished, so several threads may submit
/// batches to one shared pool concurrently — each caller waits only on
/// its own work. Exceptions thrown by jobs are captured and the one from
/// the lowest job index is rethrown to the submitter (deterministic no
/// matter which thread ran the job); the pool itself stays usable.
///
/// Jobs must not submit to the pool they run on (the submitter blocks,
/// so nested submission can deadlock once all workers are blocked).
class ThreadPool {
 public:
  /// Spawns exactly `threads` workers; `threads` must be >= 1 (callers
  /// wanting "one per core" pass default_thread_count()).
  explicit ThreadPool(std::size_t threads);

  /// Joins the workers. Must not be called while a batch is in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// std::thread::hardware_concurrency(), floored at 1.
  static std::size_t default_thread_count() noexcept;

  /// Execute every job on the pool and block until all are done. An
  /// empty batch returns immediately without touching the queue. If any
  /// job threw, the exception of the lowest-indexed throwing job is
  /// rethrown here after the whole batch has drained.
  void run(std::vector<std::function<void()>> jobs);

  /// Chunked parallel loop over [0, count): `body(begin, end)` is called
  /// on half-open sub-ranges of at most `grain` indices (grain 0 picks
  /// roughly 4 chunks per thread). Blocks like run(); count 0 is a no-op.
  void parallel_for(std::size_t count, std::size_t grain,
                    const std::function<void(std::size_t begin,
                                             std::size_t end)>& body);

 private:
  /// Completion state of one run() call, owned by the submitter's stack.
  struct Batch {
    std::vector<std::function<void()>> jobs;
    std::vector<std::exception_ptr> errors;  ///< one slot per job
    std::size_t next = 0;                    ///< next job index to hand out
    std::size_t done = 0;
    std::condition_variable finished;
    double submit_s = 0.0;  ///< epoch_ reading at submission (wait latency)
  };

  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<Batch*> queue_;  ///< batches with jobs still to hand out
  bool stop_ = false;
  std::size_t queued_jobs_ = 0;  ///< jobs not yet handed out (guarded by mutex_)

  // Observability: latency measured against one pool-local epoch clock
  // (util::Stopwatch is the sanctioned time source), handles resolved once
  // at construction so the per-job path is atomics only. Must be
  // initialised before workers_ spawns threads that use them.
  util::Stopwatch epoch_;
  obs::Counter& jobs_total_;
  obs::Counter& batches_total_;
  obs::Gauge& queue_depth_;
  obs::Histogram& wait_seconds_;
  obs::Histogram& run_seconds_;

  std::vector<std::thread> workers_;
};

}  // namespace phodis::exec
