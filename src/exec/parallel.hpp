// exec::ParallelKernelRunner — multi-threaded execution of one task's
// photon budget with a deterministic sub-stream reduction.
//
// A task's photons are split into fixed-size *shards*. Shard s runs on
// the task's xoshiro256++ stream advanced by s jump()s (each jump is
// 2^128 steps, so shards own non-overlapping sub-streams of the same
// stream the serial path seeds), into its own private SimulationTally.
// The shard tallies are then merged in shard order.
//
// The determinism contract: the shard plan and each shard's sub-stream
// depend only on (photon count, shard size, task seed) — never on the
// thread count — and the reduction order is fixed. Running the plan on
// 1 thread therefore produces bitwise-identical results to running it
// on 8, and `MonteCarloApp::run_serial` *is* the 1-thread execution of
// this same plan, so serial and parallel runs agree to the last bit.
// The shard size is part of that contract, exactly like the task chunk
// size: compare runs only at equal `shard_photons`.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/threadpool.hpp"
#include "mc/kernel.hpp"
#include "mc/tally.hpp"
#include "util/rng.hpp"

namespace phodis::exec {

/// Photons per shard shared by every execution path (serial, in-process
/// pool, socket workers). Changing it changes the sub-stream layout and
/// hence the bitwise result, so it is one repo-wide constant.
inline constexpr std::uint64_t kDefaultShardPhotons = 4096;

/// Split `photons` into full shards of `shard_photons` plus the
/// remainder as the (smaller) last shard. 0 photons yields an empty
/// plan; `shard_photons` must be > 0.
std::vector<std::uint64_t> shard_plan(std::uint64_t photons,
                                      std::uint64_t shard_photons);

/// The first `count` sub-streams of task (base_seed, task_id): entry s
/// is the task stream advanced by s jumps.
std::vector<util::Xoshiro256pp> shard_streams(std::uint64_t base_seed,
                                              std::uint64_t task_id,
                                              std::size_t count);

/// Runs one task's photon budget over an optional ThreadPool. Borrows
/// the kernel (and pool, when given); both must outlive the runner.
/// run() may be called concurrently from several threads sharing one
/// pool — each call's shard state is private to the call.
class ParallelKernelRunner {
 public:
  /// `pool == nullptr` executes the shards on the calling thread — the
  /// serial path, bitwise-identical to any pooled execution.
  explicit ParallelKernelRunner(
      const mc::Kernel& kernel, ThreadPool* pool = nullptr,
      std::uint64_t shard_photons = kDefaultShardPhotons);

  /// Simulate `photons` packets of the stream (base_seed, task_id),
  /// sharded as above, and return the in-order-merged task tally.
  mc::SimulationTally run(std::uint64_t photons, std::uint64_t base_seed,
                          std::uint64_t task_id) const;

  std::uint64_t shard_photons() const noexcept { return shard_photons_; }

 private:
  const mc::Kernel* kernel_;
  ThreadPool* pool_;
  std::uint64_t shard_photons_;
};

}  // namespace phodis::exec
