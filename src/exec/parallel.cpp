#include "exec/parallel.hpp"

#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace phodis::exec {

std::vector<std::uint64_t> shard_plan(std::uint64_t photons,
                                      std::uint64_t shard_photons) {
  if (shard_photons == 0) {
    throw std::invalid_argument("shard_plan: shard_photons must be > 0");
  }
  std::vector<std::uint64_t> shards(photons / shard_photons, shard_photons);
  if (const std::uint64_t remainder = photons % shard_photons;
      remainder != 0) {
    shards.push_back(remainder);
  }
  return shards;
}

std::vector<util::Xoshiro256pp> shard_streams(std::uint64_t base_seed,
                                              std::uint64_t task_id,
                                              std::size_t count) {
  std::vector<util::Xoshiro256pp> streams;
  streams.reserve(count);
  util::Xoshiro256pp stream = util::Xoshiro256pp::for_task(base_seed, task_id);
  for (std::size_t s = 0; s < count; ++s) {
    streams.push_back(stream);
    stream.jump();
  }
  return streams;
}

ParallelKernelRunner::ParallelKernelRunner(const mc::Kernel& kernel,
                                           ThreadPool* pool,
                                           std::uint64_t shard_photons)
    : kernel_(&kernel), pool_(pool), shard_photons_(shard_photons) {
  if (shard_photons_ == 0) {
    throw std::invalid_argument(
        "ParallelKernelRunner: shard_photons must be > 0");
  }
}

mc::SimulationTally ParallelKernelRunner::run(std::uint64_t photons,
                                              std::uint64_t base_seed,
                                              std::uint64_t task_id) const {
  const std::vector<std::uint64_t> shards =
      shard_plan(photons, shard_photons_);
  const std::vector<util::Xoshiro256pp> streams =
      shard_streams(base_seed, task_id, shards.size());
  std::vector<std::optional<mc::SimulationTally>> tallies(shards.size());

  // Identical per-shard arithmetic on either path: each shard fills a
  // private tally, and only the fold below combines them. The RNG and
  // tally are job-local copies: per-photon writes to the shared
  // `streams`/`tallies` vectors would false-share cache lines between
  // adjacent shards and erode the very speedup this subsystem exists
  // for (copying is bitwise-neutral — the post-run stream state is
  // never read). The kernel's feature dispatch is resolved once here, so
  // every shard enters the specialized photon loop directly.
  const mc::Kernel::CompiledRun compiled = kernel_->compiled_run();
  obs::Counter& shards_total = obs::registry().counter("exec_shards_total");
  obs::Counter& shard_photons =
      obs::registry().counter("exec_shard_photons_total");
  const auto run_shard = [&](std::size_t s) {
    // The span and counters are out-of-band: the shard's RNG/tally work
    // is identical whether tracing is on or off.
    obs::ScopedSpan span("shard", "exec");
    span.arg("task_id", std::to_string(task_id));
    span.arg("shard", std::to_string(s));
    span.arg("photons", std::to_string(shards[s]));
    util::Xoshiro256pp rng = streams[s];
    mc::SimulationTally tally = kernel_->make_tally();
    compiled(shards[s], rng, tally);
    tallies[s].emplace(std::move(tally));
    shards_total.inc();
    shard_photons.inc(shards[s]);
  };
  if (pool_ != nullptr && pool_->thread_count() > 1 && shards.size() > 1) {
    std::vector<std::function<void()>> jobs;
    jobs.reserve(shards.size());
    for (std::size_t s = 0; s < shards.size(); ++s) {
      jobs.push_back([&run_shard, s] { run_shard(s); });
    }
    pool_->run(std::move(jobs));
  } else {
    for (std::size_t s = 0; s < shards.size(); ++s) {
      run_shard(s);
    }
  }

  // The deterministic reduction: always in shard order, so the result
  // does not depend on which thread finished first.
  obs::ScopedSpan merge_span("shard_merge", "exec");
  merge_span.arg("task_id", std::to_string(task_id));
  merge_span.arg("shards", std::to_string(shards.size()));
  mc::SimulationTally merged = kernel_->make_tally();
  for (const std::optional<mc::SimulationTally>& tally : tallies) {
    merged.merge(*tally);
  }
  return merged;
}

}  // namespace phodis::exec
