#include "exec/threadpool.hpp"

#include <algorithm>
#include <stdexcept>

namespace phodis::exec {

ThreadPool::ThreadPool(std::size_t threads)
    : jobs_total_(obs::registry().counter("exec_pool_jobs_total")),
      batches_total_(obs::registry().counter("exec_pool_batches_total")),
      queue_depth_(obs::registry().gauge("exec_pool_queue_depth")),
      wait_seconds_(obs::registry().histogram(
          "exec_pool_job_wait_seconds", obs::Histogram::latency_bounds_s())),
      run_seconds_(obs::registry().histogram(
          "exec_pool_job_run_seconds", obs::Histogram::latency_bounds_s())) {
  if (threads == 0) {
    throw std::invalid_argument("ThreadPool: need >= 1 thread");
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::default_thread_count() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;

    Batch* batch = queue_.front();
    const std::size_t index = batch->next++;
    if (batch->next == batch->jobs.size()) queue_.pop_front();
    --queued_jobs_;
    queue_depth_.set(static_cast<double>(queued_jobs_));

    lock.unlock();
    const double picked_s = epoch_.seconds();
    wait_seconds_.observe(picked_s - batch->submit_s);
    std::exception_ptr error;
    try {
      batch->jobs[index]();
    } catch (...) {
      error = std::current_exception();
    }
    run_seconds_.observe(epoch_.seconds() - picked_s);
    jobs_total_.inc();
    lock.lock();

    // `batch` outlives this access: the submitter's stack frame holds it
    // and only returns once `done` reaches the job count — which cannot
    // happen before this increment.
    if (error) batch->errors[index] = error;
    if (++batch->done == batch->jobs.size()) batch->finished.notify_all();
  }
}

void ThreadPool::run(std::vector<std::function<void()>> jobs) {
  if (jobs.empty()) return;

  Batch batch;
  batch.jobs = std::move(jobs);
  batch.errors.resize(batch.jobs.size());
  batch.submit_s = epoch_.seconds();
  batches_total_.inc();

  std::unique_lock<std::mutex> lock(mutex_);
  queue_.push_back(&batch);
  queued_jobs_ += batch.jobs.size();
  queue_depth_.set(static_cast<double>(queued_jobs_));
  if (batch.jobs.size() >= workers_.size()) {
    wake_.notify_all();
  } else {
    for (std::size_t i = 0; i < batch.jobs.size(); ++i) wake_.notify_one();
  }
  batch.finished.wait(lock, [&] { return batch.done == batch.jobs.size(); });
  lock.unlock();

  // Rethrow the lowest-indexed failure so the surfaced error does not
  // depend on which worker thread happened to run which job.
  for (const std::exception_ptr& error : batch.errors) {
    if (error) std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  if (grain == 0) {
    grain = std::max<std::size_t>(1, count / (4 * workers_.size()));
  }

  std::vector<std::function<void()>> jobs;
  jobs.reserve((count + grain - 1) / grain);
  for (std::size_t begin = 0; begin < count; begin += grain) {
    const std::size_t end = std::min(count, begin + grain);
    jobs.push_back([&body, begin, end] { body(begin, end); });
  }
  run(std::move(jobs));
}

}  // namespace phodis::exec
