// 3-D vector used for photon positions and direction cosines.
// Directions are kept unit-length by the kernel; helpers here assert nothing
// but provide normalize() for callers that must re-establish the invariant
// after accumulated floating-point drift.
#pragma once

#include <cmath>

namespace phodis::util {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(dot(*this)); }
  constexpr double norm2() const { return dot(*this); }

  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? *this / n : Vec3{0.0, 0.0, 1.0};
  }

  constexpr bool operator==(const Vec3&) const = default;
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

}  // namespace phodis::util
