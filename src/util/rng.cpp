#include "util/rng.hpp"

#include <cmath>

namespace phodis::util {

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  // Expand `a` through one SplitMix64 round, fold in `b` via an odd
  // multiplicative spread, then finalise with two more rounds. Structured
  // low-entropy input pairs (small a, small b) stay collision-free.
  SplitMix64 first(a);
  const std::uint64_t expanded = first.next();
  SplitMix64 second(expanded ^ (b * 0x9E3779B97F4A7C15ULL));
  second.next();
  return second.next();
}

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Xoshiro256pp Xoshiro256pp::for_task(std::uint64_t base_seed,
                                    std::uint64_t task_id) noexcept {
  return Xoshiro256pp(mix64(base_seed, task_id));
}

void Xoshiro256pp::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> t{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        t[0] ^= s_[0];
        t[1] ^= s_[1];
        t[2] ^= s_[2];
        t[3] ^= s_[3];
      }
      next();
    }
  }
  s_ = t;
}

void Xoshiro256pp::long_jump() noexcept {
  // Blackman & Vigna's published LONG_JUMP polynomial (2^192 steps).
  static constexpr std::uint64_t kLongJump[] = {
      0x76E15D3EFEFDCBBFULL, 0xC5004E441C522FB3ULL, 0x77710069854EE241ULL,
      0x39109BB02ACBE635ULL};
  std::array<std::uint64_t, 4> t{};
  for (std::uint64_t word : kLongJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        t[0] ^= s_[0];
        t[1] ^= s_[1];
        t[2] ^= s_[2];
        t[3] ^= s_[3];
      }
      next();
    }
  }
  s_ = t;
}

double Xoshiro256pp::normal() noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

}  // namespace phodis::util
