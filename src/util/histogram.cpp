#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace phodis::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), inv_width_(0.0), counts_(bins, 0.0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  inv_width_ = static_cast<double>(bins) / (hi - lo);
}

void Histogram::add(double value, double weight) noexcept {
  if (value < lo_) {
    underflow_ += weight;
    return;
  }
  if (value >= hi_) {
    overflow_ += weight;
    return;
  }
  auto idx = static_cast<std::size_t>((value - lo_) * inv_width_);
  idx = std::min(idx, counts_.size() - 1);  // guard fp rounding at hi edge
  counts_[idx] += weight;
  sum_w_ += weight;
  sum_wx_ += weight * value;
  sum_wxx_ += weight * value * value;
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
      other.hi_ != hi_) {
    throw std::invalid_argument("Histogram::merge: binning mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  sum_w_ += other.sum_w_;
  sum_wx_ += other.sum_wx_;
  sum_wxx_ += other.sum_wxx_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + static_cast<double>(i) / inv_width_;
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + static_cast<double>(i + 1) / inv_width_;
}

double Histogram::bin_center(std::size_t i) const noexcept {
  return 0.5 * (bin_lo(i) + bin_hi(i));
}

double Histogram::total() const noexcept {
  return total_in_range() + underflow_ + overflow_;
}

double Histogram::total_in_range() const noexcept { return sum_w_; }

double Histogram::mean() const noexcept {
  return sum_w_ > 0.0 ? sum_wx_ / sum_w_ : 0.0;
}

double Histogram::stddev() const noexcept {
  if (sum_w_ <= 0.0) return 0.0;
  const double m = sum_wx_ / sum_w_;
  const double var = std::max(0.0, sum_wxx_ / sum_w_ - m * m);
  return std::sqrt(var);
}

double Histogram::quantile(double q) const noexcept {
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * sum_w_;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (cumulative + counts_[i] >= target && counts_[i] > 0.0) {
      const double frac = (target - cumulative) / counts_[i];
      return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
    }
    cumulative += counts_[i];
  }
  return hi_;
}

void Histogram::serialize(ByteWriter& writer) const {
  writer.f64(lo_);
  writer.f64(hi_);
  writer.f64_vec(counts_);
  writer.f64(sum_w_);
  writer.f64(sum_wx_);
  writer.f64(sum_wxx_);
  writer.f64(underflow_);
  writer.f64(overflow_);
}

Histogram Histogram::deserialize(ByteReader& reader) {
  const double lo = reader.f64();
  const double hi = reader.f64();
  std::vector<double> counts = reader.f64_vec();
  if (counts.empty()) throw std::invalid_argument("Histogram: empty payload");
  Histogram h(lo, hi, counts.size());
  h.counts_ = std::move(counts);
  h.sum_w_ = reader.f64();
  h.sum_wx_ = reader.f64();
  h.sum_wxx_ = reader.f64();
  h.underflow_ = reader.f64();
  h.overflow_ = reader.f64();
  return h;
}

double Histogram::mode() const noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < counts_.size(); ++i) {
    if (counts_[i] > counts_[best]) best = i;
  }
  return bin_center(best);
}

}  // namespace phodis::util
