// Portable little-endian byte serialisation.
//
// The paper's platform ships task specs and partial results between the
// DataManager and clients as serialised Java objects; our reproduction
// moves explicit byte buffers through the transport so the full
// encode → transfer → decode path is exercised even in-process.
// ByteReader is bounds-checked and throws on malformed input (a worker must
// never crash the server).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace phodis::util {

/// Explicit little-endian u32 store/load for fixed-size wire fields (the
/// frame length prefix). Shift-based, so the encoded bytes are the wire
/// format by construction on any host — the one sanctioned way to put a
/// multi-byte scalar on the wire outside ByteWriter/ByteReader.
inline void store_u32_le(std::uint8_t out[4], std::uint32_t v) noexcept {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

inline std::uint32_t load_u32_le(const std::uint8_t in[4]) noexcept {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { append_raw(&v, sizeof v); }
  void u64(std::uint64_t v) { append_raw(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    static_assert(sizeof(double) == 8);
    append_raw(&v, sizeof v);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void f64_vec(const std::vector<double>& v) {
    u64(v.size());
    for (double x : v) f64(x);
  }

  /// Length-prefixed opaque byte blob.
  void blob(const std::vector<std::uint8_t>& v) {
    u64(v.size());
    buf_.insert(buf_.end(), v.begin(), v.end());
  }

  /// Pre-size the buffer (e.g. before serialising a large tally).
  void reserve(std::size_t capacity) { buf_.reserve(capacity); }

  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  void append_raw(const void* src, std::size_t len) {
    static_assert(std::endian::native == std::endian::little,
                  "serialisation assumes little-endian host");
    const auto* p = static_cast<const std::uint8_t*>(src);
    buf_.insert(buf_.end(), p, p + len);
  }

  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t u8() { return read_raw<std::uint8_t>(); }
  std::uint32_t u32() { return read_raw<std::uint32_t>(); }
  std::uint64_t u64() { return read_raw<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return read_raw<double>(); }
  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint64_t len = u64();
    require(len);
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  std::vector<double> f64_vec() {
    const std::uint64_t len = u64();
    // Divide instead of multiplying: a hostile len near 2^64 would wrap
    // len * sizeof(double) around to a tiny number and pass the bounds
    // check, then attempt a giant allocation below.
    if (len > remaining() / sizeof(double)) {
      throw std::out_of_range("ByteReader: truncated buffer");
    }
    std::vector<double> v(static_cast<std::size_t>(len));
    if (len > 0) {  // empty vector: v.data() may be null, and memcpy's
                    // pointer arguments are declared nonnull even for n=0
      std::memcpy(v.data(), buf_.data() + pos_,
                  static_cast<std::size_t>(len) * sizeof(double));
    }
    pos_ += static_cast<std::size_t>(len) * sizeof(double);
    return v;
  }

  std::vector<std::uint8_t> blob() {
    const std::uint64_t len = u64();
    require(len);
    std::vector<std::uint8_t> v(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                buf_.begin() + static_cast<std::ptrdiff_t>(
                                                   pos_ + len));
    pos_ += static_cast<std::size_t>(len);
    return v;
  }

  bool exhausted() const noexcept { return pos_ == buf_.size(); }
  std::size_t remaining() const noexcept { return buf_.size() - pos_; }

 private:
  template <typename T>
  T read_raw() {
    require(sizeof(T));
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void require(std::uint64_t len) const {
    // Compare against the remaining byte count (no pos_ + len, which can
    // wrap around for hostile length prefixes).
    if (len > buf_.size() - pos_) {
      throw std::out_of_range("ByteReader: truncated buffer");
    }
  }

  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace phodis::util
