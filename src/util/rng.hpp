// Deterministic pseudo-random number generation for the Monte Carlo kernel
// and the distributed platform.
//
// Requirements that shaped this module (DESIGN.md §4.1):
//  * Every distributed task must own an independent, reproducible stream
//    derived from (base seed, task id), so that the merged simulation result
//    is identical no matter how tasks are scheduled across workers.
//  * The generator must be cheap (the kernel draws ~10 numbers per photon
//    interaction) and of high statistical quality (billions of draws).
//
// We implement SplitMix64 (seed expansion / stream derivation) and
// xoshiro256++ (bulk generation), both public-domain algorithms by
// Blackman & Vigna, re-derived here from their published constants.
#pragma once

#include <array>
#include <cstdint>

namespace phodis::util {

/// SplitMix64: a tiny 64-bit generator whose main role here is seed
/// expansion — turning one user seed into the four xoshiro words — and
/// hashing (seed, task id) pairs into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value; advances the state by the golden-ratio increment.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Mix two 64-bit values into one, used to derive per-task seeds:
/// seed_task = mix64(base_seed, task_id). Collision-resistant enough for
/// fleet-scale task counts (birthday bound ~2^32 tasks).
std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept;

/// xoshiro256++ 1.0. State must never be all-zero; seeding via SplitMix64
/// guarantees that with probability 1 - 2^-256.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 expansion as recommended by the authors.
  explicit Xoshiro256pp(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept;

  /// Construct the independent stream for a given task of a given run.
  static Xoshiro256pp for_task(std::uint64_t base_seed,
                               std::uint64_t task_id) noexcept;

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface, so <random> distributions accept it.
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Jump ahead 2^128 steps: partitions the period into non-overlapping
  /// sub-streams (an alternative to per-task SplitMix seeding; used by the
  /// thread-pool fallback path).
  void jump() noexcept;

  /// Jump ahead 2^192 steps. Orthogonal to jump(): shard s of a task is
  /// the task stream + s jump()s, and lane k *within* a shard is the
  /// shard stream + k long_jump()s — so lane k of shard s sits at offset
  /// s·2^128 + k·2^192, which no other (shard, lane) pair of the same
  /// task reaches while s stays below 2^64. Deriving lanes with jump()
  /// instead would alias lane k of shard s with the base of shard s+k.
  void long_jump() noexcept;

  /// Uniform double in [0, 1): 53 high bits scaled by 2^-53.
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]: never returns 0, safe as log() argument
  /// when sampling exponential step lengths.
  double uniform_open0() noexcept { return 1.0 - uniform(); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal via Marsaglia polar method (no trig calls).
  double normal() noexcept;

  std::array<std::uint64_t, 4> state() const noexcept { return s_; }

  /// Rebuild a generator from a previously captured state() — the packet
  /// kernel stores lane streams as flat SoA words and materialises a
  /// generator only for launch sampling. The Marsaglia spare-normal cache
  /// is NOT part of the state and starts empty.
  static Xoshiro256pp from_state(
      const std::array<std::uint64_t, 4>& state) noexcept {
    Xoshiro256pp rng;
    rng.s_ = state;
    return rng;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace phodis::util
