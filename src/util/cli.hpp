// Tiny command-line option parser used by examples and benches.
// Supports `--key value`, `--key=value`, and boolean `--flag` forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace phodis::util {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// Value of --key, or fallback when absent.
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  /// True when --key appears (with no value or any value other than
  /// "false"/"0"/"no").
  bool get_flag(const std::string& key) const;

  bool has(const std::string& key) const;

  /// Non-option arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace phodis::util
