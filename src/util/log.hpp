// Minimal leveled logger. Thread-safe, writes to stderr, level settable
// globally (benches run quiet, examples run chatty).
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace phodis::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Unknown strings map to kInfo, with a once-per-process warning (a typo'd
/// --log-level should not silence itself).
LogLevel parse_log_level(const std::string& name) noexcept;

/// Receives every emitted line (already level-filtered) as (level, message
/// body) — no tag prefix, no trailing newline. Called under the sink
/// mutex, so it need not be thread-safe itself.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Redirect log output to `sink`; an empty sink restores the default
/// stderr writer. Used by tests to capture output.
void set_log_sink(LogSink sink);

namespace detail {
void emit(LogLevel level, const std::string& message);

/// Re-arm the parse_log_level one-shot warning (tests only).
void reset_parse_log_level_warning() noexcept;

/// RAII line builder: collects a message via operator<< and emits it on
/// destruction, holding the sink mutex only for the final write.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace phodis::util
