#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace phodis::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::logic_error("TextTable: row wider than header");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_numeric(const std::vector<double>& cells,
                                int precision) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) text.push_back(format_double(v, precision));
  add_row(std::move(text));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) out << "  ";
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream stream;
  print(stream);
  return stream.str();
}

}  // namespace phodis::util
