// Fixed-bin 1-D histogram with under/overflow tracking. Used for pathlength
// distributions, penetration-depth profiles and RNG uniformity tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace phodis::util {

class Histogram {
 public:
  /// Bins cover [lo, hi) uniformly; values outside land in the
  /// underflow/overflow counters. Requires bins >= 1 and hi > lo.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value, double weight = 1.0) noexcept;

  /// Merge another histogram with identical binning (throws otherwise).
  void merge(const Histogram& other);

  std::size_t bin_count() const noexcept { return counts_.size(); }
  double bin_lo(std::size_t i) const noexcept;
  double bin_hi(std::size_t i) const noexcept;
  double bin_center(std::size_t i) const noexcept;
  double count(std::size_t i) const noexcept { return counts_[i]; }

  double underflow() const noexcept { return underflow_; }
  double overflow() const noexcept { return overflow_; }
  /// Total weight including under/overflow.
  double total() const noexcept;
  /// Total weight inside the binned range.
  double total_in_range() const noexcept;

  /// Weighted mean of in-range samples (bin centers); 0 when empty.
  double mean() const noexcept;
  /// Weighted standard deviation of in-range samples; 0 when empty.
  double stddev() const noexcept;
  /// Value below which `q` of the in-range weight lies (q in [0,1]),
  /// linearly interpolated within the containing bin.
  double quantile(double q) const noexcept;
  /// Center of the fullest bin.
  double mode() const noexcept;

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }

  /// Byte serialisation for shipping partial histograms between workers
  /// and the DataManager.
  void serialize(ByteWriter& writer) const;
  static Histogram deserialize(ByteReader& reader);

 private:
  double lo_;
  double hi_;
  double inv_width_;
  std::vector<double> counts_;
  // First/second weighted moments of the raw in-range samples, so mean and
  // stddev do not suffer bin-quantisation error.
  double sum_w_ = 0.0;
  double sum_wx_ = 0.0;
  double sum_wxx_ = 0.0;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
};

}  // namespace phodis::util
