#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <iostream>

namespace phodis::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_sink_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?    ";
  }
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

LogLevel parse_log_level(const std::string& name) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace detail {

void emit(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::cerr << "[" << level_tag(level) << "] " << message << "\n";
}

}  // namespace detail

}  // namespace phodis::util
