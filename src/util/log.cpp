#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <iostream>

namespace phodis::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_sink_mutex;
LogSink g_sink;  // empty = stderr; guarded by g_sink_mutex
std::atomic<bool> g_warned_unknown_level{false};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?    ";
  }
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

LogLevel parse_log_level(const std::string& name) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  if (!g_warned_unknown_level.exchange(true)) {
    log_warn() << "unknown log level \"" << name
               << "\", defaulting to info";
  }
  return LogLevel::kInfo;
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

namespace detail {

void emit(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::cerr << "[" << level_tag(level) << "] " << message << "\n";
}

void reset_parse_log_level_warning() noexcept {
  g_warned_unknown_level.store(false);
}

}  // namespace detail

}  // namespace phodis::util
