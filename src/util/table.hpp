// Aligned plain-text table printer: the benches render the paper's tables
// and figure series with it so the terminal output mirrors the paper layout.
#pragma once

#include <ostream>

#include "util/csv.hpp"
#include <string>
#include <vector>

namespace phodis::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; short rows are padded with empty cells, long rows throw.
  void add_row(std::vector<std::string> cells);

  /// Convenience: a row of doubles formatted via format_double.
  void add_row_numeric(const std::vector<double>& cells, int precision = 6);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with a header underline and 2-space column gaps.
  void print(std::ostream& out) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace phodis::util
