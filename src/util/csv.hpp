// CSV writer for experiment outputs. Benches emit both a human-readable
// table (util/table.hpp) and machine-readable CSV next to it, so figures can
// be re-plotted without re-running the simulation.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace phodis::util {

class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Write a header row. Must be called before any data row (enforced).
  void header(std::initializer_list<std::string> columns);
  void header(const std::vector<std::string>& columns);

  /// Append one data row; column count must match the header.
  void row(const std::vector<std::string>& cells);
  void row(std::initializer_list<double> cells);

  /// Number of data rows written so far.
  std::size_t rows_written() const noexcept { return rows_; }

  const std::string& path() const noexcept { return path_; }

  /// Quote a cell if it contains separators/quotes (RFC-4180 style).
  static std::string escape(const std::string& cell);

 private:
  void write_cells(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

/// Format a double compactly for CSV/tables (up to 6 significant digits,
/// no trailing zeros).
std::string format_double(double value, int precision = 6);

/// Directory bench/example artefacts (CSVs) are written into:
/// $PHODIS_OUT_DIR when set, else the build tree's `bench_out/` (baked
/// in at configure time), else ".". Keeps generated CSVs out of the
/// source tree no matter where a bench is run from.
std::string default_output_dir();

/// `dir`/`filename`, creating `dir` (and parents) first.
std::string output_file(const std::string& dir, const std::string& filename);

class CliArgs;

/// The one-liner for bench/example mains: resolve the output directory
/// from --out-dir (falling back to default_output_dir()) and join.
std::string output_file(const CliArgs& args, const std::string& filename);

}  // namespace phodis::util
