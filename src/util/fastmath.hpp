// Small math helpers for the Monte Carlo hot path.
#pragma once

#include <cmath>

namespace phodis::util {

/// Cylindrical radius sqrt(x² + y²) without std::hypot's overflow/underflow
/// rescaling.
///
/// Tradeoff, explicitly: std::hypot guarantees no spurious overflow when
/// x² + y² would exceed DBL_MAX (|x|,|y| ≳ 1e154) and no precision loss when
/// both are subnormal, at the cost of a libm call that measures ~7× slower
/// than a plain sqrt on the scoring path (it is called once per interaction
/// when radial tallies are enabled). Detector and tally radii in this code
/// are photon exit/interaction positions in millimetres — O(1)–O(1e3) —
/// nowhere near either hazard, so the naive form is safe here. The result
/// may differ from std::hypot in the last ulp (hypot is correctly rounded,
/// sqrt(x*x + y*y) rounds three times); tests/test_util.cpp bounds the
/// relative error over the physical range. Do not use this for coordinates
/// that can reach ±1e150 or for subnormal-sensitive work.
inline double fast_radius(double x, double y) noexcept {
  return std::sqrt(x * x + y * y);
}

}  // namespace phodis::util
