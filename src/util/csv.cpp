#include "util/csv.hpp"

#include "util/cli.hpp"

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>

namespace phodis::util {

std::string default_output_dir() {
  if (const char* env = std::getenv("PHODIS_OUT_DIR");
      env != nullptr && *env != '\0') {
    return env;
  }
#ifdef PHODIS_DEFAULT_OUT_DIR
  return PHODIS_DEFAULT_OUT_DIR;
#else
  return ".";
#endif
}

std::string output_file(const std::string& dir, const std::string& filename) {
  std::filesystem::create_directories(dir);
  return (std::filesystem::path(dir) / filename).string();
}

std::string output_file(const CliArgs& args, const std::string& filename) {
  return output_file(args.get("out-dir", default_output_dir()), filename);
}

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

void CsvWriter::header(std::initializer_list<std::string> columns) {
  header(std::vector<std::string>(columns));
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  if (header_written_) {
    throw std::logic_error("CsvWriter: header written twice");
  }
  columns_ = columns.size();
  header_written_ = true;
  write_cells(columns);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (!header_written_) {
    throw std::logic_error("CsvWriter: row before header");
  }
  if (cells.size() != columns_) {
    throw std::logic_error("CsvWriter: row width mismatch");
  }
  write_cells(cells);
  ++rows_;
}

void CsvWriter::row(std::initializer_list<double> cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) text.push_back(format_double(v));
  row(text);
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  out_.flush();
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += "\"\"";
    else quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string format_double(double value, int precision) {
  std::ostringstream stream;
  stream.precision(precision);
  stream << value;
  return stream.str();
}

}  // namespace phodis::util
