#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace phodis::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not itself an option; otherwise a
    // bare boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "true";
    }
  }
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key,
                              std::int64_t fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    return fallback;
  }
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    return fallback;
  }
}

bool CliArgs::get_flag(const std::string& key) const {
  auto it = options_.find(key);
  if (it == options_.end()) return false;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

bool CliArgs::has(const std::string& key) const {
  return options_.count(key) != 0;
}

}  // namespace phodis::util
