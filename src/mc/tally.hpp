// The result of a (partial) simulation: weight totals per photon fate,
// per-layer absorption, pathlength/depth histograms, and the optional
// scoring grids. Tallies are the unit the distributed platform moves
// around — a worker returns one per task and the DataManager merges them —
// so SimulationTally is mergeable, byte-serialisable, and keeps an exact
// energy-conservation ledger (see `weight_conservation_error`).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mc/grid.hpp"
#include "mc/radial.hpp"
#include "util/bytes.hpp"
#include "util/histogram.hpp"

namespace phodis::mc {

struct TallyConfig {
  std::size_t layer_count = 1;

  // Detected-photon pathlength histogram (differential pathlengths).
  double pathlength_max_mm = 2000.0;
  std::size_t pathlength_bins = 200;

  // Maximum-depth histogram over all photons (penetration-depth profile).
  double depth_max_mm = 50.0;
  std::size_t depth_bins = 100;

  // Optional grids.
  bool enable_fluence_grid = false;  ///< all-photon absorption density
  GridSpec fluence_spec;
  bool enable_path_grid = false;  ///< detected-photon path visits (banana)
  GridSpec path_spec;

  /// Cylindrical (r,z) tallies: R(rho), T(rho), A(r,z) — converge much
  /// faster than the 3-D grids for rotationally-symmetric sources.
  bool enable_radial = false;
  RadialSpec radial_spec;

  bool operator==(const TallyConfig&) const = default;

  void serialize(util::ByteWriter& writer) const;
  static TallyConfig deserialize(util::ByteReader& reader);
};

class SimulationTally {
 public:
  explicit SimulationTally(const TallyConfig& config);

  // --- accumulation (called by the kernel) ---------------------------------
  void count_launch() noexcept { ++photons_launched_; }
  void add_specular(double w) noexcept { specular_ += w; }
  void add_diffuse_reflectance(double w) noexcept { diffuse_reflectance_ += w; }
  void add_transmittance(double w) noexcept { transmittance_ += w; }
  /// Inline: runs once per interaction on the kernel hot path.
  void add_absorption(std::size_t layer, double w) noexcept {
    if (layer < layer_absorption_.size()) layer_absorption_[layer] += w;
  }
  void add_lost(double w) noexcept { lost_ += w; }
  void add_roulette_gain(double w) noexcept { roulette_gain_ += w; }
  void add_roulette_loss(double w) noexcept { roulette_loss_ += w; }
  void record_detection(double weight, double optical_pathlength_mm,
                        double exit_radius_mm,
                        std::uint32_t scatter_events) noexcept;
  void record_max_depth(double depth_mm, double weight) noexcept;

  VoxelGrid3D* fluence_grid() noexcept;
  VoxelGrid3D* path_grid() noexcept;
  const VoxelGrid3D* fluence_grid() const noexcept;
  const VoxelGrid3D* path_grid() const noexcept;
  RadialTally* radial() noexcept;
  const RadialTally* radial() const noexcept;

  // --- results --------------------------------------------------------------
  std::uint64_t photons_launched() const noexcept { return photons_launched_; }
  std::uint64_t photons_detected() const noexcept { return detected_count_; }

  /// Fractions of launched weight (each in [0,1] once photons were run).
  double specular_reflectance() const noexcept;
  double diffuse_reflectance() const noexcept;
  double transmittance() const noexcept;
  double absorbed_fraction() const noexcept;
  double detected_fraction() const noexcept;
  double lost_fraction() const noexcept;

  double absorbed_weight(std::size_t layer) const;
  const std::vector<double>& layer_absorption() const noexcept {
    return layer_absorption_;
  }

  /// Mean optical pathlength of detected photons [mm] (the differential
  /// pathlength of NIRS); 0 when nothing was detected.
  double mean_detected_pathlength() const noexcept;
  double mean_detected_scatter_events() const noexcept;
  double total_detected_weight() const noexcept { return detected_weight_; }

  const util::Histogram& pathlength_histogram() const noexcept {
    return pathlength_hist_;
  }
  const util::Histogram& depth_histogram() const noexcept {
    return depth_hist_;
  }

  /// |launched + roulette_gain − roulette_loss − (all sinks)|.
  /// Exactly zero up to floating-point rounding: the kernel never creates
  /// or destroys weight outside the terms of this ledger.
  double weight_conservation_error() const noexcept;

  // --- distribution plumbing -------------------------------------------------
  void merge(const SimulationTally& other);
  void serialize(util::ByteWriter& writer) const;
  static SimulationTally deserialize(util::ByteReader& reader);
  /// serialize() into a fresh buffer — the byte string the platform
  /// ships and the bitwise-identity checks compare.
  std::vector<std::uint8_t> to_bytes() const;

  const TallyConfig& config() const noexcept { return config_; }

 private:
  double fraction(double w) const noexcept;

  TallyConfig config_;
  std::uint64_t photons_launched_ = 0;
  std::uint64_t detected_count_ = 0;
  double specular_ = 0.0;
  double diffuse_reflectance_ = 0.0;
  double transmittance_ = 0.0;
  double lost_ = 0.0;
  double detected_weight_ = 0.0;
  double detected_pathlength_weighted_ = 0.0;
  double detected_scatters_weighted_ = 0.0;
  double roulette_gain_ = 0.0;
  double roulette_loss_ = 0.0;
  std::vector<double> layer_absorption_;
  util::Histogram pathlength_hist_;
  util::Histogram depth_hist_;
  std::optional<VoxelGrid3D> fluence_;
  std::optional<VoxelGrid3D> path_visits_;
  std::optional<RadialTally> radial_;
};

}  // namespace phodis::mc
