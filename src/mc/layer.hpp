// Layered slab geometry: the tissue is a stack of horizontal layers,
// infinite in x and y, bounded in z, with ambient media above (z < 0,
// where the source and detector sit) and below. This is the geometry of
// the paper's head model (Table 1) and of the MCML family of codes the
// paper builds on.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mc/optical.hpp"

namespace phodis::mc {

/// One tissue layer: a name (for reports), optical properties, and its
/// z-extent [z0, z1) in millimetres measured downward from the surface.
struct Layer {
  std::string name;
  OpticalProperties props;
  double z0 = 0.0;  ///< top depth [mm]
  double z1 = 0.0;  ///< bottom depth [mm]; may be +inf for the last layer

  double thickness() const noexcept { return z1 - z0; }
};

/// An immutable stack of layers plus the ambient refractive indices.
/// Built via LayeredMediumBuilder so that the contiguity invariant
/// (layer k+1 starts where layer k ends; first layer starts at z = 0)
/// always holds.
class LayeredMedium {
 public:
  /// Index of the layer containing depth z, where z in [0, bottom()).
  /// Depths exactly on an interface belong to the layer below it.
  std::size_t layer_at(double z) const noexcept;

  /// Bounds-checked accessor for the public API: throws std::out_of_range
  /// on a bad index.
  const Layer& layer(std::size_t i) const { return layers_.at(i); }
  /// Unchecked accessor for internal callers that already own the index
  /// invariant (the kernel's medium compiler, hot-path iteration). UB on a
  /// bad index, exactly like operator[] on the underlying vector.
  const Layer& layer_unchecked(std::size_t i) const noexcept {
    return layers_[i];
  }
  std::size_t layer_count() const noexcept { return layers_.size(); }
  const std::vector<Layer>& layers() const noexcept { return layers_; }

  double n_above() const noexcept { return n_above_; }
  double n_below() const noexcept { return n_below_; }

  /// Depth of the bottom of the deepest layer (+inf for semi-infinite).
  double bottom() const noexcept;
  bool semi_infinite() const noexcept;

  /// Refractive index of the medium adjacent to layer `i` in direction
  /// `downward` (the next layer, or an ambient medium at the stack edges).
  double neighbour_index(std::size_t i, bool downward) const noexcept;

  /// Total thickness of finite layers [mm].
  double total_thickness() const noexcept;

 private:
  friend class LayeredMediumBuilder;
  std::vector<Layer> layers_;
  double n_above_ = 1.0;
  double n_below_ = 1.0;
};

/// Fluent builder enforcing the stacking invariants.
class LayeredMediumBuilder {
 public:
  LayeredMediumBuilder& ambient_above(double n);
  LayeredMediumBuilder& ambient_below(double n);

  /// Append a finite layer of the given thickness [mm].
  LayeredMediumBuilder& add_layer(std::string name,
                                  const OpticalProperties& props,
                                  double thickness_mm);

  /// Append a semi-infinite final layer. No further layers may be added.
  LayeredMediumBuilder& add_semi_infinite_layer(std::string name,
                                                const OpticalProperties& props);

  /// Validates (at least one layer, no layer after a semi-infinite one)
  /// and produces the medium.
  LayeredMedium build() const;

 private:
  LayeredMedium medium_;
  double cursor_z_ = 0.0;
  bool closed_ = false;
};

}  // namespace phodis::mc
