// Scattering-angle sampling. Tissue phase functions are modelled with the
// Henyey–Greenstein distribution whose single parameter g is the mean
// cosine of the scattering angle — the same g the paper's Table 1 footnote
// defines (g = -1 back-scattering, 0 isotropic, 1 forward).
//
// The samplers are defined inline here: they run once per photon
// interaction (the single hottest call site in the program) and keeping
// the definitions visible lets the compiler fold them into the kernel's
// specialized loop without LTO.
#pragma once

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/rng.hpp"
#include "util/vec3.hpp"

namespace phodis::mc {

/// Sample cos(θ) from the Henyey–Greenstein phase function with anisotropy
/// g in (-1, 1). For g = 0 this reduces to isotropic sampling.
inline double sample_hg_cosine(double g, util::Xoshiro256pp& rng) noexcept {
  const double xi = rng.uniform();
  if (std::abs(g) < 1e-6) {
    return 2.0 * xi - 1.0;  // isotropic limit
  }
  // Inverse-CDF of the HG distribution (Wang & Jacques, MCML manual eq. 3.28).
  const double term = (1.0 - g * g) / (1.0 - g + 2.0 * g * xi);
  const double cos_theta = (1.0 + g * g - term * term) / (2.0 * g);
  return std::clamp(cos_theta, -1.0, 1.0);
}

/// The Henyey–Greenstein probability density p(cosθ) — used by tests and
/// by the analysis module, not by the kernel hot path.
double hg_pdf(double g, double cos_theta) noexcept;

/// Rotate the unit direction `dir` by polar angle θ (given as cos θ) and a
/// uniformly random azimuth φ, using the standard direction-cosine update
/// (special-cased near |dir.z| = 1 where the general formula degenerates).
inline util::Vec3 deflect(const util::Vec3& dir, double cos_theta,
                          util::Xoshiro256pp& rng) noexcept {
  const double sin_theta =
      std::sqrt(std::max(0.0, 1.0 - cos_theta * cos_theta));
  const double phi = 2.0 * std::numbers::pi * rng.uniform();
  const double cos_phi = std::cos(phi);
  const double sin_phi = std::sin(phi);

  if (std::abs(dir.z) > 1.0 - 1e-10) {
    // Travelling (anti)parallel to z: the generic update divides by
    // sqrt(1 - dir.z^2) ~ 0, so use the axis-aligned form.
    return {sin_theta * cos_phi, sin_theta * sin_phi,
            cos_theta * (dir.z > 0.0 ? 1.0 : -1.0)};
  }

  const double temp = std::sqrt(1.0 - dir.z * dir.z);
  util::Vec3 out;
  out.x = sin_theta * (dir.x * dir.z * cos_phi - dir.y * sin_phi) / temp +
          dir.x * cos_theta;
  out.y = sin_theta * (dir.y * dir.z * cos_phi + dir.x * sin_phi) / temp +
          dir.y * cos_theta;
  out.z = -sin_theta * cos_phi * temp + dir.z * cos_theta;
  // Renormalise to stop round-off drift accumulating over ~10^4 scatters.
  return out.normalized();
}

/// Full scattering step: sample HG polar angle for anisotropy g and a
/// uniform azimuth, return the new unit direction.
inline util::Vec3 scatter_direction(const util::Vec3& dir, double g,
                                    util::Xoshiro256pp& rng) noexcept {
  return deflect(dir, sample_hg_cosine(g, rng), rng);
}

}  // namespace phodis::mc
