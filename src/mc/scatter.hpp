// Scattering-angle sampling. Tissue phase functions are modelled with the
// Henyey–Greenstein distribution whose single parameter g is the mean
// cosine of the scattering angle — the same g the paper's Table 1 footnote
// defines (g = -1 back-scattering, 0 isotropic, 1 forward).
#pragma once

#include "util/rng.hpp"
#include "util/vec3.hpp"

namespace phodis::mc {

/// Sample cos(θ) from the Henyey–Greenstein phase function with anisotropy
/// g in (-1, 1). For g = 0 this reduces to isotropic sampling.
double sample_hg_cosine(double g, util::Xoshiro256pp& rng) noexcept;

/// The Henyey–Greenstein probability density p(cosθ) — used by tests and
/// by the analysis module, not by the kernel hot path.
double hg_pdf(double g, double cos_theta) noexcept;

/// Rotate the unit direction `dir` by polar angle θ (given as cos θ) and a
/// uniformly random azimuth φ, using the standard direction-cosine update
/// (special-cased near |dir.z| = 1 where the general formula degenerates).
util::Vec3 deflect(const util::Vec3& dir, double cos_theta,
                   util::Xoshiro256pp& rng) noexcept;

/// Full scattering step: sample HG polar angle for anisotropy g and a
/// uniform azimuth, return the new unit direction.
util::Vec3 scatter_direction(const util::Vec3& dir, double g,
                             util::Xoshiro256pp& rng) noexcept;

}  // namespace phodis::mc
