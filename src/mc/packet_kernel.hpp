// The packet photon loop (KernelMode::kPacket): kPacketWidth photons
// marched together in structure-of-arrays lanes, with the per-event
// transcendentals (log for step sampling, sincos for the azimuth)
// evaluated lane-parallel through mc/vmath.hpp. See packet_kernel.cpp for
// the loop schedule and the determinism argument; the contract in brief:
//
//  * NOT bitwise-equal to the scalar loop (different libm, different draw
//    schedule). It has its own golden hashes and is tied to the scalar
//    reference by the statistical-equivalence test below.
//  * Deterministic in itself: the tally produced for a given (config,
//    photon_count, rng state) is identical across thread counts, build
//    types, and sanitizers — each lane draws from its own RNG sub-stream
//    (2^192 apart via Xoshiro256pp::long_jump), so a photon's trajectory
//    is a function of its stream position alone, independent of which
//    lane it lands in or what its packet-mates do.
//  * Supported configuration subset is enforced by KernelConfig::validate:
//    probabilistic boundaries, no path grid, every layer µt > 0.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mc/kernel.hpp"
#include "mc/tally.hpp"
#include "util/rng.hpp"

namespace phodis::mc {

/// Simulate `photon_count` packets through the batched SoA loop,
/// accumulating into `tally` (which must have the shape of
/// kernel.make_tally()). Advances `rng` by exactly kPacketWidth
/// long_jump()s — the per-lane sub-streams — regardless of photon count.
void run_packet(const Kernel& kernel, std::uint64_t photon_count,
                util::Xoshiro256pp& rng, SimulationTally& tally);

/// Default acceptance threshold for statistical_equivalence(): 6 combined
/// standard errors. With ~10 quantities checked per comparison, a true-null
/// false-positive is < 1e-8 per run while a physics bug of a few parts in
/// 1e3 at typical test sizes (1e5 photons) sits tens of sigma out.
inline constexpr double kDefaultStatSigma = 6.0;

/// One quantity's scalar-vs-packet comparison.
struct StatCheck {
  std::string name;
  double reference = 0.0;  ///< scalar-mode value
  double candidate = 0.0;  ///< packet-mode value
  double sigma = 0.0;      ///< combined standard error of the difference
  double z = 0.0;          ///< |reference - candidate| / sigma
  bool pass = true;
};

/// Result of comparing two tallies of the same configuration run in
/// different kernel modes (or any two independent runs).
struct StatEquivalence {
  bool pass = true;
  double max_z = 0.0;
  std::vector<StatCheck> checks;

  /// One line per check: "name: ref=… cand=… z=… [OK|FAIL]".
  std::string summary() const;
};

/// Test that `candidate` agrees with `reference` within `k_sigma` combined
/// standard errors on the global energy balance (specular / diffuse
/// reflectance, transmittance, absorbed and detected weight fractions) and
/// on the mean detected pathlength. Standard errors use the conservative
/// Bhatia–Davis bound p(1-p)/N for the weight fractions (per-photon
/// contributions lie in [0, 1] up to rare roulette survivors) and the
/// std<=mean exponential-tail bound for the pathlength mean, so a pass
/// criterion of k_sigma = 6 is loose against noise yet tight against any
/// systematic physics divergence.
StatEquivalence statistical_equivalence(const SimulationTally& reference,
                                        const SimulationTally& candidate,
                                        double k_sigma = kDefaultStatSigma);

}  // namespace phodis::mc
