#include "mc/optical.hpp"

#include <cmath>
#include <limits>

namespace phodis::mc {

double OpticalProperties::mean_free_path() const noexcept {
  const double t = mut();
  return t > 0.0 ? 1.0 / t : std::numeric_limits<double>::infinity();
}

double OpticalProperties::mueff() const noexcept {
  return std::sqrt(3.0 * mua * (mua + mus_reduced()));
}

void OpticalProperties::validate(const std::string& context) const {
  auto fail = [&](const std::string& what) {
    throw std::invalid_argument("OpticalProperties" +
                                (context.empty() ? "" : " (" + context + ")") +
                                ": " + what);
  };
  if (!(mua >= 0.0) || !std::isfinite(mua)) fail("mua must be >= 0");
  if (!(mus >= 0.0) || !std::isfinite(mus)) fail("mus must be >= 0");
  if (!(g > -1.0 && g < 1.0)) fail("g must lie in (-1, 1)");
  if (!(n >= 1.0) || !std::isfinite(n)) fail("n must be >= 1");
}

OpticalProperties OpticalProperties::from_reduced(double mua, double mus_prime,
                                                  double g, double n) {
  OpticalProperties props;
  props.mua = mua;
  props.g = g;
  props.n = n;
  props.mus = (1.0 - g) > 0.0 ? mus_prime / (1.0 - g) : mus_prime;
  props.validate("from_reduced");
  return props;
}

}  // namespace phodis::mc
