// Optical properties of a participating medium, in the units the paper's
// Table 1 uses: inverse millimetres for the interaction coefficients and
// millimetres for geometry.
#pragma once

#include <stdexcept>
#include <string>

namespace phodis::mc {

/// Bulk optical properties at one wavelength (NIR band for this paper).
struct OpticalProperties {
  double mua = 0.0;  ///< absorption coefficient µa [1/mm]
  double mus = 0.0;  ///< scattering coefficient µs [1/mm]
  double g = 0.0;    ///< scattering anisotropy, mean cosine, in (-1, 1)
  double n = 1.0;    ///< refractive index

  /// Total interaction coefficient µt = µa + µs [1/mm].
  double mut() const noexcept { return mua + mus; }

  /// Single-scattering albedo µs/µt; 0 for a purely absorbing medium.
  double albedo() const noexcept {
    const double t = mut();
    return t > 0.0 ? mus / t : 0.0;
  }

  /// Reduced (transport) scattering coefficient µs' = µs(1-g) [1/mm] —
  /// the quantity the paper's Table 1 reports.
  double mus_reduced() const noexcept { return mus * (1.0 - g); }

  /// Mean free path 1/µt [mm]; infinity in vacuum-like media.
  double mean_free_path() const noexcept;

  /// Effective attenuation coefficient of diffusion theory,
  /// µeff = sqrt(3 µa (µa + µs')) [1/mm].
  double mueff() const noexcept;

  /// Throws std::invalid_argument when any field is outside its physical
  /// range (µa,µs >= 0, -1 < g < 1, n >= 1).
  void validate(const std::string& context = "") const;

  /// Build from the reduced coefficient as printed in Table 1:
  /// µs = µs' / (1-g).
  static OpticalProperties from_reduced(double mua, double mus_prime, double g,
                                        double n);

  bool operator==(const OpticalProperties&) const = default;
};

}  // namespace phodis::mc
