// Russian roulette — the unbiased termination rule of the paper's Fig. 1
// ("if (weight too small) survive roulette"). A packet whose weight drops
// below `threshold` survives with probability 1/m carrying weight m·w,
// otherwise dies; the expected weight is preserved exactly.
#pragma once

#include <stdexcept>

#include "util/rng.hpp"

namespace phodis::mc {

struct RouletteSpec {
  double threshold = 1e-4;  ///< weight below which roulette is played
  double survival_multiplier = 10.0;  ///< m: survivor weight scale (= 1/p)

  void validate() const {
    if (!(threshold > 0.0) || threshold >= 1.0) {
      throw std::invalid_argument("RouletteSpec: threshold must be in (0,1)");
    }
    if (!(survival_multiplier > 1.0)) {
      throw std::invalid_argument(
          "RouletteSpec: survival multiplier must be > 1");
    }
  }
};

/// Play roulette on `weight`. Returns the post-roulette weight: either
/// weight * m (survived) or 0 (terminated). Callers must treat a zero
/// return as packet death.
inline double play_roulette(double weight, const RouletteSpec& spec,
                            util::Xoshiro256pp& rng) noexcept {
  if (rng.uniform() * spec.survival_multiplier < 1.0) {
    return weight * spec.survival_multiplier;
  }
  return 0.0;
}

}  // namespace phodis::mc
