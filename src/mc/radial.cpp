#include "mc/radial.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace phodis::mc {

void RadialSpec::validate() const {
  if (!(r_max_mm > 0.0) || !(z_max_mm > 0.0)) {
    throw std::invalid_argument("RadialSpec: extents must be > 0");
  }
  if (nr == 0 || nz == 0) {
    throw std::invalid_argument("RadialSpec: need >= 1 bin per axis");
  }
}

void RadialSpec::serialize(util::ByteWriter& writer) const {
  writer.f64(r_max_mm);
  writer.u64(nr);
  writer.f64(z_max_mm);
  writer.u64(nz);
}

RadialSpec RadialSpec::deserialize(util::ByteReader& reader) {
  RadialSpec spec;
  spec.r_max_mm = reader.f64();
  spec.nr = static_cast<std::size_t>(reader.u64());
  spec.z_max_mm = reader.f64();
  spec.nz = static_cast<std::size_t>(reader.u64());
  spec.validate();
  return spec;
}

RadialTally::RadialTally(const RadialSpec& spec)
    : spec_(spec),
      rd_(spec.nr, 0.0),
      tt_(spec.nr, 0.0),
      arz_(spec.nr * spec.nz, 0.0) {
  spec_.validate();
  inv_dr_ = static_cast<double>(spec_.nr) / spec_.r_max_mm;
  inv_dz_ = static_cast<double>(spec_.nz) / spec_.z_max_mm;
}

double RadialTally::reflectance_weight(std::size_t ir) const {
  return rd_.at(ir);
}
double RadialTally::transmittance_weight(std::size_t ir) const {
  return tt_.at(ir);
}
double RadialTally::absorption_weight(std::size_t ir, std::size_t iz) const {
  if (ir >= spec_.nr || iz >= spec_.nz) {
    throw std::out_of_range("RadialTally::absorption_weight");
  }
  return arz_[iz * spec_.nr + ir];
}

double RadialTally::r_center(std::size_t ir) const noexcept {
  return (static_cast<double>(ir) + 0.5) / inv_dr_;
}

double RadialTally::z_center(std::size_t iz) const noexcept {
  return (static_cast<double>(iz) + 0.5) / inv_dz_;
}

double RadialTally::annulus_area_mm2(std::size_t ir) const noexcept {
  const double dr = 1.0 / inv_dr_;
  const double r_lo = static_cast<double>(ir) * dr;
  const double r_hi = r_lo + dr;
  return std::numbers::pi * (r_hi * r_hi - r_lo * r_lo);
}

double RadialTally::ring_volume_mm3(std::size_t ir) const noexcept {
  return annulus_area_mm2(ir) / inv_dz_;
}

double RadialTally::reflectance_per_area(
    std::size_t ir, std::uint64_t photons_launched) const {
  if (photons_launched == 0) return 0.0;
  return reflectance_weight(ir) /
         (annulus_area_mm2(ir) * static_cast<double>(photons_launched));
}

double RadialTally::absorption_density(std::size_t ir, std::size_t iz,
                                       std::uint64_t photons_launched) const {
  if (photons_launched == 0) return 0.0;
  return absorption_weight(ir, iz) /
         (ring_volume_mm3(ir) * static_cast<double>(photons_launched));
}

double RadialTally::total_reflectance() const noexcept {
  double total = rd_overflow_;
  for (double w : rd_) total += w;
  return total;
}

double RadialTally::total_absorption() const noexcept {
  double total = a_overflow_;
  for (double w : arz_) total += w;
  return total;
}

void RadialTally::merge(const RadialTally& other) {
  if (!(other.spec_ == spec_)) {
    throw std::invalid_argument("RadialTally::merge: spec mismatch");
  }
  for (std::size_t i = 0; i < rd_.size(); ++i) rd_[i] += other.rd_[i];
  for (std::size_t i = 0; i < tt_.size(); ++i) tt_[i] += other.tt_[i];
  for (std::size_t i = 0; i < arz_.size(); ++i) arz_[i] += other.arz_[i];
  rd_overflow_ += other.rd_overflow_;
  tt_overflow_ += other.tt_overflow_;
  a_overflow_ += other.a_overflow_;
}

void RadialTally::serialize(util::ByteWriter& writer) const {
  spec_.serialize(writer);
  writer.f64_vec(rd_);
  writer.f64_vec(tt_);
  writer.f64_vec(arz_);
  writer.f64(rd_overflow_);
  writer.f64(tt_overflow_);
  writer.f64(a_overflow_);
}

RadialTally RadialTally::deserialize(util::ByteReader& reader) {
  RadialTally tally(RadialSpec::deserialize(reader));
  tally.rd_ = reader.f64_vec();
  tally.tt_ = reader.f64_vec();
  tally.arz_ = reader.f64_vec();
  if (tally.rd_.size() != tally.spec_.nr ||
      tally.tt_.size() != tally.spec_.nr ||
      tally.arz_.size() != tally.spec_.nr * tally.spec_.nz) {
    throw std::invalid_argument("RadialTally: payload shape mismatch");
  }
  tally.rd_overflow_ = reader.f64();
  tally.tt_overflow_ = reader.f64();
  tally.a_overflow_ = reader.f64();
  return tally;
}

}  // namespace phodis::mc
