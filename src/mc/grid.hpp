// Voxel scoring grids.
//
// Two tallies share VoxelGrid3D storage:
//  * fluence/absorption grid — every weight deposit from every photon
//    (Fig. 4's picture of where light goes in the layered head);
//  * path-visit grid — deposits from *detected* photons only, committed
//    retroactively when the photon reaches the detector (Fig. 3's banana).
//    PathRecorder buffers a photon's deposits until its fate is known.
//
// The grid resolution is the paper's "user defined granularity of results";
// Fig. 3 uses 50^3.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "util/bytes.hpp"
#include "util/vec3.hpp"

namespace phodis::mc {

struct GridSpec {
  double x_min = -25.0, x_max = 25.0;  ///< [mm]
  double y_min = -25.0, y_max = 25.0;  ///< [mm]
  double z_min = 0.0, z_max = 50.0;    ///< [mm]
  std::size_t nx = 50, ny = 50, nz = 50;

  void validate() const;
  std::size_t voxel_count() const noexcept { return nx * ny * nz; }
  double voxel_volume_mm3() const noexcept;

  bool operator==(const GridSpec&) const = default;

  /// Cubic grid of n^3 voxels centred on x=y=0 spanning [0, depth] in z and
  /// [-half_width, half_width] in x and y.
  static GridSpec cube(std::size_t n, double half_width_mm, double depth_mm);

  void serialize(util::ByteWriter& writer) const;
  static GridSpec deserialize(util::ByteReader& reader);
};

/// Dense 3-D accumulation grid. Mergeable (for distributed partial results)
/// and flat-indexed (ix fastest) so the buffer can be serialised directly.
class VoxelGrid3D {
 public:
  explicit VoxelGrid3D(const GridSpec& spec);

  /// Flat index of the voxel containing `pos`, or nullopt when outside.
  std::optional<std::size_t> index_of(const util::Vec3& pos) const noexcept;

  /// Deposit `weight` at `pos`; silently ignored outside the grid (photons
  /// legitimately wander beyond any finite scoring window).
  void deposit(const util::Vec3& pos, double weight) noexcept;
  void deposit_index(std::size_t flat_index, double weight) noexcept;

  double at(std::size_t ix, std::size_t iy, std::size_t iz) const;
  double at_flat(std::size_t flat) const { return data_.at(flat); }

  void merge(const VoxelGrid3D& other);

  const GridSpec& spec() const noexcept { return spec_; }
  const std::vector<double>& data() const noexcept { return data_; }
  std::vector<double>& mutable_data() noexcept { return data_; }

  double total() const noexcept;
  double max_value() const noexcept;

  /// Voxel centre position for a flat index.
  util::Vec3 voxel_center(std::size_t flat) const noexcept;

 private:
  GridSpec spec_;
  double inv_dx_, inv_dy_, inv_dz_;
  std::vector<double> data_;
};

/// Per-photon deposit buffer: records (voxel, weight) pairs along one
/// photon's path, then either commits them to a grid (photon detected) or
/// is discarded (photon lost). Consecutive deposits to the same voxel are
/// coalesced, which shrinks the buffer ~µt·voxel_size-fold.
class PathRecorder {
 public:
  void record(const VoxelGrid3D& grid, const util::Vec3& pos,
              double weight) noexcept;
  void commit(VoxelGrid3D& grid) const noexcept;
  void clear() noexcept { entries_.clear(); }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

 private:
  struct Entry {
    std::size_t voxel;
    double weight;
  };
  std::vector<Entry> entries_;
};

}  // namespace phodis::mc
