#include "mc/tally.hpp"

#include <cmath>
#include <stdexcept>

namespace phodis::mc {

void TallyConfig::serialize(util::ByteWriter& writer) const {
  writer.u64(layer_count);
  writer.f64(pathlength_max_mm);
  writer.u64(pathlength_bins);
  writer.f64(depth_max_mm);
  writer.u64(depth_bins);
  writer.boolean(enable_fluence_grid);
  fluence_spec.serialize(writer);
  writer.boolean(enable_path_grid);
  path_spec.serialize(writer);
  writer.boolean(enable_radial);
  radial_spec.serialize(writer);
}

TallyConfig TallyConfig::deserialize(util::ByteReader& reader) {
  TallyConfig config;
  config.layer_count = static_cast<std::size_t>(reader.u64());
  config.pathlength_max_mm = reader.f64();
  config.pathlength_bins = static_cast<std::size_t>(reader.u64());
  config.depth_max_mm = reader.f64();
  config.depth_bins = static_cast<std::size_t>(reader.u64());
  config.enable_fluence_grid = reader.boolean();
  config.fluence_spec = GridSpec::deserialize(reader);
  config.enable_path_grid = reader.boolean();
  config.path_spec = GridSpec::deserialize(reader);
  config.enable_radial = reader.boolean();
  config.radial_spec = RadialSpec::deserialize(reader);
  return config;
}

SimulationTally::SimulationTally(const TallyConfig& config)
    : config_(config),
      layer_absorption_(config.layer_count, 0.0),
      pathlength_hist_(0.0, config.pathlength_max_mm, config.pathlength_bins),
      depth_hist_(0.0, config.depth_max_mm, config.depth_bins) {
  if (config_.layer_count == 0) {
    throw std::invalid_argument("TallyConfig: layer_count must be >= 1");
  }
  if (config_.enable_fluence_grid) {
    fluence_.emplace(config_.fluence_spec);
  }
  if (config_.enable_path_grid) {
    path_visits_.emplace(config_.path_spec);
  }
  if (config_.enable_radial) {
    radial_.emplace(config_.radial_spec);
  }
}

void SimulationTally::record_detection(double weight,
                                       double optical_pathlength_mm,
                                       double exit_radius_mm,
                                       std::uint32_t scatter_events) noexcept {
  (void)exit_radius_mm;  // kept in the signature for future radial tallies
  ++detected_count_;
  detected_weight_ += weight;
  detected_pathlength_weighted_ += weight * optical_pathlength_mm;
  detected_scatters_weighted_ += weight * scatter_events;
  pathlength_hist_.add(optical_pathlength_mm, weight);
}

void SimulationTally::record_max_depth(double depth_mm,
                                       double weight) noexcept {
  depth_hist_.add(depth_mm, weight);
}

VoxelGrid3D* SimulationTally::fluence_grid() noexcept {
  return fluence_ ? &*fluence_ : nullptr;
}
VoxelGrid3D* SimulationTally::path_grid() noexcept {
  return path_visits_ ? &*path_visits_ : nullptr;
}
const VoxelGrid3D* SimulationTally::fluence_grid() const noexcept {
  return fluence_ ? &*fluence_ : nullptr;
}
const VoxelGrid3D* SimulationTally::path_grid() const noexcept {
  return path_visits_ ? &*path_visits_ : nullptr;
}
RadialTally* SimulationTally::radial() noexcept {
  return radial_ ? &*radial_ : nullptr;
}
const RadialTally* SimulationTally::radial() const noexcept {
  return radial_ ? &*radial_ : nullptr;
}

double SimulationTally::fraction(double w) const noexcept {
  return photons_launched_ > 0
             ? w / static_cast<double>(photons_launched_)
             : 0.0;
}

double SimulationTally::specular_reflectance() const noexcept {
  return fraction(specular_);
}
double SimulationTally::diffuse_reflectance() const noexcept {
  return fraction(diffuse_reflectance_);
}
double SimulationTally::transmittance() const noexcept {
  return fraction(transmittance_);
}
double SimulationTally::absorbed_fraction() const noexcept {
  double a = 0.0;
  for (double w : layer_absorption_) a += w;
  return fraction(a);
}
double SimulationTally::detected_fraction() const noexcept {
  return fraction(detected_weight_);
}
double SimulationTally::lost_fraction() const noexcept {
  return fraction(lost_);
}

double SimulationTally::absorbed_weight(std::size_t layer) const {
  return layer_absorption_.at(layer);
}

double SimulationTally::mean_detected_pathlength() const noexcept {
  return detected_weight_ > 0.0
             ? detected_pathlength_weighted_ / detected_weight_
             : 0.0;
}

double SimulationTally::mean_detected_scatter_events() const noexcept {
  return detected_weight_ > 0.0
             ? detected_scatters_weighted_ / detected_weight_
             : 0.0;
}

double SimulationTally::weight_conservation_error() const noexcept {
  double absorbed = 0.0;
  for (double w : layer_absorption_) absorbed += w;
  // Detected photons also exit through the top surface; their weight is
  // *included* in diffuse_reflectance_ by the kernel, so it is not a
  // separate sink here.
  const double sinks =
      specular_ + diffuse_reflectance_ + transmittance_ + absorbed + lost_;
  const double sources = static_cast<double>(photons_launched_) +
                         roulette_gain_ - roulette_loss_;
  return std::abs(sources - sinks);
}

void SimulationTally::merge(const SimulationTally& other) {
  if (!(other.config_ == config_)) {
    throw std::invalid_argument("SimulationTally::merge: config mismatch");
  }
  photons_launched_ += other.photons_launched_;
  detected_count_ += other.detected_count_;
  specular_ += other.specular_;
  diffuse_reflectance_ += other.diffuse_reflectance_;
  transmittance_ += other.transmittance_;
  lost_ += other.lost_;
  detected_weight_ += other.detected_weight_;
  detected_pathlength_weighted_ += other.detected_pathlength_weighted_;
  detected_scatters_weighted_ += other.detected_scatters_weighted_;
  roulette_gain_ += other.roulette_gain_;
  roulette_loss_ += other.roulette_loss_;
  for (std::size_t i = 0; i < layer_absorption_.size(); ++i) {
    layer_absorption_[i] += other.layer_absorption_[i];
  }
  pathlength_hist_.merge(other.pathlength_hist_);
  depth_hist_.merge(other.depth_hist_);
  if (fluence_ && other.fluence_) fluence_->merge(*other.fluence_);
  if (path_visits_ && other.path_visits_) {
    path_visits_->merge(*other.path_visits_);
  }
  if (radial_ && other.radial_) radial_->merge(*other.radial_);
}

void SimulationTally::serialize(util::ByteWriter& writer) const {
  config_.serialize(writer);

  writer.u64(photons_launched_);
  writer.u64(detected_count_);
  writer.f64(specular_);
  writer.f64(diffuse_reflectance_);
  writer.f64(transmittance_);
  writer.f64(lost_);
  writer.f64(detected_weight_);
  writer.f64(detected_pathlength_weighted_);
  writer.f64(detected_scatters_weighted_);
  writer.f64(roulette_gain_);
  writer.f64(roulette_loss_);
  writer.f64_vec(layer_absorption_);
  pathlength_hist_.serialize(writer);
  depth_hist_.serialize(writer);
  if (fluence_) writer.f64_vec(fluence_->data());
  if (path_visits_) writer.f64_vec(path_visits_->data());
  if (radial_) radial_->serialize(writer);
}

std::vector<std::uint8_t> SimulationTally::to_bytes() const {
  util::ByteWriter writer;
  serialize(writer);
  return writer.take();
}

SimulationTally SimulationTally::deserialize(util::ByteReader& reader) {
  const TallyConfig config = TallyConfig::deserialize(reader);

  SimulationTally tally(config);
  tally.photons_launched_ = reader.u64();
  tally.detected_count_ = reader.u64();
  tally.specular_ = reader.f64();
  tally.diffuse_reflectance_ = reader.f64();
  tally.transmittance_ = reader.f64();
  tally.lost_ = reader.f64();
  tally.detected_weight_ = reader.f64();
  tally.detected_pathlength_weighted_ = reader.f64();
  tally.detected_scatters_weighted_ = reader.f64();
  tally.roulette_gain_ = reader.f64();
  tally.roulette_loss_ = reader.f64();
  tally.layer_absorption_ = reader.f64_vec();
  if (tally.layer_absorption_.size() != config.layer_count) {
    throw std::invalid_argument("SimulationTally: layer payload mismatch");
  }
  tally.pathlength_hist_ = util::Histogram::deserialize(reader);
  tally.depth_hist_ = util::Histogram::deserialize(reader);
  if (config.enable_fluence_grid) {
    std::vector<double> data = reader.f64_vec();
    if (data.size() != config.fluence_spec.voxel_count()) {
      throw std::invalid_argument("SimulationTally: fluence payload mismatch");
    }
    tally.fluence_->mutable_data() = std::move(data);
  }
  if (config.enable_path_grid) {
    std::vector<double> data = reader.f64_vec();
    if (data.size() != config.path_spec.voxel_count()) {
      throw std::invalid_argument("SimulationTally: path payload mismatch");
    }
    tally.path_visits_->mutable_data() = std::move(data);
  }
  if (config.enable_radial) {
    tally.radial_ = RadialTally::deserialize(reader);
    if (!(tally.radial_->spec() == config.radial_spec)) {
      throw std::invalid_argument("SimulationTally: radial spec mismatch");
    }
  }
  return tally;
}

}  // namespace phodis::mc
