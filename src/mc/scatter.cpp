#include "mc/scatter.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace phodis::mc {

double sample_hg_cosine(double g, util::Xoshiro256pp& rng) noexcept {
  const double xi = rng.uniform();
  if (std::abs(g) < 1e-6) {
    return 2.0 * xi - 1.0;  // isotropic limit
  }
  // Inverse-CDF of the HG distribution (Wang & Jacques, MCML manual eq. 3.28).
  const double term = (1.0 - g * g) / (1.0 - g + 2.0 * g * xi);
  const double cos_theta = (1.0 + g * g - term * term) / (2.0 * g);
  return std::clamp(cos_theta, -1.0, 1.0);
}

double hg_pdf(double g, double cos_theta) noexcept {
  const double g2 = g * g;
  const double denom = 1.0 + g2 - 2.0 * g * cos_theta;
  return 0.5 * (1.0 - g2) / (denom * std::sqrt(denom));
}

util::Vec3 deflect(const util::Vec3& dir, double cos_theta,
                   util::Xoshiro256pp& rng) noexcept {
  const double sin_theta =
      std::sqrt(std::max(0.0, 1.0 - cos_theta * cos_theta));
  const double phi = 2.0 * std::numbers::pi * rng.uniform();
  const double cos_phi = std::cos(phi);
  const double sin_phi = std::sin(phi);

  if (std::abs(dir.z) > 1.0 - 1e-10) {
    // Travelling (anti)parallel to z: the generic update divides by
    // sqrt(1 - dir.z^2) ~ 0, so use the axis-aligned form.
    return {sin_theta * cos_phi, sin_theta * sin_phi,
            cos_theta * (dir.z > 0.0 ? 1.0 : -1.0)};
  }

  const double temp = std::sqrt(1.0 - dir.z * dir.z);
  util::Vec3 out;
  out.x = sin_theta * (dir.x * dir.z * cos_phi - dir.y * sin_phi) / temp +
          dir.x * cos_theta;
  out.y = sin_theta * (dir.y * dir.z * cos_phi + dir.x * sin_phi) / temp +
          dir.y * cos_theta;
  out.z = -sin_theta * cos_phi * temp + dir.z * cos_theta;
  // Renormalise to stop round-off drift accumulating over ~10^4 scatters.
  return out.normalized();
}

util::Vec3 scatter_direction(const util::Vec3& dir, double g,
                             util::Xoshiro256pp& rng) noexcept {
  return deflect(dir, sample_hg_cosine(g, rng), rng);
}

}  // namespace phodis::mc
