#include "mc/scatter.hpp"

namespace phodis::mc {

double hg_pdf(double g, double cos_theta) noexcept {
  const double g2 = g * g;
  const double denom = 1.0 + g2 - 2.0 * g * cos_theta;
  return 0.5 * (1.0 - g2) / (denom * std::sqrt(denom));
}

}  // namespace phodis::mc
