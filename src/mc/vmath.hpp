// Vectorizable transcendentals for the packet kernel (KernelMode::kPacket).
//
// The scalar kernel's throughput ceiling is the latency chain through
// glibc's log/sincos — bitwise-pinned, correctly-rounded, and serial. The
// packet kernel marches kPacketWidth photons in SoA lanes, so it can
// afford polynomial approximations evaluated lane-parallel: plain loops
// over fixed-width arrays that gcc auto-vectorizes at -O3 with the
// relaxed-FP flags scoped to vmath.cpp / packet_kernel.cpp (see
// CMakeLists.txt). No intrinsics: the data layout does the work.
//
// Accuracy contract (verified by tests/test_packet_kernel.cpp):
//  * vlog:        fdlibm-style argument reduction + degree-7 series in
//                 s = (m-1)/(m+1). Max error <= 4 ulp vs std::log over
//                 (0, 1] (measured ~1 ulp); callers feed it exponential
//                 step sampling, where 1e-15 relative error is ~9 orders
//                 below the Monte Carlo noise floor.
//  * vsincos_2pi: sin/cos of 2*pi*u for u in [0, 1), via round-to-nearest
//                 quadrant reduction and fdlibm k_sin/k_cos minimax
//                 polynomials on [-pi/4, pi/4]. Max ABSOLUTE error
//                 <= 2^-50 (~9e-16; measured ~2e-16). Near the zeros of
//                 sin/cos the *relative* error is unbounded, which is
//                 irrelevant for sampling azimuthal directions.
//
// Determinism contract: every polynomial is fixed-order Horner and the
// TUs are built with -ffp-contract=off, so results are identical IEEE
// doubles whether the loop was vectorized, unrolled, or run under a
// sanitizer at -O2 — the packet golden hashes hold across the whole
// build matrix, they are just not the glibc-rounded values the scalar
// mode pins.
#pragma once

#include <cstddef>

namespace phodis::mc {

/// Photons marched per packet: 8 doubles = one AVX-512 register or two
/// AVX2 registers. Part of the packet-mode golden contract (changing it
/// changes lane sub-stream layout and refill order).
inline constexpr std::size_t kPacketWidth = 8;

/// out[i] = log(x[i]) for x[i] in (0, 1] (no subnormal/zero/negative
/// handling: the caller feeds uniform_open0() draws, which are >= 2^-53).
void vlog(const double* x, double* out, std::size_t n) noexcept;

/// sin_out[i] = sin(2*pi*u[i]), cos_out[i] = cos(2*pi*u[i]) for u in
/// [0, 1). Sampling the azimuth directly from the unit draw skips the
/// 2*pi multiply AND glibc's generic payne-hanek reduction: the quadrant
/// is exact (4u rounded to nearest int) and the residual angle is
/// |theta| <= pi/4 by construction.
void vsincos_2pi(const double* u, double* sin_out, double* cos_out,
                 std::size_t n) noexcept;

}  // namespace phodis::mc
