// Tissue model presets transcribed from the paper.
//
// Table 1 gives transport (reduced) scattering coefficients µs' and
// absorption coefficients µa in 1/mm for the five layers of the adult
// head, with thickness ranges in cm. The paper's sources (Okada & Delpy
// 2003; Fukui et al. 2003) use an anisotropy g = 0.9 for tissue and a
// refractive index of 1.4 inside tissue versus 1.0 for air, which we adopt:
// Table 1 only constrains µs' = µs(1-g), so any (µs, g) pair with the same
// product is equivalent in the diffusive regime; tests cover g-invariance.
#pragma once

#include <string>
#include <vector>

#include "mc/layer.hpp"

namespace phodis::mc {

/// One row of the paper's Table 1 in its original units.
struct Table1Row {
  std::string tissue;
  double thickness_cm_lo;  ///< lower bound of the printed range
  double thickness_cm_hi;  ///< upper bound (equal to lo when a single value)
  double mus_prime_per_mm;
  double mua_per_mm;
  double thickness_used_mm;  ///< the value our head model adopts
};

/// The verbatim contents of Table 1 plus the concrete thicknesses the
/// head model uses (chosen inside the printed ranges, following Okada &
/// Delpy's adult model: 3 mm scalp, 7 mm skull, 2 mm CSF, 4 mm grey).
const std::vector<Table1Row>& table1_rows();

/// Default anisotropy and refractive index for the presets.
inline constexpr double kTissueAnisotropy = 0.9;
inline constexpr double kTissueRefractiveIndex = 1.4;
inline constexpr double kAirRefractiveIndex = 1.0;

/// The five-layer adult head model of Table 1 (scalp, skull, CSF, grey
/// matter, semi-infinite white matter).
LayeredMedium adult_head_model(double g = kTissueAnisotropy,
                               double n_tissue = kTissueRefractiveIndex);

/// Homogeneous semi-infinite white matter — the medium of the paper's
/// Fig. 3 verification run.
LayeredMedium homogeneous_white_matter(double g = kTissueAnisotropy,
                                       double n_tissue =
                                           kTissueRefractiveIndex);

/// Two-layer phantom: 4 mm of grey matter over semi-infinite white matter
/// (the Table 1 rows), air above and below. The benchmark and golden-test
/// workhorse: one refracting interior interface, one exterior interface,
/// strongly scattering bulk.
LayeredMedium two_layer_model(double g = kTissueAnisotropy,
                              double n_tissue = kTissueRefractiveIndex);

/// Homogeneous slab of the given properties and thickness; `n_ambient`
/// applies both above and below (used by the MCML validation tests).
LayeredMedium homogeneous_slab(const OpticalProperties& props,
                               double thickness_mm, double n_ambient = 1.0);

/// Semi-infinite homogeneous medium (validation against van de Hulst /
/// Giovanelli reference reflectances).
LayeredMedium homogeneous_semi_infinite(const OpticalProperties& props,
                                        double n_ambient = 1.0);

}  // namespace phodis::mc
