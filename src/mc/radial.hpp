// Cylindrically-symmetric (r, z) tallies in the MCML tradition — the
// "numerical solution of the radiative transport theory equation" lineage
// (paper ref. [5], Prahl et al.) that the paper's kernel descends from.
//
// For sources at the origin with normal incidence the problem is
// rotationally symmetric, so radial binning converges far faster than the
// 3-D grids: these tallies power the spatially-resolved diffuse
// reflectance R(ρ) (validated against Farrell's diffusion dipole) and the
// absorption density A(r, z).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace phodis::mc {

struct RadialSpec {
  double r_max_mm = 50.0;
  std::size_t nr = 100;
  double z_max_mm = 50.0;
  std::size_t nz = 100;

  void validate() const;
  bool operator==(const RadialSpec&) const = default;

  void serialize(util::ByteWriter& writer) const;
  static RadialSpec deserialize(util::ByteReader& reader);
};

/// Accumulates raw weights; per-area / per-volume normalisation is done by
/// the accessor methods so merging stays a plain sum.
class RadialTally {
 public:
  explicit RadialTally(const RadialSpec& spec);

  /// Diffuse reflectance escaping the top surface at exit radius r.
  void score_reflectance(double r_mm, double weight) noexcept;
  /// Transmittance through the bottom surface at exit radius r.
  void score_transmittance(double r_mm, double weight) noexcept;
  /// Absorption deposit at (r, z).
  void score_absorption(double r_mm, double z_mm, double weight) noexcept;

  const RadialSpec& spec() const noexcept { return spec_; }

  /// Raw accumulated weight in annulus i (reflectance).
  double reflectance_weight(std::size_t ir) const;
  double transmittance_weight(std::size_t ir) const;
  double absorption_weight(std::size_t ir, std::size_t iz) const;

  /// Photon weight escaping beyond r_max (so totals remain checkable).
  double reflectance_overflow() const noexcept { return rd_overflow_; }
  double transmittance_overflow() const noexcept { return tt_overflow_; }
  double absorption_overflow() const noexcept { return a_overflow_; }

  /// R(ρ): reflected weight per unit area [1/mm²] per launched photon.
  /// Caller supplies the launch count (the tally does not know it).
  double reflectance_per_area(std::size_t ir,
                              std::uint64_t photons_launched) const;

  /// A(r,z): absorbed weight per unit volume [1/mm³] per launched photon.
  double absorption_density(std::size_t ir, std::size_t iz,
                            std::uint64_t photons_launched) const;

  /// Bin centre radius / annulus area / ring-volume helpers.
  double r_center(std::size_t ir) const noexcept;
  double z_center(std::size_t iz) const noexcept;
  double annulus_area_mm2(std::size_t ir) const noexcept;
  double ring_volume_mm3(std::size_t ir) const noexcept;

  /// Total weights (in-range + overflow) for conservation cross-checks.
  double total_reflectance() const noexcept;
  double total_absorption() const noexcept;

  void merge(const RadialTally& other);
  void serialize(util::ByteWriter& writer) const;
  static RadialTally deserialize(util::ByteReader& reader);

 private:
  std::size_t r_index(double r_mm) const noexcept;

  RadialSpec spec_;
  double inv_dr_ = 0.0;
  double inv_dz_ = 0.0;
  std::vector<double> rd_;   // nr
  std::vector<double> tt_;   // nr
  std::vector<double> arz_;  // nr * nz, r fastest
  double rd_overflow_ = 0.0;
  double tt_overflow_ = 0.0;
  double a_overflow_ = 0.0;
};

}  // namespace phodis::mc
