// Cylindrically-symmetric (r, z) tallies in the MCML tradition — the
// "numerical solution of the radiative transport theory equation" lineage
// (paper ref. [5], Prahl et al.) that the paper's kernel descends from.
//
// For sources at the origin with normal incidence the problem is
// rotationally symmetric, so radial binning converges far faster than the
// 3-D grids: these tallies power the spatially-resolved diffuse
// reflectance R(ρ) (validated against Farrell's diffusion dipole) and the
// absorption density A(r, z).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace phodis::mc {

struct RadialSpec {
  double r_max_mm = 50.0;
  std::size_t nr = 100;
  double z_max_mm = 50.0;
  std::size_t nz = 100;

  void validate() const;
  bool operator==(const RadialSpec&) const = default;

  void serialize(util::ByteWriter& writer) const;
  static RadialSpec deserialize(util::ByteReader& reader);
};

/// Accumulates raw weights; per-area / per-volume normalisation is done by
/// the accessor methods so merging stays a plain sum.
class RadialTally {
 public:
  explicit RadialTally(const RadialSpec& spec);

  /// Hot-loop scoring handle: the spec constants and bin-array pointers
  /// hoisted into a small local object the compiler keeps in registers.
  /// The member scorers below reload those fields on every call because
  /// stores into the bin arrays may alias them; the kernel's interaction
  /// loop scores thousands of times per photon, so it constructs one
  /// Scorer per photon instead. Arithmetic and accumulation order are
  /// identical to the member scorers (bitwise-neutral).
  class Scorer {
   public:
    explicit Scorer(RadialTally& tally) noexcept
        : r_max_(tally.spec_.r_max_mm),
          z_max_(tally.spec_.z_max_mm),
          inv_dr_(tally.inv_dr_),
          inv_dz_(tally.inv_dz_),
          nr_(tally.spec_.nr),
          rd_(tally.rd_.data()),
          tt_(tally.tt_.data()),
          arz_(tally.arz_.data()),
          rd_overflow_(&tally.rd_overflow_),
          tt_overflow_(&tally.tt_overflow_),
          a_overflow_(&tally.a_overflow_) {}

    void reflectance(double r_mm, double weight) const noexcept {
      if (r_mm >= r_max_ || r_mm < 0.0) {
        *rd_overflow_ += weight;
        return;
      }
      rd_[static_cast<std::size_t>(r_mm * inv_dr_)] += weight;
    }
    void transmittance(double r_mm, double weight) const noexcept {
      if (r_mm >= r_max_ || r_mm < 0.0) {
        *tt_overflow_ += weight;
        return;
      }
      tt_[static_cast<std::size_t>(r_mm * inv_dr_)] += weight;
    }
    void absorption(double r_mm, double z_mm, double weight) const noexcept {
      if (r_mm >= r_max_ || r_mm < 0.0 || z_mm < 0.0 || z_mm >= z_max_) {
        *a_overflow_ += weight;
        return;
      }
      const std::size_t iz = static_cast<std::size_t>(z_mm * inv_dz_);
      arz_[iz * nr_ + static_cast<std::size_t>(r_mm * inv_dr_)] += weight;
    }
    /// Batched absorption() over N lanes for the packet kernel: lanes
    /// with mask[i] == 0 are no-ops; masked-in lanes follow absorption()
    /// exactly (same truncation, same overflow routing, same per-bin
    /// accumulation order as N sequential calls). The bounds tests and
    /// bin arithmetic auto-vectorize in the caller's TU; only the
    /// accumulates stay scalar (lanes may collide on a bin). Out-of-range
    /// coordinates are replaced by 0.0 before the int conversion so
    /// masked-out garbage (parked lanes) never hits the UB of an
    /// out-of-range float-to-int cast.
    template <std::size_t N>
    void absorption_lanes(const double* r_mm, const double* z_mm,
                          const double* weight,
                          const std::uint64_t* mask) const noexcept {
      std::uint64_t in[N];
      std::int32_t ir[N];
      std::int32_t iz[N];
      for (std::size_t i = 0; i < N; ++i) {
        const std::uint64_t ok =
            static_cast<std::uint64_t>(r_mm[i] < r_max_) &
            static_cast<std::uint64_t>(r_mm[i] >= 0.0) &
            static_cast<std::uint64_t>(z_mm[i] >= 0.0) &
            static_cast<std::uint64_t>(z_mm[i] < z_max_) &
            mask[i];
        in[i] = ok;
        const double r_safe = ok ? r_mm[i] : 0.0;
        const double z_safe = ok ? z_mm[i] : 0.0;
        ir[i] = static_cast<std::int32_t>(r_safe * inv_dr_);
        iz[i] = static_cast<std::int32_t>(z_safe * inv_dz_);
      }
      for (std::size_t i = 0; i < N; ++i) {
        if (in[i]) {
          arz_[static_cast<std::size_t>(iz[i]) * nr_ +
               static_cast<std::size_t>(ir[i])] += weight[i];
        } else if (mask[i]) {
          *a_overflow_ += weight[i];
        }
      }
    }

   private:
    double r_max_, z_max_, inv_dr_, inv_dz_;
    std::size_t nr_;
    double* rd_;
    double* tt_;
    double* arz_;
    double* rd_overflow_;
    double* tt_overflow_;
    double* a_overflow_;
  };

  // The member scorers delegate to a throwaway Scorer so the binning and
  // overflow logic exists exactly once; for one-off calls the handle
  // construction folds away, and hot loops build their own Scorer.

  /// Diffuse reflectance escaping the top surface at exit radius r.
  void score_reflectance(double r_mm, double weight) noexcept {
    Scorer(*this).reflectance(r_mm, weight);
  }
  /// Transmittance through the bottom surface at exit radius r.
  void score_transmittance(double r_mm, double weight) noexcept {
    Scorer(*this).transmittance(r_mm, weight);
  }
  /// Absorption deposit at (r, z).
  void score_absorption(double r_mm, double z_mm, double weight) noexcept {
    Scorer(*this).absorption(r_mm, z_mm, weight);
  }

  const RadialSpec& spec() const noexcept { return spec_; }

  /// Raw accumulated weight in annulus i (reflectance).
  double reflectance_weight(std::size_t ir) const;
  double transmittance_weight(std::size_t ir) const;
  double absorption_weight(std::size_t ir, std::size_t iz) const;

  /// Photon weight escaping beyond r_max (so totals remain checkable).
  double reflectance_overflow() const noexcept { return rd_overflow_; }
  double transmittance_overflow() const noexcept { return tt_overflow_; }
  double absorption_overflow() const noexcept { return a_overflow_; }

  /// R(ρ): reflected weight per unit area [1/mm²] per launched photon.
  /// Caller supplies the launch count (the tally does not know it).
  double reflectance_per_area(std::size_t ir,
                              std::uint64_t photons_launched) const;

  /// A(r,z): absorbed weight per unit volume [1/mm³] per launched photon.
  double absorption_density(std::size_t ir, std::size_t iz,
                            std::uint64_t photons_launched) const;

  /// Bin centre radius / annulus area / ring-volume helpers.
  double r_center(std::size_t ir) const noexcept;
  double z_center(std::size_t iz) const noexcept;
  double annulus_area_mm2(std::size_t ir) const noexcept;
  double ring_volume_mm3(std::size_t ir) const noexcept;

  /// Total weights (in-range + overflow) for conservation cross-checks.
  double total_reflectance() const noexcept;
  double total_absorption() const noexcept;

  void merge(const RadialTally& other);
  void serialize(util::ByteWriter& writer) const;
  static RadialTally deserialize(util::ByteReader& reader);

 private:

  RadialSpec spec_;
  double inv_dr_ = 0.0;
  double inv_dz_ = 0.0;
  std::vector<double> rd_;   // nr
  std::vector<double> tt_;   // nr
  std::vector<double> arz_;  // nr * nz, r fastest
  double rd_overflow_ = 0.0;
  double tt_overflow_ = 0.0;
  double a_overflow_ = 0.0;
};

}  // namespace phodis::mc
