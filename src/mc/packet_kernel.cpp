// The batched photon loop. Compiled (with vmath.cpp) under scoped
// -O3 -mavx2 -ffp-contract=off (see CMakeLists.txt): every "for all
// lanes" loop below is written as straight-line branchless arithmetic
// over fixed-width arrays so gcc auto-vectorizes it — no intrinsics.
//
// Loop schedule (one iteration = one propagation event per active lane):
//
//   1. draw u_step, u_evt, u_phi for ALL lanes        [vector]
//   2. step length  -log(u_step) / µt, boundary test,
//      advance positions, pathlengths, depths          [vector]
//   3. HG cosine + azimuth rotation from (u_evt,
//      u_phi), applied to interaction lanes only       [vector, vmath]
//   4. per lane: boundary physics (Fresnel/TIR/refract
//      via u_evt), absorption deposits, roulette,
//      death + refill from the photon stream           [scalar]
//
// Every lane consumes the same three draws per iteration from its own
// sub-stream whether its event is an interaction (uses all three) or a
// boundary crossing (u_evt becomes the reflect-vs-transmit draw, u_phi is
// discarded). That fixed schedule is what makes a photon's trajectory a
// function of its stream position alone: lanes never contend for draws,
// so refill order, packet composition, and thread count cannot change any
// photon's path — the basis of the packet golden hashes.
//
// Inactive lanes (stream exhausted) keep flowing through the vector
// sections with benign parked state (weight 0, frozen at a boundary,
// d_move = 0) and are skipped by the scalar section; tallies are only
// ever written for active lanes.
#include "mc/packet_kernel.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <limits>

#include "mc/fresnel.hpp"
#include "mc/photon.hpp"
#include "mc/radial.hpp"
#include "mc/vmath.hpp"
#include "util/vec3.hpp"

#if defined(PHODIS_OBS_KERNEL)
#include "obs/kernel_counters.hpp"
#endif

namespace phodis::mc {

namespace {

constexpr std::size_t W = kPacketWidth;
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDirEps = 1e-12;  // |dir.z| below this counts as horizontal

#if defined(PHODIS_OBS_KERNEL)
static_assert(obs::KernelCounters::kOccupancySlots == W + 1,
              "obs occupancy histogram slots must cover 0..kPacketWidth");
#endif

inline std::uint64_t rotl64(std::uint64_t v, int k) noexcept {
  return (v << k) | (v >> (64 - k));
}

/// All per-lane state, SoA. Lives on the stack for the duration of one
/// run_packet call; 64-byte alignment puts each 8-lane double array on
/// its own cache line (and one AVX-512 load, two AVX2 loads).
struct alignas(64) PacketState {
  // photon state
  double x[W], y[W], z[W];
  double ux[W], uy[W], uz[W];
  double w[W];
  double s_left[W];  ///< dimensionless step remaining across boundaries
  double opl[W];     ///< optical pathlength [mm]
  double maxd[W];    ///< deepest z reached [mm]
  // cached optics row of the lane's current layer; the lhg_* columns are
  // the Henyey–Greenstein sampling constants hoisted out of the per-event
  // loop (linv2g = 1/(2g), +inf at g = 0 where the isotropic branch is
  // selected anyway), trading two of the three per-event divisions for
  // multiplies. linvmut = 1/µt plays the same role for the step length.
  double lz0[W], lz1[W], ln[W], lmut[W], linvmut[W], lg[W], lafrac[W];
  double lhg_1mg2[W];   ///< 1 - g^2
  double lhg_1pg2[W];   ///< 1 + g^2
  double lhg_1mg[W];    ///< 1 - g
  double lhg_2g[W];     ///< 2 g
  double lhg_inv2g[W];  ///< 1 / (2 g)
  // per-lane xoshiro256++ sub-stream state (column i = lane i)
  std::uint64_t r0[W], r1[W], r2[W], r3[W];
  std::uint64_t inter[W];  ///< event count (max_interactions guard)
  std::uint32_t scat[W];   ///< scatter events (detector statistic)
  std::uint32_t layer[W];
  // Lane masks as full-width words (1 = set): 8-byte elements keep every
  // hot loop single-vectype so gcc's vectorizer takes them.
  std::uint64_t active[W];
  std::uint64_t cross[W];  ///< this iteration's event: boundary crossing?
};

/// One xoshiro256++ step on lane i. Matches util::Xoshiro256pp::next()
/// exactly, so lane state round-trips through Xoshiro256pp::from_state /
/// state() at launch time without perturbing the sequence.
inline std::uint64_t lane_next(PacketState& p, std::size_t i) noexcept {
  const std::uint64_t result = rotl64(p.r0[i] + p.r3[i], 23) + p.r0[i];
  const std::uint64_t t = p.r1[i] << 17;
  p.r2[i] ^= p.r0[i];
  p.r3[i] ^= p.r1[i];
  p.r1[i] ^= p.r2[i];
  p.r0[i] ^= p.r3[i];
  p.r2[i] ^= t;
  p.r3[i] = rotl64(p.r3[i], 45);
  return result;
}

/// All three scheduled draws for every lane in one pass: the xoshiro
/// state columns are loaded and stored once instead of three times. The
/// per-lane draw order is fixed — step ((0,1], as 1−u for log's domain),
/// then evt, then phi (both [0,1)) — and lane streams are independent,
/// so the values match three separate per-draw passes bitwise.
/// Split into a pure-u64 state loop and a conversion loop: gcc refuses a
/// vectype when the raw draws and the u64→double converts share one loop,
/// but vectorizes the integer loop and SLPs the conversions this way.
inline void lanes_draw3(PacketState& p, double* u_step, double* u_evt,
                        double* u_phi) noexcept {
  std::uint64_t a[W], b[W], c[W];
  for (std::size_t i = 0; i < W; ++i) {
    a[i] = lane_next(p, i);
    b[i] = lane_next(p, i);
    c[i] = lane_next(p, i);
  }
  // u64 -> double via the 2^52 magic-bias trick: the top 52 bits of the
  // draw are OR-ed into the mantissa of 2^52, giving exactly 2^52 + v, so
  // subtracting 2^52 recovers v with no convert instruction. The
  // static_cast<double>(u64) form has no AVX2 instruction and gcc emits
  // 24 scalar vcvtsi2sd per event (~9% of packet runtime, measured).
  // Packet-mode uniforms therefore have 52-bit resolution (the scalar
  // kernel keeps 53); the 2^-52 grid is far below any physics scale here
  // and the packet goldens pin the resulting stream.
  constexpr std::uint64_t kMagicBits = 0x4330000000000000ULL;  // 2^52
  constexpr double kMagic = 4503599627370496.0;                // 2^52
  for (std::size_t i = 0; i < W; ++i) {
    const double da = std::bit_cast<double>((a[i] >> 12) | kMagicBits);
    const double db = std::bit_cast<double>((b[i] >> 12) | kMagicBits);
    const double dc = std::bit_cast<double>((c[i] >> 12) | kMagicBits);
    u_step[i] = 1.0 - (da - kMagic) * 0x1.0p-52;
    u_evt[i] = (db - kMagic) * 0x1.0p-52;
    u_phi[i] = (dc - kMagic) * 0x1.0p-52;
  }
}

/// uniform [0, 1) for one lane (roulette: drawn only when played, so it
/// stays out of the fixed batched schedule but still lane-local). Same
/// 52-bit resolution as the batched draws above.
inline double lane_uniform(PacketState& p, std::size_t i) noexcept {
  return static_cast<double>(lane_next(p, i) >> 12) * 0x1.0p-52;
}

/// Henyey–Greenstein cosine + sine for all lanes, using the hoisted
/// per-layer constants from PacketState (one division per event instead
/// of three: the 1/(2g) factor is a precomputed multiply — one extra
/// rounding vs the textbook quotient, irrelevant for sampling a
/// distribution and covered by the packet goldens).
///
/// Kept out-of-line on purpose: inlined into the big event loop, gcc's
/// jump threading specialises the clamp ternaries into a branchy CFG
/// that defeats if-conversion ("control flow in loop", no
/// vectorization); as a standalone function over __restrict pointers the
/// loop if-converts and vectorizes cleanly.
__attribute__((noinline)) void lanes_hg_cosine(
    const PacketState& p, const double* __restrict u_evt,
    double* __restrict hg_ct, double* __restrict hg_st) noexcept {
  for (std::size_t i = 0; i < W; ++i) {
    const double xi = u_evt[i];
    const double term = p.lhg_1mg2[i] / (p.lhg_1mg[i] + p.lhg_2g[i] * xi);
    double hg = (p.lhg_1pg2[i] - term * term) * p.lhg_inv2g[i];
    hg = hg < -1.0 ? -1.0 : hg;
    hg = hg > 1.0 ? 1.0 : hg;
    const double iso = 2.0 * xi - 1.0;
    const double ct = std::abs(p.lg[i]) < 1e-6 ? iso : hg;
    double stsq = 1.0 - ct * ct;
    stsq = stsq < 0.0 ? 0.0 : stsq;
    hg_ct[i] = ct;
    hg_st[i] = std::sqrt(stsq);
  }
}

inline void load_layer(PacketState& p, std::size_t i,
                       const CompiledMedium& medium, const double* afrac,
                       std::size_t layer) noexcept {
  p.layer[i] = static_cast<std::uint32_t>(layer);
  p.lz0[i] = medium.z0(layer);
  p.lz1[i] = medium.z1(layer);
  p.ln[i] = medium.n(layer);
  p.lmut[i] = medium.mut(layer);
  p.linvmut[i] = medium.inv_mut(layer);
  const double g = medium.g(layer);
  p.lg[i] = g;
  p.lafrac[i] = afrac[layer];
  p.lhg_1mg2[i] = 1.0 - g * g;
  p.lhg_1pg2[i] = 1.0 + g * g;
  p.lhg_1mg[i] = 1.0 - g;
  p.lhg_2g[i] = 2.0 * g;
  p.lhg_inv2g[i] = 1.0 / (2.0 * g);  // +inf at g = 0: iso branch wins
}

/// Park an exhausted lane: weight 0, frozen on its layer's lower boundary
/// moving down, so the vector sections compute d_move = 0 forever and
/// never produce a non-finite value. The scalar section skips it.
inline void park_lane(PacketState& p, std::size_t i,
                      const CompiledMedium& medium,
                      const double* afrac) noexcept {
  p.active[i] = 0;
  p.x[i] = p.y[i] = 0.0;
  p.ux[i] = p.uy[i] = 0.0;
  p.w[i] = 0.0;
  p.s_left[i] = 1.0;  // always positive: the step is never redrawn
  p.opl[i] = p.maxd[i] = 0.0;
  p.scat[i] = 0;
  p.inter[i] = 0;
  load_layer(p, i, medium, afrac, 0);
  // Pin the lane exactly on a boundary of layer 0, heading into it, so
  // the vector geometry computes d_boundary = 0 (a zero-length "crossing"
  // with no state drift) every iteration. The bottom face can be +inf for
  // a semi-infinite layer; the top face z0 is always finite.
  const bool finite_bottom = medium.z1(0) < kInf;
  p.uz[i] = finite_bottom ? 1.0 : -1.0;
  p.z[i] = finite_bottom ? medium.z1(0) : medium.z0(0);
}

/// Install the next live photon from the stream into lane i. Launch
/// sampling runs through a temporary Xoshiro256pp seeded from the lane's
/// sub-stream state (and written back after), so refill consumes the
/// exact same generator the lane's batched draws use. Photons killed at
/// the surface (specular TIR / zero transmitted weight) are tallied and
/// the next stream photon is tried — mirroring the scalar entry path.
/// Returns false when the stream is exhausted (caller parks the lane).
inline bool refill_lane(PacketState& p, std::size_t i, const Source& source,
                        const CompiledMedium& medium, const double* afrac,
                        SimulationTally& tally, std::uint64_t& next_photon,
                        std::uint64_t photon_count,
                        std::uint64_t& launched) noexcept {
  while (next_photon < photon_count) {
    ++next_photon;
    util::Xoshiro256pp tmp = util::Xoshiro256pp::from_state(
        {p.r0[i], p.r1[i], p.r2[i], p.r3[i]});
    PhotonPacket ph = source.launch(tmp);
    const std::array<std::uint64_t, 4> st = tmp.state();
    p.r0[i] = st[0];
    p.r1[i] = st[1];
    p.r2[i] = st[2];
    p.r3[i] = st[3];
    tally.count_launch();
    ++launched;

    const FresnelResult entry =
        fresnel(medium.n_above(), medium.n(0), ph.dir.z);
    tally.add_specular(ph.weight * entry.reflectance);
    ph.weight *= 1.0 - entry.reflectance;
    if (entry.total_internal || ph.weight <= 0.0) {
      tally.record_max_depth(0.0, 1.0);
      continue;
    }
    const double es = medium.entry_scale();
    const util::Vec3 dir =
        util::Vec3{ph.dir.x * es, ph.dir.y * es, entry.cos_transmit}
            .normalized();
    p.x[i] = ph.pos.x;
    p.y[i] = ph.pos.y;
    p.z[i] = ph.pos.z;
    p.ux[i] = dir.x;
    p.uy[i] = dir.y;
    p.uz[i] = dir.z;
    p.w[i] = ph.weight;
    p.s_left[i] = 0.0;
    p.opl[i] = 0.0;
    p.maxd[i] = 0.0;
    p.scat[i] = 0;
    p.inter[i] = 0;
    p.active[i] = 1;
    load_layer(p, i, medium, afrac, 0);
    return true;
  }
  return false;
}

}  // namespace

void run_packet(const Kernel& kernel, std::uint64_t photon_count,
                util::Xoshiro256pp& rng, SimulationTally& tally) {
  const CompiledMedium& medium = kernel.compiled_medium();
  const KernelConfig& config = kernel.config();
  const Source& source = kernel.source();

  // Per-layer absorbed fraction µa/µt, divided once here. The scalar loop
  // keeps the per-interaction division for its bitwise contract; packet
  // mode pins its own goldens, so the single-rounding form is fair game.
  double afrac_storage[64];
  std::vector<double> afrac_heap;
  double* afrac = afrac_storage;
  if (medium.layer_count() > 64) {
    afrac_heap.resize(medium.layer_count());
    afrac = afrac_heap.data();
  }
  for (std::size_t l = 0; l < medium.layer_count(); ++l) {
    afrac[l] = medium.mua(l) / medium.mut(l);
  }

  VoxelGrid3D* fluence = tally.fluence_grid();
  RadialTally* radial = tally.radial();
  std::optional<RadialTally::Scorer> scorer;
  if (radial) scorer.emplace(*radial);
  const DetectorSpec* detector =
      config.detector ? &*config.detector : nullptr;

  const std::uint64_t max_inter = config.max_interactions;
  const double roulette_threshold = config.roulette.threshold;
  const double surv_mult = config.roulette.survival_multiplier;

  // Lane sub-streams: lane k = caller stream + k long_jump()s (2^192
  // apart). The caller is left advanced by exactly W long_jumps, so a
  // shard executor that derives shard streams with jump() (2^128) keeps
  // every (shard, lane) pair collision-free — see rng.hpp.
  PacketState p;
  for (std::size_t k = 0; k < W; ++k) {
    const std::array<std::uint64_t, 4> st = rng.state();
    p.r0[k] = st[0];
    p.r1[k] = st[1];
    p.r2[k] = st[2];
    p.r3[k] = st[3];
    rng.long_jump();
  }

  std::uint64_t next_photon = 0;
  std::size_t active_count = 0;
  std::uint64_t launched = 0;
  std::uint64_t refills = 0;
  std::uint64_t interactions_total = 0;
  std::uint64_t roulette_terms = 0;
  std::uint64_t occupancy[W + 1] = {};

  for (std::size_t k = 0; k < W; ++k) {
    if (refill_lane(p, k, source, medium, afrac, tally, next_photon,
                    photon_count, launched)) {
      ++active_count;
    } else {
      park_lane(p, k, medium, afrac);
    }
  }

  // Exit/interaction radii are only read when something radial-ish is
  // scoring; skip the batched sqrt entirely otherwise.
  const bool need_radius = radial != nullptr || detector != nullptr;

  double u_step[W], u_evt[W], u_phi[W];
  double step_log[W];
  double sphi[W], cphi[W];
  double hg_ct[W], hg_st[W];
  double radius[W];
  double dw[W];
  std::uint64_t alive_evt[W];
  std::uint64_t interact[W];

  while (active_count > 0) {
    occupancy[active_count] += 1;
    interactions_total += active_count;

    // --- 1. fixed draw schedule: three uniforms per lane per event ------
    lanes_draw3(p, u_step, u_evt, u_phi);
    vlog(u_step, step_log, W);

    // --- 2. step/boundary geometry + advance, all lanes -----------------
    for (std::size_t i = 0; i < W; ++i) {
      double sl = p.s_left[i];
      sl = sl <= 0.0 ? -step_log[i] : sl;
      const double s_phys = sl * p.linvmut[i];
      const bool down = p.uz[i] > 0.0;
      const double z_target = down ? p.lz1[i] : p.lz0[i];
      double db = (z_target - p.z[i]) / p.uz[i];
      db = db >= 0.0 ? db : 0.0;                       // ulp-outside / NaN
      db = std::abs(p.uz[i]) > kDirEps ? db : kInf;    // horizontal flight
      const bool crossing = db <= s_phys;
      const double d = crossing ? db : s_phys;
      p.x[i] += p.ux[i] * d;
      p.y[i] += p.uy[i] * d;
      p.z[i] += p.uz[i] * d;
      p.opl[i] += d * p.ln[i];
      p.maxd[i] = std::max(p.maxd[i], p.z[i]);
      double rem = sl - d * p.lmut[i];
      rem = rem < 0.0 ? 0.0 : rem;
      p.s_left[i] = crossing ? rem : 0.0;
      p.cross[i] = crossing ? 1u : 0u;
    }

    // Batched exit/interaction radius (expression identical to
    // util::fast_radius, evaluated in this TU either way): replaces up
    // to W scalar sqrts in the per-lane section with two vector sqrts.
    if (need_radius) {
      for (std::size_t i = 0; i < W; ++i) {
        radius[i] = std::sqrt(p.x[i] * p.x[i] + p.y[i] * p.y[i]);
      }
    }

    // --- 3. scattering rotation, computed for all lanes, applied to
    //        interaction lanes (crossing lanes keep their direction for
    //        the Fresnel handling below) -------------------------------
    vsincos_2pi(u_phi, sphi, cphi, W);
    lanes_hg_cosine(p, u_evt, hg_ct, hg_st);
    for (std::size_t i = 0; i < W; ++i) {
      const double xo = p.ux[i], yo = p.uy[i], zo = p.uz[i];
      const double ct = hg_ct[i], st = hg_st[i];
      const double cp = cphi[i], sp = sphi[i];
      const bool vert = std::abs(zo) > 1.0 - 1e-10;
      double tempsq = 1.0 - zo * zo;
      tempsq = tempsq < 0.0 ? 0.0 : tempsq;
      const double temp = std::sqrt(tempsq);
      const double inv_temp = 1.0 / temp;  // inf when vert; discarded
      const double gx = st * (xo * zo * cp - yo * sp) * inv_temp + xo * ct;
      const double gy = st * (yo * zo * cp + xo * sp) * inv_temp + yo * ct;
      const double gz = -st * cp * temp + zo * ct;
      const double vx = st * cp;
      const double vy = st * sp;
      const double vz = zo > 0.0 ? ct : -ct;
      double nx = vert ? vx : gx;
      double ny = vert ? vy : gy;
      double nz = vert ? vz : gz;
      // Renormalisation by one Newton step for 1/sqrt at nsq ~= 1: the
      // rotation of a unit vector keeps nsq = 1 + eps with |eps| at
      // rounding level, where 0.5*(3 - nsq) = 1/sqrt(nsq) + O(eps^2) —
      // an error of ~1e-31, far below one ulp of the result. Buys back a
      // vector sqrt + divide per event on the divider port.
      const double nsq = nx * nx + ny * ny + nz * nz;
      const double inv_norm = 0.5 * (3.0 - nsq);
      nx *= inv_norm;
      ny *= inv_norm;
      nz *= inv_norm;
      const bool scatter = (p.active[i] & (p.cross[i] ^ 1ULL)) != 0;
      p.ux[i] = scatter ? nx : xo;
      p.uy[i] = scatter ? ny : yo;
      p.uz[i] = scatter ? nz : zo;
    }

    // Batched event accounting + deposit arithmetic. Lanes that blow the
    // max_interactions budget this event die with their weight intact —
    // they must not deposit — so the deposit mask carries alive_evt.
    for (std::size_t i = 0; i < W; ++i) {
      p.inter[i] += p.active[i];
    }
    for (std::size_t i = 0; i < W; ++i) {
      alive_evt[i] = p.inter[i] <= max_inter ? 1u : 0u;
    }
    for (std::size_t i = 0; i < W; ++i) {
      interact[i] = p.active[i] & alive_evt[i] & (p.cross[i] ^ 1ULL);
    }
    for (std::size_t i = 0; i < W; ++i) {
      const double d = interact[i] ? p.w[i] * p.lafrac[i] : 0.0;
      dw[i] = d;
      p.w[i] -= d;  // exact no-op (w - 0.0) on non-depositing lanes
    }
    for (std::size_t i = 0; i < W; ++i) {
      p.scat[i] += static_cast<std::uint32_t>(interact[i]);
    }
    // Radial A(r,z) scoring for the interaction lanes, batched so the
    // bounds checks and bin indices vectorize instead of riding the
    // branchy per-lane loop below. Bins accumulate in lane order, the
    // same order the per-lane calls used, so packet goldens are
    // unaffected.
    if (scorer) {
      scorer->absorption_lanes<W>(radius, p.z, dw, interact);
    }

    // --- 4. per-lane physics, tallies, death and refill ------------------
    for (std::size_t i = 0; i < W; ++i) {
      if (!p.active[i]) continue;
      bool dead = false;
      bool by_roulette = false;

      if (p.inter[i] > max_inter) {
        tally.add_lost(p.w[i]);
        dead = true;
      } else if (p.cross[i]) {
        const std::size_t layer = p.layer[i];
        const bool down = p.uz[i] > 0.0;
        const int d = down ? 1 : 0;
        const double cos_i = std::abs(p.uz[i]);
        if (cos_i >= kFresnelGrazeEps && cos_i <= medium.tir_cos(layer, d)) {
          p.uz[i] = -p.uz[i];  // one-compare TIR, as in the scalar loop
        } else {
          const FresnelResult fr =
              fresnel(p.ln[i], medium.neighbour_n(layer, d), cos_i);
          if (fr.total_internal || u_evt[i] < fr.reflectance) {
            p.uz[i] = -p.uz[i];
          } else if (medium.exterior(layer, d)) {
            const double wgt = p.w[i];
            if (!down) {
              tally.add_diffuse_reflectance(wgt);
              if (radial) radial->score_reflectance(radius[i], wgt);
              if (detector) {
                const util::Vec3 exit{p.x[i], p.y[i], p.z[i]};
                if (detector->accepts(exit, p.opl[i])) {
                  tally.record_detection(wgt, p.opl[i], radius[i],
                                         p.scat[i]);
                }
              }
            } else {
              tally.add_transmittance(wgt);
              if (radial) radial->score_transmittance(radius[i], wgt);
            }
            dead = true;
          } else {
            // Refract into the adjacent layer (Snell preserves the scaled
            // tangential direction).
            const double scale = medium.n_ratio(layer, d);
            const util::Vec3 dir =
                util::Vec3{p.ux[i] * scale, p.uy[i] * scale,
                           down ? fr.cos_transmit : -fr.cos_transmit}
                    .normalized();
            p.ux[i] = dir.x;
            p.uy[i] = dir.y;
            p.uz[i] = dir.z;
            load_layer(p, i, medium, afrac, down ? layer + 1 : layer - 1);
          }
        }
      } else {
        // Interaction: scatter the precomputed deposit dw = W·µa/µt into
        // the tally bins (weight, scatter count, and the radial A(r,z)
        // bins already updated in the batched section; direction already
        // rotated above).
        tally.add_absorption(p.layer[i], dw[i]);
        if (fluence) fluence->deposit({p.x[i], p.y[i], p.z[i]}, dw[i]);
      }

      if (!dead && p.w[i] < roulette_threshold) {
        const double before = p.w[i];
        if (lane_uniform(p, i) * surv_mult < 1.0) {
          const double after = before * surv_mult;
          tally.add_roulette_gain(after - before);
          p.w[i] = after;
        } else {
          tally.add_roulette_loss(before);
          dead = true;
          by_roulette = true;
        }
      }

      if (dead) {
        tally.record_max_depth(p.maxd[i], 1.0);
        if (by_roulette) ++roulette_terms;
        if (refill_lane(p, i, source, medium, afrac, tally, next_photon,
                        photon_count, launched)) {
          ++refills;
        } else {
          park_lane(p, i, medium, afrac);
          --active_count;
        }
      }
    }
  }

#if defined(PHODIS_OBS_KERNEL)
  // Out-of-band flush, once per run: never reads the RNG, never writes
  // the tally, so packet goldens hold with the toggle on or off.
  {
    obs::KernelCounters& kc = obs::KernelCounters::global();
    kc.photons_launched.fetch_add(launched, std::memory_order_relaxed);
    kc.interactions.fetch_add(interactions_total, std::memory_order_relaxed);
    kc.roulette_terminations.fetch_add(roulette_terms,
                                       std::memory_order_relaxed);
    kc.lane_refills.fetch_add(refills, std::memory_order_relaxed);
    for (std::size_t o = 1; o <= W; ++o) {
      kc.packet_occupancy[o].fetch_add(occupancy[o],
                                       std::memory_order_relaxed);
    }
  }
#endif
}

namespace {

/// Conservative variance of a mean of per-photon contributions bounded in
/// [0, 1] with sample mean p (Bhatia–Davis: var <= p(1-p)).
double bounded_mean_var(double p, std::uint64_t n) noexcept {
  if (n == 0) return 0.0;
  const double pc = std::clamp(p, 0.0, 1.0);
  return pc * (1.0 - pc) / static_cast<double>(n);
}

}  // namespace

StatEquivalence statistical_equivalence(const SimulationTally& reference,
                                        const SimulationTally& candidate,
                                        double k_sigma) {
  StatEquivalence out;
  const std::uint64_t na = reference.photons_launched();
  const std::uint64_t nb = candidate.photons_launched();

  const auto add_check = [&](const char* name, double a, double b,
                             double sigma) {
    StatCheck c;
    c.name = name;
    c.reference = a;
    c.candidate = b;
    c.sigma = sigma;
    const double diff = std::abs(a - b);
    c.z = sigma > 0.0 ? diff / sigma : (diff == 0.0 ? 0.0 : kInf);
    c.pass = c.z <= k_sigma;
    out.pass = out.pass && c.pass;
    out.max_z = std::max(out.max_z, c.z);
    out.checks.push_back(std::move(c));
  };
  const auto add_fraction = [&](const char* name, double a, double b) {
    add_check(name, a, b,
              std::sqrt(bounded_mean_var(a, na) + bounded_mean_var(b, nb)));
  };

  add_fraction("specular_reflectance", reference.specular_reflectance(),
               candidate.specular_reflectance());
  add_fraction("diffuse_reflectance", reference.diffuse_reflectance(),
               candidate.diffuse_reflectance());
  add_fraction("transmittance", reference.transmittance(),
               candidate.transmittance());
  add_fraction("absorbed_fraction", reference.absorbed_fraction(),
               candidate.absorbed_fraction());
  add_fraction("detected_fraction", reference.detected_fraction(),
               candidate.detected_fraction());
  add_fraction("lost_fraction", reference.lost_fraction(),
               candidate.lost_fraction());

  // Mean detected pathlength: detected-pathlength distributions are
  // broad, roughly exponential-tailed, so std <= mean is a serviceable
  // conservative scale; skip when either run detected too few photons for
  // a mean to be meaningful.
  const std::uint64_t da = reference.photons_detected();
  const std::uint64_t db = candidate.photons_detected();
  if (da >= 30 && db >= 30) {
    const double ma = reference.mean_detected_pathlength();
    const double mb = candidate.mean_detected_pathlength();
    const double sigma = std::sqrt(ma * ma / static_cast<double>(da) +
                                   mb * mb / static_cast<double>(db));
    add_check("mean_detected_pathlength_mm", ma, mb, sigma);
  }

  return out;
}

std::string StatEquivalence::summary() const {
  std::string out;
  for (const StatCheck& c : checks) {
    out += c.name;
    out += ": ref=" + std::to_string(c.reference);
    out += " cand=" + std::to_string(c.candidate);
    out += " z=" + std::to_string(c.z);
    out += c.pass ? " [OK]\n" : " [FAIL]\n";
  }
  return out;
}

}  // namespace phodis::mc
