#include "mc/presets.hpp"

namespace phodis::mc {

const std::vector<Table1Row>& table1_rows() {
  // Tissue, thickness range [cm], µs' [1/mm], µa [1/mm], adopted [mm].
  static const std::vector<Table1Row> rows = {
      {"Scalp", 0.3, 1.0, 1.9, 0.018, 3.0},
      {"Skull", 0.5, 1.0, 1.6, 0.016, 7.0},
      {"CSF", 0.2, 0.2, 0.25, 0.004, 2.0},
      {"Grey matter", 0.4, 0.4, 2.2, 0.036, 4.0},
      {"White matter", 0.0, 0.0, 9.1, 0.014, 0.0},  // semi-infinite
  };
  return rows;
}

LayeredMedium adult_head_model(double g, double n_tissue) {
  const auto& rows = table1_rows();
  LayeredMediumBuilder builder;
  builder.ambient_above(kAirRefractiveIndex)
      .ambient_below(kAirRefractiveIndex);
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
    const auto& row = rows[i];
    builder.add_layer(
        row.tissue,
        OpticalProperties::from_reduced(row.mua_per_mm, row.mus_prime_per_mm,
                                        g, n_tissue),
        row.thickness_used_mm);
  }
  const auto& white = rows.back();
  builder.add_semi_infinite_layer(
      white.tissue,
      OpticalProperties::from_reduced(white.mua_per_mm, white.mus_prime_per_mm,
                                      g, n_tissue));
  return builder.build();
}

LayeredMedium homogeneous_white_matter(double g, double n_tissue) {
  const auto& white = table1_rows().back();
  LayeredMediumBuilder builder;
  builder.ambient_above(kAirRefractiveIndex)
      .ambient_below(kAirRefractiveIndex);
  builder.add_semi_infinite_layer(
      white.tissue,
      OpticalProperties::from_reduced(white.mua_per_mm, white.mus_prime_per_mm,
                                      g, n_tissue));
  return builder.build();
}

LayeredMedium two_layer_model(double g, double n_tissue) {
  const auto& rows = table1_rows();
  const Table1Row& grey = rows[3];
  const Table1Row& white = rows[4];
  LayeredMediumBuilder builder;
  builder.ambient_above(kAirRefractiveIndex)
      .ambient_below(kAirRefractiveIndex);
  builder.add_layer(grey.tissue,
                    OpticalProperties::from_reduced(
                        grey.mua_per_mm, grey.mus_prime_per_mm, g, n_tissue),
                    grey.thickness_used_mm);
  builder.add_semi_infinite_layer(
      white.tissue,
      OpticalProperties::from_reduced(white.mua_per_mm,
                                      white.mus_prime_per_mm, g, n_tissue));
  return builder.build();
}

LayeredMedium homogeneous_slab(const OpticalProperties& props,
                               double thickness_mm, double n_ambient) {
  LayeredMediumBuilder builder;
  builder.ambient_above(n_ambient).ambient_below(n_ambient);
  builder.add_layer("slab", props, thickness_mm);
  return builder.build();
}

LayeredMedium homogeneous_semi_infinite(const OpticalProperties& props,
                                        double n_ambient) {
  LayeredMediumBuilder builder;
  builder.ambient_above(n_ambient).ambient_below(n_ambient);
  builder.add_semi_infinite_layer("medium", props);
  return builder.build();
}

}  // namespace phodis::mc
