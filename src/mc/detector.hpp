// Surface detector with gated differential pathlengths.
//
// The detector is a disc of radius `radius_mm` centred at
// (separation_mm, 0, 0) on the top surface — the optode geometry of
// near-infrared spectroscopy, where a fibre sits some 20–60 mm from the
// source. A photon escaping the top surface is "detected" when its exit
// point falls inside the disc AND its optical pathlength lies inside the
// configured gate. Gating reproduces the paper's pulsed source/detector
// feature ("the source and detector only operate between pulses").
#pragma once

#include <limits>
#include <stdexcept>

#include "util/vec3.hpp"

namespace phodis::mc {

struct PathlengthGate {
  double min_mm = 0.0;
  double max_mm = std::numeric_limits<double>::infinity();

  bool accepts(double optical_pathlength_mm) const noexcept {
    return optical_pathlength_mm >= min_mm && optical_pathlength_mm <= max_mm;
  }

  void validate() const {
    if (!(min_mm >= 0.0) || !(max_mm > min_mm)) {
      throw std::invalid_argument("PathlengthGate: need 0 <= min < max");
    }
  }

  bool is_open() const noexcept {
    return min_mm == 0.0 && max_mm == std::numeric_limits<double>::infinity();
  }
};

struct DetectorSpec {
  double separation_mm = 30.0;  ///< source-detector distance along +x
  double radius_mm = 2.5;       ///< active disc radius
  PathlengthGate gate;          ///< optical-pathlength acceptance window

  void validate() const {
    if (!(separation_mm >= 0.0)) {
      throw std::invalid_argument("DetectorSpec: separation must be >= 0");
    }
    if (!(radius_mm > 0.0)) {
      throw std::invalid_argument("DetectorSpec: radius must be > 0");
    }
    gate.validate();
  }

  /// Geometric test: does a photon exiting the top surface at `exit`
  /// (z = 0) land on the detector disc?
  bool contains(const util::Vec3& exit) const noexcept {
    const double dx = exit.x - separation_mm;
    const double dy = exit.y;
    return dx * dx + dy * dy <= radius_mm * radius_mm;
  }

  /// Full acceptance test including the pathlength gate.
  bool accepts(const util::Vec3& exit, double optical_pathlength) const noexcept {
    return contains(exit) && gate.accepts(optical_pathlength);
  }
};

}  // namespace phodis::mc
