// Photon-packet state, following the variance-reduction convention of the
// MCML family (and the paper's Fig. 1 pseudocode): one "photon" is a packet
// with a continuous weight that decays at each interaction; Russian roulette
// terminates packets whose weight falls below a threshold without bias.
#pragma once

#include <cstdint>

#include "util/vec3.hpp"

namespace phodis::mc {

/// Why a photon packet's history ended.
enum class PhotonFate : std::uint8_t {
  kInFlight = 0,        ///< still propagating
  kAbsorbed,            ///< killed by roulette (all weight deposited)
  kReflectedDiffuse,    ///< escaped through the top surface
  kReflectedSpecular,   ///< reflected at launch without entering the tissue
  kTransmitted,         ///< escaped through the bottom surface
  kDetected,            ///< escaped through the top surface *into the detector*
  kMaxStepsExceeded,    ///< safety valve (counts as lost weight; reported)
};

struct PhotonPacket {
  util::Vec3 pos;                ///< position [mm]; z >= 0 inside the tissue
  util::Vec3 dir{0.0, 0.0, 1.0}; ///< unit direction cosines
  double weight = 1.0;           ///< packet weight in [0, 1]
  std::size_t layer = 0;         ///< index of the current layer
  double pathlength = 0.0;       ///< geometric path travelled [mm]
  double optical_pathlength = 0.0;  ///< sum of n * ds [mm], for time gating
  std::uint32_t scatter_events = 0;
  double max_depth = 0.0;        ///< deepest z reached [mm]
  PhotonFate fate = PhotonFate::kInFlight;

  bool alive() const noexcept { return fate == PhotonFate::kInFlight; }
};

}  // namespace phodis::mc
