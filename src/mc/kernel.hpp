// The Monte Carlo photon-transport kernel — the paper's Fig. 1 pseudocode:
//
//   begin
//     initialise photon
//     while (photon survived)
//       move photon
//       if (changed medium)
//         if (photon angle > critical angle) internally reflect
//         else refract
//       if (photon passed through detector) save path and end
//       update absorption and photon weight
//       if (weight too small) survive roulette
//   end
//
// Implemented in the MCML convention: dimensionless step lengths carried
// across layer boundaries, weight deposition W·µa/µt at interaction sites,
// Henyey–Greenstein scattering, Fresnel boundaries, Russian roulette.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mc/detector.hpp"
#include "mc/grid.hpp"
#include "mc/layer.hpp"
#include "mc/photon.hpp"
#include "mc/roulette.hpp"
#include "mc/source.hpp"
#include "mc/tally.hpp"
#include "util/rng.hpp"

namespace phodis::mc {

/// How interfaces split photon weight (a feature the paper lists:
/// "refraction and internal reflection (classical physics or probabilistic
/// methods)").
enum class BoundaryModel : std::uint8_t {
  /// Sample reflect-vs-transmit with probability R(θ): the photon stays
  /// whole. Default; lowest variance per unit work for interior physics.
  kProbabilistic = 0,
  /// Classical deterministic splitting at *exterior* interfaces: the
  /// transmitted fraction (1-R)·W escapes and is tallied, the reflected
  /// fraction R·W continues inside. Interior interfaces remain
  /// probabilistic (a single-packet tracker cannot fork without a stack).
  kClassical,
};

BoundaryModel parse_boundary_model(const std::string& name);
std::string to_string(BoundaryModel model);

struct KernelConfig {
  LayeredMedium medium;
  SourceSpec source;
  std::optional<DetectorSpec> detector;
  BoundaryModel boundary_model = BoundaryModel::kProbabilistic;
  RouletteSpec roulette;

  /// Tally shape. `layer_count` is overridden from `medium` by the kernel.
  TallyConfig tally;

  /// When true the path grid accumulates every photon's path, not only
  /// detected ones (used for Fig. 4's all-paths picture).
  bool record_all_paths = false;

  /// Safety valve against pathological configurations (e.g. a lossless
  /// medium between mirrors). Per photon.
  std::uint64_t max_interactions = 1'000'000;

  void validate() const;
};

/// One photon's recorded trajectory, for the example programs that draw
/// individual paths.
struct PhotonTrace {
  std::vector<util::Vec3> vertices;
  PhotonFate fate = PhotonFate::kInFlight;
  double final_weight = 0.0;
  double optical_pathlength = 0.0;
};

class Kernel {
 public:
  explicit Kernel(KernelConfig config);

  /// Tally matching this kernel's configuration (layer count, grids).
  SimulationTally make_tally() const;

  /// Simulate `photon_count` packets, accumulating into `tally`.
  void run(std::uint64_t photon_count, util::Xoshiro256pp& rng,
           SimulationTally& tally) const;

  /// Simulate one photon and capture its trajectory vertices.
  PhotonTrace trace(util::Xoshiro256pp& rng,
                    std::size_t max_vertices = 100000) const;

  const KernelConfig& config() const noexcept { return config_; }

 private:
  void simulate_one(util::Xoshiro256pp& rng, SimulationTally& tally,
                    PathRecorder& recorder,
                    std::vector<util::Vec3>* trace_out,
                    std::size_t max_vertices) const;

  /// Handle an interface crossing at the current photon position.
  /// Returns true if the photon left the tissue (fate set).
  bool handle_boundary(PhotonPacket& photon, bool downward,
                       util::Xoshiro256pp& rng, SimulationTally& tally,
                       PathRecorder& recorder) const;

  /// Tally an escape through the top surface; returns true when the exit
  /// point and pathlength gate put the weight on the detector.
  bool finish_exit_top(PhotonPacket& photon, double weight,
                       SimulationTally& tally, PathRecorder& recorder) const;
  void finish_exit_bottom(PhotonPacket& photon, double weight,
                          SimulationTally& tally) const;

  KernelConfig config_;
  Source source_;
};

}  // namespace phodis::mc
