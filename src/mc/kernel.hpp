// The Monte Carlo photon-transport kernel — the paper's Fig. 1 pseudocode:
//
//   begin
//     initialise photon
//     while (photon survived)
//       move photon
//       if (changed medium)
//         if (photon angle > critical angle) internally reflect
//         else refract
//       if (photon passed through detector) save path and end
//       update absorption and photon weight
//       if (weight too small) survive roulette
//   end
//
// Implemented in the MCML convention: dimensionless step lengths carried
// across layer boundaries, weight deposition W·µa/µt at interaction sites,
// Henyey–Greenstein scattering, Fresnel boundaries, Russian roulette.
//
// Execution model (the compiled hot path): at construction the medium is
// lowered into CompiledMedium SoA tables, and the photon loop exists as a
// family of template specializations — one per combination of boundary
// model and enabled tally features (fluence grid, radial tally, path grid,
// detector, trace capture). run() resolves the right specialization once
// per call from a dispatch table, so the common no-grids configuration
// executes a loop with no tally-feature tests, no string-bearing Layer
// loads, and no bounds checks — while producing bitwise-identical tallies
// to the original single-loop kernel (enforced by tests/test_kernel_golden;
// sole intentional exception: radial scoring radii moved from std::hypot
// to util::fast_radius, a last-ulp change re-recorded in that test).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mc/compiled_medium.hpp"
#include "mc/detector.hpp"
#include "mc/grid.hpp"
#include "mc/layer.hpp"
#include "mc/photon.hpp"
#include "mc/roulette.hpp"
#include "mc/source.hpp"
#include "mc/tally.hpp"
#include "util/rng.hpp"

namespace phodis::mc {

/// How interfaces split photon weight (a feature the paper lists:
/// "refraction and internal reflection (classical physics or probabilistic
/// methods)").
enum class BoundaryModel : std::uint8_t {
  /// Sample reflect-vs-transmit with probability R(θ): the photon stays
  /// whole. Default; lowest variance per unit work for interior physics.
  kProbabilistic = 0,
  /// Classical deterministic splitting at *exterior* interfaces: the
  /// transmitted fraction (1-R)·W escapes and is tallied, the reflected
  /// fraction R·W continues inside. Interior interfaces remain
  /// probabilistic (a single-packet tracker cannot fork without a stack).
  kClassical,
};

BoundaryModel parse_boundary_model(const std::string& name);
std::string to_string(BoundaryModel model);

/// Which photon loop executes a run.
enum class KernelMode : std::uint8_t {
  /// One photon at a time through the specialized scalar loop — the
  /// reference oracle, bitwise-pinned by tests/test_kernel_golden.cpp.
  /// Default everywhere.
  kScalar = 0,
  /// kPacketWidth photons marched in SoA lanes with vectorized
  /// log/sincos (mc/packet_kernel.*). Deliberately NOT bitwise-equal to
  /// scalar: it has its own golden hashes (self-reproducible at any
  /// thread count) and is statistically equivalent to scalar within
  /// Monte Carlo error (tests/test_packet_kernel.cpp).
  kPacket,
};

KernelMode parse_kernel_mode(const std::string& name);
std::string to_string(KernelMode mode);

struct KernelConfig {
  LayeredMedium medium;
  SourceSpec source;
  std::optional<DetectorSpec> detector;
  BoundaryModel boundary_model = BoundaryModel::kProbabilistic;
  RouletteSpec roulette;

  /// Photon-loop selection. kPacket supports the probabilistic boundary
  /// model with fluence/radial/detector tallies in interacting media
  /// (every layer µt > 0); validate() rejects the rest. trace() always
  /// uses the scalar loop regardless of mode.
  KernelMode mode = KernelMode::kScalar;

  /// Tally shape. `layer_count` is overridden from `medium` by the kernel.
  TallyConfig tally;

  /// When true the path grid accumulates every photon's path, not only
  /// detected ones (used for Fig. 4's all-paths picture).
  bool record_all_paths = false;

  /// Safety valve against pathological configurations (e.g. a lossless
  /// medium between mirrors). Per photon.
  std::uint64_t max_interactions = 1'000'000;

  void validate() const;
};

/// One photon's recorded trajectory, for the example programs that draw
/// individual paths.
struct PhotonTrace {
  std::vector<util::Vec3> vertices;
  PhotonFate fate = PhotonFate::kInFlight;
  double final_weight = 0.0;
  double optical_pathlength = 0.0;
};

class Kernel {
 public:
  explicit Kernel(KernelConfig config);

  /// Tally matching this kernel's configuration (layer count, grids).
  SimulationTally make_tally() const;

  /// Simulate `photon_count` packets, accumulating into `tally`. The
  /// specialized loop is selected once from the tally's enabled features.
  void run(std::uint64_t photon_count, util::Xoshiro256pp& rng,
           SimulationTally& tally) const;

  /// Simulate one photon and capture its trajectory vertices.
  PhotonTrace trace(util::Xoshiro256pp& rng,
                    std::size_t max_vertices = 100000) const;

  const KernelConfig& config() const noexcept { return config_; }

  /// The medium lowered into flat SoA optics tables at construction.
  const CompiledMedium& compiled_medium() const noexcept { return compiled_; }

  /// The launch-position/direction sampler (used by the packet kernel's
  /// lane refill, which reuses the exact scalar launch sampling).
  const Source& source() const noexcept { return source_; }

 private:
  /// Pointer to one photon-loop specialization.
  using SimFn = void (Kernel::*)(util::Xoshiro256pp&, SimulationTally&,
                                 PathRecorder&, PhotonTrace*,
                                 std::size_t) const;

 public:
  /// A run entry with the feature dispatch pre-resolved from the kernel's
  /// own tally configuration. Shard executors launch thousands of short
  /// runs per task; this hoists the per-run specialization lookup out of
  /// the shard loop. The Kernel must outlive the handle, and tallies
  /// passed to operator() must have the shape of make_tally().
  class CompiledRun {
   public:
    void operator()(std::uint64_t photon_count, util::Xoshiro256pp& rng,
                    SimulationTally& tally) const;

   private:
    friend class Kernel;
    CompiledRun(const Kernel* kernel, SimFn fn) noexcept
        : kernel_(kernel), fn_(fn) {}
    const Kernel* kernel_;
    SimFn fn_;
  };

  CompiledRun compiled_run() const noexcept;

 private:
  /// The photon loop, specialized at compile time on the boundary model
  /// and on which tally features exist. Template parameters: F fluence
  /// grid, R radial tally, P path grid, D detector, T trace capture.
  /// Every specialization reproduces the reference loop bit for bit —
  /// same rng draw order, same FP expression order (see the golden test).
  template <BoundaryModel BM, bool F, bool R, bool P, bool D, bool T>
  void simulate_one_impl(util::Xoshiro256pp& rng, SimulationTally& tally,
                         PathRecorder& recorder, PhotonTrace* trace_out,
                         std::size_t max_vertices) const;

  /// Tally an escape through the top surface; returns true when the exit
  /// point and pathlength gate put the weight on the detector.
  template <bool R, bool P, bool D>
  bool finish_exit_top_impl(PhotonPacket& photon, double weight,
                            SimulationTally& tally, PathRecorder& recorder,
                            RadialTally* radial, VoxelGrid3D* path_grid) const;
  template <bool R>
  void finish_exit_bottom_impl(PhotonPacket& photon, double weight,
                               SimulationTally& tally,
                               RadialTally* radial) const;

  /// Dispatch-table plumbing (table built in kernel.cpp).
  template <std::size_t I>
  static SimFn sim_table_entry() noexcept;
  static SimFn sim_fn_at(std::size_t index) noexcept;
  SimFn select_sim_fn(const SimulationTally& tally, bool trace) const noexcept;
  SimFn select_sim_fn_from_config(bool trace) const noexcept;

  KernelConfig config_;
  Source source_;
  CompiledMedium compiled_;
};

}  // namespace phodis::mc
