#include "mc/fresnel.hpp"

#include <algorithm>
#include <cmath>

namespace phodis::mc {

FresnelResult fresnel(double n_i, double n_t, double cos_i) noexcept {
  FresnelResult result;
  cos_i = std::clamp(cos_i, 0.0, 1.0);

  if (n_i == n_t) {  // matched boundary: all light transmits, θt = θi
    result.reflectance = 0.0;
    result.cos_transmit = cos_i;
    return result;
  }

  if (cos_i > 1.0 - 1e-12) {  // normal incidence
    const double r = (n_i - n_t) / (n_i + n_t);
    result.reflectance = r * r;
    result.cos_transmit = 1.0;
    return result;
  }

  if (cos_i < 1e-12) {  // grazing incidence
    result.reflectance = 1.0;
    result.cos_transmit = 0.0;
    return result;
  }

  const double sin_i = std::sqrt(1.0 - cos_i * cos_i);
  const double sin_t = n_i * sin_i / n_t;  // Snell's law
  if (sin_t >= 1.0) {
    result.total_internal = true;
    result.reflectance = 1.0;
    result.cos_transmit = 0.0;
    return result;
  }
  const double cos_t = std::sqrt(1.0 - sin_t * sin_t);

  // Unpolarised reflectance, average of s and p polarisations, written in
  // the sum/difference-angle form used by MCML (numerically stable):
  //   R = 1/2 [ sin^2(θi-θt)/sin^2(θi+θt) ] [ 1 + cos^2(θi+θt)/cos^2(θi-θt) ]
  const double cos_ip = cos_i * cos_t - sin_i * sin_t;  // cos(θi+θt)
  const double cos_im = cos_i * cos_t + sin_i * sin_t;  // cos(θi-θt)
  const double sin_ip = sin_i * cos_t + cos_i * sin_t;  // sin(θi+θt)
  const double sin_im = sin_i * cos_t - cos_i * sin_t;  // sin(θi-θt)
  const double r = 0.5 * (sin_im * sin_im) * (cos_im * cos_im + cos_ip * cos_ip) /
                   ((sin_ip * sin_ip) * (cos_im * cos_im));
  result.reflectance = std::clamp(r, 0.0, 1.0);
  result.cos_transmit = cos_t;
  return result;
}

double critical_cos(double n_i, double n_t) noexcept {
  if (n_i <= n_t) return 0.0;
  const double sin_c = n_t / n_i;
  return std::sqrt(std::max(0.0, 1.0 - sin_c * sin_c));
}

double specular_reflectance(double n1, double n2) noexcept {
  const double r = (n1 - n2) / (n1 + n2);
  return r * r;
}

}  // namespace phodis::mc
