#include "mc/fresnel.hpp"

namespace phodis::mc {

double critical_cos(double n_i, double n_t) noexcept {
  if (n_i <= n_t) return 0.0;
  const double sin_c = n_t / n_i;
  return std::sqrt(std::max(0.0, 1.0 - sin_c * sin_c));
}

double specular_reflectance(double n1, double n2) noexcept {
  const double r = (n1 - n2) / (n1 + n2);
  return r * r;
}

}  // namespace phodis::mc
