// Lane-parallel log and sincos. See vmath.hpp for the accuracy and
// determinism contracts. This TU (and packet_kernel.cpp) is compiled with
// -O3 -mavx2 -ffp-contract=off, scoped in CMakeLists.txt; the loops are
// written as straight-line per-lane arithmetic with branchless selects so
// the auto-vectorizer turns each into a handful of vector ops.
//
// The polynomials and reduction constants are the public-domain fdlibm
// ones (Sun Microsystems, via glibc/musl); re-derived coefficients would
// buy nothing and cost the known error bounds.
#include "mc/vmath.hpp"

#include <bit>
#include <cstdint>

namespace phodis::mc {

namespace {

// log reduction/series constants (fdlibm e_log.c).
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
constexpr double kLg1 = 6.666666666666735130e-01;
constexpr double kLg2 = 3.999999999940941908e-01;
constexpr double kLg3 = 2.857142874366239149e-01;
constexpr double kLg4 = 2.222219843214978396e-01;
constexpr double kLg5 = 1.818357216161805012e-01;
constexpr double kLg6 = 1.531383769920937332e-01;
constexpr double kLg7 = 1.479819860511658591e-01;
constexpr double kSqrt2 = 1.41421356237309514547462185873883;  // 2^0.5, +1ulp

// k_sin / k_cos minimax coefficients on [-pi/4, pi/4] (fdlibm).
constexpr double kS1 = -1.66666666666666324348e-01;
constexpr double kS2 = 8.33333333332248946124e-03;
constexpr double kS3 = -1.98412698298579493134e-04;
constexpr double kS4 = 2.75573137070700676789e-06;
constexpr double kS5 = -2.50507602534068634195e-08;
constexpr double kS6 = 1.58969099521155010221e-10;
constexpr double kC1 = 4.16666666666666019037e-02;
constexpr double kC2 = -1.38888888888741095749e-03;
constexpr double kC3 = 2.48015872894767294178e-05;
constexpr double kC4 = -2.75573143513906633035e-07;
constexpr double kC5 = 2.08757232129817482790e-09;
constexpr double kC6 = -1.13596475577881948265e-11;

// pi/2 split so theta = r*hi + r*lo keeps the quadrant residual accurate
// to ~2^-60 without a double-double multiply.
constexpr double kPio2Hi = 1.57079632679489655800e+00;
constexpr double kPio2Lo = 6.12323399573676603587e-17;

// Adding 2^52 + 2^51 forces round-to-nearest-even to the integer in the
// low mantissa bits — the classic branch-free double -> int round for
// values well inside +-2^51.
constexpr double kRoundMagic = 6755399441055744.0;

}  // namespace

void vlog(const double* x, double* out, std::size_t n) noexcept {
  // 2^52 + 2^51? No — plain 2^52: OR-ing the 11-bit biased exponent into
  // the mantissa of 2^52 yields exactly 2^52 + (e + 1023) (integers below
  // 2^53 are exact), so the exponent reaches double-land through bit ops
  // alone. An int64 -> double convert here has no AVX2 instruction and
  // makes gcc drop the whole loop to scalar ("no vectype").
  constexpr double kExpBias = 4503599627370496.0 + 1023.0;  // 2^52 + bias
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(x[i]);
    const double e_biased =
        std::bit_cast<double>((bits >> 52) | 0x4330000000000000ULL);
    // Mantissa in [1, 2), then shifted to [sqrt2/2, sqrt2) so the series
    // argument f = m - 1 stays small on both sides of zero.
    double m = std::bit_cast<double>((bits & 0x000FFFFFFFFFFFFFULL) |
                                     0x3FF0000000000000ULL);
    const bool shift = m > kSqrt2;
    m = shift ? 0.5 * m : m;
    // Exact small-integer arithmetic: identical bits to the old
    // static_cast<double>(int64 e) formulation.
    const double k = (shift ? e_biased + 1.0 : e_biased) - kExpBias;

    const double f = m - 1.0;
    const double s = f / (2.0 + f);
    const double z = s * s;
    const double w = z * z;
    const double t1 = w * (kLg2 + w * (kLg4 + w * kLg6));
    const double t2 = z * (kLg1 + w * (kLg3 + w * (kLg5 + w * kLg7)));
    const double r = t2 + t1;
    const double hfsq = 0.5 * f * f;
    out[i] = k * kLn2Hi - ((hfsq - (s * (hfsq + r) + k * kLn2Lo)) - f);
  }
}

void vsincos_2pi(const double* u, double* sin_out, double* cos_out,
                 std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double a = 4.0 * u[i];  // quadrant coordinate in [0, 4]
    const double biased = a + kRoundMagic;
    const std::uint64_t q = std::bit_cast<std::uint64_t>(biased);
    const double r = a - (biased - kRoundMagic);  // in [-0.5, 0.5]
    const double theta = r * kPio2Hi + r * kPio2Lo;

    const double z = theta * theta;
    const double sp =
        kS1 + z * (kS2 + z * (kS3 + z * (kS4 + z * (kS5 + z * kS6))));
    const double s = theta + theta * z * sp;
    const double cp =
        kC1 + z * (kC2 + z * (kC3 + z * (kC4 + z * (kC5 + z * kC6))));
    const double c = 1.0 - 0.5 * z + z * z * cp;

    // Quadrant rotation: q odd swaps sin/cos; the sign patterns follow
    // sin(x + q*pi/2), cos(x + q*pi/2).
    const bool swap = (q & 1) != 0;
    const double ss = swap ? c : s;
    const double cc = swap ? s : c;
    sin_out[i] = (q & 2) != 0 ? -ss : ss;
    cos_out[i] = ((q + 1) & 2) != 0 ? -cc : cc;
  }
}

}  // namespace phodis::mc
