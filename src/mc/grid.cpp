#include "mc/grid.hpp"

#include <algorithm>

namespace phodis::mc {

void GridSpec::validate() const {
  if (!(x_max > x_min && y_max > y_min && z_max > z_min)) {
    throw std::invalid_argument("GridSpec: max must exceed min on every axis");
  }
  if (nx == 0 || ny == 0 || nz == 0) {
    throw std::invalid_argument("GridSpec: need >= 1 voxel per axis");
  }
  if (voxel_count() > (std::size_t{1} << 31)) {
    throw std::invalid_argument("GridSpec: grid too large");
  }
}

double GridSpec::voxel_volume_mm3() const noexcept {
  return (x_max - x_min) / static_cast<double>(nx) *
         (y_max - y_min) / static_cast<double>(ny) *
         (z_max - z_min) / static_cast<double>(nz);
}

void GridSpec::serialize(util::ByteWriter& writer) const {
  writer.f64(x_min);
  writer.f64(x_max);
  writer.f64(y_min);
  writer.f64(y_max);
  writer.f64(z_min);
  writer.f64(z_max);
  writer.u64(nx);
  writer.u64(ny);
  writer.u64(nz);
}

GridSpec GridSpec::deserialize(util::ByteReader& reader) {
  GridSpec s;
  s.x_min = reader.f64();
  s.x_max = reader.f64();
  s.y_min = reader.f64();
  s.y_max = reader.f64();
  s.z_min = reader.f64();
  s.z_max = reader.f64();
  s.nx = static_cast<std::size_t>(reader.u64());
  s.ny = static_cast<std::size_t>(reader.u64());
  s.nz = static_cast<std::size_t>(reader.u64());
  s.validate();
  return s;
}

GridSpec GridSpec::cube(std::size_t n, double half_width_mm, double depth_mm) {
  GridSpec spec;
  spec.x_min = -half_width_mm;
  spec.x_max = half_width_mm;
  spec.y_min = -half_width_mm;
  spec.y_max = half_width_mm;
  spec.z_min = 0.0;
  spec.z_max = depth_mm;
  spec.nx = spec.ny = spec.nz = n;
  spec.validate();
  return spec;
}

VoxelGrid3D::VoxelGrid3D(const GridSpec& spec)
    : spec_(spec), data_(spec.voxel_count(), 0.0) {
  spec_.validate();
  inv_dx_ = static_cast<double>(spec_.nx) / (spec_.x_max - spec_.x_min);
  inv_dy_ = static_cast<double>(spec_.ny) / (spec_.y_max - spec_.y_min);
  inv_dz_ = static_cast<double>(spec_.nz) / (spec_.z_max - spec_.z_min);
}

std::optional<std::size_t> VoxelGrid3D::index_of(
    const util::Vec3& pos) const noexcept {
  const double fx = (pos.x - spec_.x_min) * inv_dx_;
  const double fy = (pos.y - spec_.y_min) * inv_dy_;
  const double fz = (pos.z - spec_.z_min) * inv_dz_;
  if (fx < 0.0 || fy < 0.0 || fz < 0.0) return std::nullopt;
  const auto ix = static_cast<std::size_t>(fx);
  const auto iy = static_cast<std::size_t>(fy);
  const auto iz = static_cast<std::size_t>(fz);
  if (ix >= spec_.nx || iy >= spec_.ny || iz >= spec_.nz) return std::nullopt;
  return (iz * spec_.ny + iy) * spec_.nx + ix;
}

void VoxelGrid3D::deposit(const util::Vec3& pos, double weight) noexcept {
  if (auto idx = index_of(pos)) data_[*idx] += weight;
}

void VoxelGrid3D::deposit_index(std::size_t flat_index,
                                double weight) noexcept {
  if (flat_index < data_.size()) data_[flat_index] += weight;
}

double VoxelGrid3D::at(std::size_t ix, std::size_t iy, std::size_t iz) const {
  if (ix >= spec_.nx || iy >= spec_.ny || iz >= spec_.nz) {
    throw std::out_of_range("VoxelGrid3D::at");
  }
  return data_[(iz * spec_.ny + iy) * spec_.nx + ix];
}

void VoxelGrid3D::merge(const VoxelGrid3D& other) {
  if (!(other.spec_ == spec_)) {
    throw std::invalid_argument("VoxelGrid3D::merge: spec mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

double VoxelGrid3D::total() const noexcept {
  double sum = 0.0;
  for (double v : data_) sum += v;
  return sum;
}

double VoxelGrid3D::max_value() const noexcept {
  double best = 0.0;
  for (double v : data_) best = std::max(best, v);
  return best;
}

util::Vec3 VoxelGrid3D::voxel_center(std::size_t flat) const noexcept {
  const std::size_t ix = flat % spec_.nx;
  const std::size_t iy = (flat / spec_.nx) % spec_.ny;
  const std::size_t iz = flat / (spec_.nx * spec_.ny);
  const double dx = (spec_.x_max - spec_.x_min) / static_cast<double>(spec_.nx);
  const double dy = (spec_.y_max - spec_.y_min) / static_cast<double>(spec_.ny);
  const double dz = (spec_.z_max - spec_.z_min) / static_cast<double>(spec_.nz);
  return {spec_.x_min + (static_cast<double>(ix) + 0.5) * dx,
          spec_.y_min + (static_cast<double>(iy) + 0.5) * dy,
          spec_.z_min + (static_cast<double>(iz) + 0.5) * dz};
}

void PathRecorder::record(const VoxelGrid3D& grid, const util::Vec3& pos,
                          double weight) noexcept {
  const auto idx = grid.index_of(pos);
  if (!idx) return;
  if (!entries_.empty() && entries_.back().voxel == *idx) {
    entries_.back().weight += weight;
    return;
  }
  entries_.push_back({*idx, weight});
}

void PathRecorder::commit(VoxelGrid3D& grid) const noexcept {
  for (const Entry& e : entries_) grid.deposit_index(e.voxel, e.weight);
}

}  // namespace phodis::mc
