// The kernel-facing lowering of a LayeredMedium: flat, string-free
// structure-of-arrays optics tables sized for the photon interaction loop.
//
// `Layer` is a description type — it drags a std::string name through every
// cache line and recomputes µt/albedo on demand — which is fine for
// builders, reports, and serialization, but not for a loop that touches
// layer optics several thousand times per photon. At Kernel construction
// the medium is compiled once into parallel arrays of plain doubles
// (z0/z1/n/µt/1/µt/albedo/g) plus, per layer and crossing direction, the
// adjacent refractive index, the precomputed Snell ratio n_i/n_t, and a
// conservative critical-angle cosine so that total internal reflection is
// decided with a single compare before any Fresnel square root.
//
// Bitwise-identity rules (the golden test pins kernel tallies to the
// pre-compilation kernel bit for bit):
//  * Precomputing a value is safe when the hot loop would have computed it
//    from the same operands with the same expression — µt = µa + µs and
//    n_ratio = n_i / n_t are each one IEEE operation on identical inputs,
//    so the cached double is identical to the recomputed one.
//  * Rewriting an expression is NOT safe: s/µt must stay a division in the
//    loop because s·(1/µt) rounds differently. inv_mut is still part of
//    the table for consumers outside the pinned path (cost models,
//    mean-free-path queries) where the single-rounding inverse is the
//    natural quantity.
//  * tir_cos is deliberately conservative (critical cosine minus a margin
//    wider than the Fresnel evaluation's rounding error): cos θi at or
//    below it is provably beyond the critical angle, so the loop reflects
//    without drawing or computing anything; cos θi above it falls through
//    to the exact Fresnel expression, which makes its own TIR decision.
//    Either way the decision — and every tallied bit — matches the
//    uncompiled kernel.
#pragma once

#include <cstddef>
#include <vector>

#include "mc/layer.hpp"

namespace phodis::mc {

class CompiledMedium {
 public:
  CompiledMedium() = default;
  explicit CompiledMedium(const LayeredMedium& medium);

  std::size_t layer_count() const noexcept { return z0_.size(); }
  double n_above() const noexcept { return n_above_; }

  // --- per-layer SoA tables (unchecked: the loop owns the index) ----------
  double z0(std::size_t i) const noexcept { return z0_[i]; }
  double z1(std::size_t i) const noexcept { return z1_[i]; }
  double n(std::size_t i) const noexcept { return n_[i]; }
  double mut(std::size_t i) const noexcept { return mut_[i]; }
  double inv_mut(std::size_t i) const noexcept { return inv_mut_[i]; }
  double mua(std::size_t i) const noexcept { return mua_[i]; }
  double albedo(std::size_t i) const noexcept { return albedo_[i]; }
  double g(std::size_t i) const noexcept { return g_[i]; }

  // --- per-interface tables, direction d: 0 = up, 1 = down ----------------
  double neighbour_n(std::size_t i, int d) const noexcept {
    return n_t_[2 * i + static_cast<std::size_t>(d)];
  }
  /// Precomputed Snell ratio n_i/n_t for refraction at interface (i, d).
  double n_ratio(std::size_t i, int d) const noexcept {
    return n_ratio_[2 * i + static_cast<std::size_t>(d)];
  }
  /// One-compare TIR threshold: cos θi <= tir_cos(i, d) (with cos θi above
  /// the grazing cutoff) is definitely total internal reflection. -1 when
  /// the interface has no critical angle (n_i <= n_t), so the compare can
  /// never pass.
  double tir_cos(std::size_t i, int d) const noexcept {
    return tir_cos_[2 * i + static_cast<std::size_t>(d)];
  }
  /// True when crossing interface (i, d) leaves the tissue stack.
  bool exterior(std::size_t i, int d) const noexcept {
    return exterior_[2 * i + static_cast<std::size_t>(d)] != 0;
  }

  /// Specular direction scale n_above/n(0) applied at photon entry
  /// (precomputed division, bit-identical to the runtime one).
  double entry_scale() const noexcept { return entry_scale_; }

  /// Mean free path 1/µt of layer i [mm] (uses the cached inverse;
  /// +inf in vacuum-like layers).
  double mean_free_path(std::size_t i) const noexcept;

 private:
  std::vector<double> z0_, z1_, n_, mut_, inv_mut_, mua_, albedo_, g_;
  std::vector<double> n_t_, n_ratio_, tir_cos_;  // 2 entries per layer
  std::vector<unsigned char> exterior_;
  double n_above_ = 1.0;
  double entry_scale_ = 1.0;
};

/// The safety margin subtracted from the exact critical cosine to make the
/// one-compare TIR test conservative. 1e-9 dwarfs the few-ulp (~1e-16)
/// rounding error of the sin_t chain inside fresnel() for every physical
/// index pair, while excluding only a ~1e-9-wide sliver of angles that
/// fall back to the exact expression.
inline constexpr double kTirCosMargin = 1e-9;

}  // namespace phodis::mc
