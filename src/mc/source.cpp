#include "mc/source.hpp"

#include <cctype>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace phodis::mc {

SourceType parse_source_type(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "delta" || lower == "laser" || lower == "pencil") {
    return SourceType::kDelta;
  }
  if (lower == "gaussian" || lower == "gauss") return SourceType::kGaussian;
  if (lower == "uniform" || lower == "flat" || lower == "flattop") {
    return SourceType::kUniform;
  }
  throw std::invalid_argument("unknown source type: " + name);
}

std::string to_string(SourceType type) {
  switch (type) {
    case SourceType::kDelta:
      return "delta";
    case SourceType::kGaussian:
      return "gaussian";
    case SourceType::kUniform:
      return "uniform";
  }
  return "?";
}

void SourceSpec::validate() const {
  if (type != SourceType::kDelta && !(radius_mm > 0.0)) {
    throw std::invalid_argument("SourceSpec: non-delta source needs radius > 0");
  }
  if (half_angle_deg < 0.0 || half_angle_deg >= 90.0) {
    throw std::invalid_argument(
        "SourceSpec: half angle must be in [0, 90) degrees");
  }
}

Source::Source(const SourceSpec& spec) : spec_(spec) { spec_.validate(); }

util::Vec3 Source::sample_position(util::Xoshiro256pp& rng) const {
  switch (spec_.type) {
    case SourceType::kDelta:
      return {0.0, 0.0, 0.0};
    case SourceType::kGaussian: {
      // Irradiance I(r) ∝ exp(-2 r^2 / w^2) with w the 1/e^2 radius:
      // each Cartesian coordinate is N(0, w/2).
      const double sigma = 0.5 * spec_.radius_mm;
      return {sigma * rng.normal(), sigma * rng.normal(), 0.0};
    }
    case SourceType::kUniform: {
      // Uniform over a disc: r = R sqrt(u) gives uniform area density.
      const double r = spec_.radius_mm * std::sqrt(rng.uniform());
      const double phi = 2.0 * std::numbers::pi * rng.uniform();
      return {r * std::cos(phi), r * std::sin(phi), 0.0};
    }
  }
  return {0.0, 0.0, 0.0};
}

util::Vec3 Source::sample_direction(util::Xoshiro256pp& rng) const {
  if (spec_.half_angle_deg == 0.0) return {0.0, 0.0, 1.0};
  // Uniform in solid angle over the cone: cos(theta) uniform in
  // [cos(theta_max), 1].
  const double cos_max =
      std::cos(spec_.half_angle_deg * std::numbers::pi / 180.0);
  const double cos_theta = cos_max + (1.0 - cos_max) * rng.uniform();
  const double sin_theta =
      std::sqrt(std::max(0.0, 1.0 - cos_theta * cos_theta));
  const double phi = 2.0 * std::numbers::pi * rng.uniform();
  return {sin_theta * std::cos(phi), sin_theta * std::sin(phi), cos_theta};
}

PhotonPacket Source::launch(util::Xoshiro256pp& rng) const {
  PhotonPacket photon;
  photon.pos = sample_position(rng);
  photon.dir = sample_direction(rng);
  photon.weight = 1.0;
  photon.layer = 0;
  return photon;
}

}  // namespace phodis::mc
