#include "mc/layer.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace phodis::mc {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::size_t LayeredMedium::layer_at(double z) const noexcept {
  // Linear scan: head models have ~5 layers, so this beats binary search
  // and keeps the common case branch-predictable.
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    if (z < layers_[i].z1) return i;
  }
  return layers_.empty() ? 0 : layers_.size() - 1;
}

double LayeredMedium::bottom() const noexcept {
  return layers_.empty() ? 0.0 : layers_.back().z1;
}

bool LayeredMedium::semi_infinite() const noexcept {
  return !layers_.empty() && std::isinf(layers_.back().z1);
}

double LayeredMedium::neighbour_index(std::size_t i,
                                      bool downward) const noexcept {
  if (downward) {
    return i + 1 < layers_.size() ? layers_[i + 1].props.n : n_below_;
  }
  return i > 0 ? layers_[i - 1].props.n : n_above_;
}

double LayeredMedium::total_thickness() const noexcept {
  double total = 0.0;
  for (const auto& layer : layers_) {
    if (std::isfinite(layer.z1)) total = layer.z1;
  }
  return total;
}

LayeredMediumBuilder& LayeredMediumBuilder::ambient_above(double n) {
  if (!(n >= 1.0)) {
    throw std::invalid_argument("ambient_above: n must be >= 1");
  }
  medium_.n_above_ = n;
  return *this;
}

LayeredMediumBuilder& LayeredMediumBuilder::ambient_below(double n) {
  if (!(n >= 1.0)) {
    throw std::invalid_argument("ambient_below: n must be >= 1");
  }
  medium_.n_below_ = n;
  return *this;
}

LayeredMediumBuilder& LayeredMediumBuilder::add_layer(
    std::string name, const OpticalProperties& props, double thickness_mm) {
  if (closed_) {
    throw std::logic_error("add_layer after a semi-infinite layer");
  }
  if (!(thickness_mm > 0.0) || !std::isfinite(thickness_mm)) {
    throw std::invalid_argument("add_layer: thickness must be finite and > 0");
  }
  props.validate(name);
  Layer layer;
  layer.name = std::move(name);
  layer.props = props;
  layer.z0 = cursor_z_;
  layer.z1 = cursor_z_ + thickness_mm;
  cursor_z_ = layer.z1;
  medium_.layers_.push_back(std::move(layer));
  return *this;
}

LayeredMediumBuilder& LayeredMediumBuilder::add_semi_infinite_layer(
    std::string name, const OpticalProperties& props) {
  if (closed_) {
    throw std::logic_error("add_semi_infinite_layer called twice");
  }
  props.validate(name);
  Layer layer;
  layer.name = std::move(name);
  layer.props = props;
  layer.z0 = cursor_z_;
  layer.z1 = kInf;
  medium_.layers_.push_back(std::move(layer));
  closed_ = true;
  return *this;
}

LayeredMedium LayeredMediumBuilder::build() const {
  if (medium_.layers_.empty()) {
    throw std::logic_error("LayeredMediumBuilder: no layers added");
  }
  return medium_;
}

}  // namespace phodis::mc
