// Fresnel reflection and Snell refraction at a planar interface between
// media of refractive indices n_i (incident side) and n_t (transmitted
// side). The paper's Fig. 1 pseudocode branches on the critical angle:
// beyond it the photon is internally reflected, otherwise it refracts.
//
// fresnel() is defined inline here: it runs on every interface crossing of
// the photon loop, and keeping the definition visible lets the compiler
// fold it into the kernel's specialized loop without LTO.
#pragma once

#include <algorithm>
#include <cmath>

namespace phodis::mc {

/// Grazing-incidence cutoff: cos θi below this takes fresnel()'s R = 1
/// branch WITHOUT the total_internal flag. The kernel's one-compare TIR
/// shortcut must exclude exactly this range (a grazing hit consumes a
/// reflect-vs-transmit draw at interior interfaces; TIR does not), so the
/// constant is shared rather than duplicated.
inline constexpr double kFresnelGrazeEps = 1e-12;

/// Result of evaluating an interface crossing.
struct FresnelResult {
  double reflectance = 1.0;     ///< unpolarised R(θi) in [0, 1]
  double cos_transmit = 0.0;    ///< |cos θt|; meaningful when not TIR
  bool total_internal = false;  ///< θi beyond the critical angle
};

/// Evaluate the unpolarised Fresnel reflectance for incidence cosine
/// `cos_i` = |cos θi| in [0, 1]. Handles the three analytic special cases
/// exactly: matched indices (R = 0), normal incidence, and grazing
/// incidence (R = 1).
inline FresnelResult fresnel(double n_i, double n_t, double cos_i) noexcept {
  FresnelResult result;
  cos_i = std::clamp(cos_i, 0.0, 1.0);

  if (n_i == n_t) {  // matched boundary: all light transmits, θt = θi
    result.reflectance = 0.0;
    result.cos_transmit = cos_i;
    return result;
  }

  if (cos_i > 1.0 - 1e-12) {  // normal incidence
    const double r = (n_i - n_t) / (n_i + n_t);
    result.reflectance = r * r;
    result.cos_transmit = 1.0;
    return result;
  }

  if (cos_i < kFresnelGrazeEps) {  // grazing incidence
    result.reflectance = 1.0;
    result.cos_transmit = 0.0;
    return result;
  }

  const double sin_i = std::sqrt(1.0 - cos_i * cos_i);
  const double sin_t = n_i * sin_i / n_t;  // Snell's law
  if (sin_t >= 1.0) {
    result.total_internal = true;
    result.reflectance = 1.0;
    result.cos_transmit = 0.0;
    return result;
  }
  const double cos_t = std::sqrt(1.0 - sin_t * sin_t);

  // Unpolarised reflectance, average of s and p polarisations, written in
  // the sum/difference-angle form used by MCML (numerically stable):
  //   R = 1/2 [ sin^2(θi-θt)/sin^2(θi+θt) ] [ 1 + cos^2(θi+θt)/cos^2(θi-θt) ]
  const double cos_ip = cos_i * cos_t - sin_i * sin_t;  // cos(θi+θt)
  const double cos_im = cos_i * cos_t + sin_i * sin_t;  // cos(θi-θt)
  const double sin_ip = sin_i * cos_t + cos_i * sin_t;  // sin(θi+θt)
  const double sin_im = sin_i * cos_t - cos_i * sin_t;  // sin(θi-θt)
  const double r = 0.5 * (sin_im * sin_im) *
                   (cos_im * cos_im + cos_ip * cos_ip) /
                   ((sin_ip * sin_ip) * (cos_im * cos_im));
  result.reflectance = std::clamp(r, 0.0, 1.0);
  result.cos_transmit = cos_t;
  return result;
}

/// Cosine of the critical angle for n_i > n_t; returns 0 when there is no
/// critical angle (n_i <= n_t), meaning every incidence angle transmits
/// partially.
double critical_cos(double n_i, double n_t) noexcept;

/// Specular reflectance at normal incidence, ((n1-n2)/(n1+n2))^2 — the
/// launch-time loss the kernel applies before the first step.
double specular_reflectance(double n1, double n2) noexcept;

}  // namespace phodis::mc
