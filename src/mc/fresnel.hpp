// Fresnel reflection and Snell refraction at a planar interface between
// media of refractive indices n_i (incident side) and n_t (transmitted
// side). The paper's Fig. 1 pseudocode branches on the critical angle:
// beyond it the photon is internally reflected, otherwise it refracts.
#pragma once

namespace phodis::mc {

/// Result of evaluating an interface crossing.
struct FresnelResult {
  double reflectance = 1.0;     ///< unpolarised R(θi) in [0, 1]
  double cos_transmit = 0.0;    ///< |cos θt|; meaningful when not TIR
  bool total_internal = false;  ///< θi beyond the critical angle
};

/// Evaluate the unpolarised Fresnel reflectance for incidence cosine
/// `cos_i` = |cos θi| in [0, 1]. Handles the three analytic special cases
/// exactly: matched indices (R = 0), normal incidence, and grazing
/// incidence (R = 1).
FresnelResult fresnel(double n_i, double n_t, double cos_i) noexcept;

/// Cosine of the critical angle for n_i > n_t; returns 0 when there is no
/// critical angle (n_i <= n_t), meaning every incidence angle transmits
/// partially.
double critical_cos(double n_i, double n_t) noexcept;

/// Specular reflectance at normal incidence, ((n1-n2)/(n1+n2))^2 — the
/// launch-time loss the kernel applies before the first step.
double specular_reflectance(double n1, double n2) noexcept;

}  // namespace phodis::mc
