#include "mc/kernel.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "mc/fresnel.hpp"
#include "mc/scatter.hpp"

namespace phodis::mc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDirEps = 1e-12;  // |dir.z| below this counts as horizontal

/// Advance the packet `distance` mm through a medium of index n.
void advance(PhotonPacket& photon, double distance, double n) noexcept {
  photon.pos += photon.dir * distance;
  photon.pathlength += distance;
  photon.optical_pathlength += distance * n;
  photon.max_depth = std::max(photon.max_depth, photon.pos.z);
}

}  // namespace

BoundaryModel parse_boundary_model(const std::string& name) {
  std::string lower;
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "probabilistic" || lower == "prob") {
    return BoundaryModel::kProbabilistic;
  }
  if (lower == "classical" || lower == "classic") {
    return BoundaryModel::kClassical;
  }
  throw std::invalid_argument("unknown boundary model: " + name);
}

std::string to_string(BoundaryModel model) {
  return model == BoundaryModel::kProbabilistic ? "probabilistic"
                                                : "classical";
}

void KernelConfig::validate() const {
  if (medium.layer_count() == 0) {
    throw std::invalid_argument("KernelConfig: medium has no layers");
  }
  source.validate();
  if (detector) detector->validate();
  roulette.validate();
  if (max_interactions == 0) {
    throw std::invalid_argument("KernelConfig: max_interactions must be > 0");
  }
  if (record_all_paths && !tally.enable_path_grid) {
    throw std::invalid_argument(
        "KernelConfig: record_all_paths requires the path grid");
  }
}

Kernel::Kernel(KernelConfig config)
    : config_(std::move(config)), source_(config_.source) {
  config_.tally.layer_count = config_.medium.layer_count();
  config_.validate();
}

SimulationTally Kernel::make_tally() const {
  return SimulationTally(config_.tally);
}

void Kernel::run(std::uint64_t photon_count, util::Xoshiro256pp& rng,
                 SimulationTally& tally) const {
  PathRecorder recorder;
  for (std::uint64_t i = 0; i < photon_count; ++i) {
    simulate_one(rng, tally, recorder, nullptr, 0);
  }
}

PhotonTrace Kernel::trace(util::Xoshiro256pp& rng,
                          std::size_t max_vertices) const {
  SimulationTally scratch = make_tally();
  PathRecorder recorder;
  PhotonTrace result;
  simulate_one(rng, scratch, recorder, &result.vertices, max_vertices);
  return result;
}

void Kernel::simulate_one(util::Xoshiro256pp& rng, SimulationTally& tally,
                          PathRecorder& recorder,
                          std::vector<util::Vec3>* trace_out,
                          std::size_t max_vertices) const {
  const LayeredMedium& medium = config_.medium;
  PhotonPacket photon = source_.launch(rng);
  tally.count_launch();
  recorder.clear();

  auto note_vertex = [&](const util::Vec3& p) {
    if (trace_out && trace_out->size() < max_vertices) {
      trace_out->push_back(p);
    }
  };
  note_vertex(photon.pos);

  // Specular loss and refraction at the air/tissue interface before the
  // first step ("initialise photon" in Fig. 1). For a collimated source
  // this is the normal-incidence ((n1-n2)/(n1+n2))^2; diverging sources
  // hit at an angle, so the full Fresnel expression applies and the
  // transmitted direction bends per Snell.
  const double n_out = medium.n_above();
  const double n_in = medium.layer(0).props.n;
  const FresnelResult entry = fresnel(n_out, n_in, photon.dir.z);
  tally.add_specular(photon.weight * entry.reflectance);
  photon.weight *= 1.0 - entry.reflectance;
  if (entry.total_internal || photon.weight <= 0.0) {
    photon.fate = PhotonFate::kReflectedSpecular;
    tally.record_max_depth(0.0, 1.0);
    return;
  }
  const double entry_scale = n_out / n_in;
  photon.dir.x *= entry_scale;
  photon.dir.y *= entry_scale;
  photon.dir.z = entry.cos_transmit;
  photon.dir = photon.dir.normalized();

  double s_left = 0.0;  // dimensionless step remaining across boundaries
  std::uint64_t interactions = 0;

  while (photon.alive()) {
    if (++interactions > config_.max_interactions) {
      tally.add_lost(photon.weight);
      photon.fate = PhotonFate::kMaxStepsExceeded;
      break;
    }

    const Layer& layer = medium.layer(photon.layer);
    const double mut = layer.props.mut();
    if (s_left <= 0.0) s_left = -std::log(rng.uniform_open0());

    // Distance to the layer interface along the direction of travel.
    const bool downward = photon.dir.z > 0.0;
    double d_boundary = kInf;
    if (photon.dir.z > kDirEps) {
      d_boundary = std::max(0.0, (layer.z1 - photon.pos.z) / photon.dir.z);
    } else if (photon.dir.z < -kDirEps) {
      d_boundary = std::max(0.0, (layer.z0 - photon.pos.z) / photon.dir.z);
    }

    const double s_phys = mut > 0.0 ? s_left / mut : kInf;

    if (!std::isfinite(d_boundary) && !std::isfinite(s_phys)) {
      // Horizontal flight in a non-interacting medium: the photon can
      // never reach an interface or interact again.
      tally.add_lost(photon.weight);
      photon.fate = PhotonFate::kMaxStepsExceeded;
      break;
    }

    if (d_boundary <= s_phys) {
      advance(photon, d_boundary, layer.props.n);
      note_vertex(photon.pos);
      s_left -= d_boundary * mut;
      if (s_left < 0.0) s_left = 0.0;
      if (handle_boundary(photon, downward, rng, tally, recorder)) break;
    } else {
      advance(photon, s_phys, layer.props.n);
      note_vertex(photon.pos);
      s_left = 0.0;

      // "update absorption and photon weight" — deposit W·µa/µt here.
      const double dw = photon.weight * layer.props.mua / mut;
      photon.weight -= dw;
      tally.add_absorption(photon.layer, dw);
      if (VoxelGrid3D* grid = tally.fluence_grid()) {
        grid->deposit(photon.pos, dw);
      }
      if (RadialTally* radial = tally.radial()) {
        radial->score_absorption(std::hypot(photon.pos.x, photon.pos.y),
                                 photon.pos.z, dw);
      }
      if (const VoxelGrid3D* grid = tally.path_grid()) {
        // Unit deposits: the path grid counts *visit frequency* (the
        // paper's "most common paths taken by the photons"), so every
        // detected path contributes uniformly along its length instead of
        // being biased toward its high-weight beginning.
        recorder.record(*grid, photon.pos, 1.0);
      }

      photon.dir = scatter_direction(photon.dir, layer.props.g, rng);
      ++photon.scatter_events;
    }

    // "if (weight too small) survive roulette" — applies after either
    // branch: classical boundary splitting also erodes the weight.
    if (photon.alive() && photon.weight < config_.roulette.threshold) {
      const double before = photon.weight;
      const double after = play_roulette(before, config_.roulette, rng);
      if (after == 0.0) {
        tally.add_roulette_loss(before);
        photon.fate = PhotonFate::kAbsorbed;
        break;
      }
      tally.add_roulette_gain(after - before);
      photon.weight = after;
    }
  }

  tally.record_max_depth(photon.max_depth, 1.0);
  if (config_.record_all_paths && photon.fate != PhotonFate::kDetected) {
    if (VoxelGrid3D* grid = tally.path_grid()) recorder.commit(*grid);
  }
}

bool Kernel::handle_boundary(PhotonPacket& photon, bool downward,
                             util::Xoshiro256pp& rng, SimulationTally& tally,
                             PathRecorder& recorder) const {
  const LayeredMedium& medium = config_.medium;
  const Layer& layer = medium.layer(photon.layer);
  const double n_i = layer.props.n;
  const double n_t = medium.neighbour_index(photon.layer, downward);
  const double cos_i = std::abs(photon.dir.z);
  const FresnelResult fr = fresnel(n_i, n_t, cos_i);

  const bool exterior_top = !downward && photon.layer == 0;
  const bool exterior_bottom = downward &&
                               photon.layer + 1 == medium.layer_count() &&
                               std::isfinite(layer.z1);

  auto reflect = [&photon]() { photon.dir.z = -photon.dir.z; };

  if (exterior_top || exterior_bottom) {
    if (fr.total_internal) {  // "if (photon angle > critical angle)"
      reflect();
      return false;
    }
    if (config_.boundary_model == BoundaryModel::kClassical) {
      // Deterministic partial transmission: (1-R)·W escapes now, R·W
      // keeps propagating inside.
      const double transmitted = photon.weight * (1.0 - fr.reflectance);
      bool detected = false;
      if (transmitted > 0.0) {
        if (exterior_top) {
          detected = finish_exit_top(photon, transmitted, tally, recorder);
        } else {
          finish_exit_bottom(photon, transmitted, tally);
        }
        photon.weight -= transmitted;
      }
      reflect();
      if (photon.weight <= 0.0) {
        photon.fate = detected              ? PhotonFate::kDetected
                      : exterior_top        ? PhotonFate::kReflectedDiffuse
                                            : PhotonFate::kTransmitted;
        return true;
      }
      // In classical mode the packet survives a detection event with its
      // reflected fraction and may be detected again later; each partial
      // escape has already been tallied.
      return false;
    }
    // Probabilistic: the whole packet either escapes or reflects.
    if (rng.uniform() < fr.reflectance) {
      reflect();
      return false;
    }
    if (exterior_top) {
      // "... and end": the whole packet leaves, detected or not.
      const bool detected =
          finish_exit_top(photon, photon.weight, tally, recorder);
      photon.fate = detected ? PhotonFate::kDetected
                             : PhotonFate::kReflectedDiffuse;
    } else {
      finish_exit_bottom(photon, photon.weight, tally);
      photon.fate = PhotonFate::kTransmitted;
    }
    return true;
  }

  // Interior interface between two tissue layers. Reflection is sampled
  // probabilistically in both boundary models (a single-packet tracker
  // cannot fork into two continuing packets).
  if (fr.total_internal || rng.uniform() < fr.reflectance) {
    reflect();
    return false;
  }

  // Refract: Snell's law preserves the tangential direction scaled by
  // n_i/n_t; the packet crosses into the adjacent layer.
  const double scale = n_i / n_t;
  photon.dir.x *= scale;
  photon.dir.y *= scale;
  photon.dir.z = downward ? fr.cos_transmit : -fr.cos_transmit;
  photon.dir = photon.dir.normalized();
  photon.layer = downward ? photon.layer + 1 : photon.layer - 1;
  return false;
}

bool Kernel::finish_exit_top(PhotonPacket& photon, double weight,
                             SimulationTally& tally,
                             PathRecorder& recorder) const {
  tally.add_diffuse_reflectance(weight);
  if (RadialTally* radial = tally.radial()) {
    radial->score_reflectance(std::hypot(photon.pos.x, photon.pos.y),
                              weight);
  }
  if (!config_.detector) return false;
  // "if (photon passed through detector) save path ..."
  if (config_.detector->accepts(photon.pos, photon.optical_pathlength)) {
    const double radius = std::hypot(photon.pos.x, photon.pos.y);
    tally.record_detection(weight, photon.optical_pathlength, radius,
                           photon.scatter_events);
    if (VoxelGrid3D* grid = tally.path_grid()) recorder.commit(*grid);
    return true;
  }
  return false;
}

void Kernel::finish_exit_bottom(PhotonPacket& photon, double weight,
                                SimulationTally& tally) const {
  tally.add_transmittance(weight);
  if (RadialTally* radial = tally.radial()) {
    radial->score_transmittance(std::hypot(photon.pos.x, photon.pos.y),
                                weight);
  }
}

}  // namespace phodis::mc
