#include "mc/kernel.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "mc/fresnel.hpp"
#include "mc/packet_kernel.hpp"
#include "mc/scatter.hpp"
#include "util/fastmath.hpp"

#if defined(PHODIS_OBS_KERNEL)
#include "obs/kernel_counters.hpp"
#endif

namespace phodis::mc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDirEps = 1e-12;  // |dir.z| below this counts as horizontal

}  // namespace

BoundaryModel parse_boundary_model(const std::string& name) {
  std::string lower;
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "probabilistic" || lower == "prob") {
    return BoundaryModel::kProbabilistic;
  }
  if (lower == "classical" || lower == "classic") {
    return BoundaryModel::kClassical;
  }
  throw std::invalid_argument("unknown boundary model: " + name);
}

std::string to_string(BoundaryModel model) {
  return model == BoundaryModel::kProbabilistic ? "probabilistic"
                                                : "classical";
}

KernelMode parse_kernel_mode(const std::string& name) {
  std::string lower;
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "scalar") return KernelMode::kScalar;
  if (lower == "packet" || lower == "simd") return KernelMode::kPacket;
  throw std::invalid_argument("unknown kernel mode: " + name);
}

std::string to_string(KernelMode mode) {
  return mode == KernelMode::kScalar ? "scalar" : "packet";
}

void KernelConfig::validate() const {
  if (medium.layer_count() == 0) {
    throw std::invalid_argument("KernelConfig: medium has no layers");
  }
  source.validate();
  if (detector) detector->validate();
  roulette.validate();
  if (max_interactions == 0) {
    throw std::invalid_argument("KernelConfig: max_interactions must be > 0");
  }
  if (record_all_paths && !tally.enable_path_grid) {
    throw std::invalid_argument(
        "KernelConfig: record_all_paths requires the path grid");
  }
  if (mode == KernelMode::kPacket) {
    if (boundary_model != BoundaryModel::kProbabilistic) {
      throw std::invalid_argument(
          "KernelConfig: packet mode supports only the probabilistic "
          "boundary model");
    }
    if (tally.enable_path_grid || record_all_paths) {
      throw std::invalid_argument(
          "KernelConfig: packet mode does not support the path grid "
          "(per-lane deposit replay is a scalar-loop feature)");
    }
    for (std::size_t i = 0; i < medium.layer_count(); ++i) {
      const OpticalProperties& props = medium.layer(i).props;
      if (!(props.mua + props.mus > 0.0)) {
        throw std::invalid_argument(
            "KernelConfig: packet mode requires interacting layers "
            "(every layer µt > 0)");
      }
    }
  }
}

Kernel::Kernel(KernelConfig config)
    : config_(std::move(config)), source_(config_.source) {
  config_.tally.layer_count = config_.medium.layer_count();
  config_.validate();
  compiled_ = CompiledMedium(config_.medium);
}

SimulationTally Kernel::make_tally() const {
  return SimulationTally(config_.tally);
}

void Kernel::run(std::uint64_t photon_count, util::Xoshiro256pp& rng,
                 SimulationTally& tally) const {
  if (config_.mode == KernelMode::kPacket) {
    run_packet(*this, photon_count, rng, tally);
    return;
  }
  const SimFn fn = select_sim_fn(tally, /*trace=*/false);
  PathRecorder recorder;
  for (std::uint64_t i = 0; i < photon_count; ++i) {
    (this->*fn)(rng, tally, recorder, nullptr, 0);
  }
}

PhotonTrace Kernel::trace(util::Xoshiro256pp& rng,
                          std::size_t max_vertices) const {
  SimulationTally scratch = make_tally();
  const SimFn fn = select_sim_fn(scratch, /*trace=*/true);
  PathRecorder recorder;
  PhotonTrace result;
  (this->*fn)(rng, scratch, recorder, &result, max_vertices);
  return result;
}

void Kernel::CompiledRun::operator()(std::uint64_t photon_count,
                                     util::Xoshiro256pp& rng,
                                     SimulationTally& tally) const {
  // One mode test per shard call (thousands of photons), so the packet
  // dispatch costs the scalar path nothing measurable and the shard
  // executors need no mode plumbing of their own.
  if (kernel_->config_.mode == KernelMode::kPacket) {
    run_packet(*kernel_, photon_count, rng, tally);
    return;
  }
  PathRecorder recorder;
  for (std::uint64_t i = 0; i < photon_count; ++i) {
    (kernel_->*fn_)(rng, tally, recorder, nullptr, 0);
  }
}

Kernel::CompiledRun Kernel::compiled_run() const noexcept {
  return CompiledRun(this, select_sim_fn_from_config(/*trace=*/false));
}

// ---------------------------------------------------------------------------
// The specialized photon loop.
//
// BITWISE-IDENTITY CONTRACT: every specialization must draw the same rng
// sequence and evaluate the same FP expressions, in the same order, as the
// reference single-loop kernel this replaced (pre-compiled-path history;
// pinned by tests/test_kernel_golden.cpp). Rules applied below:
//  * cached per-layer scalars (lz0..lg) hold the same doubles the Layer
//    struct held — caching is a load-elimination, not a re-derivation;
//  * s/µt and W·µa/µt keep their divisions (multiplying by a precomputed
//    inverse rounds differently);
//  * the boundary-distance filter and the one-compare TIR test only
//    short-circuit work whose outcome is proven, never approximate it;
//  * feature blocks compile away entirely (if constexpr), and the features
//    they guard are the only consumers of the values they skip.
// ---------------------------------------------------------------------------

template <BoundaryModel BM, bool F, bool R, bool P, bool D, bool T>
void Kernel::simulate_one_impl(util::Xoshiro256pp& rng,
                               SimulationTally& tally, PathRecorder& recorder,
                               PhotonTrace* trace_out,
                               std::size_t max_vertices) const {
  const CompiledMedium& medium = compiled_;
  PhotonPacket photon = source_.launch(rng);
  tally.count_launch();
  if constexpr (P) recorder.clear();

  VoxelGrid3D* fluence = nullptr;
  RadialTally* radial = nullptr;
  VoxelGrid3D* path_grid = nullptr;
  if constexpr (F) fluence = tally.fluence_grid();
  if constexpr (R) radial = tally.radial();
  if constexpr (P) path_grid = tally.path_grid();
  // Register-resident scoring handle for the per-interaction radial
  // deposits (the rare exit-surface scores below go through the tally).
  std::optional<RadialTally::Scorer> radial_scorer;
  if constexpr (R) radial_scorer.emplace(*radial);

  const auto note_vertex = [&](const util::Vec3& p) {
    if constexpr (T) {
      if (trace_out && trace_out->vertices.size() < max_vertices) {
        trace_out->vertices.push_back(p);
      }
    } else {
      (void)p;
    }
  };
  const auto note_final_state = [&](const PhotonPacket& packet) {
    if constexpr (T) {
      if (trace_out) {
        trace_out->fate = packet.fate;
        trace_out->final_weight = packet.weight;
        trace_out->optical_pathlength = packet.optical_pathlength;
      }
    } else {
      (void)packet;
    }
  };
  note_vertex(photon.pos);

  // Specular loss and refraction at the air/tissue interface before the
  // first step ("initialise photon" in Fig. 1). For a collimated source
  // this is the normal-incidence ((n1-n2)/(n1+n2))^2; diverging sources
  // hit at an angle, so the full Fresnel expression applies and the
  // transmitted direction bends per Snell.
  const FresnelResult entry =
      fresnel(medium.n_above(), medium.n(0), photon.dir.z);
  tally.add_specular(photon.weight * entry.reflectance);
  photon.weight *= 1.0 - entry.reflectance;
  if (entry.total_internal || photon.weight <= 0.0) {
    photon.fate = PhotonFate::kReflectedSpecular;
    tally.record_max_depth(0.0, 1.0);
    note_final_state(photon);
#if defined(PHODIS_OBS_KERNEL)
    obs::KernelCounters::global().photons_launched.fetch_add(
        1, std::memory_order_relaxed);
#endif
    return;
  }
  const double entry_scale = medium.entry_scale();
  photon.dir.x *= entry_scale;
  photon.dir.y *= entry_scale;
  photon.dir.z = entry.cos_transmit;
  photon.dir = photon.dir.normalized();

  double s_left = 0.0;  // dimensionless step remaining across boundaries
  std::uint64_t interactions = 0;

  // Aliasing-proof local copies of loop-invariant config and of the
  // current layer's optics row (reloaded only on a layer change).
  const std::uint64_t max_inter = config_.max_interactions;
  const double roulette_threshold = config_.roulette.threshold;
  std::size_t layer = photon.layer;
  double lz0 = medium.z0(layer), lz1 = medium.z1(layer);
  double ln = medium.n(layer), lmut = medium.mut(layer);
  double lmua = medium.mua(layer), lg = medium.g(layer);

  while (photon.alive()) {
    if (++interactions > max_inter) {
      tally.add_lost(photon.weight);
      photon.fate = PhotonFate::kMaxStepsExceeded;
      break;
    }

    const double mut = lmut;
    if (s_left <= 0.0) s_left = -std::log(rng.uniform_open0());

    const bool downward = photon.dir.z > 0.0;
    const double z_target = downward ? lz1 : lz0;
    const double s_phys = mut > 0.0 ? s_left / mut : kInf;

    // Boundary-distance filter: |dir.z| <= 1, so the true distance to the
    // interface, (z_target - pos.z)/dir.z, is at least the signed z-gap
    // (dividing by a magnitude <= 1 can only move a correctly-rounded
    // quotient further from zero, never closer). When the gap alone
    // already exceeds s_phys, the interface is unreachable this step and
    // the division, max() and finiteness tests are skipped entirely; any
    // other case — including photons displaced an ulp outside their layer
    // — falls through to the exact reference expressions.
    const double dz = z_target - photon.pos.z;
    bool interact = downward ? dz > s_phys : dz < -s_phys;
    double d_boundary = kInf;
    if (!interact) {
      if (std::abs(photon.dir.z) > kDirEps) {
        d_boundary = std::max(0.0, (z_target - photon.pos.z) / photon.dir.z);
      }
      if (!std::isfinite(d_boundary) && !std::isfinite(s_phys)) {
        // Horizontal flight in a non-interacting medium: the photon can
        // never reach an interface or interact again.
        tally.add_lost(photon.weight);
        photon.fate = PhotonFate::kMaxStepsExceeded;
        break;
      }
      interact = !(d_boundary <= s_phys);
    }

    if (!interact) {
      // --- interface crossing ----------------------------------------------
      photon.pos += photon.dir * d_boundary;
      if constexpr (T) photon.pathlength += d_boundary;
      if constexpr (D || T) photon.optical_pathlength += d_boundary * ln;
      photon.max_depth = std::max(photon.max_depth, photon.pos.z);
      note_vertex(photon.pos);
      s_left -= d_boundary * mut;
      if (s_left < 0.0) s_left = 0.0;

      const int d = downward ? 1 : 0;
      const double cos_i = std::abs(photon.dir.z);
      bool left_tissue = false;
      if (cos_i >= kFresnelGrazeEps && cos_i <= medium.tir_cos(layer, d)) {
        // One-compare TIR: provably beyond the critical angle, reflect
        // without evaluating Fresnel (the exact path below reaches the
        // same reflection through fresnel()'s total_internal branch, at
        // the cost of a sqrt; neither consumes randomness).
        photon.dir.z = -photon.dir.z;
      } else {
        const FresnelResult fr =
            fresnel(ln, medium.neighbour_n(layer, d), cos_i);
        if (medium.exterior(layer, d)) {
          if (fr.total_internal) {  // "if (photon angle > critical angle)"
            photon.dir.z = -photon.dir.z;
          } else if constexpr (BM == BoundaryModel::kClassical) {
            // Deterministic partial transmission: (1-R)·W escapes now, R·W
            // keeps propagating inside.
            const double transmitted = photon.weight * (1.0 - fr.reflectance);
            bool detected = false;
            if (transmitted > 0.0) {
              if (!downward) {
                detected = finish_exit_top_impl<R, P, D>(
                    photon, transmitted, tally, recorder, radial, path_grid);
              } else {
                finish_exit_bottom_impl<R>(photon, transmitted, tally,
                                           radial);
              }
              photon.weight -= transmitted;
            }
            photon.dir.z = -photon.dir.z;
            if (photon.weight <= 0.0) {
              photon.fate = detected    ? PhotonFate::kDetected
                            : !downward ? PhotonFate::kReflectedDiffuse
                                        : PhotonFate::kTransmitted;
              left_tissue = true;
            }
            // Otherwise the packet survives a detection event with its
            // reflected fraction and may be detected again later; each
            // partial escape has already been tallied.
          } else {
            // Probabilistic: the whole packet either escapes or reflects.
            if (rng.uniform() < fr.reflectance) {
              photon.dir.z = -photon.dir.z;
            } else if (!downward) {
              // "... and end": the whole packet leaves, detected or not.
              const bool detected = finish_exit_top_impl<R, P, D>(
                  photon, photon.weight, tally, recorder, radial, path_grid);
              photon.fate = detected ? PhotonFate::kDetected
                                     : PhotonFate::kReflectedDiffuse;
              left_tissue = true;
            } else {
              finish_exit_bottom_impl<R>(photon, photon.weight, tally,
                                         radial);
              photon.fate = PhotonFate::kTransmitted;
              left_tissue = true;
            }
          }
          // phodis-lint: allow(D7) draw is intentionally skipped at total internal reflection — both MCML and our golden hashes pin this exact draw sequence; hoisting it would consume one extra uniform per TIR event and change every tally downstream
        } else if (fr.total_internal || rng.uniform() < fr.reflectance) {
          // Interior interface between two tissue layers. Reflection is
          // sampled probabilistically in both boundary models (a
          // single-packet tracker cannot fork into two continuing packets).
          photon.dir.z = -photon.dir.z;
        } else {
          // Refract: Snell's law preserves the tangential direction scaled
          // by n_i/n_t; the packet crosses into the adjacent layer.
          const double scale = medium.n_ratio(layer, d);
          photon.dir.x *= scale;
          photon.dir.y *= scale;
          photon.dir.z = downward ? fr.cos_transmit : -fr.cos_transmit;
          photon.dir = photon.dir.normalized();
          layer = downward ? layer + 1 : layer - 1;
          photon.layer = layer;
          lz0 = medium.z0(layer);
          lz1 = medium.z1(layer);
          ln = medium.n(layer);
          lmut = medium.mut(layer);
          lmua = medium.mua(layer);
          lg = medium.g(layer);
        }
      }
      if (left_tissue) break;
    } else {
      // --- interaction site -------------------------------------------------
      photon.pos += photon.dir * s_phys;
      if constexpr (T) photon.pathlength += s_phys;
      if constexpr (D || T) photon.optical_pathlength += s_phys * ln;
      photon.max_depth = std::max(photon.max_depth, photon.pos.z);
      note_vertex(photon.pos);
      s_left = 0.0;

      // "update absorption and photon weight" — deposit W·µa/µt here.
      const double dw = photon.weight * lmua / mut;
      photon.weight -= dw;
      tally.add_absorption(layer, dw);
      if constexpr (F) {
        fluence->deposit(photon.pos, dw);
      }
      if constexpr (R) {
        radial_scorer->absorption(
            util::fast_radius(photon.pos.x, photon.pos.y), photon.pos.z, dw);
      }
      if constexpr (P) {
        // Unit deposits: the path grid counts *visit frequency* (the
        // paper's "most common paths taken by the photons"), so every
        // detected path contributes uniformly along its length instead of
        // being biased toward its high-weight beginning.
        recorder.record(*path_grid, photon.pos, 1.0);
      }

      photon.dir = deflect(photon.dir, sample_hg_cosine(lg, rng), rng);
      if constexpr (D) ++photon.scatter_events;
    }

    // "if (weight too small) survive roulette" — applies after either
    // branch: classical boundary splitting also erodes the weight. (Any
    // photon reaching this point is alive: every terminal outcome above
    // breaks out of the loop first.)
    if (photon.weight < roulette_threshold) {
      const double before = photon.weight;
      const double after = play_roulette(before, config_.roulette, rng);
      if (after == 0.0) {
        tally.add_roulette_loss(before);
        photon.fate = PhotonFate::kAbsorbed;
        break;
      }
      tally.add_roulette_gain(after - before);
      photon.weight = after;
    }
  }

  tally.record_max_depth(photon.max_depth, 1.0);
  note_final_state(photon);
#if defined(PHODIS_OBS_KERNEL)
  // Out-of-band flush: a few relaxed adds per *photon*, accumulated in the
  // locals above. Nothing here reads the RNG or writes the tally, so the
  // bitwise contract holds whether or not this block is compiled
  // (pinned by the golden-hash tests, which run with the toggle on).
  {
    obs::KernelCounters& kc = obs::KernelCounters::global();
    kc.photons_launched.fetch_add(1, std::memory_order_relaxed);
    kc.interactions.fetch_add(interactions, std::memory_order_relaxed);
    if (photon.fate == PhotonFate::kAbsorbed) {
      kc.roulette_terminations.fetch_add(1, std::memory_order_relaxed);
    }
  }
#endif
  if constexpr (P) {
    if (config_.record_all_paths && photon.fate != PhotonFate::kDetected) {
      recorder.commit(*path_grid);
    }
  }
}

template <bool R, bool P, bool D>
bool Kernel::finish_exit_top_impl(PhotonPacket& photon, double weight,
                                  SimulationTally& tally,
                                  PathRecorder& recorder, RadialTally* radial,
                                  VoxelGrid3D* path_grid) const {
  tally.add_diffuse_reflectance(weight);
  if constexpr (R) {
    radial->score_reflectance(util::fast_radius(photon.pos.x, photon.pos.y),
                              weight);
  }
  if constexpr (D) {
    // "if (photon passed through detector) save path ..."
    if (config_.detector->accepts(photon.pos, photon.optical_pathlength)) {
      const double radius = util::fast_radius(photon.pos.x, photon.pos.y);
      tally.record_detection(weight, photon.optical_pathlength, radius,
                             photon.scatter_events);
      if constexpr (P) recorder.commit(*path_grid);
      return true;
    }
  } else {
    (void)recorder;
    (void)path_grid;
  }
  return false;
}

template <bool R>
void Kernel::finish_exit_bottom_impl(PhotonPacket& photon, double weight,
                                     SimulationTally& tally,
                                     RadialTally* radial) const {
  tally.add_transmittance(weight);
  if constexpr (R) {
    radial->score_transmittance(
        util::fast_radius(photon.pos.x, photon.pos.y), weight);
  } else {
    (void)photon;
    (void)radial;
  }
}

// ---------------------------------------------------------------------------
// Dispatch table: index bits are (BM << 5) | F << 4 | R << 3 | P << 2 |
// D << 1 | T. All 64 specializations are instantiated here, in this TU.
// ---------------------------------------------------------------------------

template <std::size_t I>
Kernel::SimFn Kernel::sim_table_entry() noexcept {
  constexpr BoundaryModel bm = (I & 32) != 0 ? BoundaryModel::kClassical
                                             : BoundaryModel::kProbabilistic;
  return &Kernel::simulate_one_impl<bm, (I & 16) != 0, (I & 8) != 0,
                                    (I & 4) != 0, (I & 2) != 0, (I & 1) != 0>;
}

Kernel::SimFn Kernel::sim_fn_at(std::size_t index) noexcept {
  static const std::array<SimFn, 64> table =
      []<std::size_t... Is>(std::index_sequence<Is...>) {
        return std::array<SimFn, 64>{sim_table_entry<Is>()...};
      }(std::make_index_sequence<64>{});
  return table[index];
}

namespace {

/// The single source of the index-bit layout: both selectors go through
/// here, so the tally-derived and config-derived paths cannot drift.
std::size_t sim_index(BoundaryModel model, bool fluence, bool radial,
                      bool path, bool detector, bool trace) noexcept {
  std::size_t index = 0;
  if (model == BoundaryModel::kClassical) index |= 32;
  if (fluence) index |= 16;
  if (radial) index |= 8;
  if (path) index |= 4;
  if (detector) index |= 2;
  if (trace) index |= 1;
  return index;
}

}  // namespace

Kernel::SimFn Kernel::select_sim_fn(const SimulationTally& tally,
                                    bool trace) const noexcept {
  return sim_fn_at(sim_index(
      config_.boundary_model, tally.fluence_grid() != nullptr,
      tally.radial() != nullptr, tally.path_grid() != nullptr,
      config_.detector.has_value(), trace));
}

Kernel::SimFn Kernel::select_sim_fn_from_config(bool trace) const noexcept {
  return sim_fn_at(sim_index(
      config_.boundary_model, config_.tally.enable_fluence_grid,
      config_.tally.enable_radial, config_.tally.enable_path_grid,
      config_.detector.has_value(), trace));
}

}  // namespace phodis::mc
