#include "mc/compiled_medium.hpp"

#include <cmath>
#include <limits>

#include "mc/fresnel.hpp"

namespace phodis::mc {

CompiledMedium::CompiledMedium(const LayeredMedium& medium) {
  const std::size_t count = medium.layer_count();
  z0_.reserve(count);
  z1_.reserve(count);
  n_.reserve(count);
  mut_.reserve(count);
  inv_mut_.reserve(count);
  mua_.reserve(count);
  albedo_.reserve(count);
  g_.reserve(count);
  n_t_.reserve(2 * count);
  n_ratio_.reserve(2 * count);
  tir_cos_.reserve(2 * count);
  exterior_.reserve(2 * count);

  n_above_ = medium.n_above();
  for (std::size_t i = 0; i < count; ++i) {
    const Layer& layer = medium.layer_unchecked(i);
    z0_.push_back(layer.z0);
    z1_.push_back(layer.z1);
    n_.push_back(layer.props.n);
    mut_.push_back(layer.props.mut());
    inv_mut_.push_back(layer.props.mut() > 0.0
                           ? 1.0 / layer.props.mut()
                           : std::numeric_limits<double>::infinity());
    mua_.push_back(layer.props.mua);
    albedo_.push_back(layer.props.albedo());
    g_.push_back(layer.props.g);

    for (int d = 0; d < 2; ++d) {
      const bool downward = d == 1;
      const double n_t = medium.neighbour_index(i, downward);
      n_t_.push_back(n_t);
      n_ratio_.push_back(layer.props.n / n_t);
      if (layer.props.n > n_t) {
        tir_cos_.push_back(critical_cos(layer.props.n, n_t) - kTirCosMargin);
      } else {
        tir_cos_.push_back(-1.0);  // no critical angle: compare never passes
      }
      const bool exterior =
          downward ? (i + 1 == count && std::isfinite(layer.z1)) : (i == 0);
      exterior_.push_back(exterior ? 1 : 0);
    }
  }
  if (count > 0) {
    entry_scale_ = n_above_ / n_[0];
  }
}

double CompiledMedium::mean_free_path(std::size_t i) const noexcept {
  return inv_mut_[i];
}

}  // namespace phodis::mc
