// Light sources. The paper's feature list names three illumination
// footprints — delta (laser), Gaussian, and uniform — all normally incident
// on the surface at the origin. The footprint is what §4 of the paper varies
// to show its effect on the photon distribution in the head.
#pragma once

#include <cstdint>
#include <string>

#include "mc/photon.hpp"
#include "util/rng.hpp"

namespace phodis::mc {

enum class SourceType : std::uint8_t {
  kDelta = 0,  ///< infinitesimal pencil beam at the origin (laser)
  kGaussian,   ///< Gaussian irradiance profile, `radius` = 1/e^2 beam radius
  kUniform,    ///< uniform (flat-top) disc of the given radius
};

/// Parse "delta"/"laser", "gaussian", "uniform"/"flat" (case-insensitive);
/// throws std::invalid_argument otherwise.
SourceType parse_source_type(const std::string& name);
std::string to_string(SourceType type);

struct SourceSpec {
  SourceType type = SourceType::kDelta;
  double radius_mm = 0.0;  ///< footprint parameter; ignored for kDelta

  /// Half-angle of the launch cone in degrees (0 = collimated along +z).
  /// Models the numerical aperture of a source fibre: directions are
  /// sampled uniformly in solid angle within the cone.
  double half_angle_deg = 0.0;

  /// Validates (radius > 0 for non-delta types; 0 <= half angle < 90).
  void validate() const;
};

/// Samples initial photon positions for a source spec. Direction is always
/// +z (normal incidence), weight 1; the kernel applies specular loss.
class Source {
 public:
  explicit Source(const SourceSpec& spec);

  /// Launch position on the z = 0 surface.
  util::Vec3 sample_position(util::Xoshiro256pp& rng) const;

  /// Launch direction: +z when collimated, otherwise uniform in solid
  /// angle within the configured cone.
  util::Vec3 sample_direction(util::Xoshiro256pp& rng) const;

  /// Fresh photon packet at a sampled position and direction.
  PhotonPacket launch(util::Xoshiro256pp& rng) const;

  const SourceSpec& spec() const noexcept { return spec_; }

 private:
  SourceSpec spec_;
};

}  // namespace phodis::mc
