#include "net/server.hpp"

#include <exception>
#include <iterator>
#include <utility>

#include "net/frame.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace phodis::net {

namespace {
/// Accept poll period: bounds how long shutdown() waits on the accept
/// thread.
constexpr std::int64_t kAcceptPollMs = 50;

/// Server-side wire counters, resolved once (function-local statics are
/// thread-safe); labels keep server and client totals apart in a merged
/// cluster report.
struct WireCounters {
  obs::Counter& frames_sent;
  obs::Counter& frames_received;
  obs::Counter& frames_dropped;
  obs::Counter& bytes_sent;
  obs::Counter& bytes_received;
  obs::Counter& torn_frames;
  obs::Counter& malformed_messages;
  obs::Counter& connections;
};

WireCounters& wire_counters() {
  static WireCounters counters{
      obs::registry().counter("net_frames_sent_total", {{"side", "server"}}),
      obs::registry().counter("net_frames_received_total",
                              {{"side", "server"}}),
      obs::registry().counter("net_frames_dropped_total",
                              {{"side", "server"}}),
      obs::registry().counter("net_bytes_sent_total", {{"side", "server"}}),
      obs::registry().counter("net_bytes_received_total",
                              {{"side", "server"}}),
      obs::registry().counter("net_torn_frames_total", {{"side", "server"}}),
      obs::registry().counter("net_malformed_messages_total",
                              {{"side", "server"}}),
      obs::registry().counter("net_connections_total", {{"side", "server"}}),
  };
  return counters;
}
}  // namespace

Server::Server(const Address& address, const dist::FaultSpec& faults,
               std::string endpoint)
    : endpoint_(std::move(endpoint)), drops_(faults) {
  listener_ = Listener::listen(address);
  address_ = listener_.local_address();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { shutdown(); }

void Server::accept_loop() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) return;
    }
    auto socket = listener_.accept(kAcceptPollMs);
    if (!socket) continue;
    wire_counters().connections.inc();
    auto connection = std::make_shared<Connection>();
    connection->socket = std::move(*socket);
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;  // raced with shutdown; drop the connection
    connections_.push_back(connection);
    connection->reader =
        std::thread([this, connection] { reader_loop(connection); });
  }
}

void Server::reader_loop(const std::shared_ptr<Connection>& connection) {
  while (true) {
    std::optional<std::vector<std::uint8_t>> frame;
    try {
      frame = read_frame(connection->socket);
    } catch (const FramingError& error) {
      util::log_warn() << "net::Server: dropping connection: "
                       << error.what();
      wire_counters().torn_frames.inc();
      frame.reset();
    }
    if (!frame) break;  // EOF or torn frame: connection is done
    wire_counters().frames_received.inc();
    wire_counters().bytes_received.inc(frame->size());
    dist::Message msg;
    try {
      msg = dist::Message::decode(*frame);
    } catch (const std::exception& error) {
      // A worker that frames garbage must never take down the server.
      util::log_warn() << "net::Server: dropping connection on malformed "
                          "message: "
                       << error.what();
      wire_counters().malformed_messages.inc();
      break;
    }
    {
      // Route replies for this sender to the connection it last used.
      std::lock_guard<std::mutex> lock(mutex_);
      routes_[msg.sender] = connection;
    }
    inbox_.deliver(endpoint_, std::move(msg));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  connection->dead = true;
  for (auto it = routes_.begin(); it != routes_.end();) {
    it = (it->second == connection) ? routes_.erase(it) : std::next(it);
  }
}

void Server::send(const std::string& endpoint, const dist::Message& msg) {
  const std::vector<std::uint8_t> frame = msg.encode();
  std::shared_ptr<Connection> connection;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    ++frames_sent_;
    bytes_sent_ += frame.size();
    wire_counters().frames_sent.inc();
    wire_counters().bytes_sent.inc(frame.size());
    if (drops_.should_drop()) {
      ++frames_dropped_;
      wire_counters().frames_dropped.inc();
      return;
    }
    const auto it = routes_.find(endpoint);
    if (it == routes_.end() || it->second->dead) {
      // No live connection for that name (worker died or never spoke):
      // the frame is lost, the protocol's retries handle it.
      return;
    }
    connection = it->second;
  }
  std::lock_guard<std::mutex> write_lock(connection->write_mutex);
  // phodis-lint: allow(D5) per-connection write mutex serialising frames to one peer; never held with server mutex_
  if (!write_frame(connection->socket, frame)) {
    util::log_debug() << "net::Server: send to \"" << endpoint
                      << "\" failed (peer gone)";
  }
}

std::optional<dist::Message> Server::try_receive(const std::string& endpoint) {
  return inbox_.try_pop(endpoint);
}

std::optional<dist::Message> Server::receive(const std::string& endpoint,
                                             std::int64_t timeout_ms) {
  return inbox_.pop(endpoint, timeout_ms);
}

void Server::shutdown() {
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
    connections = connections_;
  }
  inbox_.close();
  for (const auto& connection : connections) {
    connection->socket.shutdown_both();  // wakes its reader with EOF
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (const auto& connection : connections) {
    if (connection->reader.joinable()) connection->reader.join();
  }
  listener_.close();
}

bool Server::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stop_;
}

std::vector<std::string> Server::connected_endpoints() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(routes_.size());
  for (const auto& [name, connection] : routes_) {
    if (!connection->dead) names.push_back(name);
  }
  return names;
}

std::uint64_t Server::frames_sent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_sent_;
}

std::uint64_t Server::frames_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_dropped_;
}

std::uint64_t Server::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_sent_;
}

}  // namespace phodis::net
