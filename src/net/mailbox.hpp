// Named FIFO queues of decoded messages, shared by the socket
// transports: reader threads deliver, protocol loops pop. Mirrors the
// blocking semantics of LoopbackTransport's queues (receive waits on a
// condition variable; close() wakes everyone for good).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "dist/message.hpp"

namespace phodis::net {

class Mailbox {
 public:
  /// Append to `endpoint`'s queue and wake blocked receivers. No-op
  /// after close().
  void deliver(const std::string& endpoint, dist::Message msg) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      queues_[endpoint].push_back(std::move(msg));
    }
    cv_.notify_all();
  }

  std::optional<dist::Message> try_pop(const std::string& endpoint) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return std::nullopt;
    auto it = queues_.find(endpoint);
    if (it == queues_.end() || it->second.empty()) return std::nullopt;
    dist::Message msg = std::move(it->second.front());
    it->second.pop_front();
    return msg;
  }

  std::optional<dist::Message> pop(const std::string& endpoint,
                                   std::int64_t timeout_ms) {
    std::unique_lock<std::mutex> lock(mutex_);
    auto& queue = queues_[endpoint];
    cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                 [&] { return closed_ || !queue.empty(); });
    if (closed_ || queue.empty()) return std::nullopt;
    dist::Message msg = std::move(queue.front());
    queue.pop_front();
    return msg;
  }

  /// Permanently stop traffic and wake every blocked pop().
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, std::deque<dist::Message>> queues_;
  bool closed_ = false;
};

}  // namespace phodis::net
