// net::Server — the socket-side DataManager transport.
//
// One accept loop plus one reader thread per connection. Every inbound
// frame is decoded at the edge (a malformed frame drops that connection,
// never the server) and delivered to the server's own mailbox endpoint;
// the frame's sender name is mapped to its connection so that
// send("w3", reply) finds the right socket. A name re-appearing on a new
// connection (worker restart, reconnect) simply remaps — last writer
// wins, exactly like the paper's clients re-registering with the
// DataManager after a reboot.
//
// Implements dist::Transport, so dist::run_server_loop() drives a real
// cluster with the same code that drives the in-process loopback.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/transport.hpp"
#include "net/mailbox.hpp"
#include "net/socket.hpp"

namespace phodis::net {

class Server final : public dist::Transport {
 public:
  /// Bind `address` and start accepting. `endpoint` is the name the
  /// server loop receives on (the protocol's well-known server mailbox).
  explicit Server(const Address& address,
                  const dist::FaultSpec& faults = {},
                  std::string endpoint = "server");
  ~Server() override;

  /// The bound address (ephemeral TCP ports resolved).
  const Address& local_address() const noexcept { return address_; }

  /// Endpoint names currently mapped to a live connection.
  std::vector<std::string> connected_endpoints() const;

  // dist::Transport
  void send(const std::string& endpoint, const dist::Message& msg) override;
  std::optional<dist::Message> try_receive(
      const std::string& endpoint) override;
  std::optional<dist::Message> receive(const std::string& endpoint,
                                       std::int64_t timeout_ms) override;
  void shutdown() override;
  bool closed() const override;
  std::uint64_t frames_sent() const override;
  std::uint64_t frames_dropped() const override;
  std::uint64_t bytes_sent() const override;

 private:
  struct Connection {
    Socket socket;
    std::mutex write_mutex;
    std::thread reader;
    bool dead = false;  // reader exited (EOF, torn frame, or shutdown)
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& connection);

  Address address_;
  Listener listener_;
  Mailbox inbox_;
  std::string endpoint_;

  mutable std::mutex mutex_;  // guards connections_, routes_, counters, drops_
  std::vector<std::shared_ptr<Connection>> connections_;
  std::map<std::string, std::shared_ptr<Connection>> routes_;
  dist::DropInjector drops_;
  bool stop_ = false;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;

  std::thread accept_thread_;
};

}  // namespace phodis::net
