// net::Client — the worker-side socket transport.
//
// One connection to the server, lazily (re)established: a failed connect
// or a broken pipe costs the frame in flight, never the worker — the
// protocol's RequestWork retries carry the recovery. Reconnects back off
// exponentially; once `ReconnectPolicy::max_attempts` consecutive
// attempts fail the client closes itself (closed() goes true) so a
// worker whose server is truly gone exits instead of spinning — the
// paper's non-dedicated clients behave the same way when the DataManager
// host disappears.
//
// Implements dist::Transport: the link is point-to-point, so send()
// targets the server and receive() pops the link's single inbox
// regardless of the endpoint names passed — which also keeps a worker
// receiving after it renames itself (death injection rebirths as
// "name#N"; the server routes replies by sender name, the frames still
// arrive on this one connection).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "dist/transport.hpp"
#include "net/mailbox.hpp"
#include "net/socket.hpp"

namespace phodis::net {

struct ReconnectPolicy {
  /// Consecutive failed connection attempts before the client gives up
  /// and closes itself.
  std::size_t max_attempts = 20;
  std::int64_t initial_backoff_ms = 50;
  std::int64_t max_backoff_ms = 2000;

  void validate() const;
};

class Client final : public dist::Transport {
 public:
  /// `name` is this worker's endpoint (the sender field of its frames).
  /// The connection is established on first use.
  Client(Address server, std::string name,
         const dist::FaultSpec& faults = {}, ReconnectPolicy reconnect = {});
  ~Client() override;

  const std::string& name() const noexcept { return name_; }
  bool connected() const;

  // dist::Transport
  void send(const std::string& endpoint, const dist::Message& msg) override;
  std::optional<dist::Message> try_receive(
      const std::string& endpoint) override;
  std::optional<dist::Message> receive(const std::string& endpoint,
                                       std::int64_t timeout_ms) override;
  void shutdown() override;
  bool closed() const override;
  std::uint64_t frames_sent() const override;
  std::uint64_t frames_dropped() const override;
  std::uint64_t bytes_sent() const override;

 private:
  void reader_loop();
  /// Connect if disconnected, sleeping one backoff step on failure.
  /// Returns the live socket, or nullptr when disconnected (and marks
  /// the client closed once the attempt budget is spent).
  std::shared_ptr<Socket> ensure_connected();

  Address server_;
  std::string name_;
  ReconnectPolicy reconnect_;
  Mailbox inbox_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;  // reader waits for a socket or stop
  std::shared_ptr<Socket> socket_;
  dist::DropInjector drops_;
  std::size_t failed_attempts_ = 0;
  bool stop_ = false;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;

  std::thread reader_thread_;
};

}  // namespace phodis::net
