#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace phodis::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// Latency beats throughput for the small protocol frames: disable
/// Nagle on every TCP socket.
void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

sockaddr_un make_unix_sockaddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("Socket: unix path too long: " + path);
  }
  // phodis-lint: allow(D4) sun_path is the kernel's sockaddr API, not wire bytes
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Resolve an IPv4 sockaddr for host:port (numeric or named host).
sockaddr_in resolve_tcp(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &result);
  if (rc != 0 || result == nullptr) {
    throw std::invalid_argument("Socket: cannot resolve host \"" + host +
                                "\": " + ::gai_strerror(rc));
  }
  sockaddr_in addr{};
  // Copy what getaddrinfo actually produced: ai_addrlen is sizeof(sockaddr_in)
  // for AF_INET hints, but trusting that invariant would read past a shorter
  // record if a resolver ever returned one.
  // phodis-lint: allow(D4) sockaddr from the resolver API, not wire bytes
  std::memcpy(&addr, result->ai_addr,
              std::min(static_cast<std::size_t>(result->ai_addrlen),
                       sizeof addr));
  ::freeaddrinfo(result);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Socket Socket::connect(const Address& address) {
  if (address.kind == Address::Kind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(AF_UNIX)");
    const sockaddr_un addr = make_unix_sockaddr(address.path);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("connect(" + address.to_string() + ")");
    }
    return Socket(fd);
  }
  const sockaddr_in addr = resolve_tcp(address.host, address.port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(" + address.to_string() + ")");
  }
  set_nodelay(fd);
  return Socket(fd);
}

bool Socket::send_all(const void* data, std::size_t len) {
  const auto* cursor = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd_, cursor, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer gone (EPIPE/ECONNRESET/...) or fd shut down
    }
    cursor += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

std::size_t Socket::recv_upto(void* data, std::size_t len) {
  auto* cursor = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, cursor + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // hard error: report what arrived, caller treats as torn/EOF
    }
    if (n == 0) break;  // EOF
    got += static_cast<std::size_t>(n);
  }
  return got;
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      address_(std::move(other.address_)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    address_ = std::move(other.address_);
  }
  return *this;
}

Listener Listener::listen(const Address& address, int backlog) {
  Listener listener;
  listener.address_ = address;
  if (address.kind == Address::Kind::kUnix) {
    const sockaddr_un addr = make_unix_sockaddr(address.path);
    ::unlink(address.path.c_str());
    listener.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener.fd_ < 0) throw_errno("socket(AF_UNIX)");
    if (::bind(listener.fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      throw_errno("bind(" + address.to_string() + ")");
    }
  } else {
    sockaddr_in addr = resolve_tcp(address.host, address.port);
    listener.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener.fd_ < 0) throw_errno("socket(AF_INET)");
    int one = 1;
    ::setsockopt(listener.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(listener.fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      throw_errno("bind(" + address.to_string() + ")");
    }
    if (address.port == 0) {
      sockaddr_in bound{};
      socklen_t bound_len = sizeof bound;
      if (::getsockname(listener.fd_, reinterpret_cast<sockaddr*>(&bound),
                        &bound_len) != 0) {
        throw_errno("getsockname");
      }
      listener.address_.port = ntohs(bound.sin_port);
    }
  }
  if (::listen(listener.fd_, backlog) != 0) {
    throw_errno("listen(" + address.to_string() + ")");
  }
  return listener;
}

std::optional<Socket> Listener::accept(std::int64_t timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  pollfd pfd{fd_, POLLIN, 0};
  const int rc =
      ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  if (rc <= 0) return std::nullopt;  // timeout or poll interrupted
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) return std::nullopt;  // racer took it, or listener closed
  if (address_.kind == Address::Kind::kTcp) set_nodelay(conn);
  return Socket(conn);
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (address_.kind == Address::Kind::kUnix) {
      ::unlink(address_.path.c_str());
    }
  }
}

}  // namespace phodis::net
