// Thin RAII layer over POSIX stream sockets (TCP and Unix-domain).
//
// Everything here is blocking I/O with the two realities of stream
// sockets handled once, centrally: partial reads/writes (send/recv may
// move fewer bytes than asked) and EINTR. Peer loss is reported, never
// thrown — a worker vanishing is normal cluster weather; the framing
// layer decides whether an EOF is clean (frame boundary) or torn.
// SIGPIPE is avoided via MSG_NOSIGNAL, not a global handler.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/address.hpp"

namespace phodis::net {

/// A connected stream socket. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connect to `address`. Throws std::system_error when the kernel says
  /// no (refused, unreachable, bad path) — callers with a reconnect
  /// policy catch and retry.
  static Socket connect(const Address& address);

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  /// Write exactly `len` bytes, looping over partial writes. Returns
  /// false once the peer is gone (reset, closed, or shut down).
  bool send_all(const void* data, std::size_t len);

  /// Read until `len` bytes or EOF/error; returns how many bytes
  /// actually arrived (so the caller can tell a clean EOF, 0, from a
  /// torn transfer, 0 < n < len).
  std::size_t recv_upto(void* data, std::size_t len);

  /// Half-close both directions, waking any thread blocked in
  /// recv_upto() on this socket (it sees EOF). Safe to call from another
  /// thread; close() is not.
  void shutdown_both() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// A bound, listening socket.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind and listen on `address`. TCP port 0 picks an ephemeral port
  /// (see local_address()); an existing Unix socket path is unlinked
  /// first (stale leftovers from a killed server). Throws
  /// std::system_error on failure.
  static Listener listen(const Address& address, int backlog = 16);

  /// The bound address, with the ephemeral TCP port resolved.
  const Address& local_address() const noexcept { return address_; }

  /// Wait up to `timeout_ms` for a connection. nullopt on timeout or
  /// once the listener is closed.
  std::optional<Socket> accept(std::int64_t timeout_ms);

  bool valid() const noexcept { return fd_ >= 0; }

  /// Close the listening socket; a bound Unix path is unlinked.
  void close() noexcept;

 private:
  int fd_ = -1;
  Address address_;
};

}  // namespace phodis::net
