// Network addresses for the cluster transports.
//
// The paper's platform names its server by host; we support two socket
// families behind one spelling so examples and tests can pick whichever
// the environment allows: "tcp:host:port" for cross-machine runs and
// "unix:/path" for same-host runs (no ports to collide, works in
// network-less sandboxes).
#pragma once

#include <cstdint>
#include <string>

namespace phodis::net {

struct Address {
  enum class Kind { kTcp, kUnix };

  Kind kind = Kind::kTcp;
  std::string host;         ///< TCP only
  std::uint16_t port = 0;   ///< TCP only; 0 binds an ephemeral port
  std::string path;         ///< Unix-domain only

  static Address tcp(std::string host, std::uint16_t port);
  static Address unix_path(std::string path);

  /// Parse "tcp:HOST:PORT" or "unix:PATH". Throws std::invalid_argument
  /// on any other shape (unknown scheme, missing/garbage port, empty
  /// host or path).
  static Address parse(const std::string& spec);

  /// Round-trips through parse().
  std::string to_string() const;

  bool operator==(const Address&) const = default;
};

}  // namespace phodis::net
