#include "net/frame.hpp"

#include <string>

#include "util/bytes.hpp"

namespace phodis::net {

bool write_frame(Socket& socket, const std::vector<std::uint8_t>& frame) {
  if (frame.size() > kMaxFrameBytes) {
    throw FramingError("write_frame: frame of " +
                       std::to_string(frame.size()) +
                       " bytes exceeds kMaxFrameBytes");
  }
  std::uint8_t prefix[4];
  util::store_u32_le(prefix, static_cast<std::uint32_t>(frame.size()));
  if (!socket.send_all(prefix, sizeof prefix)) return false;
  return socket.send_all(frame.data(), frame.size());
}

std::optional<std::vector<std::uint8_t>> read_frame(Socket& socket) {
  std::uint8_t prefix[4];
  const std::size_t prefix_got = socket.recv_upto(prefix, sizeof prefix);
  if (prefix_got == 0) return std::nullopt;  // clean EOF between frames
  if (prefix_got < sizeof prefix) {
    throw FramingError("read_frame: connection died inside a length prefix");
  }
  const std::uint32_t length = util::load_u32_le(prefix);
  if (length > kMaxFrameBytes) {
    throw FramingError("read_frame: declared length " +
                       std::to_string(length) + " exceeds kMaxFrameBytes");
  }
  std::vector<std::uint8_t> frame(length);
  const std::size_t body_got = socket.recv_upto(frame.data(), frame.size());
  if (body_got < frame.size()) {
    throw FramingError("read_frame: connection died mid-frame (" +
                       std::to_string(body_got) + " of " +
                       std::to_string(length) + " bytes)");
  }
  return frame;
}

}  // namespace phodis::net
