// Length-prefixed framing over a stream socket.
//
// A frame is [u32 little-endian length][length bytes] — the bytes being a
// dist::Message as produced by Message::encode(), though this layer is
// payload-agnostic. The reader distinguishes the only benign way a stream
// can end (EOF exactly on a frame boundary → nullopt) from every torn
// shape (EOF or error mid-prefix or mid-body → FramingError), and bounds
// the declared length so a corrupt or hostile prefix can never turn into
// a multi-gigabyte allocation or an endless read.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "net/socket.hpp"

namespace phodis::net {

/// A frame that could not be read or written intact: torn prefix, torn
/// body, or a length prefix beyond kMaxFrameBytes.
class FramingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Upper bound on a frame's declared length. Generous next to real
/// traffic (task payloads and serialised tallies are kilobytes to a few
/// megabytes) but small enough that a corrupt prefix fails fast.
constexpr std::uint32_t kMaxFrameBytes = 256u << 20;  // 256 MiB

/// Write one frame. Returns false when the peer is gone mid-write (the
/// frame is torn on *their* side; nothing to do on ours). Throws
/// FramingError only for an oversize frame, which is a caller bug.
bool write_frame(Socket& socket, const std::vector<std::uint8_t>& frame);

/// Read one frame. Returns nullopt on a clean EOF (connection closed on
/// a frame boundary); throws FramingError on torn input. Never hangs
/// past what the socket itself does: a closed or shut-down peer always
/// surfaces as EOF.
std::optional<std::vector<std::uint8_t>> read_frame(Socket& socket);

}  // namespace phodis::net
