#include "net/client.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "net/frame.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace phodis::net {

namespace {
/// The link is point-to-point: every inbound frame lands in one inbox
/// under this key, whatever endpoint name the receiver asks for.
constexpr const char* kInboxKey = "<link>";

/// Client-side wire counters (see the server-side twin in server.cpp).
struct WireCounters {
  obs::Counter& frames_sent;
  obs::Counter& frames_received;
  obs::Counter& frames_dropped;
  obs::Counter& bytes_sent;
  obs::Counter& bytes_received;
  obs::Counter& torn_frames;
  obs::Counter& malformed_messages;
  obs::Counter& connects;
  obs::Counter& reconnect_attempts;
};

WireCounters& wire_counters() {
  static WireCounters counters{
      obs::registry().counter("net_frames_sent_total", {{"side", "client"}}),
      obs::registry().counter("net_frames_received_total",
                              {{"side", "client"}}),
      obs::registry().counter("net_frames_dropped_total",
                              {{"side", "client"}}),
      obs::registry().counter("net_bytes_sent_total", {{"side", "client"}}),
      obs::registry().counter("net_bytes_received_total",
                              {{"side", "client"}}),
      obs::registry().counter("net_torn_frames_total", {{"side", "client"}}),
      obs::registry().counter("net_malformed_messages_total",
                              {{"side", "client"}}),
      obs::registry().counter("net_connects_total", {{"side", "client"}}),
      obs::registry().counter("net_reconnect_attempts_total",
                              {{"side", "client"}}),
  };
  return counters;
}
}  // namespace

void ReconnectPolicy::validate() const {
  if (max_attempts == 0) {
    throw std::invalid_argument("ReconnectPolicy: need >= 1 attempt");
  }
  if (initial_backoff_ms < 0 || max_backoff_ms < initial_backoff_ms) {
    throw std::invalid_argument(
        "ReconnectPolicy: need 0 <= initial_backoff_ms <= max_backoff_ms");
  }
}

Client::Client(Address server, std::string name,
               const dist::FaultSpec& faults, ReconnectPolicy reconnect)
    : server_(std::move(server)),
      name_(std::move(name)),
      reconnect_(reconnect),
      drops_(faults) {
  reconnect_.validate();
  reader_thread_ = std::thread([this] { reader_loop(); });
}

Client::~Client() { shutdown(); }

std::shared_ptr<Socket> Client::ensure_connected() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stop_) return nullptr;
  if (socket_) return socket_;
  if (failed_attempts_ >= reconnect_.max_attempts) return nullptr;
  const std::size_t attempts_so_far = failed_attempts_;
  // Connect without the lock: receive() and the reader must stay live
  // while a connect to a dead server waits out its timeout.
  lock.unlock();
  std::shared_ptr<Socket> fresh;
  try {
    fresh = std::make_shared<Socket>(Socket::connect(server_));
  } catch (const std::exception& error) {
    wire_counters().reconnect_attempts.inc();
    const std::int64_t backoff = std::min(
        reconnect_.max_backoff_ms,
        reconnect_.initial_backoff_ms
            << std::min<std::size_t>(attempts_so_far, 12));
    util::log_debug() << "net::Client(" << name_ << "): connect failed ("
                      << error.what() << "), backing off " << backoff
                      << " ms";
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    lock.lock();
    if (++failed_attempts_ >= reconnect_.max_attempts && !stop_) {
      util::log_warn() << "net::Client(" << name_ << "): giving up on "
                       << server_.to_string() << " after "
                       << failed_attempts_ << " attempts";
      stop_ = true;
      lock.unlock();
      inbox_.close();
      cv_.notify_all();
    }
    return nullptr;
  }
  lock.lock();
  if (stop_) return nullptr;
  failed_attempts_ = 0;
  wire_counters().connects.inc();
  socket_ = std::move(fresh);
  cv_.notify_all();  // hand the new socket to the reader
  return socket_;
}

void Client::reader_loop() {
  while (true) {
    std::shared_ptr<Socket> socket;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || socket_ != nullptr; });
      if (stop_) return;
      socket = socket_;
    }
    while (true) {
      std::optional<std::vector<std::uint8_t>> frame;
      try {
        frame = read_frame(*socket);
      } catch (const FramingError& error) {
        util::log_warn() << "net::Client(" << name_
                         << "): torn frame: " << error.what();
        wire_counters().torn_frames.inc();
        frame.reset();
      }
      if (!frame) break;  // EOF/torn: drop this socket, wait for the next
      wire_counters().frames_received.inc();
      wire_counters().bytes_received.inc(frame->size());
      try {
        inbox_.deliver(kInboxKey, dist::Message::decode(*frame));
      } catch (const std::exception& error) {
        util::log_warn() << "net::Client(" << name_
                         << "): malformed message: " << error.what();
        wire_counters().malformed_messages.inc();
        break;
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (socket_ == socket) socket_.reset();  // else send() already replaced it
  }
}

void Client::send(const std::string& /*endpoint*/, const dist::Message& msg) {
  const std::vector<std::uint8_t> frame = msg.encode();
  std::shared_ptr<Socket> socket = ensure_connected();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    ++frames_sent_;
    bytes_sent_ += frame.size();
    wire_counters().frames_sent.inc();
    wire_counters().bytes_sent.inc(frame.size());
    if (drops_.should_drop()) {
      ++frames_dropped_;
      wire_counters().frames_dropped.inc();
      return;
    }
  }
  if (!socket) return;  // disconnected: the frame is lost, retries recover
  if (!write_frame(*socket, frame)) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (socket_ == socket) {
      socket_->shutdown_both();  // unblock the reader promptly
      socket_.reset();
    }
  }
}

std::optional<dist::Message> Client::try_receive(
    const std::string& /*endpoint*/) {
  return inbox_.try_pop(kInboxKey);
}

std::optional<dist::Message> Client::receive(const std::string& /*endpoint*/,
                                             std::int64_t timeout_ms) {
  return inbox_.pop(kInboxKey, timeout_ms);
}

void Client::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ && !reader_thread_.joinable()) return;
    stop_ = true;
    if (socket_) socket_->shutdown_both();  // wake a blocked reader
  }
  inbox_.close();
  cv_.notify_all();
  if (reader_thread_.joinable()) reader_thread_.join();
}

bool Client::connected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return socket_ != nullptr;
}

bool Client::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stop_;
}

std::uint64_t Client::frames_sent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_sent_;
}

std::uint64_t Client::frames_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_dropped_;
}

std::uint64_t Client::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_sent_;
}

}  // namespace phodis::net
