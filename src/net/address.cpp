#include "net/address.hpp"

#include <stdexcept>

namespace phodis::net {

Address Address::tcp(std::string host, std::uint16_t port) {
  Address address;
  address.kind = Kind::kTcp;
  address.host = std::move(host);
  address.port = port;
  return address;
}

Address Address::unix_path(std::string path) {
  Address address;
  address.kind = Kind::kUnix;
  address.path = std::move(path);
  return address;
}

Address Address::parse(const std::string& spec) {
  constexpr const char* kTcpScheme = "tcp:";
  constexpr const char* kUnixScheme = "unix:";
  if (spec.rfind(kUnixScheme, 0) == 0) {
    std::string path = spec.substr(5);
    if (path.empty()) {
      throw std::invalid_argument("Address: empty unix socket path in \"" +
                                  spec + "\"");
    }
    return unix_path(std::move(path));
  }
  if (spec.rfind(kTcpScheme, 0) == 0) {
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      throw std::invalid_argument("Address: expected tcp:HOST:PORT, got \"" +
                                  spec + "\"");
    }
    const std::string host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    std::size_t consumed = 0;
    unsigned long port = 0;
    try {
      port = std::stoul(port_str, &consumed);
    } catch (const std::exception&) {
      throw std::invalid_argument("Address: bad port in \"" + spec + "\"");
    }
    if (consumed != port_str.size() || port > 65535) {
      throw std::invalid_argument("Address: bad port in \"" + spec + "\"");
    }
    return tcp(host, static_cast<std::uint16_t>(port));
  }
  throw std::invalid_argument(
      "Address: expected tcp:HOST:PORT or unix:PATH, got \"" + spec + "\"");
}

std::string Address::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

}  // namespace phodis::net
