// Hot-path kernel counters, compile-time gated by PHODIS_OBS_KERNEL.
//
// The specialized photon loop (mc/kernel.cpp) accumulates per-photon
// tallies in locals and flushes them here — a handful of relaxed
// fetch_adds per *photon*, not per interaction — only when the toggle is
// defined. When it is not, the flush blocks compile to nothing and this
// header exports only the (empty) snapshot hook, so call sites in tools
// and bench stay unconditional.
//
// These counters are strictly out-of-band of the bitwise contract: they
// never read the RNG, never touch SimulationTally, and are appended to an
// obs::Snapshot only at dump time.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/metrics.hpp"

namespace phodis::obs {

#if defined(PHODIS_OBS_KERNEL)
/// Process-global accumulators the photon loop flushes into.
struct KernelCounters {
  std::atomic<std::uint64_t> photons_launched{0};
  std::atomic<std::uint64_t> interactions{0};
  std::atomic<std::uint64_t> roulette_terminations{0};

  /// Packet-mode lane compaction events: a dead lane re-armed with the
  /// next photon from the stream mid-run (the initial fill is not a
  /// refill). Flushed once per run_packet call.
  std::atomic<std::uint64_t> lane_refills{0};

  /// Packet-mode occupancy histogram: packet_occupancy[o] counts packet
  /// loop iterations that ran with exactly o active lanes (o = 1 ..
  /// kOccupancySlots-1; slot 0 stays zero — the loop exits at zero
  /// occupancy). Slot count equals mc::kPacketWidth + 1; a static_assert
  /// in mc/packet_kernel.cpp keeps the two in sync without an obs -> mc
  /// include.
  static constexpr std::size_t kOccupancySlots = 9;
  std::atomic<std::uint64_t> packet_occupancy[kOccupancySlots] = {};

  static KernelCounters& global() noexcept;
};
#endif

/// True when the kernel counters are compiled in.
constexpr bool kernel_counters_compiled() noexcept {
#if defined(PHODIS_OBS_KERNEL)
  return true;
#else
  return false;
#endif
}

/// Fold the mc_kernel_* counters into `snapshot` (no-op when compiled
/// out, so --metrics-json call sites need no #if).
void append_kernel_counters(Snapshot& snapshot);

/// Zero the accumulators (tests; no-op when compiled out).
void reset_kernel_counters() noexcept;

}  // namespace phodis::obs
