// obs::Registry — named, labeled counters/gauges/histograms for every
// layer of the platform.
//
// The paper's argument is entirely about *where a cluster run spends its
// time* (scheduling, communication, the MC kernel); this subsystem makes
// those quantities first-class instead of inferred from stderr logs and
// bench CSVs. Design constraints, in order:
//
//  * The increment path is allocation-free and lock-free: callers acquire
//    a handle (Counter&/Gauge&/Histogram&) once — registration takes the
//    registry mutex and may allocate — and then mutate relaxed atomics.
//    Handles are stable for the registry's lifetime.
//  * Exposition is deterministically ordered: metrics live in a std::map
//    keyed by "name{k=v,...}" with labels sorted by key, so two snapshots
//    of equal state serialise byte-identically (the D2 lint rule's
//    ordered-domain discipline, applied to observability).
//  * Metrics are out-of-band of the bitwise contract: nothing here feeds
//    a tally, a seed, or a frame the protocol depends on. Workers ship
//    Snapshots to the server over a dedicated MetricsSnapshot message and
//    the server merges them into one cluster-wide report.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/bytes.hpp"

namespace phodis::obs {

/// Sorted (key, value) pairs; the identity of a metric instance is
/// (name, labels).
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : std::uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

std::string to_string(MetricKind kind);

/// Monotone event count. inc() is one relaxed fetch_add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Counter() = default;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, resumed-task count).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Cumulative histogram over fixed upper bounds (Prometheus "le"
/// convention): counts_[i] counts observations <= bounds[i], with one
/// extra +inf bucket at the end. observe() is a linear scan over a
/// handful of bounds plus relaxed atomics — no allocation, no lock.
class Histogram {
 public:
  void observe(double value) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t observations() const noexcept {
    return observations_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  /// Default latency bounds in seconds: 1us .. 10s by decades.
  static std::vector<double> latency_bounds_s();

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);
  std::vector<double> bounds_;  ///< ascending upper edges, +inf implicit
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< size()+1
  std::atomic<std::uint64_t> observations_{0};
  std::atomic<double> sum_{0.0};
};

/// One metric instance frozen at snapshot time.
struct MetricSample {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;                ///< kCounter
  double gauge = 0.0;                       ///< kGauge
  std::vector<double> bounds;               ///< kHistogram
  std::vector<std::uint64_t> bucket_counts; ///< size bounds.size()+1
  std::uint64_t observations = 0;
  double sum = 0.0;

  /// "name{k=v,...}" — the deterministic identity/sort key.
  std::string key() const;
};

/// A registry (or a merge of several) frozen into plain data: what goes
/// into --metrics-json files and MetricsSnapshot frames.
struct Snapshot {
  std::vector<MetricSample> samples;  ///< sorted by key()

  /// Insert or combine one sample, keeping `samples` sorted. Counters and
  /// histogram buckets add; gauges add (a merged gauge is a cluster
  /// total); kind or histogram-bound mismatches throw.
  void fold(MetricSample sample);

  /// Fold every sample of `other` into this snapshot.
  void merge(const Snapshot& other);

  /// Deterministic JSON: {"phodis_metrics_version":1,"metrics":[...]}
  /// with one metric object per line, sorted by key.
  std::string to_json() const;

  /// Wire form for the MetricsSnapshot protocol message.
  std::vector<std::uint8_t> encode() const;
  /// Throws std::out_of_range / std::invalid_argument on malformed input.
  static Snapshot decode(const std::vector<std::uint8_t>& bytes);

  /// Convenience for tests and report assertions: the counter's value, or
  /// 0 when absent.
  std::uint64_t counter_value(const std::string& name,
                              const Labels& labels = {}) const;
};

/// Write `snapshot.to_json()` to `path` (throws std::runtime_error on
/// I/O failure).
void write_metrics_json(const Snapshot& snapshot, const std::string& path);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. Labels need not be sorted (they are canonicalised);
  /// re-registering an existing name+labels with a different kind (or
  /// different histogram bounds) throws std::invalid_argument. Returned
  /// references stay valid for the registry's lifetime.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const Labels& labels = {});

  Snapshot snapshot() const;

  /// The process-wide registry every instrumentation point uses.
  static Registry& global();

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind;
    // Exactly one of these is set, per kind.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(const std::string& name, const Labels& labels,
                        MetricKind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  ///< keyed by MetricSample::key()
};

/// Shorthand for Registry::global().
inline Registry& registry() { return Registry::global(); }

}  // namespace phodis::obs
