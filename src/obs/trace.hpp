// Span recorder emitting Chrome trace-event JSON (chrome://tracing /
// Perfetto "traceEvents" format, complete "X" events).
//
// The recorder is process-global and off by default: ScopedSpan checks one
// relaxed atomic and does nothing else when tracing is disabled, so spans
// can stay in shard/task/request paths permanently. When enabled (the
// --trace flag), timestamps are microseconds since enable(), read through
// the sanctioned util::Stopwatch clock (D1), and events are buffered under
// a mutex with a hard cap — a runaway run degrades to a truncated trace
// plus a dropped-event count, never unbounded memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/stopwatch.hpp"

namespace phodis::obs {

/// One complete ("ph":"X") trace event.
struct TraceEvent {
  std::string name;
  std::string category;
  std::uint64_t ts_us = 0;   ///< start, µs since TraceRecorder::enable()
  std::uint64_t dur_us = 0;  ///< duration in µs
  std::uint32_t tid = 0;     ///< stable small id from thread_id()
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceRecorder {
 public:
  /// Buffered-event cap; past it events are counted as dropped instead.
  static constexpr std::size_t kMaxEvents = 1u << 20;

  /// Start recording: resets the epoch clock and clears prior events.
  void enable();
  void disable();
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Seconds since enable() on the sanctioned steady clock.
  double elapsed_s() const { return epoch_.seconds(); }

  void record(TraceEvent event);

  /// Events recorded so far (snapshot under the lock; for tests).
  std::size_t event_count() const;
  std::uint64_t dropped() const;

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} with events ordered by
  /// (ts, tid, name) so equal histories serialise identically.
  std::string to_json() const;
  void write_json(const std::string& path) const;

  /// Small dense id for the calling thread (thread_local, first-use
  /// assigned). Used as the trace "tid".
  static std::uint32_t thread_id();

  static TraceRecorder& global();

 private:
  std::atomic<bool> enabled_{false};
  util::Stopwatch epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// RAII span: records one "X" event from construction to destruction when
/// the global recorder is enabled, otherwise costs one relaxed load.
class ScopedSpan {
 public:
  ScopedSpan(std::string name, std::string category);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  /// Attach a key/value argument (shown in the Perfetto detail pane).
  /// No-op when the span is inactive.
  void arg(std::string key, std::string value);

 private:
  bool active_;
  TraceEvent event_;
};

}  // namespace phodis::obs
