#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <tuple>

namespace phodis::obs {

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::atomic<std::uint32_t> g_next_thread_id{0};

}  // namespace

void TraceRecorder::enable() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
  epoch_.reset();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceRecorder::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string TraceRecorder::to_json() const {
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
    dropped = dropped_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return std::tie(a.ts_us, a.tid, a.name) <
                            std::tie(b.ts_us, b.tid, b.name);
                   });

  std::string out = "{\n\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += "{\"name\": \"";
    append_json_escaped(out, e.name);
    out += "\", \"cat\": \"";
    append_json_escaped(out, e.category);
    out += "\", \"ph\": \"X\", \"ts\": " + std::to_string(e.ts_us) +
           ", \"dur\": " + std::to_string(e.dur_us) +
           ", \"pid\": 1, \"tid\": " + std::to_string(e.tid) + ", \"args\": {";
    for (std::size_t a = 0; a < e.args.size(); ++a) {
      if (a > 0) out += ", ";
      out += '"';
      append_json_escaped(out, e.args[a].first);
      out += "\": \"";
      append_json_escaped(out, e.args[a].second);
      out += '"';
    }
    out += "}}";
    if (i + 1 < events.size()) out += ',';
    out += '\n';
  }
  out += "],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": "
         "{\"dropped_events\": \"" +
         std::to_string(dropped) + "\"}\n}\n";
  return out;
}

void TraceRecorder::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  out << to_json();
  if (!out) {
    throw std::runtime_error("obs: cannot write trace JSON to " + path);
  }
}

std::uint32_t TraceRecorder::thread_id() {
  thread_local const std::uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder instance;
  return instance;
}

ScopedSpan::ScopedSpan(std::string name, std::string category)
    : active_(TraceRecorder::global().enabled()) {
  if (!active_) return;
  event_.name = std::move(name);
  event_.category = std::move(category);
  event_.tid = TraceRecorder::thread_id();
  event_.ts_us = static_cast<std::uint64_t>(
      TraceRecorder::global().elapsed_s() * 1e6);
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const auto end_us = static_cast<std::uint64_t>(
      TraceRecorder::global().elapsed_s() * 1e6);
  event_.dur_us = end_us > event_.ts_us ? end_us - event_.ts_us : 0;
  TraceRecorder::global().record(std::move(event_));
}

void ScopedSpan::arg(std::string key, std::string value) {
  if (!active_) return;
  event_.args.emplace_back(std::move(key), std::move(value));
}

}  // namespace phodis::obs
