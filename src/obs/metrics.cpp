#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace phodis::obs {

namespace {

/// Canonical label order: sorted by key (ties by value, though duplicate
/// keys are rejected at registration).
Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  for (std::size_t i = 1; i < labels.size(); ++i) {
    if (labels[i].first == labels[i - 1].first) {
      throw std::invalid_argument("obs: duplicate label key '" +
                                  labels[i].first + "'");
    }
  }
  return labels;
}

std::string instance_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  if (!labels.empty()) {
    key += '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) key += ',';
      key += labels[i].first;
      key += '=';
      key += labels[i].second;
    }
    key += '}';
  }
  return key;
}

/// Shortest round-trip double formatting (printf %.17g is always exact
/// for doubles; trim to %g when it round-trips, for readable JSON).
std::string format_f64(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%g", v);
  double back = 0.0;
  if (std::sscanf(buf, "%lf", &back) == 1 && back == v) return buf;
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "obs::Histogram: bounds must be strictly ascending");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(double value) noexcept {
  std::size_t bucket = bounds_.size();  // +inf
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  observations_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> Histogram::latency_bounds_s() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

std::string MetricSample::key() const { return instance_key(name, labels); }

void Snapshot::fold(MetricSample sample) {
  const std::string key = sample.key();
  const auto it = std::lower_bound(
      samples.begin(), samples.end(), key,
      [](const MetricSample& s, const std::string& k) { return s.key() < k; });
  if (it == samples.end() || it->key() != key) {
    samples.insert(it, std::move(sample));
    return;
  }
  if (it->kind != sample.kind) {
    throw std::invalid_argument("obs::Snapshot: kind mismatch merging '" +
                                key + "'");
  }
  switch (sample.kind) {
    case MetricKind::kCounter:
      it->counter += sample.counter;
      break;
    case MetricKind::kGauge:
      it->gauge += sample.gauge;
      break;
    case MetricKind::kHistogram:
      if (it->bounds != sample.bounds) {
        throw std::invalid_argument(
            "obs::Snapshot: histogram bound mismatch merging '" + key + "'");
      }
      for (std::size_t i = 0; i < it->bucket_counts.size(); ++i) {
        it->bucket_counts[i] += sample.bucket_counts[i];
      }
      it->observations += sample.observations;
      it->sum += sample.sum;
      break;
  }
}

void Snapshot::merge(const Snapshot& other) {
  for (const MetricSample& sample : other.samples) fold(sample);
}

std::string Snapshot::to_json() const {
  std::string out = "{\n  \"phodis_metrics_version\": 1,\n  \"metrics\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    out += "    {\"name\": \"";
    append_json_escaped(out, s.name);
    out += "\", \"labels\": {";
    for (std::size_t l = 0; l < s.labels.size(); ++l) {
      if (l > 0) out += ", ";
      out += '"';
      append_json_escaped(out, s.labels[l].first);
      out += "\": \"";
      append_json_escaped(out, s.labels[l].second);
      out += '"';
    }
    out += "}, \"kind\": \"" + to_string(s.kind) + "\", ";
    switch (s.kind) {
      case MetricKind::kCounter:
        out += "\"value\": " + std::to_string(s.counter);
        break;
      case MetricKind::kGauge:
        out += "\"value\": " + format_f64(s.gauge);
        break;
      case MetricKind::kHistogram: {
        out += "\"bounds\": [";
        for (std::size_t b = 0; b < s.bounds.size(); ++b) {
          if (b > 0) out += ", ";
          out += format_f64(s.bounds[b]);
        }
        out += "], \"bucket_counts\": [";
        for (std::size_t b = 0; b < s.bucket_counts.size(); ++b) {
          if (b > 0) out += ", ";
          out += std::to_string(s.bucket_counts[b]);
        }
        out += "], \"observations\": " + std::to_string(s.observations) +
               ", \"sum\": " + format_f64(s.sum);
        break;
      }
    }
    out += '}';
    if (i + 1 < samples.size()) out += ',';
    out += '\n';
  }
  out += "  ]\n}\n";
  return out;
}

std::vector<std::uint8_t> Snapshot::encode() const {
  util::ByteWriter writer;
  writer.u64(samples.size());
  for (const MetricSample& s : samples) {
    writer.str(s.name);
    writer.u64(s.labels.size());
    for (const auto& [k, v] : s.labels) {
      writer.str(k);
      writer.str(v);
    }
    writer.u8(static_cast<std::uint8_t>(s.kind));
    switch (s.kind) {
      case MetricKind::kCounter:
        writer.u64(s.counter);
        break;
      case MetricKind::kGauge:
        writer.f64(s.gauge);
        break;
      case MetricKind::kHistogram:
        writer.f64_vec(s.bounds);
        writer.u64(s.bucket_counts.size());
        for (const std::uint64_t c : s.bucket_counts) writer.u64(c);
        writer.u64(s.observations);
        writer.f64(s.sum);
        break;
    }
  }
  return writer.take();
}

Snapshot Snapshot::decode(const std::vector<std::uint8_t>& bytes) {
  util::ByteReader reader(bytes);
  Snapshot snapshot;
  const std::uint64_t count = reader.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    MetricSample s;
    s.name = reader.str();
    const std::uint64_t label_count = reader.u64();
    for (std::uint64_t l = 0; l < label_count; ++l) {
      std::string key = reader.str();
      std::string value = reader.str();
      s.labels.emplace_back(std::move(key), std::move(value));
    }
    const std::uint8_t kind = reader.u8();
    if (kind > static_cast<std::uint8_t>(MetricKind::kHistogram)) {
      throw std::invalid_argument("obs::Snapshot: unknown metric kind " +
                                  std::to_string(kind));
    }
    s.kind = static_cast<MetricKind>(kind);
    switch (s.kind) {
      case MetricKind::kCounter:
        s.counter = reader.u64();
        break;
      case MetricKind::kGauge:
        s.gauge = reader.f64();
        break;
      case MetricKind::kHistogram: {
        s.bounds = reader.f64_vec();
        const std::uint64_t buckets = reader.u64();
        if (buckets != s.bounds.size() + 1) {
          throw std::invalid_argument(
              "obs::Snapshot: histogram bucket/bound count mismatch");
        }
        s.bucket_counts.reserve(buckets);
        for (std::uint64_t b = 0; b < buckets; ++b) {
          s.bucket_counts.push_back(reader.u64());
        }
        s.observations = reader.u64();
        s.sum = reader.f64();
        break;
      }
    }
    // fold() (rather than push_back) keeps the invariant even for frames
    // produced by a hostile or buggy peer: out-of-order or duplicate
    // samples land sorted and combined.
    snapshot.fold(std::move(s));
  }
  if (!reader.exhausted()) {
    throw std::length_error("obs::Snapshot: trailing bytes");
  }
  return snapshot;
}

std::uint64_t Snapshot::counter_value(const std::string& name,
                                      const Labels& labels) const {
  const std::string key = instance_key(name, canonical(labels));
  for (const MetricSample& s : samples) {
    if (s.key() == key && s.kind == MetricKind::kCounter) return s.counter;
  }
  return 0;
}

void write_metrics_json(const Snapshot& snapshot, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  out << snapshot.to_json();
  if (!out) {
    throw std::runtime_error("obs: cannot write metrics JSON to " + path);
  }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry::Entry& Registry::find_or_create(const std::string& name,
                                          const Labels& labels,
                                          MetricKind kind) {
  const Labels sorted = canonical(labels);
  const std::string key = instance_key(name, sorted);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      throw std::invalid_argument("obs::Registry: '" + key +
                                  "' already registered as " +
                                  to_string(it->second.kind));
    }
    return it->second;
  }
  Entry entry;
  entry.name = name;
  entry.labels = sorted;
  entry.kind = kind;
  return entries_.emplace(key, std::move(entry)).first->second;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = find_or_create(name, labels, MetricKind::kCounter);
  if (!entry.counter) entry.counter.reset(new Counter());
  return *entry.counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = find_or_create(name, labels, MetricKind::kGauge);
  if (!entry.gauge) entry.gauge.reset(new Gauge());
  return *entry.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds,
                               const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = find_or_create(name, labels, MetricKind::kHistogram);
  if (!entry.histogram) {
    entry.histogram.reset(new Histogram(std::move(bounds)));
  } else if (entry.histogram->bounds() != bounds) {
    throw std::invalid_argument("obs::Registry: histogram '" + name +
                                "' re-registered with different bounds");
  }
  return *entry.histogram;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snapshot;
  snapshot.samples.reserve(entries_.size());
  // entries_ is a std::map keyed by MetricSample::key(), so this walk is
  // already in exposition order.
  for (const auto& [key, entry] : entries_) {
    MetricSample s;
    s.name = entry.name;
    s.labels = entry.labels;
    s.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        s.counter = entry.counter->value();
        break;
      case MetricKind::kGauge:
        s.gauge = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        s.bounds = entry.histogram->bounds();
        s.bucket_counts = entry.histogram->bucket_counts();
        s.observations = entry.histogram->observations();
        s.sum = entry.histogram->sum();
        break;
    }
    snapshot.samples.push_back(std::move(s));
  }
  return snapshot;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

}  // namespace phodis::obs
