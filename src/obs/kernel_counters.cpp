#include "obs/kernel_counters.hpp"

namespace phodis::obs {

#if defined(PHODIS_OBS_KERNEL)

KernelCounters& KernelCounters::global() noexcept {
  static KernelCounters instance;
  return instance;
}

void append_kernel_counters(Snapshot& snapshot) {
  const KernelCounters& kc = KernelCounters::global();
  MetricSample photons;
  photons.name = "mc_kernel_photons_launched_total";
  photons.kind = MetricKind::kCounter;
  photons.counter = kc.photons_launched.load(std::memory_order_relaxed);
  snapshot.fold(std::move(photons));

  MetricSample interactions;
  interactions.name = "mc_kernel_interactions_total";
  interactions.kind = MetricKind::kCounter;
  interactions.counter = kc.interactions.load(std::memory_order_relaxed);
  snapshot.fold(std::move(interactions));

  MetricSample roulette;
  roulette.name = "mc_kernel_roulette_terminations_total";
  roulette.kind = MetricKind::kCounter;
  roulette.counter =
      kc.roulette_terminations.load(std::memory_order_relaxed);
  snapshot.fold(std::move(roulette));
}

void reset_kernel_counters() noexcept {
  KernelCounters& kc = KernelCounters::global();
  kc.photons_launched.store(0, std::memory_order_relaxed);
  kc.interactions.store(0, std::memory_order_relaxed);
  kc.roulette_terminations.store(0, std::memory_order_relaxed);
}

#else

void append_kernel_counters(Snapshot& snapshot) { (void)snapshot; }
void reset_kernel_counters() noexcept {}

#endif

}  // namespace phodis::obs
