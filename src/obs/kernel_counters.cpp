#include "obs/kernel_counters.hpp"

namespace phodis::obs {

#if defined(PHODIS_OBS_KERNEL)

KernelCounters& KernelCounters::global() noexcept {
  static KernelCounters instance;
  return instance;
}

void append_kernel_counters(Snapshot& snapshot) {
  const KernelCounters& kc = KernelCounters::global();
  MetricSample photons;
  photons.name = "mc_kernel_photons_launched_total";
  photons.kind = MetricKind::kCounter;
  photons.counter = kc.photons_launched.load(std::memory_order_relaxed);
  snapshot.fold(std::move(photons));

  MetricSample interactions;
  interactions.name = "mc_kernel_interactions_total";
  interactions.kind = MetricKind::kCounter;
  interactions.counter = kc.interactions.load(std::memory_order_relaxed);
  snapshot.fold(std::move(interactions));

  MetricSample roulette;
  roulette.name = "mc_kernel_roulette_terminations_total";
  roulette.kind = MetricKind::kCounter;
  roulette.counter =
      kc.roulette_terminations.load(std::memory_order_relaxed);
  snapshot.fold(std::move(roulette));

  MetricSample refills;
  refills.name = "mc_kernel_lane_refills_total";
  refills.kind = MetricKind::kCounter;
  refills.counter = kc.lane_refills.load(std::memory_order_relaxed);
  snapshot.fold(std::move(refills));

  // Occupancy as a le-convention histogram: bucket b holds iterations
  // with occupancy == b+1 (bounds 1..kOccupancySlots-1), the implicit
  // +inf bucket stays empty.
  MetricSample occupancy;
  occupancy.name = "mc_kernel_packet_occupancy";
  occupancy.kind = MetricKind::kHistogram;
  occupancy.bounds.reserve(KernelCounters::kOccupancySlots - 1);
  occupancy.bucket_counts.assign(KernelCounters::kOccupancySlots, 0);
  for (std::size_t o = 1; o < KernelCounters::kOccupancySlots; ++o) {
    occupancy.bounds.push_back(static_cast<double>(o));
    const std::uint64_t count =
        kc.packet_occupancy[o].load(std::memory_order_relaxed);
    occupancy.bucket_counts[o - 1] = count;
    occupancy.observations += count;
    occupancy.sum += static_cast<double>(o) * static_cast<double>(count);
  }
  snapshot.fold(std::move(occupancy));
}

void reset_kernel_counters() noexcept {
  KernelCounters& kc = KernelCounters::global();
  kc.photons_launched.store(0, std::memory_order_relaxed);
  kc.interactions.store(0, std::memory_order_relaxed);
  kc.roulette_terminations.store(0, std::memory_order_relaxed);
  kc.lane_refills.store(0, std::memory_order_relaxed);
  for (std::size_t o = 0; o < KernelCounters::kOccupancySlots; ++o) {
    kc.packet_occupancy[o].store(0, std::memory_order_relaxed);
  }
}

#else

void append_kernel_counters(Snapshot& snapshot) { (void)snapshot; }
void reset_kernel_counters() noexcept {}

#endif

}  // namespace phodis::obs
