// SimulationSpec: the complete, serialisable description of one Monte
// Carlo experiment — what the DataManager ships to a client so that the
// client-side Algorithm can reconstruct the kernel and run its share of
// photons. The task payload is (spec, photon count); the task *id* selects
// the RNG stream, which is what makes the merged result independent of
// which client ran which task.
#pragma once

#include <cstdint>
#include <vector>

#include "mc/kernel.hpp"
#include "util/bytes.hpp"

namespace phodis::core {

struct SimulationSpec {
  mc::KernelConfig kernel;
  std::uint64_t photons = 1'000'000;
  std::uint64_t seed = 2006;

  void validate() const;

  void serialize(util::ByteWriter& writer) const;
  static SimulationSpec deserialize(util::ByteReader& reader);
};

/// Payload of one task: the spec plus this task's photon share.
struct TaskPayload {
  SimulationSpec spec;
  std::uint64_t task_photons = 0;

  std::vector<std::uint8_t> encode() const;
  static TaskPayload decode(const std::vector<std::uint8_t>& bytes);
};

}  // namespace phodis::core
