#include "core/app.hpp"

#include <memory>
#include <optional>
#include <stdexcept>

#include "dist/scheduler.hpp"
#include "exec/parallel.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace phodis::core {

namespace {

/// The one per-task computation every execution path shares: decode,
/// rebuild the kernel, run the task's shard plan (optionally on a
/// pool), serialise the merged task tally.
std::vector<std::uint8_t> execute_task(exec::ThreadPool* pool,
                                       std::uint64_t task_id,
                                       const std::vector<std::uint8_t>& payload) {
  const TaskPayload task = TaskPayload::decode(payload);
  const mc::Kernel kernel(task.spec.kernel);
  const exec::ParallelKernelRunner runner(kernel, pool);
  const mc::SimulationTally tally =
      runner.run(task.task_photons, task.spec.seed, task_id);

  util::ByteWriter writer;
  tally.serialize(writer);
  return writer.take();
}

}  // namespace

std::vector<std::uint8_t> Algorithm::execute(
    std::uint64_t task_id, const std::vector<std::uint8_t>& payload) {
  return execute_task(nullptr, task_id, payload);
}

dist::TaskExecutor Algorithm::executor(std::size_t threads) {
  if (threads == 0) threads = exec::ThreadPool::default_thread_count();
  if (threads <= 1) return &Algorithm::execute;
  // One pool shared by every call (and every calling thread); each
  // call's shard batch completes independently.
  auto pool = std::make_shared<exec::ThreadPool>(threads);
  return [pool](std::uint64_t task_id,
                const std::vector<std::uint8_t>& payload) {
    return execute_task(pool.get(), task_id, payload);
  };
}

void ExecutionOptions::validate() const {
  if (workers == 0) {
    throw std::invalid_argument("ExecutionOptions: need >= 1 worker");
  }
  transport_faults.validate();
  if (!(lease_duration_s > 0.0)) {
    throw std::invalid_argument("ExecutionOptions: lease must be > 0");
  }
  if (worker_death_probability < 0.0 || worker_death_probability >= 1.0) {
    throw std::invalid_argument(
        "ExecutionOptions: worker_death_probability must be in [0,1)");
  }
}

MonteCarloApp::MonteCarloApp(SimulationSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
}

std::vector<std::uint64_t> MonteCarloApp::plan_chunks(
    std::uint64_t chunk_photons, std::size_t workers) const {
  if (chunk_photons == 0) {
    chunk_photons = dist::suggest_chunk_size(spec_.photons, workers);
  }
  return dist::chunk_plan(spec_.photons, chunk_photons);
}

mc::SimulationTally MonteCarloApp::run_serial(
    std::uint64_t chunk_photons) const {
  return run_parallel(1, chunk_photons);
}

mc::SimulationTally MonteCarloApp::run_parallel(
    std::size_t threads, std::uint64_t chunk_photons) const {
  if (threads == 0) threads = exec::ThreadPool::default_thread_count();
  // Always the single-worker task plan: thread count must not move the
  // task boundaries, only how each task's shards are executed.
  const std::vector<std::uint64_t> chunks = plan_chunks(chunk_photons, 1);
  const mc::Kernel kernel(spec_.kernel);
  std::optional<exec::ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  const exec::ParallelKernelRunner runner(kernel,
                                          pool ? &*pool : nullptr);
  mc::SimulationTally merged = kernel.make_tally();
  for (std::size_t task_id = 0; task_id < chunks.size(); ++task_id) {
    merged.merge(runner.run(chunks[task_id], spec_.seed, task_id));
  }
  return merged;
}

std::vector<dist::TaskRecord> MonteCarloApp::build_tasks(
    std::uint64_t chunk_photons, std::size_t workers) const {
  const std::vector<std::uint64_t> chunks =
      plan_chunks(chunk_photons, workers);
  std::vector<dist::TaskRecord> tasks;
  tasks.reserve(chunks.size());
  for (std::size_t task_id = 0; task_id < chunks.size(); ++task_id) {
    TaskPayload payload;
    payload.spec = spec_;
    payload.task_photons = chunks[task_id];
    tasks.push_back(dist::TaskRecord{task_id, payload.encode()});
  }
  return tasks;
}

mc::SimulationTally MonteCarloApp::merge_results(
    const std::map<std::uint64_t, std::vector<std::uint8_t>>& results)
    const {
  // std::map iteration is ordered by task id: the merge order (and hence
  // the floating-point result) never depends on completion order.
  const mc::Kernel kernel(spec_.kernel);
  mc::SimulationTally merged = kernel.make_tally();
  std::uint64_t expected_id = 0;
  for (const auto& [task_id, bytes] : results) {
    if (task_id != expected_id++) {
      throw std::invalid_argument(
          "MonteCarloApp: result ids are not the dense 0..n-1 of a task "
          "plan (unexpected id " +
          std::to_string(task_id) + ")");
    }
    util::ByteReader reader(bytes);
    merged.merge(mc::SimulationTally::deserialize(reader));
  }
  return merged;
}

RunSummary MonteCarloApp::run_distributed(
    const ExecutionOptions& options) const {
  options.validate();
  util::Stopwatch stopwatch;

  const std::vector<dist::TaskRecord> tasks =
      build_tasks(options.chunk_photons, options.workers);

  dist::RuntimeConfig runtime_config;
  runtime_config.worker_count = options.workers;
  runtime_config.lease_duration_s = options.lease_duration_s;
  runtime_config.transport_faults = options.transport_faults;
  runtime_config.worker_death_probability = options.worker_death_probability;

  // The executor's pool is shared by all in-process workers, so size it
  // for the whole fleet: workers x threads_per_worker compute threads
  // (0 = saturate the host). threads_per_worker == 1 keeps the classic
  // path where each worker thread computes its own task directly.
  const std::size_t pool_threads =
      options.threads_per_worker == 0
          ? exec::ThreadPool::default_thread_count()
          : (options.threads_per_worker > 1
                 ? options.workers * options.threads_per_worker
                 : 1);
  dist::Runtime runtime(runtime_config);
  dist::RuntimeReport report =
      runtime.run(tasks, Algorithm::executor(pool_threads));

  if (report.results.size() != tasks.size()) {
    throw std::runtime_error("MonteCarloApp: missing task results");
  }

  RunSummary summary{.tally = merge_results(report.results)};
  summary.tasks = tasks.size();
  summary.manager_stats = report.manager_stats;
  summary.frames_sent = report.frames_sent;
  summary.frames_dropped = report.frames_dropped;
  summary.bytes_sent = report.bytes_sent;
  summary.workers_died = report.workers_died;
  summary.wall_seconds = stopwatch.seconds();
  return summary;
}

}  // namespace phodis::core
