#include "core/app.hpp"

#include <stdexcept>

#include "dist/scheduler.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace phodis::core {

std::vector<std::uint8_t> Algorithm::execute(
    std::uint64_t task_id, const std::vector<std::uint8_t>& payload) {
  const TaskPayload task = TaskPayload::decode(payload);
  const mc::Kernel kernel(task.spec.kernel);
  mc::SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng =
      util::Xoshiro256pp::for_task(task.spec.seed, task_id);
  kernel.run(task.task_photons, rng, tally);

  util::ByteWriter writer;
  tally.serialize(writer);
  return writer.take();
}

void ExecutionOptions::validate() const {
  if (workers == 0) {
    throw std::invalid_argument("ExecutionOptions: need >= 1 worker");
  }
  transport_faults.validate();
  if (!(lease_duration_s > 0.0)) {
    throw std::invalid_argument("ExecutionOptions: lease must be > 0");
  }
  if (worker_death_probability < 0.0 || worker_death_probability >= 1.0) {
    throw std::invalid_argument(
        "ExecutionOptions: worker_death_probability must be in [0,1)");
  }
}

MonteCarloApp::MonteCarloApp(SimulationSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
}

std::vector<std::uint64_t> MonteCarloApp::plan_chunks(
    std::uint64_t chunk_photons, std::size_t workers) const {
  if (chunk_photons == 0) {
    chunk_photons = dist::suggest_chunk_size(spec_.photons, workers);
  }
  return dist::chunk_plan(spec_.photons, chunk_photons);
}

mc::SimulationTally MonteCarloApp::run_serial(
    std::uint64_t chunk_photons) const {
  const std::vector<std::uint64_t> chunks = plan_chunks(chunk_photons, 1);
  const mc::Kernel kernel(spec_.kernel);
  mc::SimulationTally merged = kernel.make_tally();
  for (std::size_t task_id = 0; task_id < chunks.size(); ++task_id) {
    mc::SimulationTally partial = kernel.make_tally();
    util::Xoshiro256pp rng = util::Xoshiro256pp::for_task(spec_.seed, task_id);
    kernel.run(chunks[task_id], rng, partial);
    merged.merge(partial);
  }
  return merged;
}

std::vector<dist::TaskRecord> MonteCarloApp::build_tasks(
    std::uint64_t chunk_photons, std::size_t workers) const {
  const std::vector<std::uint64_t> chunks =
      plan_chunks(chunk_photons, workers);
  std::vector<dist::TaskRecord> tasks;
  tasks.reserve(chunks.size());
  for (std::size_t task_id = 0; task_id < chunks.size(); ++task_id) {
    TaskPayload payload;
    payload.spec = spec_;
    payload.task_photons = chunks[task_id];
    tasks.push_back(dist::TaskRecord{task_id, payload.encode()});
  }
  return tasks;
}

mc::SimulationTally MonteCarloApp::merge_results(
    const std::map<std::uint64_t, std::vector<std::uint8_t>>& results)
    const {
  // std::map iteration is ordered by task id: the merge order (and hence
  // the floating-point result) never depends on completion order.
  const mc::Kernel kernel(spec_.kernel);
  mc::SimulationTally merged = kernel.make_tally();
  std::uint64_t expected_id = 0;
  for (const auto& [task_id, bytes] : results) {
    if (task_id != expected_id++) {
      throw std::invalid_argument(
          "MonteCarloApp: result ids are not the dense 0..n-1 of a task "
          "plan (unexpected id " +
          std::to_string(task_id) + ")");
    }
    util::ByteReader reader(bytes);
    merged.merge(mc::SimulationTally::deserialize(reader));
  }
  return merged;
}

RunSummary MonteCarloApp::run_distributed(
    const ExecutionOptions& options) const {
  options.validate();
  util::Stopwatch stopwatch;

  const std::vector<dist::TaskRecord> tasks =
      build_tasks(options.chunk_photons, options.workers);

  dist::RuntimeConfig runtime_config;
  runtime_config.worker_count = options.workers;
  runtime_config.lease_duration_s = options.lease_duration_s;
  runtime_config.transport_faults = options.transport_faults;
  runtime_config.worker_death_probability = options.worker_death_probability;

  dist::Runtime runtime(runtime_config);
  dist::RuntimeReport report = runtime.run(tasks, Algorithm::execute);

  if (report.results.size() != tasks.size()) {
    throw std::runtime_error("MonteCarloApp: missing task results");
  }

  RunSummary summary{.tally = merge_results(report.results)};
  summary.tasks = tasks.size();
  summary.manager_stats = report.manager_stats;
  summary.frames_sent = report.frames_sent;
  summary.frames_dropped = report.frames_dropped;
  summary.bytes_sent = report.bytes_sent;
  summary.workers_died = report.workers_died;
  summary.wall_seconds = stopwatch.seconds();
  return summary;
}

}  // namespace phodis::core
