#include "core/merger.hpp"

#include <stdexcept>
#include <utility>

#include "mc/kernel.hpp"

namespace phodis::core {

IncrementalTallyMerger::IncrementalTallyMerger(const SimulationSpec& spec)
    : merged_(mc::Kernel(spec.kernel).make_tally()) {}

void IncrementalTallyMerger::fold(std::uint64_t task_id,
                                  std::vector<std::uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (task_id < next_id_) return;  // already folded (replay after restore)
  if (task_id != next_id_) {
    buffer_.emplace(task_id, std::move(bytes));
    return;
  }
  // Extend the contiguous prefix, draining any buffered successors —
  // the same task-id-order arithmetic as MonteCarloApp::merge_results.
  util::ByteReader reader(bytes);
  merged_.merge(mc::SimulationTally::deserialize(reader));
  ++next_id_;
  for (auto it = buffer_.begin();
       it != buffer_.end() && it->first == next_id_;
       it = buffer_.erase(it)) {
    util::ByteReader buffered(it->second);
    merged_.merge(mc::SimulationTally::deserialize(buffered));
    ++next_id_;
  }
}

std::uint64_t IncrementalTallyMerger::frontier() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_id_;
}

std::size_t IncrementalTallyMerger::buffered_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffer_.size();
}

mc::SimulationTally IncrementalTallyMerger::merged() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return merged_;
}

std::vector<std::uint8_t> IncrementalTallyMerger::state_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  util::ByteWriter writer;
  writer.reserve(1024);
  writer.u64(next_id_);
  merged_.serialize(writer);
  writer.u64(buffer_.size());
  for (const auto& [task_id, bytes] : buffer_) {
    writer.u64(task_id);
    writer.blob(bytes);
  }
  return writer.take();
}

void IncrementalTallyMerger::restore(const std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) return;
  util::ByteReader reader(bytes);
  const std::uint64_t next_id = reader.u64();
  mc::SimulationTally merged = mc::SimulationTally::deserialize(reader);
  const std::uint64_t buffered = reader.u64();
  std::map<std::uint64_t, std::vector<std::uint8_t>> buffer;
  for (std::uint64_t i = 0; i < buffered; ++i) {
    const std::uint64_t task_id = reader.u64();
    buffer.emplace(task_id, reader.blob());
  }
  if (!reader.exhausted()) {
    throw std::length_error(
        "IncrementalTallyMerger: trailing bytes in state");
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (next_id_ != 0 || !buffer_.empty()) {
    throw std::logic_error(
        "IncrementalTallyMerger: restore target already holds results");
  }
  merged_ = std::move(merged);
  next_id_ = next_id;
  buffer_ = std::move(buffer);
}

}  // namespace phodis::core
