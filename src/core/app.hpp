// MonteCarloApp — the paper's application, tying the two classes together:
//
//   "The distributed Monte Carlo application consists of two classes.
//    The DataManager, which resides on the server, assigns simulations to
//    client PCs and processes the returned results. The Algorithm, which
//    resides on the client PCs, takes in parameters from the DataManager,
//    performs Monte Carlo simulations and returns the results."
//
// The app splits a photon budget into tasks, runs them on the distributed
// runtime (or serially), and merges the returned tallies **in task-id
// order**, so for a given task plan (chunk size) the final result is
// bitwise identical regardless of worker count, scheduling, injected
// faults, or whether the run was serial — the reproducibility property
// DESIGN.md §4.1 commits to. Note the task plan itself is only fixed
// when chunk_photons is explicit: auto-chunking (chunk_photons = 0)
// scales the chunk size with the worker count.
//
// Inside a task, photons run as the fixed shard plan of
// exec::ParallelKernelRunner (jump()-derived sub-streams, merged in
// shard order), so a task's tally is also bitwise identical whether its
// shards ran on 1 thread or 16 — run_serial, run_parallel, and every
// worker thread count all produce the same bytes.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/spec.hpp"
#include "dist/runtime.hpp"
#include "mc/tally.hpp"

namespace phodis::core {

/// Client-side class (the paper's `Algorithm`): decodes a task payload,
/// reconstructs the kernel, runs this task's photons on the task's own
/// RNG stream (sharded, see exec::ParallelKernelRunner), and returns the
/// serialised partial tally.
class Algorithm {
 public:
  /// Single-threaded execution of the task's shard plan.
  static std::vector<std::uint8_t> execute(
      std::uint64_t task_id, const std::vector<std::uint8_t>& payload);

  /// A TaskExecutor running each task's shards on `threads` pool
  /// threads (0 = one per core). The pool is shared across calls and
  /// the executor is thread-safe; results are bitwise identical to
  /// execute() for any thread count.
  static dist::TaskExecutor executor(std::size_t threads);
};

struct ExecutionOptions {
  std::size_t workers = 2;
  /// Photons per task; 0 picks a size giving each worker ~4 pulls.
  std::uint64_t chunk_photons = 0;
  /// Shard threads per worker (1 = each worker computes its task on its
  /// own thread, the classic path). For values > 1 the workers share one
  /// pool sized workers x threads_per_worker, so total compute
  /// parallelism never drops below the workers-only baseline; 0 sizes
  /// that shared pool to the host's hardware threads instead (saturate
  /// the machine, however many workers). Does not change results.
  std::size_t threads_per_worker = 1;
  double lease_duration_s = 5.0;
  dist::FaultSpec transport_faults;
  double worker_death_probability = 0.0;

  void validate() const;
};

struct RunSummary {
  mc::SimulationTally tally;
  std::uint64_t tasks = 0;
  double wall_seconds = 0.0;
  dist::DataManagerStats manager_stats{};
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t bytes_sent = 0;
  std::size_t workers_died = 0;
};

class MonteCarloApp {
 public:
  explicit MonteCarloApp(SimulationSpec spec);

  /// Single-threaded execution of the same task plan; merging in task-id
  /// order makes this bitwise identical to run_distributed with the same
  /// explicit chunk_photons (0 auto-sizes for a single worker, which in
  /// general differs from the multi-worker auto plan). Equivalent to
  /// run_parallel(1, chunk_photons).
  mc::SimulationTally run_serial(std::uint64_t chunk_photons = 0) const;

  /// Same task plan as run_serial, with each task's shards spread over
  /// `threads` pool threads (0 = one per core). Bitwise identical to
  /// run_serial for every thread count.
  mc::SimulationTally run_parallel(std::size_t threads,
                                   std::uint64_t chunk_photons = 0) const;

  /// Full platform execution: DataManager + worker pool over the loopback
  /// transport, with optional fault injection.
  RunSummary run_distributed(const ExecutionOptions& options) const;

  /// The task plan for a given chunk size (0 = auto for `workers`).
  std::vector<std::uint64_t> plan_chunks(std::uint64_t chunk_photons,
                                         std::size_t workers) const;

  /// Encode the plan into TaskRecords — what run_distributed feeds the
  /// in-process runtime and what phodis_server serves over sockets.
  std::vector<dist::TaskRecord> build_tasks(std::uint64_t chunk_photons,
                                            std::size_t workers) const;

  /// Merge serialised partial tallies in task-id order; for a fixed task
  /// plan the result is bitwise identical no matter which worker (or
  /// process, or machine) computed each part. Every task plan numbers
  /// its tasks 0..n-1, so results whose ids are not exactly that dense
  /// range (e.g. from a stale checkpoint of a different run) throw.
  mc::SimulationTally merge_results(
      const std::map<std::uint64_t, std::vector<std::uint8_t>>& results)
      const;

  const SimulationSpec& spec() const noexcept { return spec_; }

 private:
  SimulationSpec spec_;
};

}  // namespace phodis::core
