#include "core/spec.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace phodis::core {

namespace {

void serialize_medium(util::ByteWriter& w, const mc::LayeredMedium& medium) {
  w.f64(medium.n_above());
  w.f64(medium.n_below());
  w.u64(medium.layer_count());
  for (const mc::Layer& layer : medium.layers()) {
    w.str(layer.name);
    w.f64(layer.props.mua);
    w.f64(layer.props.mus);
    w.f64(layer.props.g);
    w.f64(layer.props.n);
    w.boolean(std::isinf(layer.z1));
    w.f64(std::isinf(layer.z1) ? 0.0 : layer.thickness());
  }
}

mc::LayeredMedium deserialize_medium(util::ByteReader& r) {
  mc::LayeredMediumBuilder builder;
  builder.ambient_above(r.f64()).ambient_below(r.f64());
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name = r.str();
    mc::OpticalProperties props;
    props.mua = r.f64();
    props.mus = r.f64();
    props.g = r.f64();
    props.n = r.f64();
    const bool semi_infinite = r.boolean();
    const double thickness = r.f64();
    if (semi_infinite) {
      builder.add_semi_infinite_layer(std::move(name), props);
    } else {
      builder.add_layer(std::move(name), props, thickness);
    }
  }
  return builder.build();
}

}  // namespace

void SimulationSpec::validate() const {
  if (photons == 0) {
    throw std::invalid_argument("SimulationSpec: photons must be > 0");
  }
  kernel.validate();
}

void SimulationSpec::serialize(util::ByteWriter& writer) const {
  serialize_medium(writer, kernel.medium);
  writer.u8(static_cast<std::uint8_t>(kernel.source.type));
  writer.f64(kernel.source.radius_mm);
  writer.f64(kernel.source.half_angle_deg);
  writer.boolean(kernel.detector.has_value());
  if (kernel.detector) {
    writer.f64(kernel.detector->separation_mm);
    writer.f64(kernel.detector->radius_mm);
    writer.f64(kernel.detector->gate.min_mm);
    writer.f64(kernel.detector->gate.max_mm);
  }
  writer.u8(static_cast<std::uint8_t>(kernel.boundary_model));
  writer.u8(static_cast<std::uint8_t>(kernel.mode));
  writer.f64(kernel.roulette.threshold);
  writer.f64(kernel.roulette.survival_multiplier);
  kernel.tally.serialize(writer);
  writer.boolean(kernel.record_all_paths);
  writer.u64(kernel.max_interactions);
  writer.u64(photons);
  writer.u64(seed);
}

SimulationSpec SimulationSpec::deserialize(util::ByteReader& reader) {
  SimulationSpec spec;
  spec.kernel.medium = deserialize_medium(reader);
  spec.kernel.source.type = static_cast<mc::SourceType>(reader.u8());
  spec.kernel.source.radius_mm = reader.f64();
  spec.kernel.source.half_angle_deg = reader.f64();
  if (reader.boolean()) {
    mc::DetectorSpec detector;
    detector.separation_mm = reader.f64();
    detector.radius_mm = reader.f64();
    detector.gate.min_mm = reader.f64();
    detector.gate.max_mm = reader.f64();
    spec.kernel.detector = detector;
  }
  spec.kernel.boundary_model =
      static_cast<mc::BoundaryModel>(reader.u8());
  spec.kernel.mode = static_cast<mc::KernelMode>(reader.u8());
  spec.kernel.roulette.threshold = reader.f64();
  spec.kernel.roulette.survival_multiplier = reader.f64();
  spec.kernel.tally = mc::TallyConfig::deserialize(reader);
  spec.kernel.record_all_paths = reader.boolean();
  spec.kernel.max_interactions = reader.u64();
  spec.photons = reader.u64();
  spec.seed = reader.u64();
  spec.validate();
  return spec;
}

std::vector<std::uint8_t> TaskPayload::encode() const {
  util::ByteWriter writer;
  spec.serialize(writer);
  writer.u64(task_photons);
  return writer.take();
}

TaskPayload TaskPayload::decode(const std::vector<std::uint8_t>& bytes) {
  util::ByteReader reader(bytes);
  TaskPayload payload;
  payload.spec = SimulationSpec::deserialize(reader);
  payload.task_photons = reader.u64();
  if (!reader.exhausted()) {
    throw std::invalid_argument("TaskPayload: trailing bytes");
  }
  return payload;
}

}  // namespace phodis::core
