// Preset simulation specs for the paper's experiments, shared by the
// benches, examples and integration tests so every consumer reproduces
// exactly the same configuration.
#pragma once

#include <cstdint>

#include "core/spec.hpp"

namespace phodis::core {

/// Fig. 3: laser (delta) source into homogeneous white matter, detected
/// paths accumulated on a granularity³ grid. Source at origin, detector
/// disc at `separation_mm`.
SimulationSpec fig3_banana_spec(std::uint64_t photons = 200'000,
                                std::size_t granularity = 50,
                                double separation_mm = 20.0,
                                std::uint64_t seed = 2006);

/// Fig. 4: the layered adult head model of Table 1 with fluence and
/// all-paths grids enabled.
SimulationSpec fig4_head_spec(std::uint64_t photons = 200'000,
                              std::size_t granularity = 50,
                              double separation_mm = 30.0,
                              std::uint64_t seed = 2006);

/// §4 source-footprint study: same head model, configurable source.
SimulationSpec source_footprint_spec(mc::SourceType type, double radius_mm,
                                     std::uint64_t photons = 100'000,
                                     std::uint64_t seed = 2006);

}  // namespace phodis::core
