#include "core/experiments.hpp"

#include "mc/presets.hpp"

namespace phodis::core {

SimulationSpec fig3_banana_spec(std::uint64_t photons, std::size_t granularity,
                                double separation_mm, std::uint64_t seed) {
  SimulationSpec spec;
  spec.kernel.medium = mc::homogeneous_white_matter();
  spec.kernel.source.type = mc::SourceType::kDelta;

  mc::DetectorSpec detector;
  detector.separation_mm = separation_mm;
  detector.radius_mm = 2.0;
  spec.kernel.detector = detector;

  // Grid window: a margin around the optode span, depth ~ separation.
  const double margin = 0.5 * separation_mm;
  mc::GridSpec grid;
  grid.x_min = -margin;
  grid.x_max = separation_mm + margin;
  grid.y_min = -margin;
  grid.y_max = margin;
  grid.z_min = 0.0;
  grid.z_max = separation_mm;
  grid.nx = grid.ny = grid.nz = granularity;
  spec.kernel.tally.enable_path_grid = true;
  spec.kernel.tally.path_spec = grid;

  spec.photons = photons;
  spec.seed = seed;
  return spec;
}

SimulationSpec fig4_head_spec(std::uint64_t photons, std::size_t granularity,
                              double separation_mm, std::uint64_t seed) {
  SimulationSpec spec;
  spec.kernel.medium = mc::adult_head_model();
  spec.kernel.source.type = mc::SourceType::kDelta;

  mc::DetectorSpec detector;
  detector.separation_mm = separation_mm;
  detector.radius_mm = 2.5;
  spec.kernel.detector = detector;

  const double margin = 0.5 * separation_mm;
  mc::GridSpec grid;
  grid.x_min = -margin;
  grid.x_max = separation_mm + margin;
  grid.y_min = -margin;
  grid.y_max = margin;
  grid.z_min = 0.0;
  grid.z_max = 30.0;  // scalp..white matter span of the Table 1 model
  grid.nx = grid.ny = grid.nz = granularity;
  spec.kernel.tally.enable_fluence_grid = true;
  spec.kernel.tally.fluence_spec = grid;
  spec.kernel.tally.enable_path_grid = true;
  spec.kernel.tally.path_spec = grid;
  spec.kernel.tally.depth_max_mm = 30.0;

  spec.photons = photons;
  spec.seed = seed;
  return spec;
}

SimulationSpec source_footprint_spec(mc::SourceType type, double radius_mm,
                                     std::uint64_t photons,
                                     std::uint64_t seed) {
  SimulationSpec spec = fig4_head_spec(photons, 50, 30.0, seed);
  spec.kernel.source.type = type;
  spec.kernel.source.radius_mm = radius_mm;
  return spec;
}

}  // namespace phodis::core
