// IncrementalTallyMerger — server-side result streaming.
//
// The DataManager used to retain every task's serialised tally until the
// run ended; for a 1e9-photon run with voxel grids that is gigabytes of
// result bytes held only so they can be merged in task-id order at the
// end. This merger folds results as they arrive instead, while keeping
// the repo's bitwise-reproducibility invariant: tallies are only ever
// merged in task-id order, so a result arriving ahead of its turn waits
// in a small reorder buffer until the contiguous prefix reaches it.
// Memory is bounded by the out-of-order window (at most the number of
// in-flight leases, not the number of completed tasks).
//
// Designed to sit behind DataManager::set_result_sink; fold() is
// thread-safe and the whole state (merged tally, fold frontier, reorder
// buffer) round-trips through state_bytes()/restore for checkpointing.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "core/spec.hpp"
#include "mc/tally.hpp"

namespace phodis::core {

class IncrementalTallyMerger {
 public:
  /// The spec whose tasks are being merged (shapes the empty tally).
  explicit IncrementalTallyMerger(const SimulationSpec& spec);

  /// Accept task `task_id`'s serialised tally. Folds it immediately if
  /// it extends the contiguous prefix 0..n (draining any buffered
  /// successors), otherwise buffers it. A task at or below the frontier
  /// is ignored (already folded — e.g. a replay after restore).
  void fold(std::uint64_t task_id, std::vector<std::uint8_t> bytes);

  /// Next task id to fold: every id below it is already in merged().
  std::uint64_t frontier() const;

  /// Results waiting for the prefix to reach them.
  std::size_t buffered_count() const;

  /// The merged tally over tasks [0, frontier()).
  mc::SimulationTally merged() const;

  /// Serialise frontier + merged tally + reorder buffer.
  std::vector<std::uint8_t> state_bytes() const;

  /// Rebuild from state_bytes(). Only valid before any fold; malformed
  /// input throws. An empty blob is a no-op (fresh run).
  void restore(const std::vector<std::uint8_t>& bytes);

 private:
  mutable std::mutex mutex_;
  mc::SimulationTally merged_;
  std::uint64_t next_id_ = 0;  ///< fold frontier
  std::map<std::uint64_t, std::vector<std::uint8_t>> buffer_;
};

}  // namespace phodis::core
