// Fleet descriptions for the cluster simulator.
//
// Table 2 of the paper lists the 150 heterogeneous non-dedicated clients
// (count, Mflop/s, JVM memory, OS, CPU) used for the production runs;
// the speedup experiment of Fig. 2 used up to 60 homogeneous Pentium IVs
// with 512 MB RAM. Both fleets are encoded here verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phodis::cluster {

/// One machine in the fleet.
struct NodeSpec {
  std::string name;
  double mflops = 100.0;   ///< sustained processing rate [Mflop/s]
  std::uint32_t ram_mb = 256;
  std::string os;
  std::string cpu;
};

/// One row of the paper's Table 2: `count` identical machines whose
/// measured rate varied over [mflops_lo, mflops_hi].
struct Table2Row {
  std::uint32_t count;
  double mflops_lo;
  double mflops_hi;
  std::uint32_t ram_mb;
  std::string os;
  std::string cpu;
};

/// The verbatim rows of Table 2 (sums to 150 machines).
const std::vector<Table2Row>& table2_rows();

/// Expand Table 2 into 150 NodeSpecs. Rates within a row's range are
/// assigned deterministically (evenly spaced across the range), so the
/// fleet is reproducible without an RNG.
std::vector<NodeSpec> table2_fleet();

/// `count` identical Pentium-IV class machines (Fig. 2's fleet).
std::vector<NodeSpec> homogeneous_p4_fleet(std::size_t count,
                                           double mflops = 200.0);

/// Sum of node rates [Mflop/s].
double aggregate_mflops(const std::vector<NodeSpec>& fleet);

}  // namespace phodis::cluster
