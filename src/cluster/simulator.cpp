#include "cluster/simulator.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/rng.hpp"

namespace phodis::cluster {

void LoadModel::validate() const {
  if (!(min_availability > 0.0) || min_availability > max_availability ||
      max_availability > 1.0) {
    throw std::invalid_argument(
        "LoadModel: need 0 < min_availability <= max_availability <= 1");
  }
}

void ClusterConfig::validate() const {
  if (fleet.empty()) {
    throw std::invalid_argument("ClusterConfig: empty fleet");
  }
  for (const NodeSpec& node : fleet) {
    if (!(node.mflops > 0.0)) {
      throw std::invalid_argument("ClusterConfig: node rate must be > 0");
    }
  }
  if (total_photons == 0 || chunk_photons == 0) {
    throw std::invalid_argument("ClusterConfig: photon counts must be > 0");
  }
  if (!(network.bandwidth_bps > 0.0) || network.latency_s < 0.0) {
    throw std::invalid_argument("ClusterConfig: bad network model");
  }
  if (!(cost.flops_per_photon > 0.0)) {
    throw std::invalid_argument("ClusterConfig: flops_per_photon must be > 0");
  }
  load.validate();
}

double ClusterReport::server_utilisation() const noexcept {
  return makespan_s > 0.0 ? server_busy_s / makespan_s : 0.0;
}

double ClusterReport::mean_node_utilisation() const noexcept {
  if (nodes.empty() || makespan_s <= 0.0) return 0.0;
  double sum = 0.0;
  for (const NodeReport& node : nodes) sum += node.busy_s / makespan_s;
  return sum / static_cast<double>(nodes.size());
}

ClusterSimulator::ClusterSimulator(ClusterConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

ClusterReport ClusterSimulator::run() {
  const std::vector<std::uint64_t> chunks =
      dist::chunk_plan(config_.total_photons, config_.chunk_photons);
  if (config_.mode == ScheduleMode::kStatic) {
    // Default static policy when none is supplied explicitly.
    dist::GreedyScheduler greedy;
    return run_static(greedy);
  }
  return run_with_assignment(chunks, std::nullopt);
}

ClusterReport ClusterSimulator::run_static(dist::StaticScheduler& scheduler) {
  const std::vector<std::uint64_t> chunks =
      dist::chunk_plan(config_.total_photons, config_.chunk_photons);
  std::vector<double> sizes(chunks.begin(), chunks.end());
  std::vector<double> rates;
  rates.reserve(config_.fleet.size());
  for (const NodeSpec& node : config_.fleet) rates.push_back(node.mflops);
  const dist::Schedule schedule = scheduler.schedule(sizes, rates);
  return run_with_assignment(chunks, schedule.assignment);
}

ClusterReport ClusterSimulator::run_with_assignment(
    const std::vector<std::uint64_t>& chunks,
    const std::optional<std::vector<std::size_t>>& assignment) {
  enum class Kind : std::uint8_t { kRequest, kResult };
  struct Event {
    double time;
    std::uint64_t seq;  // tie-break so ordering is fully deterministic
    std::size_t node;
    Kind kind;
    std::uint64_t photons;  // for kResult
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };

  const std::size_t node_count = config_.fleet.size();

  // Work queues: one global queue (dynamic) or one per node (static).
  std::vector<std::vector<std::uint64_t>> per_node_chunks(node_count);
  std::size_t next_global_chunk = 0;
  if (assignment) {
    if (assignment->size() != chunks.size()) {
      throw std::invalid_argument("static assignment size mismatch");
    }
    // Reverse order so pop_back() serves chunks in schedule order.
    for (std::size_t j = chunks.size(); j-- > 0;) {
      per_node_chunks[(*assignment)[j]].push_back(chunks[j]);
    }
  }

  auto take_chunk = [&](std::size_t node) -> std::optional<std::uint64_t> {
    if (assignment) {
      auto& mine = per_node_chunks[node];
      if (mine.empty()) return std::nullopt;
      const std::uint64_t c = mine.back();
      mine.pop_back();
      return c;
    }
    if (next_global_chunk >= chunks.size()) return std::nullopt;
    return chunks[next_global_chunk++];
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue;
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < node_count; ++i) {
    queue.push(Event{0.0, seq++, i, Kind::kRequest, 0});
  }

  util::Xoshiro256pp rng(config_.seed);
  double server_free = 0.0;
  ClusterReport report;
  report.nodes.resize(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    report.nodes[i].name = config_.fleet[i].name;
  }

  std::uint64_t merged = 0;
  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();

    if (ev.kind == Kind::kRequest) {
      const auto chunk = take_chunk(ev.node);
      if (!chunk) continue;  // node idles out; all its work is done
      const double assign_start = std::max(ev.time, server_free);
      server_free = assign_start + config_.cost.assign_cost_s;
      report.server_busy_s += config_.cost.assign_cost_s;

      const double node_start =
          server_free + config_.network.transfer_s(config_.cost.task_bytes);
      const double availability = rng.uniform(config_.load.min_availability,
                                              config_.load.max_availability);
      const double compute_s =
          static_cast<double>(*chunk) * config_.cost.flops_per_photon /
          (config_.fleet[ev.node].mflops * 1.0e6 * availability);
      const double result_at_server =
          node_start + compute_s +
          config_.network.transfer_s(config_.cost.result_bytes);

      NodeReport& nr = report.nodes[ev.node];
      ++nr.tasks_completed;
      nr.photons_computed += *chunk;
      nr.busy_s += compute_s;

      queue.push(Event{result_at_server, seq++, ev.node, Kind::kResult,
                       *chunk});
    } else {
      const double merge_start = std::max(ev.time, server_free);
      server_free = merge_start + config_.cost.merge_cost_s;
      report.server_busy_s += config_.cost.merge_cost_s;
      ++merged;
      report.makespan_s = server_free;
      // The client's next work request rides along with its result.
      queue.push(Event{ev.time, seq++, ev.node, Kind::kRequest, 0});
    }
  }

  report.tasks = merged;
  return report;
}

std::vector<SpeedupPoint> speedup_series(
    const ClusterConfig& base_config, std::size_t max_nodes,
    const std::vector<std::size_t>& node_counts) {
  if (base_config.fleet.empty()) {
    throw std::invalid_argument("speedup_series: base fleet empty");
  }
  const NodeSpec prototype = base_config.fleet.front();

  auto run_with = [&](std::size_t k) {
    ClusterConfig config = base_config;
    config.fleet.assign(k, prototype);
    for (std::size_t i = 0; i < k; ++i) {
      config.fleet[i].name = prototype.name + "-" + std::to_string(i);
    }
    return ClusterSimulator(config).run().makespan_s;
  };

  const double t1 = run_with(1);
  std::vector<SpeedupPoint> series;
  for (std::size_t k : node_counts) {
    if (k == 0 || k > max_nodes) continue;
    SpeedupPoint point;
    point.processors = k;
    point.makespan_s = run_with(k);
    point.speedup = t1 / point.makespan_s;
    point.efficiency = point.speedup / static_cast<double>(k);
    series.push_back(point);
  }
  return series;
}

}  // namespace phodis::cluster
