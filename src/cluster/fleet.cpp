#include "cluster/fleet.hpp"

#include <stdexcept>

namespace phodis::cluster {

const std::vector<Table2Row>& table2_rows() {
  static const std::vector<Table2Row> rows = {
      {91, 28.0, 31.0, 256, "Linux", "P3 600MHz"},
      {50, 190.0, 229.0, 512, "Linux", "P4 2.4GHz"},
      {4, 15.0, 15.0, 192, "Linux", "P2 266MHz"},
      {1, 154.0, 154.0, 1024, "Windows XP", "P4 Centrino 1.4GHz"},
      {1, 25.0, 25.0, 512, "Linux", "P3 500MHz"},
      {1, 37.0, 37.0, 256, "Linux", "P3 1GHz"},
      {1, 72.0, 72.0, 256, "Linux", "P4 1.7GHz"},
      {1, 91.0, 91.0, 1024, "FreeBSD", "AMD 2400+XP"},
  };
  return rows;
}

std::vector<NodeSpec> table2_fleet() {
  std::vector<NodeSpec> fleet;
  fleet.reserve(150);
  std::size_t serial = 0;
  for (const Table2Row& row : table2_rows()) {
    for (std::uint32_t i = 0; i < row.count; ++i) {
      NodeSpec node;
      node.name = "client-" + std::to_string(serial++);
      // Spread rates evenly across the row's measured range.
      node.mflops =
          row.count > 1
              ? row.mflops_lo + (row.mflops_hi - row.mflops_lo) *
                                    static_cast<double>(i) /
                                    static_cast<double>(row.count - 1)
              : row.mflops_lo;
      node.ram_mb = row.ram_mb;
      node.os = row.os;
      node.cpu = row.cpu;
      fleet.push_back(std::move(node));
    }
  }
  return fleet;
}

std::vector<NodeSpec> homogeneous_p4_fleet(std::size_t count, double mflops) {
  if (count == 0) {
    throw std::invalid_argument("homogeneous_p4_fleet: count must be > 0");
  }
  std::vector<NodeSpec> fleet;
  fleet.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    NodeSpec node;
    node.name = "p4-" + std::to_string(i);
    node.mflops = mflops;
    node.ram_mb = 512;
    node.os = "Linux";
    node.cpu = "P4";
    fleet.push_back(std::move(node));
  }
  return fleet;
}

double aggregate_mflops(const std::vector<NodeSpec>& fleet) {
  double total = 0.0;
  for (const NodeSpec& node : fleet) total += node.mflops;
  return total;
}

}  // namespace phodis::cluster
