// Tests for optical properties, the layered medium, and the Table 1
// presets.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "mc/layer.hpp"
#include "mc/optical.hpp"
#include "mc/presets.hpp"

namespace phodis::mc {
namespace {

// ---------- OpticalProperties ------------------------------------------------

TEST(Optical, DerivedQuantities) {
  OpticalProperties p;
  p.mua = 0.014;
  p.mus = 91.0;
  p.g = 0.9;
  p.n = 1.4;
  EXPECT_DOUBLE_EQ(p.mut(), 91.014);
  EXPECT_NEAR(p.albedo(), 91.0 / 91.014, 1e-12);
  EXPECT_NEAR(p.mus_reduced(), 9.1, 1e-12);
  EXPECT_NEAR(p.mean_free_path(), 1.0 / 91.014, 1e-15);
}

TEST(Optical, MueffMatchesDefinition) {
  OpticalProperties p;
  p.mua = 0.02;
  p.mus = 10.0;
  p.g = 0.9;
  const double expected = std::sqrt(3.0 * 0.02 * (0.02 + 1.0));
  EXPECT_NEAR(p.mueff(), expected, 1e-12);
}

TEST(Optical, VacuumHasInfiniteMeanFreePath) {
  OpticalProperties p;  // all zero, n = 1
  EXPECT_TRUE(std::isinf(p.mean_free_path()));
  EXPECT_DOUBLE_EQ(p.albedo(), 0.0);
}

TEST(Optical, ValidateRejectsOutOfRange) {
  OpticalProperties p;
  p.mua = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.mua = 0.1;
  p.mus = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.mus = 1.0;
  p.g = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.g = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.g = 0.5;
  p.n = 0.9;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.n = 1.4;
  EXPECT_NO_THROW(p.validate());
}

TEST(Optical, FromReducedInvertsCorrectly) {
  const OpticalProperties p = OpticalProperties::from_reduced(0.018, 1.9, 0.9, 1.4);
  EXPECT_NEAR(p.mus_reduced(), 1.9, 1e-12);
  EXPECT_NEAR(p.mus, 19.0, 1e-12);
  EXPECT_DOUBLE_EQ(p.g, 0.9);
}

class FromReducedSweep : public ::testing::TestWithParam<double> {};

TEST_P(FromReducedSweep, ReducedCoefficientIsPreserved) {
  const double g = GetParam();
  const OpticalProperties p = OpticalProperties::from_reduced(0.02, 2.2, g, 1.4);
  EXPECT_NEAR(p.mus_reduced(), 2.2, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(AnisotropyValues, FromReducedSweep,
                         ::testing::Values(0.0, 0.5, 0.8, 0.9, 0.95, 0.99,
                                           -0.5));

// ---------- LayeredMedium ----------------------------------------------------

OpticalProperties simple_props(double n = 1.4) {
  OpticalProperties p;
  p.mua = 0.01;
  p.mus = 1.0;
  p.g = 0.9;
  p.n = n;
  return p;
}

TEST(Layer, BuilderStacksContiguously) {
  LayeredMediumBuilder b;
  b.add_layer("a", simple_props(), 3.0);
  b.add_layer("b", simple_props(), 7.0);
  b.add_semi_infinite_layer("c", simple_props());
  const LayeredMedium m = b.build();
  ASSERT_EQ(m.layer_count(), 3u);
  EXPECT_DOUBLE_EQ(m.layer(0).z0, 0.0);
  EXPECT_DOUBLE_EQ(m.layer(0).z1, 3.0);
  EXPECT_DOUBLE_EQ(m.layer(1).z0, 3.0);
  EXPECT_DOUBLE_EQ(m.layer(1).z1, 10.0);
  EXPECT_DOUBLE_EQ(m.layer(2).z0, 10.0);
  EXPECT_TRUE(std::isinf(m.layer(2).z1));
  EXPECT_TRUE(m.semi_infinite());
  EXPECT_DOUBLE_EQ(m.total_thickness(), 10.0);
}

TEST(Layer, LayerAtMapsDepthsToLayers) {
  LayeredMediumBuilder b;
  b.add_layer("a", simple_props(), 2.0);
  b.add_layer("b", simple_props(), 3.0);
  b.add_semi_infinite_layer("c", simple_props());
  const LayeredMedium m = b.build();
  EXPECT_EQ(m.layer_at(0.0), 0u);
  EXPECT_EQ(m.layer_at(1.999), 0u);
  EXPECT_EQ(m.layer_at(2.0), 1u);  // interface belongs to the layer below
  EXPECT_EQ(m.layer_at(4.999), 1u);
  EXPECT_EQ(m.layer_at(5.0), 2u);
  EXPECT_EQ(m.layer_at(1e9), 2u);
}

TEST(Layer, NeighbourIndexAtEdgesUsesAmbient) {
  LayeredMediumBuilder b;
  b.ambient_above(1.0).ambient_below(1.33);
  b.add_layer("a", simple_props(1.4), 1.0);
  b.add_layer("b", simple_props(1.5), 1.0);
  const LayeredMedium m = b.build();
  EXPECT_DOUBLE_EQ(m.neighbour_index(0, false), 1.0);   // above layer 0: air
  EXPECT_DOUBLE_EQ(m.neighbour_index(0, true), 1.5);    // below layer 0
  EXPECT_DOUBLE_EQ(m.neighbour_index(1, false), 1.4);   // above layer 1
  EXPECT_DOUBLE_EQ(m.neighbour_index(1, true), 1.33);   // below: ambient
}

TEST(Layer, BuilderRejectsInvalidUse) {
  LayeredMediumBuilder b;
  EXPECT_THROW(b.build(), std::logic_error);  // no layers
  EXPECT_THROW(b.add_layer("x", simple_props(), 0.0), std::invalid_argument);
  EXPECT_THROW(b.add_layer("x", simple_props(), -1.0), std::invalid_argument);
  b.add_semi_infinite_layer("end", simple_props());
  EXPECT_THROW(b.add_layer("after", simple_props(), 1.0), std::logic_error);
  EXPECT_THROW(b.add_semi_infinite_layer("again", simple_props()),
               std::logic_error);
}

TEST(Layer, BuilderRejectsBadAmbient) {
  LayeredMediumBuilder b;
  EXPECT_THROW(b.ambient_above(0.5), std::invalid_argument);
  EXPECT_THROW(b.ambient_below(0.0), std::invalid_argument);
}

TEST(Layer, BuilderValidatesLayerProperties) {
  LayeredMediumBuilder b;
  OpticalProperties bad;
  bad.mua = -5.0;
  EXPECT_THROW(b.add_layer("bad", bad, 1.0), std::invalid_argument);
}

TEST(Layer, FiniteBottomMedium) {
  LayeredMediumBuilder b;
  b.add_layer("only", simple_props(), 4.0);
  const LayeredMedium m = b.build();
  EXPECT_FALSE(m.semi_infinite());
  EXPECT_DOUBLE_EQ(m.bottom(), 4.0);
}

// ---------- presets ----------------------------------------------------------

TEST(Presets, Table1HasFiveTissues) {
  const auto& rows = table1_rows();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].tissue, "Scalp");
  EXPECT_EQ(rows[1].tissue, "Skull");
  EXPECT_EQ(rows[2].tissue, "CSF");
  EXPECT_EQ(rows[3].tissue, "Grey matter");
  EXPECT_EQ(rows[4].tissue, "White matter");
}

TEST(Presets, Table1OpticalValuesMatchPaper) {
  const auto& rows = table1_rows();
  EXPECT_DOUBLE_EQ(rows[0].mus_prime_per_mm, 1.9);
  EXPECT_DOUBLE_EQ(rows[0].mua_per_mm, 0.018);
  EXPECT_DOUBLE_EQ(rows[1].mus_prime_per_mm, 1.6);
  EXPECT_DOUBLE_EQ(rows[1].mua_per_mm, 0.016);
  EXPECT_DOUBLE_EQ(rows[2].mus_prime_per_mm, 0.25);
  EXPECT_DOUBLE_EQ(rows[2].mua_per_mm, 0.004);
  EXPECT_DOUBLE_EQ(rows[3].mus_prime_per_mm, 2.2);
  EXPECT_DOUBLE_EQ(rows[3].mua_per_mm, 0.036);
  EXPECT_DOUBLE_EQ(rows[4].mus_prime_per_mm, 9.1);
  EXPECT_DOUBLE_EQ(rows[4].mua_per_mm, 0.014);
}

TEST(Presets, AdultHeadModelStructure) {
  const LayeredMedium head = adult_head_model();
  ASSERT_EQ(head.layer_count(), 5u);
  EXPECT_EQ(head.layer(0).name, "Scalp");
  EXPECT_EQ(head.layer(4).name, "White matter");
  EXPECT_TRUE(head.semi_infinite());
  // CSF is the low-scattering "sandwich" layer.
  EXPECT_LT(head.layer(2).props.mus_reduced(),
            head.layer(1).props.mus_reduced());
  EXPECT_LT(head.layer(2).props.mus_reduced(),
            head.layer(3).props.mus_reduced());
  // White matter is the most scattering tissue in the model.
  for (std::size_t i = 0; i + 1 < head.layer_count(); ++i) {
    EXPECT_LT(head.layer(i).props.mus_reduced(),
              head.layer(4).props.mus_reduced());
  }
}

TEST(Presets, AdultHeadThicknessesInsideTable1Ranges) {
  const auto& rows = table1_rows();
  // Scalp and skull adopted thicknesses sit inside the printed ranges.
  EXPECT_GE(rows[0].thickness_used_mm, rows[0].thickness_cm_lo * 10.0);
  EXPECT_LE(rows[0].thickness_used_mm, rows[0].thickness_cm_hi * 10.0);
  EXPECT_GE(rows[1].thickness_used_mm, rows[1].thickness_cm_lo * 10.0);
  EXPECT_LE(rows[1].thickness_used_mm, rows[1].thickness_cm_hi * 10.0);
}

TEST(Presets, ReducedScatteringIsGInvariant) {
  // Table 1 constrains µs', so two models with different g but the same
  // µs' must agree on µs'.
  const LayeredMedium a = adult_head_model(0.9);
  const LayeredMedium b = adult_head_model(0.0);
  for (std::size_t i = 0; i < a.layer_count(); ++i) {
    EXPECT_NEAR(a.layer(i).props.mus_reduced(),
                b.layer(i).props.mus_reduced(), 1e-10);
  }
}

TEST(Presets, HomogeneousWhiteMatter) {
  const LayeredMedium wm = homogeneous_white_matter();
  ASSERT_EQ(wm.layer_count(), 1u);
  EXPECT_TRUE(wm.semi_infinite());
  EXPECT_NEAR(wm.layer(0).props.mus_reduced(), 9.1, 1e-10);
  EXPECT_DOUBLE_EQ(wm.layer(0).props.mua, 0.014);
}

TEST(Presets, HomogeneousSlabAndSemiInfinite) {
  OpticalProperties p = simple_props(1.0);
  const LayeredMedium slab = homogeneous_slab(p, 5.0, 1.0);
  EXPECT_EQ(slab.layer_count(), 1u);
  EXPECT_DOUBLE_EQ(slab.bottom(), 5.0);
  const LayeredMedium semi = homogeneous_semi_infinite(p, 1.4);
  EXPECT_TRUE(semi.semi_infinite());
  EXPECT_DOUBLE_EQ(semi.n_above(), 1.4);
}

}  // namespace
}  // namespace phodis::mc
