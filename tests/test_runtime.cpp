// End-to-end tests of the distributed runtime: the full
// RequestWork/AssignTask/TaskResult protocol with fault injection.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "dist/runtime.hpp"
#include "dist/transport.hpp"

namespace phodis::dist {
namespace {

/// Executor that doubles every payload byte (deterministic, cheap).
std::vector<std::uint8_t> doubler(std::uint64_t /*task_id*/,
                                  const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out = payload;
  for (auto& b : out) b = static_cast<std::uint8_t>(b * 2);
  return out;
}

std::vector<TaskRecord> make_tasks(std::size_t count) {
  std::vector<TaskRecord> tasks;
  for (std::size_t i = 0; i < count; ++i) {
    tasks.push_back(TaskRecord{
        i, {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i + 1)}});
  }
  return tasks;
}

TEST(RuntimeConfig, Validation) {
  RuntimeConfig config;
  config.worker_count = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.worker_count = 1;
  config.lease_duration_s = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.lease_duration_s = 1.0;
  config.worker_death_probability = 1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Runtime, CompletesAllTasksSingleWorker) {
  RuntimeConfig config;
  config.worker_count = 1;
  Runtime runtime(config);
  const auto tasks = make_tasks(16);
  const RuntimeReport report = runtime.run(tasks, doubler);
  ASSERT_EQ(report.results.size(), 16u);
  for (const auto& task : tasks) {
    const auto& result = report.results.at(task.task_id);
    ASSERT_EQ(result.size(), 2u);
    EXPECT_EQ(result[0], static_cast<std::uint8_t>(task.payload[0] * 2));
  }
  EXPECT_EQ(report.manager_stats.completions, 16u);
}

TEST(Runtime, CompletesWithManyWorkers) {
  RuntimeConfig config;
  config.worker_count = 8;
  Runtime runtime(config);
  const RuntimeReport report = runtime.run(make_tasks(64), doubler);
  EXPECT_EQ(report.results.size(), 64u);
}

TEST(Runtime, EmptyTaskListTerminatesImmediately) {
  RuntimeConfig config;
  config.worker_count = 2;
  Runtime runtime(config);
  const RuntimeReport report = runtime.run({}, doubler);
  EXPECT_TRUE(report.results.empty());
}

TEST(Runtime, ExecutorSeesCorrectTaskIds) {
  std::atomic<std::uint64_t> id_sum{0};
  auto executor = [&](std::uint64_t task_id,
                      const std::vector<std::uint8_t>&) {
    id_sum.fetch_add(task_id);
    return std::vector<std::uint8_t>{};
  };
  RuntimeConfig config;
  config.worker_count = 3;
  Runtime runtime(config);
  runtime.run(make_tasks(10), executor);
  // 0+1+..+9 = 45; duplicates possible only via lease expiry (none here,
  // leases are long and the executor is instant).
  EXPECT_EQ(id_sum.load(), 45u);
}

TEST(Runtime, SurvivesDroppedFrames) {
  RuntimeConfig config;
  config.worker_count = 4;
  config.transport_faults.drop_probability = 0.10;
  config.transport_faults.seed = 11;
  config.lease_duration_s = 0.2;  // fast recovery of lost assignments
  Runtime runtime(config);
  const RuntimeReport report = runtime.run(make_tasks(40), doubler);
  ASSERT_EQ(report.results.size(), 40u);
  EXPECT_GT(report.frames_dropped, 0u);
  // Every task completed exactly once despite retries.
  EXPECT_EQ(report.manager_stats.completions, 40u);
}

TEST(Runtime, SurvivesWorkerDeaths) {
  RuntimeConfig config;
  config.worker_count = 6;
  config.worker_death_probability = 0.2;
  config.fault_seed = 17;
  config.lease_duration_s = 0.2;
  Runtime runtime(config);
  const RuntimeReport report = runtime.run(make_tasks(50), doubler);
  ASSERT_EQ(report.results.size(), 50u);
  EXPECT_GT(report.workers_died, 0u);
  // Deaths force re-issues, visible as lease expirations.
  EXPECT_GT(report.manager_stats.lease_expirations, 0u);
}

TEST(Runtime, FaultyRunProducesSameResultsAsCleanRun) {
  // Results are deterministic functions of (task_id, payload), so the
  // result *set* must be identical no matter what the network does.
  RuntimeConfig clean;
  clean.worker_count = 3;
  RuntimeConfig faulty;
  faulty.worker_count = 3;
  faulty.transport_faults.drop_probability = 0.15;
  faulty.transport_faults.seed = 23;
  faulty.worker_death_probability = 0.1;
  faulty.lease_duration_s = 0.2;

  const auto tasks = make_tasks(30);
  const RuntimeReport a = Runtime(clean).run(tasks, doubler);
  const RuntimeReport b = Runtime(faulty).run(tasks, doubler);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (const auto& [id, bytes] : a.results) {
    EXPECT_EQ(b.results.at(id), bytes) << "task " << id;
  }
}

TEST(Runtime, RunsOverAnInjectedTransport) {
  LoopbackTransport transport;
  RuntimeConfig config;
  config.worker_count = 2;
  Runtime runtime(config, transport);
  const RuntimeReport report = runtime.run(make_tasks(12), doubler);
  EXPECT_EQ(report.results.size(), 12u);
  EXPECT_EQ(report.frames_sent, transport.frames_sent());
  EXPECT_TRUE(transport.closed());  // a transport carries one run
}

TEST(Runtime, SurfacesCheckpointFailureAsException) {
  // A failing server-side checkpoint must unwind as a catchable
  // exception, not std::terminate on the still-joinable worker threads.
  RuntimeConfig config;
  config.worker_count = 2;
  config.checkpoint_path = "/nonexistent_phodis_dir/run.ckpt";
  Runtime runtime(config);
  EXPECT_THROW(runtime.run(make_tasks(40), doubler), std::runtime_error);
}

TEST(Runtime, ReportsTransportStatistics) {
  RuntimeConfig config;
  config.worker_count = 2;
  Runtime runtime(config);
  const RuntimeReport report = runtime.run(make_tasks(8), doubler);
  EXPECT_GT(report.frames_sent, 16u);  // at least request+assign per task
  EXPECT_GT(report.bytes_sent, 0u);
  EXPECT_GE(report.wall_seconds, 0.0);
}

TEST(Runtime, LargePayloadsRoundTrip) {
  std::vector<TaskRecord> tasks;
  std::vector<std::uint8_t> big(100000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 7);
  }
  tasks.push_back(TaskRecord{0, big});
  RuntimeConfig config;
  config.worker_count = 1;
  Runtime runtime(config);
  const RuntimeReport report = runtime.run(tasks, doubler);
  ASSERT_EQ(report.results.at(0).size(), big.size());
  EXPECT_EQ(report.results.at(0)[999],
            static_cast<std::uint8_t>(big[999] * 2));
}

}  // namespace
}  // namespace phodis::dist
