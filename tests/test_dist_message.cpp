// Tests for message framing and the loopback transport.
#include <gtest/gtest.h>

#include <thread>

#include "dist/message.hpp"
#include "dist/transport.hpp"

namespace phodis::dist {
namespace {

// ---------- Message ----------------------------------------------------------

TEST(Message, EncodeDecodeRoundTrip) {
  Message msg;
  msg.type = MessageType::kAssignTask;
  msg.task_id = 123456789;
  msg.sender = "worker-7";
  msg.payload = {0x00, 0xFF, 0x42, 0x10};
  const Message back = Message::decode(msg.encode());
  EXPECT_EQ(back, msg);
}

TEST(Message, EmptyPayloadRoundTrip) {
  Message msg;
  msg.type = MessageType::kRequestWork;
  msg.sender = "worker-0";
  const Message back = Message::decode(msg.encode());
  EXPECT_EQ(back, msg);
  EXPECT_TRUE(back.payload.empty());
}

TEST(Message, AllTypesRoundTrip) {
  for (MessageType type :
       {MessageType::kRequestWork, MessageType::kAssignTask,
        MessageType::kTaskResult, MessageType::kNoWork,
        MessageType::kShutdown}) {
    Message msg;
    msg.type = type;
    EXPECT_EQ(Message::decode(msg.encode()).type, type);
  }
}

TEST(Message, ToStringNamesAllTypes) {
  EXPECT_EQ(to_string(MessageType::kRequestWork), "RequestWork");
  EXPECT_EQ(to_string(MessageType::kShutdown), "Shutdown");
}

TEST(Message, DecodeRejectsUnknownType) {
  Message msg;
  std::vector<std::uint8_t> frame = msg.encode();
  frame[0] = 99;
  EXPECT_THROW(Message::decode(frame), std::invalid_argument);
}

TEST(Message, DecodeRejectsLengthMismatch) {
  Message msg;
  msg.payload = {1, 2, 3};
  std::vector<std::uint8_t> frame = msg.encode();
  frame.pop_back();
  EXPECT_THROW(Message::decode(frame), std::exception);
}

TEST(Message, DecodeRejectsTruncatedHeader) {
  const std::vector<std::uint8_t> frame = {1, 2, 3};
  EXPECT_THROW(Message::decode(frame), std::out_of_range);
}

// ---------- FaultSpec --------------------------------------------------------

TEST(FaultSpec, Validation) {
  FaultSpec spec;
  EXPECT_NO_THROW(spec.validate());
  spec.drop_probability = -0.1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.drop_probability = 1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.drop_probability = 0.5;
  EXPECT_NO_THROW(spec.validate());
}

// ---------- LoopbackTransport -------------------------------------------------

TEST(Transport, DeliversInFifoOrder) {
  LoopbackTransport transport;
  for (int i = 0; i < 5; ++i) {
    Message msg;
    msg.type = MessageType::kAssignTask;
    msg.task_id = static_cast<std::uint64_t>(i);
    transport.send("dest", msg);
  }
  for (int i = 0; i < 5; ++i) {
    auto msg = transport.try_receive("dest");
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->task_id, static_cast<std::uint64_t>(i));
  }
  EXPECT_FALSE(transport.try_receive("dest").has_value());
}

TEST(Transport, EndpointsAreIsolated) {
  LoopbackTransport transport;
  Message msg;
  msg.sender = "a";
  transport.send("alice", msg);
  EXPECT_FALSE(transport.try_receive("bob").has_value());
  EXPECT_TRUE(transport.try_receive("alice").has_value());
}

TEST(Transport, ReceiveTimesOutWhenEmpty) {
  LoopbackTransport transport;
  const auto result = transport.receive("nobody", 10);
  EXPECT_FALSE(result.has_value());
}

TEST(Transport, BlockingReceiveWakesOnSend) {
  LoopbackTransport transport;
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Message msg;
    msg.task_id = 7;
    transport.send("w", msg);
  });
  const auto msg = transport.receive("w", 2000);
  sender.join();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->task_id, 7u);
}

TEST(Transport, CountsFramesAndBytes) {
  LoopbackTransport transport;
  Message msg;
  msg.payload = {1, 2, 3, 4};
  transport.send("x", msg);
  transport.send("x", msg);
  EXPECT_EQ(transport.frames_sent(), 2u);
  EXPECT_EQ(transport.frames_dropped(), 0u);
  EXPECT_GT(transport.bytes_sent(), 8u);
}

TEST(Transport, DropInjectionLosesRoughlyTheConfiguredFraction) {
  FaultSpec faults;
  faults.drop_probability = 0.3;
  faults.seed = 5;
  LoopbackTransport transport(faults);
  Message msg;
  const int n = 10000;
  for (int i = 0; i < n; ++i) transport.send("x", msg);
  const double rate =
      static_cast<double>(transport.frames_dropped()) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
  // Delivered + dropped == sent.
  int delivered = 0;
  while (transport.try_receive("x")) ++delivered;
  EXPECT_EQ(delivered + transport.frames_dropped(),
            transport.frames_sent());
}

TEST(Transport, ShutdownWakesBlockedReceivers) {
  LoopbackTransport transport;
  std::thread waiter([&] {
    const auto msg = transport.receive("w", 60000);
    EXPECT_FALSE(msg.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  transport.shutdown();
  waiter.join();
}

TEST(Transport, RefusesTrafficAfterShutdown) {
  LoopbackTransport transport;
  transport.shutdown();
  Message msg;
  transport.send("x", msg);
  EXPECT_FALSE(transport.try_receive("x").has_value());
}

TEST(Transport, ConcurrentSendersDontLoseFrames) {
  LoopbackTransport transport;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> senders;
  for (int t = 0; t < kThreads; ++t) {
    senders.emplace_back([&transport] {
      Message msg;
      for (int i = 0; i < kPerThread; ++i) transport.send("sink", msg);
    });
  }
  for (auto& t : senders) t.join();
  int received = 0;
  while (transport.try_receive("sink")) ++received;
  EXPECT_EQ(received, kThreads * kPerThread);
}

}  // namespace
}  // namespace phodis::dist
