// phodis_lint rule engine, tested the only way a linter can be trusted:
// every rule with at least one firing snippet, one clean snippet, and one
// suppressed snippet. Snippets are embedded sources run through
// lint_source() under a path that puts them in the rule's territory.
#include "lint/linter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace lint = phodis::lint;

namespace {

/// Unsuppressed diagnostics for `rule` in `source` linted as `path`.
std::vector<lint::Diagnostic> violations(const std::string& path,
                                         const std::string& source,
                                         const std::string& rule) {
  std::vector<lint::Diagnostic> out;
  for (const auto& d : lint::lint_source(path, source)) {
    if (d.rule == rule && !d.suppressed) out.push_back(d);
  }
  return out;
}

std::vector<lint::Diagnostic> suppressed(const std::string& path,
                                         const std::string& source,
                                         const std::string& rule) {
  std::vector<lint::Diagnostic> out;
  for (const auto& d : lint::lint_source(path, source)) {
    if (d.rule == rule && d.suppressed) out.push_back(d);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------
TEST(Lexer, StripsLineAndBlockComments) {
  const auto lexed = lint::lex(
      "int a; // trailing rand( comment\n"
      "/* block time( */ int b;\n");
  ASSERT_GE(lexed.code.size(), 2u);
  EXPECT_EQ(lexed.code[0], "int a; ");
  EXPECT_EQ(lexed.comments[0], " trailing rand( comment");
  EXPECT_EQ(lexed.code[1], " int b;");
  EXPECT_EQ(lexed.comments[1], " block time( ");
}

TEST(Lexer, BlanksStringAndCharContents) {
  const auto lexed = lint::lex(
      "auto s = \"rand( inside a string\";\n"
      "char c = 'x'; auto t = \"esc \\\" quote\";\n");
  EXPECT_EQ(lexed.code[0], "auto s = \"\";");
  EXPECT_EQ(lexed.code[1], "char c = ''; auto t = \"\";");
}

TEST(Lexer, MultiLineBlockCommentPreservesLineCount) {
  const auto lexed = lint::lex("int a;\n/* one\ntwo\nthree */\nint b;\n");
  ASSERT_EQ(lexed.code.size(), 6u);  // 5 lines + final empty flush
  EXPECT_EQ(lexed.code[4], "int b;");
  EXPECT_EQ(lexed.comments[2], "two");
}

TEST(Lexer, RawStringsAreBlankedAcrossLines) {
  const auto lexed = lint::lex(
      "auto s = R\"(rand(\nstd::random_device\n)\";  // not really\n"
      "int after;\n");
  // Nothing inside the raw string leaks into code lines.
  for (const auto& line : lexed.code) {
    EXPECT_EQ(line.find("random_device"), std::string::npos) << line;
  }
  EXPECT_EQ(lexed.code[3], "int after;");
}

// ---------------------------------------------------------------------------
// D1: nondeterministic sources
// ---------------------------------------------------------------------------
TEST(RuleD1, FiresOnRandomDevice) {
  const auto v = violations("src/mc/kernel.cpp",
                            "std::random_device rd;\nauto seed = rd();\n",
                            "D1");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 1);
}

TEST(RuleD1, FiresOnRandAndSrandAndTime) {
  EXPECT_EQ(violations("src/core/app.cpp", "srand(42); int x = rand();\n",
                       "D1")
                .size(),
            2u);
  EXPECT_EQ(
      violations("src/core/app.cpp", "auto t = time(nullptr);\n", "D1").size(),
      1u);
}

TEST(RuleD1, FiresOnClockNowOutsideStopwatch) {
  const std::string src = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(violations("src/dist/runtime.cpp", src, "D1").size(), 1u);
  // The sanctioned timing wrapper is the one allowed home.
  EXPECT_TRUE(violations("src/util/stopwatch.hpp", src, "D1").empty());
}

TEST(RuleD1, CleanOnIdentifiersContainingThoseWords) {
  // Word boundaries: Runtime( contains "time(", wall_time( ends in time(.
  const auto v = violations("src/dist/runtime.cpp",
                            "Runtime::Runtime(RuntimeConfig c) {}\n"
                            "double wall_time();\n"
                            "int strand(int x);\n",
                            "D1");
  EXPECT_TRUE(v.empty());
}

TEST(RuleD1, CleanInsideStringsAndComments) {
  const auto v = violations("src/core/app.cpp",
                            "log(\"rand() is banned\");  // call time() never\n",
                            "D1");
  EXPECT_TRUE(v.empty());
}

TEST(RuleD1, SuppressionSameLineAndLineAbove) {
  const auto same = suppressed(
      "src/core/app.cpp",
      "auto t = time(nullptr);  // phodis-lint: allow(D1) wall clock for "
      "log banner only\n",
      "D1");
  ASSERT_EQ(same.size(), 1u);
  EXPECT_EQ(same[0].suppress_reason,
            "wall clock for log banner only");

  const auto above = suppressed(
      "src/core/app.cpp",
      "// phodis-lint: allow(D1) banner timestamp, never a seed\n"
      "auto t = time(nullptr);\n",
      "D1");
  ASSERT_EQ(above.size(), 1u);
  EXPECT_TRUE(
      violations("src/core/app.cpp",
                 "// phodis-lint: allow(D1) banner\nauto t = time(nullptr);\n",
                 "D1")
          .empty());
}

TEST(RuleD1, SuppressionForOtherRuleDoesNotApply) {
  const auto v = violations(
      "src/core/app.cpp",
      "auto t = time(nullptr);  // phodis-lint: allow(D4) wrong rule\n", "D1");
  EXPECT_EQ(v.size(), 1u);
}

// ---------------------------------------------------------------------------
// D2: unordered-container iteration / ordered-domain ban
// ---------------------------------------------------------------------------
TEST(RuleD2, FiresOnRangeForOverUnorderedMap) {
  const auto v = violations(
      "src/analysis/render.cpp",
      "std::unordered_map<int, double> tally;\n"
      "for (const auto& [k, w] : tally) sum += w;\n",
      "D2");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 2);
}

TEST(RuleD2, FiresOnBeginIteration) {
  const auto v = violations("src/net/server.cpp",
                            "std::unordered_set<int> ids;\n"
                            "auto it = ids.begin();\n",
                            "D2");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 2);
}

TEST(RuleD2, FiresOnMereDeclarationInOrderedDomain) {
  EXPECT_EQ(violations("src/dist/datamanager.cpp",
                       "std::unordered_map<std::uint64_t, Task> tasks_;\n",
                       "D2")
                .size(),
            1u);
  // Outside the ordered domains a non-iterated unordered container is fine.
  EXPECT_TRUE(violations("src/util/cli.cpp",
                         "std::unordered_map<std::string, int> flags;\n"
                         "auto hit = flags.find(name);\n",
                         "D2")
                  .empty());
}

TEST(RuleD2, CleanOnOrderedContainers) {
  const auto v = violations("src/core/merger.cpp",
                            "std::map<int, double> tally;\n"
                            "for (const auto& [k, w] : tally) sum += w;\n"
                            "std::vector<double> v; for (double x : v) {}\n",
                            "D2");
  EXPECT_TRUE(v.empty());
}

TEST(RuleD2, SuppressionCase) {
  const auto s = suppressed(
      "src/util/registry.cpp",
      "std::unordered_map<std::string, int> cache;\n"
      "// phodis-lint: allow(D2) lookup cache, keys re-sorted before emit\n"
      "for (const auto& [k, n] : cache) keys.push_back(k);\n",
      "D2");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].suppress_reason, "lookup cache, keys re-sorted before emit");
}

// ---------------------------------------------------------------------------
// D3: hot-path FP hygiene in src/mc/
// ---------------------------------------------------------------------------
TEST(RuleD3, FiresOnHypotFloatFnsFloatDeclsAndLiterals) {
  EXPECT_EQ(
      violations("src/mc/radial.cpp", "double r = std::hypot(x, y);\n", "D3")
          .size(),
      1u);
  EXPECT_EQ(
      violations("src/mc/scatter.cpp", "auto c = powf(g, 2);\n", "D3").size(),
      1u);
  EXPECT_EQ(
      violations("src/mc/photon.hpp", "float weight = 1;\n", "D3").size(),
      1u);
  EXPECT_EQ(
      violations("src/mc/kernel.cpp", "w *= 0.5f;\n", "D3").size(), 1u);
  EXPECT_EQ(
      violations("src/mc/kernel.cpp", "w *= 1e-3f;\n", "D3").size(), 1u);
}

TEST(RuleD3, OnlyAppliesInsideMc) {
  const std::string src =
      "float x = 0.5f;\ndouble r = std::hypot(a, b);\nauto c = sinf(t);\n";
  EXPECT_TRUE(violations("src/analysis/banana.cpp", src, "D3").empty());
  EXPECT_TRUE(violations("bench/bench_kernel.cpp", src, "D3").empty());
}

TEST(RuleD3, PacketAndVmathTusAreExempt) {
  // The batched-packet TUs are compiled with scoped relaxed-FP flags and
  // carry their own golden hashes, so D3's double-only hygiene rule
  // stands down there — and ONLY there.
  const std::string src = "float x = 0.5f;\ndouble r = std::hypot(a, b);\n";
  EXPECT_TRUE(violations("src/mc/packet_kernel.cpp", src, "D3").empty());
  EXPECT_TRUE(violations("src/mc/packet_kernel.hpp", src, "D3").empty());
  EXPECT_TRUE(violations("src/mc/vmath.cpp", src, "D3").empty());
  EXPECT_TRUE(violations("src/mc/vmath.hpp", src, "D3").empty());
}

TEST(RuleD3, ExemptionIsFileScopedNotDirectoryScoped) {
  // The carve-out is an explicit file list, not a pattern that could
  // swallow neighbours: a same-prefix sibling and every other src/mc/
  // file remain D3 territory.
  // (two diagnostics per file: the float declaration and the 0.5f literal)
  const std::string src = "float x = 0.5f;\n";
  EXPECT_EQ(violations("src/mc/kernel.cpp", src, "D3").size(), 2u);
  EXPECT_EQ(violations("src/mc/vmath_tables.cpp", src, "D3").size(), 2u);
  EXPECT_EQ(violations("src/mc/packet_kernel2.cpp", src, "D3").size(), 2u);
}

TEST(RuleD3, CleanOnDoubleMath) {
  const auto v = violations(
      "src/mc/kernel.cpp",
      "double r = util::fast_radius(x, y);\n"
      "double c = std::pow(g, 2.0);\n"
      "double e = 1e-3; auto f = buf_.size();  // f as a name is fine\n",
      "D3");
  EXPECT_TRUE(v.empty());
}

TEST(RuleD3, SuppressionCase) {
  const auto s = suppressed(
      "src/mc/compiled_medium.cpp",
      "float packed = narrow(v);  // phodis-lint: allow(D3) SoA table is "
      "intentionally float, validated vs double\n",
      "D3");
  ASSERT_EQ(s.size(), 1u);  // the `float` declaration, suppressed
}

// ---------------------------------------------------------------------------
// D4: wire hygiene
// ---------------------------------------------------------------------------
TEST(RuleD4, FiresOnMemcpyInNetAndDistMessage) {
  const std::string src = "std::memcpy(prefix, &length, sizeof length);\n";
  EXPECT_EQ(violations("src/net/frame.cpp", src, "D4").size(), 1u);
  EXPECT_EQ(violations("src/dist/message.cpp", src, "D4").size(), 1u);
}

TEST(RuleD4, FiresOnBytePunningCast) {
  const auto v = violations(
      "src/net/frame.cpp",
      "auto* p = reinterpret_cast<uint8_t*>(&header);\n", "D4");
  EXPECT_EQ(v.size(), 1u);
}

TEST(RuleD4, DoesNotApplyOutsideWirePaths) {
  const std::string src = "std::memcpy(dst, src, n);\n";
  EXPECT_TRUE(violations("src/util/bytes.hpp", src, "D4").empty());
  EXPECT_TRUE(violations("src/mc/tally.cpp", src, "D4").empty());
}

TEST(RuleD4, SuppressionCase) {
  const auto s = suppressed(
      "src/net/socket.cpp",
      "// phodis-lint: allow(D4) sockaddr for the OS API, not wire bytes\n"
      "std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);\n",
      "D4");
  ASSERT_EQ(s.size(), 1u);
}

// ---------------------------------------------------------------------------
// D5: concurrency hygiene
// ---------------------------------------------------------------------------
TEST(RuleD5, FiresOnDetachAndVolatile) {
  EXPECT_EQ(violations("src/exec/threadpool.cpp",
                       "std::thread(fn).detach();\n", "D5")
                .size(),
            1u);
  EXPECT_EQ(
      violations("src/net/client.cpp", "volatile bool stop = false;\n", "D5")
          .size(),
      1u);
}

TEST(RuleD5, FiresOnSendUnderLock) {
  const auto v = violations(
      "src/net/server.cpp",
      "void f() {\n"
      "  std::lock_guard<std::mutex> lock(mutex_);\n"
      "  write_frame(socket, frame);\n"
      "}\n",
      "D5");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 3);
}

TEST(RuleD5, CleanWhenLockScopeClosesBeforeSend) {
  const auto v = violations(
      "src/net/client.cpp",
      "void f() {\n"
      "  {\n"
      "    std::lock_guard<std::mutex> lock(mutex_);\n"
      "    ++frames_sent_;\n"
      "  }\n"
      "  write_frame(socket, frame);\n"
      "}\n",
      "D5");
  EXPECT_TRUE(v.empty());
}

TEST(RuleD5, CleanWhenUniqueLockUnlockedBeforeSend) {
  const auto v = violations(
      "src/net/client.cpp",
      "void f() {\n"
      "  std::unique_lock<std::mutex> lock(mutex_);\n"
      "  auto socket = socket_;\n"
      "  lock.unlock();\n"
      "  write_frame(*socket, frame);\n"
      "}\n",
      "D5");
  EXPECT_TRUE(v.empty());
}

TEST(RuleD5, RelockingRearms) {
  const auto v = violations(
      "src/net/client.cpp",
      "void f() {\n"
      "  std::unique_lock<std::mutex> lock(mutex_);\n"
      "  lock.unlock();\n"
      "  lock.lock();\n"
      "  socket.send_all(data, n);\n"
      "}\n",
      "D5");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 5);
}

TEST(RuleD5, SuppressionCase) {
  const auto s = suppressed(
      "src/net/server.cpp",
      "void f() {\n"
      "  std::lock_guard<std::mutex> write_lock(connection->write_mutex);\n"
      "  // phodis-lint: allow(D5) per-connection write mutex serialises "
      "frames; no other lock is held\n"
      "  if (!write_frame(connection->socket, frame)) {}\n"
      "}\n",
      "D5");
  ASSERT_EQ(s.size(), 1u);
}

// ---------------------------------------------------------------------------
// Stats, baseline parsing, ratchet
// ---------------------------------------------------------------------------
TEST(Stats, CountsViolationsAndSuppressionsPerRule) {
  lint::Stats stats;
  const auto diags = lint::lint_source(
      "src/mc/kernel.cpp",
      "std::random_device rd;\n"
      "float w = 0;  // phodis-lint: allow(D3) test\n");
  for (const auto& d : diags) stats.add(d);
  EXPECT_EQ(stats.violations.at("D1"), 1);
  EXPECT_EQ(stats.suppressions.at("D3"), 1);
  EXPECT_EQ(stats.total_violations(), 1);
  EXPECT_EQ(stats.total_suppressions(), 1);
}

TEST(Baseline, ParsesRulesAndComments) {
  const auto b = lint::parse_baseline(
      "# per-rule suppression ceilings\n"
      "D1 2\n"
      "D4 3  # sockaddr memcpys\n"
      "\n");
  EXPECT_EQ(b.at("D1"), 2);
  EXPECT_EQ(b.at("D4"), 3);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_THROW(lint::parse_baseline("D1 not-a-number\n"), std::runtime_error);
  EXPECT_THROW(lint::parse_baseline("D1 -1\n"), std::runtime_error);
}

TEST(Baseline, RatchetFailsOnGrowthOnly) {
  lint::Stats stats;
  stats.suppressions["D4"] = 3;
  stats.suppressions["D5"] = 1;

  std::vector<std::string> improvements;
  // Exactly at baseline: holds.
  EXPECT_TRUE(lint::check_baseline(stats, {{"D4", 3}, {"D5", 1}},
                                   &improvements)
                  .empty());

  // One above on D4: fails and names the rule.
  const auto failures =
      lint::check_baseline(stats, {{"D4", 2}, {"D5", 1}}, nullptr);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("D4"), std::string::npos);

  // A rule with suppressions but no baseline entry counts as ceiling 0.
  EXPECT_FALSE(lint::check_baseline(stats, {{"D4", 3}}, nullptr).empty());

  // Below baseline: holds, but reports the pay-down opportunity.
  improvements.clear();
  EXPECT_TRUE(lint::check_baseline(stats, {{"D4", 5}, {"D5", 1}},
                                   &improvements)
                  .empty());
  ASSERT_EQ(improvements.size(), 1u);
  EXPECT_NE(improvements[0].find("D4"), std::string::npos);
}

TEST(Format, FileLineRuleMessageShape) {
  lint::Diagnostic d;
  d.file = "src/mc/kernel.cpp";
  d.line = 42;
  d.rule = "D3";
  d.message = "float literal";
  EXPECT_EQ(lint::format_diagnostic(d), "src/mc/kernel.cpp:42: D3: float "
                                        "literal");
  d.suppressed = true;
  d.suppress_reason = "why";
  EXPECT_NE(lint::format_diagnostic(d).find("[suppressed: why]"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Project model (D6–D8 substrate)
// ---------------------------------------------------------------------------
#include "lint/model.hpp"
#include "lint/sarif.hpp"

namespace {

/// Unsuppressed diagnostics for `rule` across a multi-file project.
std::vector<lint::Diagnostic> project_violations(
    const std::vector<lint::SourceFile>& files, const std::string& rule) {
  std::vector<lint::Diagnostic> out;
  for (const auto& d : lint::lint_project(files)) {
    if (d.rule == rule && !d.suppressed) out.push_back(d);
  }
  return out;
}

std::vector<lint::Diagnostic> project_suppressed(
    const std::vector<lint::SourceFile>& files, const std::string& rule) {
  std::vector<lint::Diagnostic> out;
  for (const auto& d : lint::lint_project(files)) {
    if (d.rule == rule && d.suppressed) out.push_back(d);
  }
  return out;
}

}  // namespace

TEST(Model, ExtractsFunctionsEnumsSwitchesAndCodecOps) {
  const auto fm = lint::build_file_model(
      "src/dist/m.cpp",
      "enum class Tag : int { kA, kB };\n"
      "void serialize_task(util::ByteWriter& writer, const Task& t) {\n"
      "  writer.u32(t.id);\n"
      "  writer.str(t.name);\n"
      "}\n"
      "void dispatch(Tag tag) {\n"
      "  switch (tag) {\n"
      "    case Tag::kA:\n"
      "      break;\n"
      "    default:\n"
      "      break;\n"
      "  }\n"
      "}\n");
  ASSERT_EQ(fm.enums.size(), 1u);
  EXPECT_EQ(fm.enums[0].name, "Tag");
  EXPECT_EQ(fm.enums[0].enumerators,
            (std::vector<std::string>{"kA", "kB"}));
  ASSERT_EQ(fm.functions.size(), 2u);
  EXPECT_EQ(fm.functions[0].name, "serialize_task");
  ASSERT_EQ(fm.switches.size(), 1u);
  EXPECT_EQ(fm.switches[0].enum_name, "Tag");
  EXPECT_TRUE(fm.switches[0].has_default);
  ASSERT_EQ(fm.codecs.size(), 1u);
  EXPECT_TRUE(fm.codecs[0].writer);
  ASSERT_EQ(fm.codecs[0].ops.size(), 2u);
  EXPECT_EQ(fm.codecs[0].ops[0].op, "u32");
  EXPECT_EQ(fm.codecs[0].ops[1].op, "str");
}

TEST(Model, LintProjectOrderIsIndependentOfInputOrder) {
  const lint::SourceFile a{"src/net/a.cpp", "void f() { memcpy(p, q, 4); }\n"};
  const lint::SourceFile b{"src/net/b.cpp", "void g() { memcpy(p, q, 4); }\n"};
  const auto forward = lint::lint_project({a, b});
  const auto backward = lint::lint_project({b, a});
  ASSERT_EQ(forward.size(), backward.size());
  for (std::size_t i = 0; i < forward.size(); ++i) {
    EXPECT_EQ(lint::format_diagnostic(forward[i]),
              lint::format_diagnostic(backward[i]));
  }
}

// ---------------------------------------------------------------------------
// D6: wire-protocol symmetry — codec field sequences
// ---------------------------------------------------------------------------
TEST(RuleD6, FiresOnFieldWidthMismatchAcrossFiles) {
  const auto diags = project_violations(
      {{"src/dist/writer.cpp",
        "void serialize_task(util::ByteWriter& writer, const Task& t) {\n"
        "  writer.u32(t.id);\n"
        "  writer.str(t.name);\n"
        "}\n"},
       {"src/dist/reader.cpp",
        "Task deserialize_task(util::ByteReader& reader) {\n"
        "  Task t;\n"
        "  t.id = reader.u64();\n"
        "  t.name = reader.str();\n"
        "  return t;\n"
        "}\n"}},
      "D6");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].file, "src/dist/reader.cpp");
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("written as u32"), std::string::npos);
  EXPECT_NE(diags[0].message.find("read as u64"), std::string::npos);
}

TEST(RuleD6, FiresWhenDecoderStopsEarly) {
  const auto diags = project_violations(
      {{"src/dist/pair.cpp",
        "void serialize_task(util::ByteWriter& writer, const Task& t) {\n"
        "  writer.u32(t.id);\n"
        "  writer.str(t.name);\n"
        "  writer.f64(t.weight);\n"
        "}\n"
        "Task deserialize_task(util::ByteReader& reader) {\n"
        "  Task t;\n"
        "  t.id = reader.u32();\n"
        "  t.name = reader.str();\n"
        "  return t;\n"
        "}\n"}},
      "D6");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 4);  // the unread f64 write
  EXPECT_NE(diags[0].message.find("stops reading"), std::string::npos);
}

TEST(RuleD6, CleanOnSymmetricPairWithSubCodecAndLoop) {
  const auto diags = project_violations(
      {{"src/dist/state_writer.cpp",
        "void serialize_state(util::ByteWriter& writer, const State& s) {\n"
        "  writer.u64(s.items.size());\n"
        "  for (const auto& item : s.items) {\n"
        "    serialize_item(writer, item);\n"
        "  }\n"
        "  writer.boolean(s.done);\n"
        "}\n"},
       {"src/dist/state_reader.cpp",
        "State deserialize_state(util::ByteReader& reader) {\n"
        "  State s;\n"
        "  const std::uint64_t n = reader.u64();\n"
        "  for (std::uint64_t i = 0; i < n; ++i) {\n"
        "    s.items.push_back(deserialize_item(reader));\n"
        "  }\n"
        "  s.done = reader.boolean();\n"
        "  return s;\n"
        "}\n"}},
      "D6");
  EXPECT_TRUE(diags.empty());
}

TEST(RuleD6, U64AndI64AreWidthCompatible) {
  const auto diags = project_violations(
      {{"src/dist/ts.cpp",
        "void serialize_ts(util::ByteWriter& writer, const Ts& t) {\n"
        "  writer.i64(t.offset_ns);\n"
        "}\n"
        "Ts deserialize_ts(util::ByteReader& reader) {\n"
        "  Ts t;\n"
        "  t.offset_ns = reader.u64();\n"
        "  return t;\n"
        "}\n"}},
      "D6");
  EXPECT_TRUE(diags.empty());
}

TEST(RuleD6, CodecSuppressionCase) {
  const auto files = std::vector<lint::SourceFile>{
      {"src/dist/pinned.cpp",
       "void serialize_v1(util::ByteWriter& writer, const V1& v) {\n"
       "  writer.u32(v.id);\n"
       "}\n"
       "V1 deserialize_v1(util::ByteReader& reader) {\n"
       "  V1 v;\n"
       "  // phodis-lint: allow(D6) v0 wire compat shim, reads the old width\n"
       "  v.id = reader.u8();\n"
       "  return v;\n"
       "}\n"}};
  EXPECT_TRUE(project_violations(files, "D6").empty());
  const auto sup = project_suppressed(files, "D6");
  ASSERT_EQ(sup.size(), 1u);
  EXPECT_EQ(sup[0].suppress_reason, "v0 wire compat shim, reads the old width");
}

// ---------------------------------------------------------------------------
// D6: wire-protocol symmetry — exhaustive switches over message-type enums
// ---------------------------------------------------------------------------
namespace {

const char* const kFrameKindEnum =
    "enum class FrameKind : std::uint8_t { kData = 0, kAck = 1, kNack = 2 "
    "};\n";

}  // namespace

TEST(RuleD6, FiresOnSwitchMissingEnumerator) {
  const auto diags = violations(
      "src/net/dispatch.cpp",
      std::string(kFrameKindEnum) +
          "void handle(FrameKind kind) {\n"
          "  switch (kind) {\n"
          "    case FrameKind::kData:\n"
          "      break;\n"
          "    case FrameKind::kAck:\n"
          "      break;\n"
          "  }\n"
          "}\n",
      "D6");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("kNack"), std::string::npos);
}

TEST(RuleD6, DefaultBranchDoesNotCountAsCoverage) {
  const auto diags = violations(
      "src/net/dispatch.cpp",
      std::string(kFrameKindEnum) +
          "void handle(FrameKind kind) {\n"
          "  switch (kind) {\n"
          "    case FrameKind::kData:\n"
          "      break;\n"
          "    default:\n"
          "      break;\n"
          "  }\n"
          "}\n",
      "D6");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("default:"), std::string::npos);
}

TEST(RuleD6, CleanWhenEveryEnumeratorIsNamed) {
  const auto diags = violations(
      "src/net/dispatch.cpp",
      std::string(kFrameKindEnum) +
          "void handle(FrameKind kind) {\n"
          "  switch (kind) {\n"
          "    case FrameKind::kData:\n"
          "      break;\n"
          "    case FrameKind::kAck:\n"
          "    case FrameKind::kNack:\n"
          "      break;\n"
          "  }\n"
          "}\n",
      "D6");
  EXPECT_TRUE(diags.empty());
}

TEST(RuleD6, SwitchRuleOnlyCoversWireLayerEnums) {
  // Same shape, but the enum lives in src/util: exhaustiveness there is
  // -Wswitch's job, not the wire-protocol rule's.
  const auto diags = violations(
      "src/util/palette.cpp",
      std::string(kFrameKindEnum) +
          "void handle(FrameKind kind) {\n"
          "  switch (kind) {\n"
          "    case FrameKind::kData:\n"
          "      break;\n"
          "  }\n"
          "}\n",
      "D6");
  EXPECT_TRUE(diags.empty());
}

TEST(RuleD6, SwitchSuppressionCase) {
  const auto sup = suppressed(
      "src/net/dispatch.cpp",
      std::string(kFrameKindEnum) +
          "void handle(FrameKind kind) {\n"
          "  // phodis-lint: allow(D6) kNack handled by the caller's retry\n"
          "  switch (kind) {\n"
          "    case FrameKind::kData:\n"
          "      break;\n"
          "    case FrameKind::kAck:\n"
          "      break;\n"
          "  }\n"
          "}\n",
      "D6");
  ASSERT_EQ(sup.size(), 1u);
  EXPECT_EQ(sup[0].suppress_reason, "kNack handled by the caller's retry");
}

// ---------------------------------------------------------------------------
// D7: RNG draw-order discipline in src/mc
// ---------------------------------------------------------------------------
TEST(RuleD7, FiresOnDrawInShortCircuitRightOperand) {
  const auto diags = violations(
      "src/mc/sample.cpp",
      "void step(Rng& rng, bool total_internal, double p) {\n"
      "  if (total_internal || rng.uniform() < p) {\n"
      "    reflect();\n"
      "  }\n"
      "}\n",
      "D7");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_NE(diags[0].message.find("short-circuit"), std::string::npos);
}

TEST(RuleD7, FiresOnDrawInTernaryArm) {
  const auto diags = violations(
      "src/mc/sample.cpp",
      "double jitter(Rng& rng, bool wide) {\n"
      "  return wide ? rng.uniform() : 0.5;\n"
      "}\n",
      "D7");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("ternary"), std::string::npos);
}

TEST(RuleD7, FiresOnTwoDrawsInOneArgumentList) {
  const auto diags = violations(
      "src/mc/sample.cpp",
      "void scatter(Rng& rng) {\n"
      "  deflect(rng.uniform(), rng.uniform());\n"
      "}\n",
      "D7");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("unsequenced"), std::string::npos);
}

TEST(RuleD7, FiresOnStdRandomDistribution) {
  const auto diags = violations(
      "src/mc/sample.cpp",
      "double gauss(std::mt19937_64& engine) {\n"
      "  std::normal_distribution<double> dist(0.0, 1.0);\n"
      "  return dist(engine);\n"
      "}\n",
      "D7");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("normal_distribution"), std::string::npos);
}

TEST(RuleD7, CleanOnSequentialDrawsAndConditionLeftOperand) {
  const auto diags = violations(
      "src/mc/sample.cpp",
      "void step(Rng& rng, double p, bool extra) {\n"
      "  const double u1 = rng.uniform();\n"
      "  const double u2 = rng.uniform();\n"
      "  if (rng.uniform() < p && extra) {\n"
      "    absorb(u1, u2);\n"
      "  }\n"
      "}\n",
      "D7");
  EXPECT_TRUE(diags.empty());
}

TEST(RuleD7, CleanOnBracedInitListDraws) {
  // Braced init-lists evaluate left to right; source.cpp's Gaussian beam
  // depends on exactly this pattern staying legal.
  const auto diags = violations(
      "src/mc/sample.cpp",
      "Vec3 beam(Rng& rng, double sigma) {\n"
      "  return {sigma * rng.normal(), sigma * rng.normal(), 0.0};\n"
      "}\n",
      "D7");
  EXPECT_TRUE(diags.empty());
}

TEST(RuleD7, OnlyAppliesInsideMc) {
  const auto diags = violations(
      "src/dist/retry.cpp",
      "void maybe(Rng& rng, bool flaky, double p) {\n"
      "  if (flaky || rng.uniform() < p) {\n"
      "    retry();\n"
      "  }\n"
      "}\n",
      "D7");
  EXPECT_TRUE(diags.empty());
}

TEST(RuleD7, SuppressionCase) {
  const auto sup = suppressed(
      "src/mc/sample.cpp",
      "void step(Rng& rng, bool total_internal, double p) {\n"
      "  // phodis-lint: allow(D7) draw sequence pinned by golden hashes\n"
      "  if (total_internal || rng.uniform() < p) {\n"
      "    reflect();\n"
      "  }\n"
      "}\n",
      "D7");
  ASSERT_EQ(sup.size(), 1u);
  EXPECT_EQ(sup[0].suppress_reason, "draw sequence pinned by golden hashes");
}

// ---------------------------------------------------------------------------
// D8: lock-order acquisition graph
// ---------------------------------------------------------------------------
TEST(RuleD8, FiresOnInconsistentOrderAcrossFiles) {
  const auto diags = project_violations(
      {{"src/net/forward.cpp",
        "void forward_path() {\n"
        "  std::lock_guard<std::mutex> first(g_route_mutex);\n"
        "  std::lock_guard<std::mutex> second(g_stats_mutex);\n"
        "}\n"},
       {"src/net/reverse.cpp",
        "void reverse_path() {\n"
        "  std::lock_guard<std::mutex> first(g_stats_mutex);\n"
        "  std::lock_guard<std::mutex> second(g_route_mutex);\n"
        "}\n"}},
      "D8");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].file, "src/net/forward.cpp");
  EXPECT_NE(diags[0].message.find("lock-order cycle"), std::string::npos);
  EXPECT_NE(diags[0].message.find("g_route_mutex -> g_stats_mutex"),
            std::string::npos);
  EXPECT_NE(diags[0].message.find("g_stats_mutex -> g_route_mutex"),
            std::string::npos);
}

TEST(RuleD8, CleanOnConsistentOrderEverywhere) {
  const auto diags = project_violations(
      {{"src/net/forward.cpp",
        "void forward_path() {\n"
        "  std::lock_guard<std::mutex> first(g_route_mutex);\n"
        "  std::lock_guard<std::mutex> second(g_stats_mutex);\n"
        "}\n"},
       {"src/net/other.cpp",
        "void other_path() {\n"
        "  std::lock_guard<std::mutex> first(g_route_mutex);\n"
        "  std::lock_guard<std::mutex> second(g_stats_mutex);\n"
        "}\n"}},
      "D8");
  EXPECT_TRUE(diags.empty());
}

TEST(RuleD8, FiresOnInterproceduralCycle) {
  const auto diags = project_violations(
      {{"src/net/a.cpp",
        "void lock_stats() {\n"
        "  std::lock_guard<std::mutex> guard(g_stats_mutex);\n"
        "  touch();\n"
        "}\n"
        "void forward_path() {\n"
        "  std::lock_guard<std::mutex> guard(g_route_mutex);\n"
        "  lock_stats();\n"
        "}\n"},
       {"src/net/b.cpp",
        "void lock_route() {\n"
        "  std::lock_guard<std::mutex> guard(g_route_mutex);\n"
        "}\n"
        "void reverse_path() {\n"
        "  std::lock_guard<std::mutex> guard(g_stats_mutex);\n"
        "  lock_route();\n"
        "}\n"}},
      "D8");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("g_route_mutex"), std::string::npos);
  EXPECT_NE(diags[0].message.find("g_stats_mutex"), std::string::npos);
}

TEST(RuleD8, GuardsInDetachedLambdasDoNotPoisonTheCaller) {
  // The thread body runs after accept_loop's guard is long gone; treating
  // it as "called under the lock" is how phantom cycles appear.
  const auto diags = project_violations(
      {{"src/net/a.cpp",
        "void lock_stats() {\n"
        "  std::lock_guard<std::mutex> guard(g_stats_mutex);\n"
        "}\n"
        "void spawn_reader() {\n"
        "  std::lock_guard<std::mutex> guard(g_route_mutex);\n"
        "  workers.emplace_back([&] { lock_stats(); });\n"
        "}\n"},
       {"src/net/b.cpp",
        "void reverse_path() {\n"
        "  std::lock_guard<std::mutex> guard(g_stats_mutex);\n"
        "  std::lock_guard<std::mutex> inner(g_route_mutex);\n"
        "}\n"}},
      "D8");
  EXPECT_TRUE(diags.empty());
}

TEST(RuleD8, SuppressionCase) {
  const auto files = std::vector<lint::SourceFile>{
      {"src/net/forward.cpp",
       "void forward_path() {\n"
       "  std::lock_guard<std::mutex> first(g_route_mutex);\n"
       "  // phodis-lint: allow(D8) reverse_path is init-only, never "
       "concurrent\n"
       "  std::lock_guard<std::mutex> second(g_stats_mutex);\n"
       "}\n"},
      {"src/net/reverse.cpp",
       "void reverse_path() {\n"
       "  std::lock_guard<std::mutex> first(g_stats_mutex);\n"
       "  std::lock_guard<std::mutex> second(g_route_mutex);\n"
       "}\n"}};
  EXPECT_TRUE(project_violations(files, "D8").empty());
  const auto sup = project_suppressed(files, "D8");
  ASSERT_EQ(sup.size(), 1u);
  EXPECT_EQ(sup[0].suppress_reason,
            "reverse_path is init-only, never concurrent");
}

// ---------------------------------------------------------------------------
// SARIF output
// ---------------------------------------------------------------------------
TEST(Sarif, ShapeEscapingAndSuppressions) {
  lint::Diagnostic v;
  v.file = "src/mc/kernel.cpp";
  v.line = 42;
  v.rule = "D7";
  v.message = "a \"quoted\" message\nwith a newline";
  lint::Diagnostic s;
  s.file = "src/net/socket.cpp";
  s.line = 7;
  s.rule = "D4";
  s.message = "memcpy of sockaddr";
  s.suppressed = true;
  s.suppress_reason = "kernel API surface";
  const std::string json = lint::to_sarif({v, s});

  EXPECT_NE(json.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(json.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"phodis_lint\""), std::string::npos);
  for (const char* rule : lint::kAllRules) {
    EXPECT_NE(json.find("{\"id\": \"" + std::string(rule) + "\""),
              std::string::npos)
        << rule;
  }
  EXPECT_NE(json.find("\"ruleId\": \"D7\""), std::string::npos);
  EXPECT_NE(json.find("\"ruleIndex\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"startLine\": 42"), std::string::npos);
  EXPECT_NE(json.find("%SRCROOT%"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\nwith a newline"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"inSource\""), std::string::npos);
  EXPECT_NE(json.find("\"justification\": \"kernel API surface\""),
            std::string::npos);
  // The unsuppressed result must not carry a suppressions block: count the
  // blocks, there is exactly one for the one suppressed diagnostic.
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"suppressions\"");
       pos != std::string::npos;
       pos = json.find("\"suppressions\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(Sarif, EmptyRunIsStillValid) {
  const std::string json = lint::to_sarif({});
  EXPECT_NE(json.find("\"results\": ["), std::string::npos);
  EXPECT_NE(json.find("\"version\": \"2.1.0\""), std::string::npos);
}
