// phodis_lint rule engine, tested the only way a linter can be trusted:
// every rule with at least one firing snippet, one clean snippet, and one
// suppressed snippet. Snippets are embedded sources run through
// lint_source() under a path that puts them in the rule's territory.
#include "lint/linter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace lint = phodis::lint;

namespace {

/// Unsuppressed diagnostics for `rule` in `source` linted as `path`.
std::vector<lint::Diagnostic> violations(const std::string& path,
                                         const std::string& source,
                                         const std::string& rule) {
  std::vector<lint::Diagnostic> out;
  for (const auto& d : lint::lint_source(path, source)) {
    if (d.rule == rule && !d.suppressed) out.push_back(d);
  }
  return out;
}

std::vector<lint::Diagnostic> suppressed(const std::string& path,
                                         const std::string& source,
                                         const std::string& rule) {
  std::vector<lint::Diagnostic> out;
  for (const auto& d : lint::lint_source(path, source)) {
    if (d.rule == rule && d.suppressed) out.push_back(d);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------
TEST(Lexer, StripsLineAndBlockComments) {
  const auto lexed = lint::lex(
      "int a; // trailing rand( comment\n"
      "/* block time( */ int b;\n");
  ASSERT_GE(lexed.code.size(), 2u);
  EXPECT_EQ(lexed.code[0], "int a; ");
  EXPECT_EQ(lexed.comments[0], " trailing rand( comment");
  EXPECT_EQ(lexed.code[1], " int b;");
  EXPECT_EQ(lexed.comments[1], " block time( ");
}

TEST(Lexer, BlanksStringAndCharContents) {
  const auto lexed = lint::lex(
      "auto s = \"rand( inside a string\";\n"
      "char c = 'x'; auto t = \"esc \\\" quote\";\n");
  EXPECT_EQ(lexed.code[0], "auto s = \"\";");
  EXPECT_EQ(lexed.code[1], "char c = ''; auto t = \"\";");
}

TEST(Lexer, MultiLineBlockCommentPreservesLineCount) {
  const auto lexed = lint::lex("int a;\n/* one\ntwo\nthree */\nint b;\n");
  ASSERT_EQ(lexed.code.size(), 6u);  // 5 lines + final empty flush
  EXPECT_EQ(lexed.code[4], "int b;");
  EXPECT_EQ(lexed.comments[2], "two");
}

TEST(Lexer, RawStringsAreBlankedAcrossLines) {
  const auto lexed = lint::lex(
      "auto s = R\"(rand(\nstd::random_device\n)\";  // not really\n"
      "int after;\n");
  // Nothing inside the raw string leaks into code lines.
  for (const auto& line : lexed.code) {
    EXPECT_EQ(line.find("random_device"), std::string::npos) << line;
  }
  EXPECT_EQ(lexed.code[3], "int after;");
}

// ---------------------------------------------------------------------------
// D1: nondeterministic sources
// ---------------------------------------------------------------------------
TEST(RuleD1, FiresOnRandomDevice) {
  const auto v = violations("src/mc/kernel.cpp",
                            "std::random_device rd;\nauto seed = rd();\n",
                            "D1");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 1);
}

TEST(RuleD1, FiresOnRandAndSrandAndTime) {
  EXPECT_EQ(violations("src/core/app.cpp", "srand(42); int x = rand();\n",
                       "D1")
                .size(),
            2u);
  EXPECT_EQ(
      violations("src/core/app.cpp", "auto t = time(nullptr);\n", "D1").size(),
      1u);
}

TEST(RuleD1, FiresOnClockNowOutsideStopwatch) {
  const std::string src = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(violations("src/dist/runtime.cpp", src, "D1").size(), 1u);
  // The sanctioned timing wrapper is the one allowed home.
  EXPECT_TRUE(violations("src/util/stopwatch.hpp", src, "D1").empty());
}

TEST(RuleD1, CleanOnIdentifiersContainingThoseWords) {
  // Word boundaries: Runtime( contains "time(", wall_time( ends in time(.
  const auto v = violations("src/dist/runtime.cpp",
                            "Runtime::Runtime(RuntimeConfig c) {}\n"
                            "double wall_time();\n"
                            "int strand(int x);\n",
                            "D1");
  EXPECT_TRUE(v.empty());
}

TEST(RuleD1, CleanInsideStringsAndComments) {
  const auto v = violations("src/core/app.cpp",
                            "log(\"rand() is banned\");  // call time() never\n",
                            "D1");
  EXPECT_TRUE(v.empty());
}

TEST(RuleD1, SuppressionSameLineAndLineAbove) {
  const auto same = suppressed(
      "src/core/app.cpp",
      "auto t = time(nullptr);  // phodis-lint: allow(D1) wall clock for "
      "log banner only\n",
      "D1");
  ASSERT_EQ(same.size(), 1u);
  EXPECT_EQ(same[0].suppress_reason,
            "wall clock for log banner only");

  const auto above = suppressed(
      "src/core/app.cpp",
      "// phodis-lint: allow(D1) banner timestamp, never a seed\n"
      "auto t = time(nullptr);\n",
      "D1");
  ASSERT_EQ(above.size(), 1u);
  EXPECT_TRUE(
      violations("src/core/app.cpp",
                 "// phodis-lint: allow(D1) banner\nauto t = time(nullptr);\n",
                 "D1")
          .empty());
}

TEST(RuleD1, SuppressionForOtherRuleDoesNotApply) {
  const auto v = violations(
      "src/core/app.cpp",
      "auto t = time(nullptr);  // phodis-lint: allow(D4) wrong rule\n", "D1");
  EXPECT_EQ(v.size(), 1u);
}

// ---------------------------------------------------------------------------
// D2: unordered-container iteration / ordered-domain ban
// ---------------------------------------------------------------------------
TEST(RuleD2, FiresOnRangeForOverUnorderedMap) {
  const auto v = violations(
      "src/analysis/render.cpp",
      "std::unordered_map<int, double> tally;\n"
      "for (const auto& [k, w] : tally) sum += w;\n",
      "D2");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 2);
}

TEST(RuleD2, FiresOnBeginIteration) {
  const auto v = violations("src/net/server.cpp",
                            "std::unordered_set<int> ids;\n"
                            "auto it = ids.begin();\n",
                            "D2");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 2);
}

TEST(RuleD2, FiresOnMereDeclarationInOrderedDomain) {
  EXPECT_EQ(violations("src/dist/datamanager.cpp",
                       "std::unordered_map<std::uint64_t, Task> tasks_;\n",
                       "D2")
                .size(),
            1u);
  // Outside the ordered domains a non-iterated unordered container is fine.
  EXPECT_TRUE(violations("src/util/cli.cpp",
                         "std::unordered_map<std::string, int> flags;\n"
                         "auto hit = flags.find(name);\n",
                         "D2")
                  .empty());
}

TEST(RuleD2, CleanOnOrderedContainers) {
  const auto v = violations("src/core/merger.cpp",
                            "std::map<int, double> tally;\n"
                            "for (const auto& [k, w] : tally) sum += w;\n"
                            "std::vector<double> v; for (double x : v) {}\n",
                            "D2");
  EXPECT_TRUE(v.empty());
}

TEST(RuleD2, SuppressionCase) {
  const auto s = suppressed(
      "src/util/registry.cpp",
      "std::unordered_map<std::string, int> cache;\n"
      "// phodis-lint: allow(D2) lookup cache, keys re-sorted before emit\n"
      "for (const auto& [k, n] : cache) keys.push_back(k);\n",
      "D2");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].suppress_reason, "lookup cache, keys re-sorted before emit");
}

// ---------------------------------------------------------------------------
// D3: hot-path FP hygiene in src/mc/
// ---------------------------------------------------------------------------
TEST(RuleD3, FiresOnHypotFloatFnsFloatDeclsAndLiterals) {
  EXPECT_EQ(
      violations("src/mc/radial.cpp", "double r = std::hypot(x, y);\n", "D3")
          .size(),
      1u);
  EXPECT_EQ(
      violations("src/mc/scatter.cpp", "auto c = powf(g, 2);\n", "D3").size(),
      1u);
  EXPECT_EQ(
      violations("src/mc/photon.hpp", "float weight = 1;\n", "D3").size(),
      1u);
  EXPECT_EQ(
      violations("src/mc/kernel.cpp", "w *= 0.5f;\n", "D3").size(), 1u);
  EXPECT_EQ(
      violations("src/mc/kernel.cpp", "w *= 1e-3f;\n", "D3").size(), 1u);
}

TEST(RuleD3, OnlyAppliesInsideMc) {
  const std::string src =
      "float x = 0.5f;\ndouble r = std::hypot(a, b);\nauto c = sinf(t);\n";
  EXPECT_TRUE(violations("src/analysis/banana.cpp", src, "D3").empty());
  EXPECT_TRUE(violations("bench/bench_kernel.cpp", src, "D3").empty());
}

TEST(RuleD3, PacketAndVmathTusAreExempt) {
  // The batched-packet TUs are compiled with scoped relaxed-FP flags and
  // carry their own golden hashes, so D3's double-only hygiene rule
  // stands down there — and ONLY there.
  const std::string src = "float x = 0.5f;\ndouble r = std::hypot(a, b);\n";
  EXPECT_TRUE(violations("src/mc/packet_kernel.cpp", src, "D3").empty());
  EXPECT_TRUE(violations("src/mc/packet_kernel.hpp", src, "D3").empty());
  EXPECT_TRUE(violations("src/mc/vmath.cpp", src, "D3").empty());
  EXPECT_TRUE(violations("src/mc/vmath.hpp", src, "D3").empty());
}

TEST(RuleD3, ExemptionIsFileScopedNotDirectoryScoped) {
  // The carve-out is an explicit file list, not a pattern that could
  // swallow neighbours: a same-prefix sibling and every other src/mc/
  // file remain D3 territory.
  // (two diagnostics per file: the float declaration and the 0.5f literal)
  const std::string src = "float x = 0.5f;\n";
  EXPECT_EQ(violations("src/mc/kernel.cpp", src, "D3").size(), 2u);
  EXPECT_EQ(violations("src/mc/vmath_tables.cpp", src, "D3").size(), 2u);
  EXPECT_EQ(violations("src/mc/packet_kernel2.cpp", src, "D3").size(), 2u);
}

TEST(RuleD3, CleanOnDoubleMath) {
  const auto v = violations(
      "src/mc/kernel.cpp",
      "double r = util::fast_radius(x, y);\n"
      "double c = std::pow(g, 2.0);\n"
      "double e = 1e-3; auto f = buf_.size();  // f as a name is fine\n",
      "D3");
  EXPECT_TRUE(v.empty());
}

TEST(RuleD3, SuppressionCase) {
  const auto s = suppressed(
      "src/mc/compiled_medium.cpp",
      "float packed = narrow(v);  // phodis-lint: allow(D3) SoA table is "
      "intentionally float, validated vs double\n",
      "D3");
  ASSERT_EQ(s.size(), 1u);  // the `float` declaration, suppressed
}

// ---------------------------------------------------------------------------
// D4: wire hygiene
// ---------------------------------------------------------------------------
TEST(RuleD4, FiresOnMemcpyInNetAndDistMessage) {
  const std::string src = "std::memcpy(prefix, &length, sizeof length);\n";
  EXPECT_EQ(violations("src/net/frame.cpp", src, "D4").size(), 1u);
  EXPECT_EQ(violations("src/dist/message.cpp", src, "D4").size(), 1u);
}

TEST(RuleD4, FiresOnBytePunningCast) {
  const auto v = violations(
      "src/net/frame.cpp",
      "auto* p = reinterpret_cast<uint8_t*>(&header);\n", "D4");
  EXPECT_EQ(v.size(), 1u);
}

TEST(RuleD4, DoesNotApplyOutsideWirePaths) {
  const std::string src = "std::memcpy(dst, src, n);\n";
  EXPECT_TRUE(violations("src/util/bytes.hpp", src, "D4").empty());
  EXPECT_TRUE(violations("src/mc/tally.cpp", src, "D4").empty());
}

TEST(RuleD4, SuppressionCase) {
  const auto s = suppressed(
      "src/net/socket.cpp",
      "// phodis-lint: allow(D4) sockaddr for the OS API, not wire bytes\n"
      "std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);\n",
      "D4");
  ASSERT_EQ(s.size(), 1u);
}

// ---------------------------------------------------------------------------
// D5: concurrency hygiene
// ---------------------------------------------------------------------------
TEST(RuleD5, FiresOnDetachAndVolatile) {
  EXPECT_EQ(violations("src/exec/threadpool.cpp",
                       "std::thread(fn).detach();\n", "D5")
                .size(),
            1u);
  EXPECT_EQ(
      violations("src/net/client.cpp", "volatile bool stop = false;\n", "D5")
          .size(),
      1u);
}

TEST(RuleD5, FiresOnSendUnderLock) {
  const auto v = violations(
      "src/net/server.cpp",
      "void f() {\n"
      "  std::lock_guard<std::mutex> lock(mutex_);\n"
      "  write_frame(socket, frame);\n"
      "}\n",
      "D5");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 3);
}

TEST(RuleD5, CleanWhenLockScopeClosesBeforeSend) {
  const auto v = violations(
      "src/net/client.cpp",
      "void f() {\n"
      "  {\n"
      "    std::lock_guard<std::mutex> lock(mutex_);\n"
      "    ++frames_sent_;\n"
      "  }\n"
      "  write_frame(socket, frame);\n"
      "}\n",
      "D5");
  EXPECT_TRUE(v.empty());
}

TEST(RuleD5, CleanWhenUniqueLockUnlockedBeforeSend) {
  const auto v = violations(
      "src/net/client.cpp",
      "void f() {\n"
      "  std::unique_lock<std::mutex> lock(mutex_);\n"
      "  auto socket = socket_;\n"
      "  lock.unlock();\n"
      "  write_frame(*socket, frame);\n"
      "}\n",
      "D5");
  EXPECT_TRUE(v.empty());
}

TEST(RuleD5, RelockingRearms) {
  const auto v = violations(
      "src/net/client.cpp",
      "void f() {\n"
      "  std::unique_lock<std::mutex> lock(mutex_);\n"
      "  lock.unlock();\n"
      "  lock.lock();\n"
      "  socket.send_all(data, n);\n"
      "}\n",
      "D5");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 5);
}

TEST(RuleD5, SuppressionCase) {
  const auto s = suppressed(
      "src/net/server.cpp",
      "void f() {\n"
      "  std::lock_guard<std::mutex> write_lock(connection->write_mutex);\n"
      "  // phodis-lint: allow(D5) per-connection write mutex serialises "
      "frames; no other lock is held\n"
      "  if (!write_frame(connection->socket, frame)) {}\n"
      "}\n",
      "D5");
  ASSERT_EQ(s.size(), 1u);
}

// ---------------------------------------------------------------------------
// Stats, baseline parsing, ratchet
// ---------------------------------------------------------------------------
TEST(Stats, CountsViolationsAndSuppressionsPerRule) {
  lint::Stats stats;
  const auto diags = lint::lint_source(
      "src/mc/kernel.cpp",
      "std::random_device rd;\n"
      "float w = 0;  // phodis-lint: allow(D3) test\n");
  for (const auto& d : diags) stats.add(d);
  EXPECT_EQ(stats.violations.at("D1"), 1);
  EXPECT_EQ(stats.suppressions.at("D3"), 1);
  EXPECT_EQ(stats.total_violations(), 1);
  EXPECT_EQ(stats.total_suppressions(), 1);
}

TEST(Baseline, ParsesRulesAndComments) {
  const auto b = lint::parse_baseline(
      "# per-rule suppression ceilings\n"
      "D1 2\n"
      "D4 3  # sockaddr memcpys\n"
      "\n");
  EXPECT_EQ(b.at("D1"), 2);
  EXPECT_EQ(b.at("D4"), 3);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_THROW(lint::parse_baseline("D1 not-a-number\n"), std::runtime_error);
  EXPECT_THROW(lint::parse_baseline("D1 -1\n"), std::runtime_error);
}

TEST(Baseline, RatchetFailsOnGrowthOnly) {
  lint::Stats stats;
  stats.suppressions["D4"] = 3;
  stats.suppressions["D5"] = 1;

  std::vector<std::string> improvements;
  // Exactly at baseline: holds.
  EXPECT_TRUE(lint::check_baseline(stats, {{"D4", 3}, {"D5", 1}},
                                   &improvements)
                  .empty());

  // One above on D4: fails and names the rule.
  const auto failures =
      lint::check_baseline(stats, {{"D4", 2}, {"D5", 1}}, nullptr);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("D4"), std::string::npos);

  // A rule with suppressions but no baseline entry counts as ceiling 0.
  EXPECT_FALSE(lint::check_baseline(stats, {{"D4", 3}}, nullptr).empty());

  // Below baseline: holds, but reports the pay-down opportunity.
  improvements.clear();
  EXPECT_TRUE(lint::check_baseline(stats, {{"D4", 5}, {"D5", 1}},
                                   &improvements)
                  .empty());
  ASSERT_EQ(improvements.size(), 1u);
  EXPECT_NE(improvements[0].find("D4"), std::string::npos);
}

TEST(Format, FileLineRuleMessageShape) {
  lint::Diagnostic d;
  d.file = "src/mc/kernel.cpp";
  d.line = 42;
  d.rule = "D3";
  d.message = "float literal";
  EXPECT_EQ(lint::format_diagnostic(d), "src/mc/kernel.cpp:42: D3: float "
                                        "literal");
  d.suppressed = true;
  d.suppress_reason = "why";
  EXPECT_NE(lint::format_diagnostic(d).find("[suppressed: why]"),
            std::string::npos);
}
