// Cross-module integration tests: the paper's qualitative claims,
// reproduced end-to-end through the public API (core + mc + analysis).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/banana.hpp"
#include "analysis/diffusion.hpp"
#include "analysis/render.hpp"
#include "core/app.hpp"
#include "core/experiments.hpp"
#include "mc/presets.hpp"

namespace phodis {
namespace {

// ---------- Fig. 3: the banana ------------------------------------------------

TEST(Integration, Fig3DetectedPathsFormABanana) {
  // Scaled-down Fig. 3: shorter separation and fewer photons than the
  // paper's 10^9, but the shape property is scale-free.
  core::SimulationSpec spec = core::fig3_banana_spec(
      /*photons=*/150000, /*granularity=*/40, /*separation_mm=*/6.0,
      /*seed=*/1);
  core::MonteCarloApp app(spec);
  const mc::SimulationTally tally = app.run_serial(50000);
  ASSERT_GT(tally.photons_detected(), 20u);

  mc::VoxelGrid3D grid = *tally.path_grid();
  const analysis::BananaMetrics metrics =
      analysis::banana_metrics(grid, 6.0);
  EXPECT_TRUE(metrics.is_banana_shaped());
  EXPECT_GT(metrics.midpoint_mean_depth_mm,
            metrics.endpoint_mean_depth_mm);
}

TEST(Integration, Fig3ThresholdingKeepsTheCommonPaths) {
  core::SimulationSpec spec =
      core::fig3_banana_spec(100000, 30, 6.0, 2);
  core::MonteCarloApp app(spec);
  const mc::SimulationTally tally = app.run_serial(50000);
  ASSERT_GT(tally.photons_detected(), 10u);
  mc::VoxelGrid3D grid = *tally.path_grid();
  const double total_before = grid.total();
  const double kept = analysis::threshold_grid(grid, 1e-3);
  EXPECT_GT(kept, 0.5);  // common paths dominate the visit weight
  EXPECT_LT(grid.total(), total_before + 1e-9);
}

// ---------- Fig. 4: layered head ------------------------------------------------

class Fig4Fixture : public ::testing::Test {
 protected:
  static const mc::SimulationTally& tally() {
    static const mc::SimulationTally t = [] {
      core::SimulationSpec spec = core::fig4_head_spec(
          /*photons=*/60000, /*granularity=*/30, /*separation_mm=*/30.0,
          /*seed=*/3);
      core::MonteCarloApp app(spec);
      return app.run_serial(20000);
    }();
    return t;
  }
};

TEST_F(Fig4Fixture, MostPhotonsReflectBeforeReachingWhiteMatter) {
  // Paper: "Most of the photons are reflected before they enter the CSF,
  // however some do penetrate all the way into the white matter tissue."
  const mc::SimulationTally& t = tally();
  EXPECT_GT(t.diffuse_reflectance() + t.specular_reflectance(), 0.3);
  // Some photons do reach the white matter (layer 4).
  EXPECT_GT(t.absorbed_weight(4), 0.0);
  // But the deep layers see far less weight than the superficial ones.
  EXPECT_GT(t.absorbed_weight(0), t.absorbed_weight(4));
}

TEST_F(Fig4Fixture, DepthHistogramShowsShallowBias) {
  const mc::SimulationTally& t = tally();
  // Median max-depth is shallower than the grey-matter interface (12 mm).
  EXPECT_LT(t.depth_histogram().quantile(0.5), 12.0);
  // But the tail reaches the white matter (beyond 16 mm).
  EXPECT_GT(t.depth_histogram().quantile(0.995), 16.0);
}

TEST_F(Fig4Fixture, CsfAbsorbsAlmostNothing) {
  // CSF has tiny mua and is thin: its absorbed weight is far below the
  // adjacent skull and grey layers.
  const mc::SimulationTally& t = tally();
  EXPECT_LT(t.absorbed_weight(2), t.absorbed_weight(1));
  EXPECT_LT(t.absorbed_weight(2), t.absorbed_weight(3));
}

TEST_F(Fig4Fixture, ConservationHoldsInFullHeadModel) {
  EXPECT_LT(tally().weight_conservation_error(), 1e-6 * 20000);
}

// ---------- §4 claim A: source footprint matters -------------------------------

TEST(Integration, SourceFootprintChangesShallowDistribution) {
  auto rms_at_first_slab = [](mc::SourceType type, double radius) {
    core::SimulationSpec spec = core::source_footprint_spec(
        type, radius, /*photons=*/30000, /*seed=*/4);
    core::MonteCarloApp app(spec);
    const mc::SimulationTally tally = app.run_serial(10000);
    const auto series = analysis::beam_spread_by_depth(*tally.fluence_grid());
    // First slab with meaningful weight.
    for (const auto& point : series) {
      if (point.total_weight > 1.0) return point.rms_radius_mm;
    }
    return 0.0;
  };
  const double delta_rms =
      rms_at_first_slab(mc::SourceType::kDelta, 0.0);
  const double wide_rms =
      rms_at_first_slab(mc::SourceType::kUniform, 8.0);
  // A wide uniform footprint spreads the shallow light far more than the
  // laser: the paper's "source illumination footprint has an effect".
  EXPECT_GT(wide_rms, delta_rms + 1.0);
}

// ---------- §4 claim B: lasers stay narrow -------------------------------------

TEST(Integration, LaserBeamStaysNarrowInWhiteMatter) {
  // "lasers do produce a small beam in a highly scattering medium":
  // near the surface the fluence of a delta source is concentrated within
  // a couple of transport mean free paths (1/µs' = 0.11 mm for white
  // matter; our voxel here is 1 mm, so expect ~voxel-scale RMS).
  core::SimulationSpec spec;
  spec.kernel.medium = mc::homogeneous_white_matter();
  spec.kernel.source.type = mc::SourceType::kDelta;
  spec.kernel.tally.enable_fluence_grid = true;
  spec.kernel.tally.fluence_spec = mc::GridSpec::cube(30, 15.0, 30.0);
  spec.photons = 20000;
  spec.seed = 5;
  core::MonteCarloApp app(spec);
  const mc::SimulationTally tally = app.run_serial(10000);
  const auto series =
      analysis::beam_spread_by_depth(*tally.fluence_grid());
  // RMS radius in the top slab is voxel-scale...
  ASSERT_GT(series.front().total_weight, 0.0);
  EXPECT_LT(series.front().rms_radius_mm, 2.0);
  // ...and grows with depth as multiple scattering takes over.
  double deep_rms = 0.0;
  for (const auto& point : series) {
    if (point.z_mm > 5.0 && point.total_weight > 0.1) {
      deep_rms = point.rms_radius_mm;
      break;
    }
  }
  EXPECT_GT(deep_rms, series.front().rms_radius_mm);
}

// ---------- §1: penetration depth vs optode spacing -----------------------------

TEST(Integration, DetectedPathsProbeDeeperAtLargerSeparation) {
  auto banana_mid_depth = [](double separation, std::uint64_t seed) {
    core::SimulationSpec spec =
        core::fig3_banana_spec(200000, 30, separation, seed);
    // Use a light medium so detections are plentiful at both separations.
    mc::OpticalProperties p;
    p.mua = 0.01;
    p.mus = 10.0;
    p.g = 0.9;
    p.n = 1.0;
    mc::LayeredMediumBuilder builder;
    builder.add_semi_infinite_layer("medium", p);
    spec.kernel.medium = builder.build();
    core::MonteCarloApp app(spec);
    const mc::SimulationTally tally = app.run_serial(100000);
    const analysis::BananaMetrics metrics =
        analysis::banana_metrics(*tally.path_grid(), separation);
    return metrics.midpoint_mean_depth_mm;
  };
  const double shallow = banana_mid_depth(5.0, 6);
  const double deep = banana_mid_depth(15.0, 7);
  EXPECT_GT(deep, shallow);
}

// ---------- gated pathlengths ---------------------------------------------------

TEST(Integration, GatingSelectsShortPathsEndToEnd) {
  core::SimulationSpec spec;
  mc::OpticalProperties p;
  p.mua = 0.01;
  p.mus = 10.0;
  p.g = 0.9;
  p.n = 1.0;
  mc::LayeredMediumBuilder builder;
  builder.add_semi_infinite_layer("medium", p);
  spec.kernel.medium = builder.build();
  mc::DetectorSpec detector;
  detector.separation_mm = 10.0;
  detector.radius_mm = 2.0;
  spec.kernel.detector = detector;
  spec.photons = 60000;
  spec.seed = 8;

  core::MonteCarloApp open_app(spec);
  const double open_mean =
      open_app.run_serial(20000).mean_detected_pathlength();

  spec.kernel.detector->gate.max_mm = open_mean;  // keep the short half
  core::MonteCarloApp gated_app(spec);
  const double gated_mean =
      gated_app.run_serial(20000).mean_detected_pathlength();
  EXPECT_LT(gated_mean, open_mean);
}

// ---------- distributed reproduction of a physics result ------------------------

TEST(Integration, DistributedRunReproducesPhysicsExactly) {
  core::SimulationSpec spec = core::fig3_banana_spec(30000, 20, 6.0, 9);
  core::MonteCarloApp app(spec);
  const mc::SimulationTally serial = app.run_serial(5000);

  core::ExecutionOptions options;
  options.workers = 4;
  options.chunk_photons = 5000;
  options.transport_faults.drop_probability = 0.05;
  options.lease_duration_s = 1.0;
  const core::RunSummary distributed = app.run_distributed(options);

  EXPECT_EQ(distributed.tally.photons_detected(),
            serial.photons_detected());
  EXPECT_EQ(distributed.tally.path_grid()->total(),
            serial.path_grid()->total());
}

}  // namespace
}  // namespace phodis
