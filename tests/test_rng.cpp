// Unit and property tests for the RNG suite (util/rng.hpp).
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace phodis::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, ZeroSeedProducesNonZeroStream) {
  SplitMix64 sm(0);
  bool any_nonzero = false;
  for (int i = 0; i < 8; ++i) {
    if (sm.next() != 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(Mix64, IsDeterministic) {
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
}

TEST(Mix64, OrderMatters) {
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
}

TEST(Mix64, NoCollisionsOverSmallGrid) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 64; ++a) {
    for (std::uint64_t b = 0; b < 64; ++b) {
      seen.insert(mix64(a, b));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u);
}

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256pp a(7);
  Xoshiro256pp b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, UniformInHalfOpenUnitInterval) {
  Xoshiro256pp rng(3);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformOpen0NeverReturnsZero) {
  Xoshiro256pp rng(3);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_GT(rng.uniform_open0(), 0.0);
    ASSERT_LE(rng.uniform_open0(), 1.0);
  }
}

TEST(Xoshiro, UniformRangeRespectsBounds) {
  Xoshiro256pp rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Xoshiro, UniformMeanAndVariance) {
  Xoshiro256pp rng(5);
  const int n = 1000000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 2e-3);
  EXPECT_NEAR(var, 1.0 / 12.0, 2e-3);
}

TEST(Xoshiro, NormalMoments) {
  Xoshiro256pp rng(9);
  const int n = 1000000;
  double sum = 0.0;
  double sum2 = 0.0;
  double sum3 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
    sum3 += x * x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 5e-3);
  EXPECT_NEAR(sum2 / n, 1.0, 1e-2);
  EXPECT_NEAR(sum3 / n, 0.0, 2e-2);  // symmetry
}

TEST(Xoshiro, ForTaskStreamsAreIndependent) {
  Xoshiro256pp a = Xoshiro256pp::for_task(42, 0);
  Xoshiro256pp b = Xoshiro256pp::for_task(42, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, ForTaskIsReproducible) {
  Xoshiro256pp a = Xoshiro256pp::for_task(42, 17);
  Xoshiro256pp b = Xoshiro256pp::for_task(42, 17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, JumpDecorrelatesStreams) {
  Xoshiro256pp a(123);
  Xoshiro256pp b(123);
  b.jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, StateIsNeverAllZero) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Xoshiro256pp rng(seed);
    const auto s = rng.state();
    EXPECT_TRUE(s[0] || s[1] || s[2] || s[3]);
  }
}

/// Chi-square uniformity over 64 bins at ~4 sigma tolerance.
TEST(Xoshiro, ChiSquareUniformity) {
  Xoshiro256pp rng(77);
  constexpr int kBins = 64;
  constexpr int kSamples = 640000;
  std::vector<int> counts(kBins, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[static_cast<int>(rng.uniform() * kBins)];
  }
  const double expected = static_cast<double>(kSamples) / kBins;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 63 dof: mean 63, sd ~11.2; accept within ~4.5 sigma.
  EXPECT_LT(chi2, 63.0 + 4.5 * 11.2);
  EXPECT_GT(chi2, 63.0 - 4.5 * 11.2);
}

/// Serial correlation should be negligible.
TEST(Xoshiro, LagOneCorrelationIsSmall) {
  Xoshiro256pp rng(31);
  const int n = 500000;
  double prev = rng.uniform();
  double sum_xy = 0.0;
  double sum_x = 0.0;
  double sum_x2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform();
    sum_xy += prev * x;
    sum_x += x;
    sum_x2 += x * x;
    prev = x;
  }
  const double mean = sum_x / n;
  const double var = sum_x2 / n - mean * mean;
  const double cov = sum_xy / n - mean * mean;
  EXPECT_LT(std::abs(cov / var), 0.01);
}

class ForTaskSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForTaskSweep, TaskStreamsDifferFromBase) {
  const std::uint64_t task = GetParam();
  Xoshiro256pp base(42);
  Xoshiro256pp stream = Xoshiro256pp::for_task(42, task);
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (base.next() == stream.next()) ++same;
  }
  EXPECT_LE(same, 1);
}

INSTANTIATE_TEST_SUITE_P(TaskIds, ForTaskSweep,
                         ::testing::Values(0, 1, 2, 3, 100, 1000, 65535,
                                           1'000'000'007ULL));

}  // namespace
}  // namespace phodis::util
