// End-to-end tests of the socket transports: the server/worker protocol
// loops over real TCP and Unix-domain sockets inside one process, with
// fault injection, worker death, server restart (client reconnect), and
// the bitwise-reproducibility cross-check against a serial MC run.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/app.hpp"
#include "dist/runtime.hpp"
#include "mc/presets.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "util/bytes.hpp"

namespace phodis::net {
namespace {

/// Executor that doubles every payload byte (deterministic, cheap).
std::vector<std::uint8_t> doubler(std::uint64_t /*task_id*/,
                                  const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out = payload;
  for (auto& b : out) b = static_cast<std::uint8_t>(b * 2);
  return out;
}

std::vector<dist::TaskRecord> make_tasks(std::size_t count) {
  std::vector<dist::TaskRecord> tasks;
  for (std::size_t i = 0; i < count; ++i) {
    tasks.push_back(dist::TaskRecord{
        i, {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i + 1)}});
  }
  return tasks;
}

/// A short unique Unix-socket path (sockaddr_un caps paths at ~107
/// chars, so gtest's deep TempDir is unusable).
std::string unique_socket_path(const std::string& tag) {
  static std::atomic<int> counter{0};
  return "/tmp/phodis_" + tag + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

void add_tasks(dist::DataManager& manager,
               const std::vector<dist::TaskRecord>& tasks) {
  for (const auto& task : tasks) manager.add_task(task.task_id, task.payload);
}

void expect_doubled_results(const dist::DataManager& manager,
                            const std::vector<dist::TaskRecord>& tasks) {
  const auto results = manager.results();
  ASSERT_EQ(results.size(), tasks.size());
  for (const auto& task : tasks) {
    const auto& result = results.at(task.task_id);
    ASSERT_EQ(result.size(), task.payload.size());
    for (std::size_t i = 0; i < result.size(); ++i) {
      EXPECT_EQ(result[i], static_cast<std::uint8_t>(task.payload[i] * 2));
    }
  }
}

/// Run `worker_count` Client-backed workers against `server` until the
/// server loop finishes. Returns per-worker outcomes.
std::vector<dist::WorkerLoopOutcome> run_cluster(
    Server& server, dist::DataManager& manager, std::size_t worker_count,
    const dist::FaultSpec& worker_faults = {}) {
  std::vector<dist::WorkerLoopOutcome> outcomes(worker_count);
  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers.emplace_back([&server, &outcomes, &worker_faults, i] {
      dist::FaultSpec faults = worker_faults;
      faults.seed = worker_faults.seed + i;  // distinct drop streams
      std::string name = "w";
      name += std::to_string(i);
      // A tight reconnect budget: a worker whose Shutdown frame was
      // dropped should notice the dead server in milliseconds, not
      // ride out the production backoff schedule.
      ReconnectPolicy impatient;
      impatient.max_attempts = 5;
      impatient.initial_backoff_ms = 1;
      impatient.max_backoff_ms = 10;
      Client client(server.local_address(), name, faults, impatient);
      dist::WorkerLoopOptions options;
      options.name = client.name();
      outcomes[i] = dist::run_worker_loop(client, doubler, options);
    });
  }
  dist::run_server_loop(server, manager);
  server.shutdown();  // wake any worker that lost its Shutdown frame
  for (auto& worker : workers) worker.join();
  return outcomes;
}

TEST(SocketTransport, UdsClusterCompletesAllTasksExactlyOnce) {
  const auto tasks = make_tasks(40);
  dist::DataManager manager(30.0);
  add_tasks(manager, tasks);
  Server server(Address::unix_path(unique_socket_path("uds")));
  const auto outcomes = run_cluster(server, manager, 3);
  expect_doubled_results(manager, tasks);
  EXPECT_EQ(manager.stats().completions, 40u);
  std::size_t executed = 0;
  for (const auto& outcome : outcomes) executed += outcome.tasks_executed;
  EXPECT_GE(executed, 40u);  // >= because a lease can be served twice
}

TEST(SocketTransport, TcpClusterCompletesAllTasksExactlyOnce) {
  const auto tasks = make_tasks(24);
  dist::DataManager manager(30.0);
  add_tasks(manager, tasks);
  Server server(Address::tcp("127.0.0.1", 0));  // ephemeral port
  ASSERT_GT(server.local_address().port, 0);
  run_cluster(server, manager, 2);
  expect_doubled_results(manager, tasks);
  EXPECT_EQ(manager.stats().completions, 24u);
}

TEST(SocketTransport, SurvivesFrameDropsOnBothSides) {
  const auto tasks = make_tasks(30);
  dist::DataManager manager(0.2);  // fast lease recovery
  add_tasks(manager, tasks);
  dist::FaultSpec server_faults;
  server_faults.drop_probability = 0.10;
  server_faults.seed = 11;
  dist::FaultSpec worker_faults;
  worker_faults.drop_probability = 0.10;
  worker_faults.seed = 23;
  Server server(Address::unix_path(unique_socket_path("drops")),
                server_faults);
  run_cluster(server, manager, 3, worker_faults);
  expect_doubled_results(manager, tasks);
  EXPECT_EQ(manager.stats().completions, 30u);
  EXPECT_GT(server.frames_dropped(), 0u);
}

TEST(SocketTransport, KilledWorkerLeaseExpiresAndAnotherFinishes) {
  const auto tasks = make_tasks(8);
  dist::DataManager manager(0.3);
  add_tasks(manager, tasks);
  Server server(Address::unix_path(unique_socket_path("kill")));

  std::thread server_thread(
      [&] { dist::run_server_loop(server, manager); });

  {
    // A worker that takes an assignment and dies holding it.
    Client victim(server.local_address(), "victim");
    dist::Message request;
    request.type = dist::MessageType::kRequestWork;
    request.sender = "victim";
    victim.send("server", request);
    const auto assignment = victim.receive("victim", 2000);
    ASSERT_TRUE(assignment.has_value());
    ASSERT_EQ(assignment->type, dist::MessageType::kAssignTask);
    victim.shutdown();  // SIGKILL stand-in: connection drops, no result
  }

  Client worker(server.local_address(), "w0");
  dist::WorkerLoopOptions options;
  options.name = "w0";
  const auto outcome = dist::run_worker_loop(worker, doubler, options);
  server_thread.join();
  server.shutdown();

  expect_doubled_results(manager, tasks);
  EXPECT_EQ(manager.stats().completions, 8u);
  EXPECT_GE(manager.stats().lease_expirations, 1u);
  EXPECT_TRUE(outcome.saw_shutdown);
}

TEST(SocketTransport, WorkerDeathRenameStillReceivesOnTheSameLink) {
  // Death injection renames the worker to "name#N" mid-loop; the
  // client's inbox is per-link, not per-name, so the renamed worker
  // keeps receiving and the run still drains.
  const auto tasks = make_tasks(12);
  dist::DataManager manager(0.3);
  add_tasks(manager, tasks);
  Server server(Address::unix_path(unique_socket_path("rename")));
  std::thread server_thread(
      [&] { dist::run_server_loop(server, manager); });

  Client client(server.local_address(), "mortal");
  dist::WorkerLoopOptions options;
  options.name = "mortal";
  options.death_probability = 0.4;
  options.death_seed = 7;
  const auto outcome = dist::run_worker_loop(client, doubler, options);
  server_thread.join();
  server.shutdown();

  expect_doubled_results(manager, tasks);
  EXPECT_GT(outcome.deaths, 0u);
  EXPECT_TRUE(outcome.saw_shutdown);
  EXPECT_GE(manager.stats().lease_expirations, outcome.deaths);
}

TEST(SocketTransport, ClientReconnectsWhenServerAppearsLate) {
  const Address address = Address::unix_path(unique_socket_path("late"));
  const auto tasks = make_tasks(6);
  dist::DataManager manager(30.0);
  add_tasks(manager, tasks);

  ReconnectPolicy patient;
  patient.max_attempts = 100;
  patient.initial_backoff_ms = 10;
  patient.max_backoff_ms = 50;
  dist::WorkerLoopOutcome outcome;
  std::thread worker_thread([&] {
    // Starts sending into the void; must reconnect once the server binds.
    Client client(address, "early-bird", {}, patient);
    dist::WorkerLoopOptions options;
    options.name = "early-bird";
    outcome = dist::run_worker_loop(client, doubler, options);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  Server server(address);
  dist::run_server_loop(server, manager);
  server.shutdown();
  worker_thread.join();

  expect_doubled_results(manager, tasks);
  EXPECT_TRUE(outcome.saw_shutdown);
}

TEST(SocketTransport, ClientGivesUpAfterReconnectBudget) {
  ReconnectPolicy impatient;
  impatient.max_attempts = 3;
  impatient.initial_backoff_ms = 1;
  impatient.max_backoff_ms = 2;
  Client client(Address::unix_path(unique_socket_path("nobody")),
                "orphan", {}, impatient);
  dist::WorkerLoopOptions options;
  options.name = "orphan";
  const auto outcome = dist::run_worker_loop(client, doubler, options);
  EXPECT_FALSE(outcome.saw_shutdown);
  EXPECT_EQ(outcome.tasks_executed, 0u);
  EXPECT_TRUE(client.closed());
}

TEST(SocketTransport, ServerSurvivesGarbageFrames) {
  const auto tasks = make_tasks(5);
  dist::DataManager manager(30.0);
  add_tasks(manager, tasks);
  Server server(Address::unix_path(unique_socket_path("garbage")));

  {
    // A well-framed but undecodable body, then a torn frame.
    Socket vandal = Socket::connect(server.local_address());
    ASSERT_TRUE(write_frame(vandal, {0xFF, 0xFF, 0xFF}));
    const std::uint8_t torn[3] = {0xEE, 0x00, 0x00};
    ASSERT_TRUE(vandal.send_all(torn, sizeof torn));
  }

  run_cluster(server, manager, 2);
  expect_doubled_results(manager, tasks);
  EXPECT_EQ(manager.stats().completions, 5u);
}

TEST(SocketTransport, MonteCarloTallyMatchesSerialBitwise) {
  // The acceptance invariant, in-process: a socket-transport cluster run
  // of the real MC workload reproduces the serial tally bitwise.
  core::SimulationSpec spec;
  mc::LayeredMediumBuilder builder;
  builder.add_semi_infinite_layer(
      "grey matter",
      mc::OpticalProperties::from_reduced(0.036, 2.2, 0.9, 1.4));
  spec.kernel.medium = builder.build();
  spec.photons = 20'000;
  spec.seed = 11;
  const core::MonteCarloApp app(spec);
  constexpr std::uint64_t kChunk = 4'000;

  const auto tasks = app.build_tasks(kChunk, 1);
  dist::DataManager manager(30.0);
  for (const auto& task : tasks) manager.add_task(task.task_id, task.payload);

  Server server(Address::unix_path(unique_socket_path("mc")));
  std::vector<std::thread> workers;
  for (int i = 0; i < 2; ++i) {
    workers.emplace_back([&server, i] {
      std::string name = "mc-w";
      name += std::to_string(i);
      Client client(server.local_address(), name);
      dist::WorkerLoopOptions options;
      options.name = client.name();
      dist::run_worker_loop(client, core::Algorithm::execute, options);
    });
  }
  dist::run_server_loop(server, manager);
  server.shutdown();
  for (auto& worker : workers) worker.join();

  const mc::SimulationTally distributed = app.merge_results(manager.results());
  const mc::SimulationTally serial = app.run_serial(kChunk);
  util::ByteWriter distributed_bytes;
  distributed.serialize(distributed_bytes);
  util::ByteWriter serial_bytes;
  serial.serialize(serial_bytes);
  EXPECT_EQ(distributed_bytes.bytes(), serial_bytes.bytes());
}

TEST(SocketTransport, ServerCheckpointResumesAcrossManagers) {
  // Kill-and-restart at the DataManager level: a second manager restored
  // from the first's checkpoint finishes the remaining work and ends up
  // with every result.
  namespace fs = std::filesystem;
  const std::string checkpoint =
      (fs::temp_directory_path() /
       ("phodis_ckpt_" + std::to_string(::getpid()) + ".bin"))
          .string();
  const auto tasks = make_tasks(10);

  {
    dist::DataManager first(30.0);
    add_tasks(first, tasks);
    double now = 0.0;
    for (int i = 0; i < 4; ++i) {
      const auto lease = first.lease_next("w0", now);
      ASSERT_TRUE(lease.has_value());
      ASSERT_TRUE(first.complete(lease->task_id, "w0", now,
                                 doubler(lease->task_id, lease->payload)));
    }
    first.checkpoint_to_file(checkpoint);
  }

  dist::DataManager resumed(30.0);
  resumed.restore_from_file(checkpoint);
  EXPECT_EQ(resumed.completed_count(), 4u);
  EXPECT_EQ(resumed.pending_count(), 6u);

  Server server(Address::unix_path(unique_socket_path("resume")));
  std::thread worker_thread([&server] {
    Client client(server.local_address(), "w1");
    dist::WorkerLoopOptions options;
    options.name = "w1";
    dist::run_worker_loop(client, doubler, options);
  });
  dist::run_server_loop(server, resumed);
  server.shutdown();
  worker_thread.join();

  expect_doubled_results(resumed, tasks);
  fs::remove(checkpoint);
}

}  // namespace
}  // namespace phodis::net
