// Golden bitwise-regression guard for the compiled kernel hot path.
//
// The recorded hashes pin the kernel's serialized tally bytes — every
// weight total, histogram bin, grid voxel — at a fixed seed, across every
// template specialization of the photon loop (boundary models, grids,
// detector, radial). They were recorded from the pre-compiled-path
// reference kernel (PR 3 tree), except two_layer_radial, recorded when
// the radial scorer moved from std::hypot to util::fast_radius (an
// intentional last-ulp change; physics equality is covered by
// test_radial's tolerance checks).
//
// If a future "optimization" changes any of these hashes, it changed the
// physics stream: same-seed reproducibility across the distributed
// platform is broken, and the change must either be reverted or be an
// intentional, documented re-record (like the fast_radius one above).
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "core/app.hpp"
#include "core/spec.hpp"
#include "exec/parallel.hpp"
#include "exec/threadpool.hpp"
#include "mc/kernel.hpp"
#include "mc/presets.hpp"
#include "util/rng.hpp"

namespace {

using namespace phodis;

std::uint64_t fnv1a64(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::uint64_t run_hash(const mc::KernelConfig& config, std::uint64_t photons,
                       std::uint64_t seed = 42) {
  const mc::Kernel kernel(config);
  mc::SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(seed);
  kernel.run(photons, rng, tally);
  return fnv1a64(tally.to_bytes());
}

mc::KernelConfig two_layer_config() {
  mc::KernelConfig config;
  config.medium = mc::two_layer_model();
  return config;
}

// --- serial goldens: one per loop specialization family ---------------------

TEST(KernelGolden, TwoLayerProbabilistic) {
  EXPECT_EQ(run_hash(two_layer_config(), 10'000), 0x1CA835547D4A3A52ULL);
}

TEST(KernelGolden, TwoLayerClassical) {
  mc::KernelConfig config = two_layer_config();
  config.boundary_model = mc::BoundaryModel::kClassical;
  EXPECT_EQ(run_hash(config, 10'000), 0x8029075191C7F79DULL);
}

TEST(KernelGolden, TwoLayerFluenceGrid) {
  mc::KernelConfig config = two_layer_config();
  config.tally.enable_fluence_grid = true;
  config.tally.fluence_spec = mc::GridSpec::cube(40, 20.0, 40.0);
  EXPECT_EQ(run_hash(config, 5'000), 0x52C9ED852FCB5C0EULL);
}

TEST(KernelGolden, TwoLayerDetectorAndPathGrid) {
  mc::KernelConfig config = two_layer_config();
  config.detector = mc::DetectorSpec{};  // 30 mm separation, 2.5 mm radius
  config.tally.enable_path_grid = true;
  config.tally.path_spec = mc::GridSpec::cube(40, 40.0, 40.0);
  EXPECT_EQ(run_hash(config, 5'000), 0xA8740AC69D24F06AULL);
}

TEST(KernelGolden, TwoLayerRadial) {
  mc::KernelConfig config = two_layer_config();
  config.tally.enable_radial = true;
  EXPECT_EQ(run_hash(config, 10'000), 0xEE0ECC036420B21FULL);
}

TEST(KernelGolden, HeadModelProbabilistic) {
  mc::KernelConfig config;
  config.medium = mc::adult_head_model();
  EXPECT_EQ(run_hash(config, 2'000), 0x2B3CE955E7458B92ULL);
}

TEST(KernelGolden, WhiteMatterDivergingGaussianSource) {
  mc::KernelConfig config;
  config.medium = mc::homogeneous_white_matter();
  config.source.type = mc::SourceType::kGaussian;
  config.source.radius_mm = 1.0;
  config.source.half_angle_deg = 15.0;  // oblique entry refraction
  EXPECT_EQ(run_hash(config, 5'000), 0x99798E883FB7AFA8ULL);
}

// --- sharded goldens: the parallel plan at 1/2/4/8 threads ------------------

TEST(KernelGolden, ShardPlanMatchesRecordedHashAtEveryThreadCount) {
  const mc::Kernel kernel(two_layer_config());

  const exec::ParallelKernelRunner serial_runner(kernel, nullptr, 4096);
  const std::vector<std::uint8_t> serial_bytes =
      serial_runner.run(10'000, 42, 0).to_bytes();
  EXPECT_EQ(fnv1a64(serial_bytes), 0x90D1E6BEE6A31A2DULL);

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    exec::ThreadPool pool(threads);
    const exec::ParallelKernelRunner runner(kernel, &pool, 4096);
    EXPECT_EQ(runner.run(10'000, 42, 0).to_bytes(), serial_bytes)
        << "thread count " << threads;
  }
}

TEST(KernelGolden, AppRunParallelEqualsRunSerial) {
  core::SimulationSpec spec;
  spec.kernel = two_layer_config();
  spec.photons = 10'000;
  spec.seed = 42;
  const core::MonteCarloApp app(spec);
  const std::vector<std::uint8_t> serial =
      app.run_serial(/*chunk_photons=*/2'500).to_bytes();
  EXPECT_EQ(app.run_parallel(4, 2'500).to_bytes(), serial);
  EXPECT_EQ(app.run_parallel(8, 2'500).to_bytes(), serial);
}

}  // namespace
