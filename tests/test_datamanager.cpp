// Tests for the DataManager: leasing, exactly-once completion, lease
// expiry, and worker eviction.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "dist/datamanager.hpp"

namespace phodis::dist {
namespace {

std::vector<std::uint8_t> payload_of(std::uint8_t byte) { return {byte}; }

TEST(DataManager, RejectsNonPositiveLease) {
  EXPECT_THROW(DataManager(0.0), std::invalid_argument);
  EXPECT_THROW(DataManager(-1.0), std::invalid_argument);
}

TEST(DataManager, AddAndLeaseInFifoOrder) {
  DataManager dm(10.0);
  dm.add_task(0, payload_of(10));
  dm.add_task(1, payload_of(11));
  auto a = dm.lease_next("w0", 0.0);
  auto b = dm.lease_next("w1", 0.0);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->task_id, 0u);
  EXPECT_EQ(b->task_id, 1u);
  EXPECT_EQ(a->payload, payload_of(10));
  EXPECT_FALSE(dm.lease_next("w2", 0.0).has_value());
}

TEST(DataManager, DuplicateTaskIdThrows) {
  DataManager dm(10.0);
  dm.add_task(5, {});
  EXPECT_THROW(dm.add_task(5, {}), std::invalid_argument);
}

TEST(DataManager, CompleteIsExactlyOnce) {
  DataManager dm(10.0);
  dm.add_task(0, {});
  dm.lease_next("w0", 0.0);
  EXPECT_TRUE(dm.complete(0, "w0", 1.0));
  EXPECT_FALSE(dm.complete(0, "w0", 1.5));  // duplicate
  EXPECT_EQ(dm.stats().duplicate_results, 1u);
  EXPECT_TRUE(dm.all_done());
}

TEST(DataManager, UnknownResultIsCounted) {
  DataManager dm(10.0);
  EXPECT_FALSE(dm.complete(999, "w0", 0.0));
  EXPECT_EQ(dm.stats().unknown_results, 1u);
}

TEST(DataManager, LeaseExpiryRequeues) {
  DataManager dm(5.0);
  dm.add_task(0, {});
  dm.lease_next("w0", 0.0);
  EXPECT_EQ(dm.pending_count(), 0u);
  EXPECT_EQ(dm.in_flight_count(), 1u);
  EXPECT_EQ(dm.expire_leases(4.9), 0u);  // not yet
  EXPECT_EQ(dm.expire_leases(5.0), 1u);  // deadline reached
  EXPECT_EQ(dm.pending_count(), 1u);
  EXPECT_EQ(dm.in_flight_count(), 0u);
  // Re-leasable by another worker.
  auto again = dm.lease_next("w1", 6.0);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->task_id, 0u);
}

TEST(DataManager, LateResultAfterExpiryStillFirstWins) {
  DataManager dm(5.0);
  dm.add_task(0, {});
  dm.lease_next("w0", 0.0);
  dm.expire_leases(10.0);
  dm.lease_next("w1", 10.0);
  // The original (slow) worker returns first; its result is accepted.
  EXPECT_TRUE(dm.complete(0, "w0", 11.0));
  // The re-issued copy arrives later and is discarded.
  EXPECT_FALSE(dm.complete(0, "w1", 12.0));
  EXPECT_TRUE(dm.all_done());
  EXPECT_EQ(dm.completed_count(), 1u);
}

TEST(DataManager, CompletedTaskSkippedWhenRequeued) {
  DataManager dm(5.0);
  dm.add_task(0, {});
  dm.add_task(1, {});
  dm.lease_next("w0", 0.0);
  dm.expire_leases(5.0);  // task 0 back in the queue
  dm.complete(0, "w0", 6.0);  // but then it completes
  // The stale queue entry for task 0 must be skipped; we get task 1.
  auto next = dm.lease_next("w1", 7.0);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->task_id, 1u);
}

TEST(DataManager, EvictWorkerRequeuesItsLeases) {
  DataManager dm(1000.0);  // long leases: eviction is the only recovery
  dm.add_task(0, {});
  dm.add_task(1, {});
  dm.add_task(2, {});
  dm.lease_next("dead", 0.0);
  dm.lease_next("dead", 0.0);
  dm.lease_next("alive", 0.0);
  EXPECT_EQ(dm.evict_worker("dead"), 2u);
  EXPECT_EQ(dm.pending_count(), 2u);
  EXPECT_EQ(dm.in_flight_count(), 1u);
}

TEST(DataManager, AllDoneSemantics) {
  DataManager dm(10.0);
  EXPECT_TRUE(dm.all_done());  // vacuously: no tasks
  dm.add_task(0, {});
  EXPECT_FALSE(dm.all_done());
  dm.lease_next("w", 0.0);
  EXPECT_FALSE(dm.all_done());  // in flight is not done
  dm.complete(0, "w", 1.0);
  EXPECT_TRUE(dm.all_done());
}

TEST(DataManager, StatsAccumulate) {
  DataManager dm(5.0);
  dm.add_task(0, {});
  dm.add_task(1, {});
  dm.lease_next("w0", 0.0);   // task 0 -> w0
  dm.expire_leases(5.0);      // task 0 requeued behind task 1
  auto second = dm.lease_next("w1", 6.0);  // task 1 -> w1 (FIFO)
  ASSERT_TRUE(second && second->task_id == 1u);
  auto third = dm.lease_next("w0", 6.5);  // task 0 re-assigned
  ASSERT_TRUE(third && third->task_id == 0u);
  dm.complete(1, "w1", 7.0);
  dm.complete(0, "w0", 8.0);
  const DataManagerStats stats = dm.stats();
  EXPECT_EQ(stats.tasks_added, 2u);
  EXPECT_EQ(stats.assignments, 3u);  // task 0 twice, task 1 once
  EXPECT_EQ(stats.completions, 2u);
  EXPECT_EQ(stats.lease_expirations, 1u);
}

TEST(DataManager, ManyTasksDrainCompletely) {
  DataManager dm(10.0);
  constexpr std::uint64_t kTasks = 500;
  for (std::uint64_t i = 0; i < kTasks; ++i) dm.add_task(i, {});
  std::uint64_t drained = 0;
  while (auto task = dm.lease_next("w", 0.0)) {
    dm.complete(task->task_id, "w", 1.0);
    ++drained;
  }
  EXPECT_EQ(drained, kTasks);
  EXPECT_TRUE(dm.all_done());
  EXPECT_EQ(dm.completed_count(), kTasks);
}

TEST(DataManager, ResultsRetainFirstAcceptedBytes) {
  DataManager dm(10.0);
  dm.add_task(0, payload_of(1));
  dm.add_task(1, payload_of(2));
  dm.lease_next("w0", 0.0);
  dm.lease_next("w1", 0.0);
  EXPECT_TRUE(dm.complete(0, "w0", 1.0, {10, 11}));
  EXPECT_FALSE(dm.complete(0, "w1", 1.5, {99}));  // late copy discarded
  EXPECT_TRUE(dm.complete(1, "w1", 2.0, {20}));
  const auto results = dm.results();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results.at(0), (std::vector<std::uint8_t>{10, 11}));
  EXPECT_EQ(results.at(1), (std::vector<std::uint8_t>{20}));
}

TEST(DataManagerCheckpoint, FileRoundTripRestoresResultsAndPending) {
  const std::string path = ::testing::TempDir() + "phodis_dm_ckpt.bin";
  {
    DataManager dm(10.0);
    for (std::uint8_t i = 0; i < 6; ++i) dm.add_task(i, payload_of(i));
    for (int i = 0; i < 3; ++i) {
      const auto lease = dm.lease_next("w0", 0.0);
      ASSERT_TRUE(lease.has_value());
      dm.complete(lease->task_id, "w0", 1.0,
                  payload_of(static_cast<std::uint8_t>(100 + i)));
    }
    // One in-flight lease: must come back as pending, not lost.
    ASSERT_TRUE(dm.lease_next("w1", 0.0).has_value());
    dm.checkpoint_to_file(path);
  }

  DataManager restored(10.0);
  restored.restore_from_file(path);
  EXPECT_EQ(restored.completed_count(), 3u);
  EXPECT_EQ(restored.pending_count(), 3u);  // incl. the in-flight one
  EXPECT_EQ(restored.in_flight_count(), 0u);
  const auto results = restored.results();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results.at(0), payload_of(100));
  // The rest of the pool still drains normally.
  while (auto task = restored.lease_next("w2", 0.0)) {
    restored.complete(task->task_id, "w2", 1.0, {});
  }
  EXPECT_TRUE(restored.all_done());
  std::remove(path.c_str());
}

TEST(DataManagerCheckpoint, AtomicRewriteKeepsFileValid) {
  const std::string path = ::testing::TempDir() + "phodis_dm_rewrite.bin";
  DataManager dm(10.0);
  dm.add_task(0, payload_of(1));
  dm.checkpoint_to_file(path);
  dm.lease_next("w0", 0.0);
  dm.complete(0, "w0", 1.0, payload_of(42));
  dm.checkpoint_to_file(path);  // rename over the previous snapshot
  DataManager restored(10.0);
  restored.restore_from_file(path);
  EXPECT_TRUE(restored.all_done());
  EXPECT_EQ(restored.results().at(0), payload_of(42));
  std::remove(path.c_str());
}

TEST(DataManagerCheckpoint, RejectsMissingAndMalformedFiles) {
  DataManager dm(10.0);
  EXPECT_THROW(dm.restore_from_file("/nonexistent/phodis.ckpt"),
               std::runtime_error);

  const std::string path = ::testing::TempDir() + "phodis_dm_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  EXPECT_THROW(dm.restore_from_file(path), std::invalid_argument);
  EXPECT_EQ(dm.pending_count(), 0u);  // untouched
  std::remove(path.c_str());
}

TEST(DataManagerCheckpoint, RestoreRequiresEmptyManager) {
  const std::string path = ::testing::TempDir() + "phodis_dm_nonempty.bin";
  DataManager dm(10.0);
  dm.add_task(0, payload_of(1));
  dm.checkpoint_to_file(path);
  EXPECT_THROW(dm.restore_from_file(path), std::logic_error);
  std::remove(path.c_str());
}

// ---------- result streaming (set_result_sink) -------------------------------

TEST(DataManagerSink, ReceivesEachFirstResultExactlyOnce) {
  DataManager dm(10.0);
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> sunk;
  dm.set_result_sink([&sunk](std::uint64_t id, std::vector<std::uint8_t> b) {
    sunk.emplace_back(id, std::move(b));
  });
  dm.add_task(0, payload_of(1));
  dm.add_task(1, payload_of(2));
  dm.lease_next("w0", 0.0);
  dm.lease_next("w1", 0.0);
  EXPECT_TRUE(dm.complete(1, "w1", 1.0, {21}));   // out of id order
  EXPECT_FALSE(dm.complete(1, "w0", 1.5, {99}));  // duplicate: not sunk
  EXPECT_TRUE(dm.complete(0, "w0", 2.0, {10}));

  ASSERT_EQ(sunk.size(), 2u);  // completion order, exactly once each
  EXPECT_EQ(sunk[0].first, 1u);
  EXPECT_EQ(sunk[0].second, (std::vector<std::uint8_t>{21}));
  EXPECT_EQ(sunk[1].first, 0u);
  // Bytes streamed out are not retained: server memory stays bounded.
  EXPECT_TRUE(dm.results().empty());
  EXPECT_TRUE(dm.all_done());
}

TEST(DataManagerSink, MustBeSetBeforeAnyCompletion) {
  DataManager dm(10.0);
  dm.add_task(0, payload_of(1));
  dm.lease_next("w0", 0.0);
  dm.complete(0, "w0", 1.0, {5});
  EXPECT_THROW(dm.set_result_sink([](std::uint64_t,
                                     std::vector<std::uint8_t>) {}),
               std::logic_error);
}

TEST(DataManagerCheckpoint, CarriesTheSinkStateBlob) {
  const std::string path = ::testing::TempDir() + "phodis_dm_sink.bin";
  const std::vector<std::uint8_t> state = {7, 7, 7, 42};
  DataManager dm(10.0);
  dm.add_task(0, payload_of(1));
  dm.checkpoint_to_file(path, state);

  DataManager restored(10.0);
  EXPECT_EQ(restored.restore_from_file(path), state);
  EXPECT_EQ(restored.pending_count(), 1u);
  std::remove(path.c_str());
}

TEST(DataManagerCheckpoint, EmptySinkStateByDefault) {
  const std::string path = ::testing::TempDir() + "phodis_dm_nosink.bin";
  DataManager dm(10.0);
  dm.add_task(0, payload_of(1));
  dm.checkpoint_to_file(path);
  DataManager restored(10.0);
  EXPECT_TRUE(restored.restore_from_file(path).empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace phodis::dist
