// Tests for Fresnel boundary physics and Henyey–Greenstein scattering.
#include <gtest/gtest.h>

#include <cmath>

#include "mc/fresnel.hpp"
#include "mc/scatter.hpp"
#include "util/rng.hpp"

namespace phodis::mc {
namespace {

// ---------- fresnel ----------------------------------------------------------

TEST(Fresnel, MatchedBoundaryTransmitsEverything) {
  const FresnelResult r = fresnel(1.4, 1.4, 0.3);
  EXPECT_DOUBLE_EQ(r.reflectance, 0.0);
  EXPECT_DOUBLE_EQ(r.cos_transmit, 0.3);
  EXPECT_FALSE(r.total_internal);
}

TEST(Fresnel, NormalIncidenceMatchesClosedForm) {
  const FresnelResult r = fresnel(1.0, 1.5, 1.0);
  EXPECT_NEAR(r.reflectance, 0.04, 1e-12);  // ((1-1.5)/(1+1.5))^2
  EXPECT_DOUBLE_EQ(r.cos_transmit, 1.0);
}

TEST(Fresnel, GrazingIncidenceFullyReflects) {
  const FresnelResult r = fresnel(1.0, 1.5, 0.0);
  EXPECT_DOUBLE_EQ(r.reflectance, 1.0);
}

TEST(Fresnel, TotalInternalReflectionBeyondCriticalAngle) {
  // n1=1.5 -> n2=1.0: critical angle ~41.8 deg, cos ~0.745.
  const double cos_just_below_critical = 0.70;
  const FresnelResult r = fresnel(1.5, 1.0, cos_just_below_critical);
  EXPECT_TRUE(r.total_internal);
  EXPECT_DOUBLE_EQ(r.reflectance, 1.0);
}

TEST(Fresnel, TransmitsJustInsideCriticalAngle) {
  const double cos_c = critical_cos(1.5, 1.0);
  const FresnelResult r = fresnel(1.5, 1.0, cos_c + 0.01);
  EXPECT_FALSE(r.total_internal);
  EXPECT_LT(r.reflectance, 1.0);
  EXPECT_GT(r.reflectance, 0.0);
}

TEST(Fresnel, CriticalCosValues) {
  EXPECT_DOUBLE_EQ(critical_cos(1.0, 1.5), 0.0);  // no TIR going denser
  const double expected = std::sqrt(1.0 - (1.0 / 1.5) * (1.0 / 1.5));
  EXPECT_NEAR(critical_cos(1.5, 1.0), expected, 1e-12);
}

TEST(Fresnel, ReflectanceIsInUnitInterval) {
  for (double n2 : {1.0, 1.33, 1.4, 1.6}) {
    for (int i = 0; i <= 100; ++i) {
      const double cos_i = i / 100.0;
      const FresnelResult r = fresnel(1.4, n2, cos_i);
      ASSERT_GE(r.reflectance, 0.0);
      ASSERT_LE(r.reflectance, 1.0);
    }
  }
}

TEST(Fresnel, ReflectanceIncreasesTowardGrazing) {
  double prev = fresnel(1.0, 1.4, 1.0).reflectance;
  for (int i = 99; i >= 0; --i) {
    const double r = fresnel(1.0, 1.4, i / 100.0).reflectance;
    ASSERT_GE(r, prev - 1e-12);
    prev = r;
  }
}

TEST(Fresnel, SnellConsistency) {
  // sin_t = n_i sin_i / n_t must match the returned cos_t.
  const double cos_i = 0.8;
  const double sin_i = std::sqrt(1 - cos_i * cos_i);
  const FresnelResult r = fresnel(1.0, 1.5, cos_i);
  const double sin_t = 1.0 * sin_i / 1.5;
  EXPECT_NEAR(r.cos_transmit, std::sqrt(1 - sin_t * sin_t), 1e-12);
}

TEST(Fresnel, ReciprocityAtNormalIncidence) {
  EXPECT_NEAR(fresnel(1.0, 1.4, 1.0).reflectance,
              fresnel(1.4, 1.0, 1.0).reflectance, 1e-12);
}

TEST(Fresnel, SpecularReflectanceHelper) {
  EXPECT_NEAR(specular_reflectance(1.0, 1.4),
              std::pow((1.0 - 1.4) / (1.0 + 1.4), 2), 1e-15);
  EXPECT_DOUBLE_EQ(specular_reflectance(1.4, 1.4), 0.0);
}

TEST(Fresnel, BrewsterAngleHasMinimumBelowNormalReflectance) {
  // At Brewster's angle the p-polarised term vanishes; the unpolarised
  // reflectance there is strictly below the grazing value and above 0.
  const double theta_b = std::atan(1.5 / 1.0);
  const double r_b = fresnel(1.0, 1.5, std::cos(theta_b)).reflectance;
  EXPECT_GT(r_b, 0.0);
  EXPECT_LT(r_b, 0.1);
}

// ---------- Henyey-Greenstein -------------------------------------------------

class HgSweep : public ::testing::TestWithParam<double> {};

TEST_P(HgSweep, MeanCosineEqualsG) {
  const double g = GetParam();
  util::Xoshiro256pp rng(99);
  const int n = 400000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += sample_hg_cosine(g, rng);
  EXPECT_NEAR(sum / n, g, 5e-3);
}

TEST_P(HgSweep, SecondLegendreMomentEqualsGSquared) {
  // HG phase function has Legendre coefficients g^l: <P2(cos)> = g^2.
  const double g = GetParam();
  util::Xoshiro256pp rng(123);
  const int n = 400000;
  double sum_p2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double c = sample_hg_cosine(g, rng);
    sum_p2 += 0.5 * (3.0 * c * c - 1.0);
  }
  EXPECT_NEAR(sum_p2 / n, g * g, 8e-3);
}

TEST_P(HgSweep, SamplesStayInRange) {
  const double g = GetParam();
  util::Xoshiro256pp rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double c = sample_hg_cosine(g, rng);
    ASSERT_GE(c, -1.0);
    ASSERT_LE(c, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AnisotropyValues, HgSweep,
                         ::testing::Values(-0.9, -0.5, 0.0, 0.5, 0.75, 0.9,
                                           0.99));

TEST(Hg, IsotropicLimitIsUniformInCosine) {
  util::Xoshiro256pp rng(55);
  const int n = 200000;
  int below = 0;
  for (int i = 0; i < n; ++i) {
    if (sample_hg_cosine(0.0, rng) < 0.0) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 5e-3);
}

TEST(Hg, PdfIntegratesToOne) {
  for (double g : {0.0, 0.5, 0.9, -0.7}) {
    const int n = 20000;
    double integral = 0.0;
    for (int i = 0; i < n; ++i) {
      const double c = -1.0 + 2.0 * (i + 0.5) / n;
      integral += hg_pdf(g, c) * (2.0 / n);
    }
    EXPECT_NEAR(integral, 1.0, 1e-3) << "g=" << g;
  }
}

TEST(Hg, PdfPeaksForwardForPositiveG) {
  EXPECT_GT(hg_pdf(0.9, 1.0), hg_pdf(0.9, 0.0));
  EXPECT_GT(hg_pdf(0.9, 0.0), hg_pdf(0.9, -1.0));
  EXPECT_GT(hg_pdf(-0.9, -1.0), hg_pdf(-0.9, 1.0));
}

TEST(Hg, SampledDistributionMatchesPdf) {
  // Chi-square of sampled cosines against the *exact* per-bin probability
  // from the analytic HG CDF (bin-centre pdf would bias the sharp forward
  // peak): F(c) = (1-g^2)/(2g) [ (1+g^2-2gc)^-1/2 - (1+g)^-1 ],
  // so F(-1) = 0 and F(1) = 1.
  const double g = 0.75;
  auto cdf = [g](double c) {
    return (1.0 - g * g) / (2.0 * g) *
           (1.0 / std::sqrt(1.0 + g * g - 2.0 * g * c) - 1.0 / (1.0 + g));
  };
  util::Xoshiro256pp rng(31);
  constexpr int kBins = 40;
  constexpr int kSamples = 400000;
  std::vector<int> counts(kBins, 0);
  for (int i = 0; i < kSamples; ++i) {
    const double c = sample_hg_cosine(g, rng);
    int bin = static_cast<int>((c + 1.0) / 2.0 * kBins);
    bin = std::min(bin, kBins - 1);
    ++counts[bin];
  }
  double chi2 = 0.0;
  int dof = 0;
  for (int b = 0; b < kBins; ++b) {
    const double lo = -1.0 + 2.0 * b / static_cast<double>(kBins);
    const double hi = -1.0 + 2.0 * (b + 1) / static_cast<double>(kBins);
    const double expected = (cdf(hi) - cdf(lo)) * kSamples;
    if (expected < 10.0) continue;  // skip near-empty backward bins
    const double d = counts[b] - expected;
    chi2 += d * d / expected;
    ++dof;
  }
  // chi2 ~ dof +- sqrt(2 dof); accept within ~5 sigma.
  EXPECT_LT(chi2, dof + 5.0 * std::sqrt(2.0 * dof));
}

// ---------- deflect ----------------------------------------------------------

TEST(Deflect, PreservesUnitNorm) {
  util::Xoshiro256pp rng(12);
  util::Vec3 dir{0.0, 0.0, 1.0};
  for (int i = 0; i < 10000; ++i) {
    dir = scatter_direction(dir, 0.9, rng);
    ASSERT_NEAR(dir.norm(), 1.0, 1e-9);
  }
}

TEST(Deflect, RealisesRequestedPolarAngle) {
  util::Xoshiro256pp rng(13);
  const util::Vec3 dir = util::Vec3{0.2, -0.4, 0.6}.normalized();
  for (double cos_theta : {-0.9, -0.3, 0.0, 0.4, 0.95}) {
    for (int i = 0; i < 100; ++i) {
      const util::Vec3 out = deflect(dir, cos_theta, rng);
      ASSERT_NEAR(out.dot(dir), cos_theta, 1e-9);
    }
  }
}

TEST(Deflect, HandlesAxisAlignedDirections) {
  util::Xoshiro256pp rng(14);
  for (const util::Vec3 axis :
       {util::Vec3{0, 0, 1}, util::Vec3{0, 0, -1}}) {
    const util::Vec3 out = deflect(axis, 0.5, rng);
    EXPECT_NEAR(out.dot(axis), 0.5, 1e-12);
    EXPECT_NEAR(out.norm(), 1.0, 1e-12);
  }
}

TEST(Deflect, AzimuthIsUniform) {
  // Scatter from +z with fixed polar angle; the resulting x-y azimuth
  // should be uniform: mean x and y both ~0.
  util::Xoshiro256pp rng(15);
  const int n = 200000;
  double sx = 0.0;
  double sy = 0.0;
  for (int i = 0; i < n; ++i) {
    const util::Vec3 out = deflect({0, 0, 1}, 0.2, rng);
    sx += out.x;
    sy += out.y;
  }
  EXPECT_NEAR(sx / n, 0.0, 5e-3);
  EXPECT_NEAR(sy / n, 0.0, 5e-3);
}

}  // namespace
}  // namespace phodis::mc
