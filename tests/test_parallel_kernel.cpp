// The determinism contract of the parallel execution subsystem: the same
// seed at 1, 2, 4, and 8 threads produces bitwise-identical tallies,
// equal to run_serial — through the runner directly, through
// MonteCarloApp::run_parallel, and through the distributed runtime with
// multi-threaded workers.
#include <gtest/gtest.h>

#include <vector>

#include "core/app.hpp"
#include "exec/parallel.hpp"
#include "exec/threadpool.hpp"
#include "mc/presets.hpp"

namespace phodis {
namespace {

core::SimulationSpec small_spec(std::uint64_t photons) {
  core::SimulationSpec spec;
  mc::OpticalProperties p;
  p.mua = 0.05;
  p.mus = 5.0;
  p.g = 0.8;
  p.n = 1.4;
  mc::LayeredMediumBuilder builder;
  builder.add_layer("top", p, 3.0);
  p.mua = 0.01;
  builder.add_semi_infinite_layer("bottom", p);
  spec.kernel.medium = builder.build();
  mc::DetectorSpec detector;
  detector.separation_mm = 5.0;
  detector.radius_mm = 2.0;
  spec.kernel.detector = detector;
  spec.photons = photons;
  spec.seed = 424242;
  return spec;
}

TEST(ParallelKernelRunner, BitwiseIdenticalAcrossThreadCounts) {
  const core::SimulationSpec spec = small_spec(10'000);
  const mc::Kernel kernel(spec.kernel);
  // Small shards so even this test-sized budget spans many shards.
  const exec::ParallelKernelRunner serial(kernel, nullptr, 512);
  const std::vector<std::uint8_t> reference =
      serial.run(spec.photons, spec.seed, 0).to_bytes();

  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    exec::ThreadPool pool(threads);
    const exec::ParallelKernelRunner runner(kernel, &pool, 512);
    EXPECT_EQ(runner.run(spec.photons, spec.seed, 0).to_bytes(), reference)
        << "thread count " << threads << " changed the tally bytes";
  }
}

TEST(ParallelKernelRunner, SingleShardEqualsAPlainKernelRun) {
  // A budget within one shard is exactly the pre-subsystem per-task
  // path: the unjumped task stream, one tally.
  const core::SimulationSpec spec = small_spec(1'000);
  const mc::Kernel kernel(spec.kernel);
  const exec::ParallelKernelRunner runner(kernel);
  ASSERT_LE(spec.photons, runner.shard_photons());

  mc::SimulationTally direct = kernel.make_tally();
  util::Xoshiro256pp rng = util::Xoshiro256pp::for_task(spec.seed, 3);
  kernel.run(spec.photons, rng, direct);

  EXPECT_EQ(runner.run(spec.photons, spec.seed, 3).to_bytes(),
            direct.to_bytes());
}

TEST(ParallelKernelRunner, ZeroPhotonsYieldsAnEmptyTally) {
  const core::SimulationSpec spec = small_spec(1'000);
  const mc::Kernel kernel(spec.kernel);
  const exec::ParallelKernelRunner runner(kernel);
  const mc::SimulationTally tally = runner.run(0, spec.seed, 0);
  EXPECT_EQ(tally.photons_launched(), 0u);
}

TEST(ParallelKernelRunner, SharedPoolAcrossConcurrentRunsIsDeterministic) {
  const core::SimulationSpec spec = small_spec(4'000);
  const mc::Kernel kernel(spec.kernel);
  const exec::ParallelKernelRunner reference(kernel, nullptr, 256);
  std::vector<std::vector<std::uint8_t>> expected;
  for (std::uint64_t task = 0; task < 4; ++task) {
    expected.push_back(reference.run(spec.photons, spec.seed, task).to_bytes());
  }

  exec::ThreadPool pool(4);
  const exec::ParallelKernelRunner runner(kernel, &pool, 256);
  std::vector<std::vector<std::uint8_t>> got(4);
  std::vector<std::thread> callers;
  for (std::uint64_t task = 0; task < 4; ++task) {
    callers.emplace_back([&, task] {
      got[task] = runner.run(spec.photons, spec.seed, task).to_bytes();
    });
  }
  for (std::thread& caller : callers) caller.join();
  for (std::uint64_t task = 0; task < 4; ++task) {
    EXPECT_EQ(got[task], expected[task]) << "task " << task;
  }
}

TEST(App, RunParallelMatchesRunSerialBitwise) {
  const core::MonteCarloApp app(small_spec(20'000));
  const std::vector<std::uint8_t> serial = app.run_serial().to_bytes();
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(app.run_parallel(threads).to_bytes(), serial)
        << threads << " threads diverged from run_serial";
  }
}

TEST(App, RunParallelConservesEnergyAndBudget) {
  const core::MonteCarloApp app(small_spec(12'000));
  const mc::SimulationTally tally = app.run_parallel(4);
  EXPECT_EQ(tally.photons_launched(), 12'000u);
  EXPECT_LT(tally.weight_conservation_error(), 1e-6 * 12'000);
}

TEST(App, DistributedWithThreadedWorkersMatchesSerialBitwise) {
  const core::MonteCarloApp app(small_spec(10'000));
  const std::vector<std::uint8_t> serial = app.run_serial(2'000).to_bytes();

  core::ExecutionOptions options;
  options.workers = 2;
  options.chunk_photons = 2'000;  // pin the plan to the serial one
  options.threads_per_worker = 3;
  const core::RunSummary summary = app.run_distributed(options);
  EXPECT_EQ(summary.tally.to_bytes(), serial);
}

TEST(Algorithm, ExecutorIsBitwiseIdenticalToExecuteForAnyThreadCount) {
  const core::SimulationSpec spec = small_spec(9'000);
  const core::MonteCarloApp app(spec);
  const auto tasks = app.build_tasks(3'000, 1);
  ASSERT_GE(tasks.size(), 2u);

  for (std::size_t threads : {2u, 8u}) {
    const dist::TaskExecutor threaded = core::Algorithm::executor(threads);
    for (const dist::TaskRecord& task : tasks) {
      EXPECT_EQ(threaded(task.task_id, task.payload),
                core::Algorithm::execute(task.task_id, task.payload))
          << "task " << task.task_id << " at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace phodis
