// Tests for the three source footprints and Russian roulette.
#include <gtest/gtest.h>

#include <cmath>

#include "mc/roulette.hpp"
#include "mc/source.hpp"
#include "util/rng.hpp"

namespace phodis::mc {
namespace {

// ---------- sources ----------------------------------------------------------

TEST(Source, ParseNames) {
  EXPECT_EQ(parse_source_type("delta"), SourceType::kDelta);
  EXPECT_EQ(parse_source_type("LASER"), SourceType::kDelta);
  EXPECT_EQ(parse_source_type("pencil"), SourceType::kDelta);
  EXPECT_EQ(parse_source_type("gaussian"), SourceType::kGaussian);
  EXPECT_EQ(parse_source_type("Gauss"), SourceType::kGaussian);
  EXPECT_EQ(parse_source_type("uniform"), SourceType::kUniform);
  EXPECT_EQ(parse_source_type("flat"), SourceType::kUniform);
  EXPECT_THROW(parse_source_type("plasma"), std::invalid_argument);
}

TEST(Source, ToStringRoundTrips) {
  for (SourceType t :
       {SourceType::kDelta, SourceType::kGaussian, SourceType::kUniform}) {
    EXPECT_EQ(parse_source_type(to_string(t)), t);
  }
}

TEST(Source, SpecValidation) {
  SourceSpec spec;
  spec.type = SourceType::kGaussian;
  spec.radius_mm = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.type = SourceType::kDelta;
  EXPECT_NO_THROW(spec.validate());  // delta ignores radius
  spec.type = SourceType::kUniform;
  spec.radius_mm = 2.0;
  EXPECT_NO_THROW(spec.validate());
}

TEST(Source, DeltaLaunchesAtOrigin) {
  SourceSpec spec;
  spec.type = SourceType::kDelta;
  Source source(spec);
  util::Xoshiro256pp rng(1);
  for (int i = 0; i < 100; ++i) {
    const PhotonPacket p = source.launch(rng);
    EXPECT_EQ(p.pos, (util::Vec3{0, 0, 0}));
    EXPECT_EQ(p.dir, (util::Vec3{0, 0, 1}));
    EXPECT_DOUBLE_EQ(p.weight, 1.0);
    EXPECT_TRUE(p.alive());
  }
}

TEST(Source, UniformStaysInsideDisc) {
  SourceSpec spec;
  spec.type = SourceType::kUniform;
  spec.radius_mm = 3.0;
  Source source(spec);
  util::Xoshiro256pp rng(2);
  for (int i = 0; i < 50000; ++i) {
    const util::Vec3 p = source.sample_position(rng);
    ASSERT_LE(std::hypot(p.x, p.y), 3.0 + 1e-12);
    ASSERT_DOUBLE_EQ(p.z, 0.0);
  }
}

TEST(Source, UniformIsUniformInArea) {
  // For uniform area density, E[r^2] = R^2/2.
  SourceSpec spec;
  spec.type = SourceType::kUniform;
  spec.radius_mm = 2.0;
  Source source(spec);
  util::Xoshiro256pp rng(3);
  const int n = 200000;
  double sum_r2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const util::Vec3 p = source.sample_position(rng);
    sum_r2 += p.x * p.x + p.y * p.y;
  }
  EXPECT_NEAR(sum_r2 / n, 2.0 * 2.0 / 2.0, 2e-2);
}

TEST(Source, GaussianMatchesBeamRadiusDefinition) {
  // 1/e^2 radius w: each coordinate is N(0, w/2), so E[r^2] = w^2/2.
  SourceSpec spec;
  spec.type = SourceType::kGaussian;
  spec.radius_mm = 4.0;
  Source source(spec);
  util::Xoshiro256pp rng(4);
  const int n = 200000;
  double sum_r2 = 0.0;
  double sum_x = 0.0;
  for (int i = 0; i < n; ++i) {
    const util::Vec3 p = source.sample_position(rng);
    sum_r2 += p.x * p.x + p.y * p.y;
    sum_x += p.x;
  }
  EXPECT_NEAR(sum_r2 / n, 4.0 * 4.0 / 2.0, 0.15);
  EXPECT_NEAR(sum_x / n, 0.0, 2e-2);
}

TEST(Source, FootprintsHaveIncreasingSpread) {
  // delta < gaussian(r) mean spread for the same nominal radius as a
  // sanity ordering, and all launch on the surface plane.
  util::Xoshiro256pp rng(5);
  SourceSpec g;
  g.type = SourceType::kGaussian;
  g.radius_mm = 1.0;
  Source gauss(g);
  double spread = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const util::Vec3 p = gauss.sample_position(rng);
    spread += std::hypot(p.x, p.y);
  }
  EXPECT_GT(spread, 0.0);
}

// ---------- roulette ---------------------------------------------------------

TEST(Roulette, SpecValidation) {
  RouletteSpec spec;
  EXPECT_NO_THROW(spec.validate());
  spec.threshold = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.threshold = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.threshold = 1e-4;
  spec.survival_multiplier = 1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(Roulette, PreservesExpectedWeight) {
  // E[post-roulette weight] must equal the input weight (unbiasedness).
  RouletteSpec spec;
  spec.survival_multiplier = 10.0;
  util::Xoshiro256pp rng(6);
  const double w = 5e-5;
  const int n = 2000000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += play_roulette(w, spec, rng);
  EXPECT_NEAR(sum / n / w, 1.0, 2e-2);
}

TEST(Roulette, SurvivorsCarryMultipliedWeight) {
  RouletteSpec spec;
  spec.survival_multiplier = 10.0;
  util::Xoshiro256pp rng(7);
  const double w = 1e-5;
  for (int i = 0; i < 1000; ++i) {
    const double out = play_roulette(w, spec, rng);
    ASSERT_TRUE(out == 0.0 || std::abs(out - w * 10.0) < 1e-18);
  }
}

TEST(Roulette, SurvivalRateIsOneOverMultiplier) {
  RouletteSpec spec;
  spec.survival_multiplier = 5.0;
  util::Xoshiro256pp rng(8);
  const int n = 500000;
  int survived = 0;
  for (int i = 0; i < n; ++i) {
    if (play_roulette(1e-5, spec, rng) > 0.0) ++survived;
  }
  EXPECT_NEAR(static_cast<double>(survived) / n, 0.2, 3e-3);
}

class RouletteMultiplierSweep : public ::testing::TestWithParam<double> {};

TEST_P(RouletteMultiplierSweep, UnbiasedAcrossMultipliers) {
  RouletteSpec spec;
  spec.survival_multiplier = GetParam();
  util::Xoshiro256pp rng(9);
  const double w = 1e-5;
  const int n = 1000000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += play_roulette(w, spec, rng);
  EXPECT_NEAR(sum / n / w, 1.0, 3e-2);
}

INSTANTIATE_TEST_SUITE_P(Multipliers, RouletteMultiplierSweep,
                         ::testing::Values(2.0, 5.0, 10.0, 20.0));

}  // namespace
}  // namespace phodis::mc
