// Tests for the analysis module: diffusion theory helpers, banana
// metrics, grid thresholding, beam spread, and the renderers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "analysis/banana.hpp"
#include "analysis/diffusion.hpp"
#include "analysis/render.hpp"
#include "mc/presets.hpp"

namespace phodis::analysis {
namespace {

mc::OpticalProperties white_matter() {
  return mc::OpticalProperties::from_reduced(0.014, 9.1, 0.9, 1.4);
}

// ---------- diffusion --------------------------------------------------------

TEST(Diffusion, CoefficientAndMueff) {
  const mc::OpticalProperties p = white_matter();
  const double d = diffusion_coefficient(p);
  EXPECT_NEAR(d, 1.0 / (3.0 * (0.014 + 9.1)), 1e-12);
  EXPECT_NEAR(effective_attenuation(p), std::sqrt(0.014 / d), 1e-12);
  EXPECT_NEAR(effective_attenuation(p), p.mueff(), 1e-12);
}

TEST(Diffusion, RejectsNonInteractingMedium) {
  mc::OpticalProperties vacuum;
  EXPECT_THROW(diffusion_coefficient(vacuum), std::invalid_argument);
}

TEST(Diffusion, InfiniteMediumFluenceDecaysExponentially) {
  const mc::OpticalProperties p = white_matter();
  const double mueff = effective_attenuation(p);
  const double phi_1 = infinite_medium_fluence(p, 5.0);
  const double phi_2 = infinite_medium_fluence(p, 10.0);
  // φ(r) r should decay as exp(-µeff r).
  EXPECT_NEAR(std::log((phi_1 * 5.0) / (phi_2 * 10.0)), mueff * 5.0, 1e-9);
  EXPECT_THROW(infinite_medium_fluence(p, 0.0), std::invalid_argument);
}

TEST(Diffusion, ReflectanceDecreasesWithDistance) {
  const mc::OpticalProperties p = white_matter();
  double prev = semi_infinite_reflectance(p, 1.0);
  for (double rho : {2.0, 5.0, 10.0, 20.0}) {
    const double r = semi_infinite_reflectance(p, rho);
    EXPECT_LT(r, prev);
    EXPECT_GT(r, 0.0);
    prev = r;
  }
}

TEST(Diffusion, ReflectanceFallsFasterInMoreAbsorbingMedium) {
  mc::OpticalProperties low = white_matter();
  mc::OpticalProperties high = white_matter();
  high.mua = 10.0 * low.mua;
  const double ratio_low = semi_infinite_reflectance(low, 20.0) /
                           semi_infinite_reflectance(low, 10.0);
  const double ratio_high = semi_infinite_reflectance(high, 20.0) /
                            semi_infinite_reflectance(high, 10.0);
  EXPECT_LT(ratio_high, ratio_low);
}

TEST(Diffusion, DpfIsLargeForHighlyScatteringTissue) {
  // The paper's motivation: detected photons travel much further than the
  // source-detector separation. For white matter DPF >> 1.
  const double dpf = differential_pathlength_factor(white_matter(), 30.0);
  EXPECT_GT(dpf, 5.0);
  EXPECT_LT(dpf, 50.0);
}

TEST(Diffusion, MeanPathlengthGrowsWithSeparation) {
  const mc::OpticalProperties p = white_matter();
  double prev = 0.0;
  for (double rho : {10.0, 20.0, 30.0, 40.0}) {
    const double path = mean_pathlength_semi_infinite(p, rho);
    EXPECT_GT(path, prev);
    prev = path;
  }
}

TEST(Diffusion, PenetrationDepthMatchesInverseMueff) {
  const mc::OpticalProperties p = white_matter();
  EXPECT_NEAR(penetration_depth(p), 1.0 / p.mueff(), 1e-12);
  // CSF-like low-scattering tissue penetrates deeper than white matter.
  const mc::OpticalProperties csf =
      mc::OpticalProperties::from_reduced(0.004, 0.25, 0.9, 1.4);
  EXPECT_GT(penetration_depth(csf), penetration_depth(p));
}

// ---------- banana metrics ----------------------------------------------------

/// Build a synthetic banana: an arc of deposits from (0,0,0) to (20,0,0)
/// dipping to z = 8 mm at the middle.
mc::VoxelGrid3D synthetic_banana() {
  mc::GridSpec spec;
  spec.x_min = -5.0;
  spec.x_max = 25.0;
  spec.y_min = -5.0;
  spec.y_max = 5.0;
  spec.z_min = 0.0;
  spec.z_max = 15.0;
  spec.nx = 60;
  spec.ny = 20;
  spec.nz = 30;
  mc::VoxelGrid3D grid(spec);
  for (int i = 0; i <= 200; ++i) {
    const double t = i / 200.0;
    const double x = 20.0 * t;
    const double z = 8.0 * std::sin(M_PI * t) + 0.25;
    grid.deposit({x, 0.0, z}, 1.0);
  }
  return grid;
}

TEST(Banana, SyntheticArcIsBananaShaped) {
  const mc::VoxelGrid3D grid = synthetic_banana();
  const BananaMetrics metrics = banana_metrics(grid, 20.0);
  EXPECT_TRUE(metrics.is_banana_shaped());
  EXPECT_GT(metrics.midpoint_mean_depth_mm, 6.0);
  EXPECT_LT(metrics.endpoint_mean_depth_mm, 3.0);
  EXPECT_LT(metrics.asymmetry, 0.1);
  EXPECT_GT(metrics.between_fraction, 0.9);
}

TEST(Banana, UniformSlabIsNotBananaShaped) {
  mc::GridSpec spec;
  spec.x_min = -5.0;
  spec.x_max = 25.0;
  spec.y_min = -5.0;
  spec.y_max = 5.0;
  spec.z_min = 0.0;
  spec.z_max = 15.0;
  spec.nx = 30;
  spec.ny = 10;
  spec.nz = 15;
  mc::VoxelGrid3D grid(spec);
  for (std::size_t flat = 0; flat < spec.voxel_count(); ++flat) {
    grid.deposit_index(flat, 1.0);
  }
  const BananaMetrics metrics = banana_metrics(grid, 20.0);
  // Mean depth is the same everywhere: not deeper in the middle.
  EXPECT_FALSE(metrics.midpoint_mean_depth_mm >
               metrics.endpoint_mean_depth_mm + 0.5);
}

TEST(Banana, EmptyGridGivesZeroMetrics) {
  mc::VoxelGrid3D grid(mc::GridSpec::cube(10, 10.0, 10.0));
  const BananaMetrics metrics = banana_metrics(grid, 10.0);
  EXPECT_DOUBLE_EQ(metrics.between_fraction, 0.0);
  EXPECT_FALSE(metrics.is_banana_shaped());
}

TEST(Banana, ProfileCoversAllColumns) {
  const mc::VoxelGrid3D grid = synthetic_banana();
  const BananaMetrics metrics = banana_metrics(grid, 20.0);
  EXPECT_EQ(metrics.profile.size(), grid.spec().nx);
  // Columns are ordered left to right.
  for (std::size_t i = 1; i < metrics.profile.size(); ++i) {
    EXPECT_GT(metrics.profile[i].x_mm, metrics.profile[i - 1].x_mm);
  }
}

// ---------- thresholding ------------------------------------------------------

TEST(Threshold, RemovesWeakVoxelsKeepsStrong) {
  mc::VoxelGrid3D grid(mc::GridSpec::cube(4, 4.0, 4.0));
  grid.deposit_index(0, 100.0);
  grid.deposit_index(1, 1.0);
  grid.deposit_index(2, 60.0);
  const double kept = threshold_grid(grid, 0.5);  // cutoff 50
  EXPECT_DOUBLE_EQ(grid.at_flat(0), 100.0);
  EXPECT_DOUBLE_EQ(grid.at_flat(1), 0.0);
  EXPECT_DOUBLE_EQ(grid.at_flat(2), 60.0);
  EXPECT_NEAR(kept, 160.0 / 161.0, 1e-12);
}

TEST(Threshold, ZeroFractionKeepsEverything) {
  mc::VoxelGrid3D grid(mc::GridSpec::cube(4, 4.0, 4.0));
  grid.deposit_index(3, 2.0);
  grid.deposit_index(7, 0.5);
  EXPECT_DOUBLE_EQ(threshold_grid(grid, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(grid.total(), 2.5);
}

TEST(Threshold, EmptyGridReturnsZero) {
  mc::VoxelGrid3D grid(mc::GridSpec::cube(4, 4.0, 4.0));
  EXPECT_DOUBLE_EQ(threshold_grid(grid, 0.5), 0.0);
}

// ---------- beam spread -------------------------------------------------------

TEST(BeamSpread, NarrowColumnHasSmallRadius) {
  mc::VoxelGrid3D grid(mc::GridSpec::cube(21, 10.0, 10.0));
  // Deposit along the z axis only (a perfect pencil).
  for (double z = 0.25; z < 10.0; z += 0.5) {
    grid.deposit({0.0, 0.0, z}, 1.0);
  }
  const auto series = beam_spread_by_depth(grid);
  ASSERT_EQ(series.size(), 21u);
  for (const auto& point : series) {
    if (point.total_weight > 0.0) {
      // All weight is in the central voxel whose centre is at r = 0.
      EXPECT_NEAR(point.rms_radius_mm, 0.0, 1e-9);
    }
  }
}

TEST(BeamSpread, WideDiskHasLargerRadiusThanNarrowDisk) {
  mc::VoxelGrid3D grid(mc::GridSpec::cube(21, 10.0, 10.0));
  // Narrow ring at shallow depth, wide ring deeper.
  for (double phi = 0.0; phi < 6.28; phi += 0.1) {
    grid.deposit({1.0 * std::cos(phi), 1.0 * std::sin(phi), 1.0}, 1.0);
    grid.deposit({6.0 * std::cos(phi), 6.0 * std::sin(phi), 9.0}, 1.0);
  }
  const auto series = beam_spread_by_depth(grid);
  double shallow = 0.0;
  double deep = 0.0;
  for (const auto& point : series) {
    if (point.total_weight == 0.0) continue;
    if (point.z_mm < 5.0) shallow = point.rms_radius_mm;
    else deep = point.rms_radius_mm;
  }
  EXPECT_GT(deep, shallow);
  EXPECT_NEAR(shallow, 1.0, 0.5);
  EXPECT_NEAR(deep, 6.0, 0.8);
}

// ---------- rendering ---------------------------------------------------------

TEST(Render, AsciiSliceHasExpectedShape) {
  mc::VoxelGrid3D grid(mc::GridSpec::cube(30, 15.0, 15.0));
  // Deposit at the centre of a definite voxel row and render that row
  // (y = 0 sits exactly on a voxel boundary of an even grid).
  grid.deposit({0.0, 0.5, 5.0}, 10.0);
  RenderOptions options;
  options.y_mm = 0.5;
  options.max_cols = 30;
  options.max_rows = 30;
  const std::string art = render_ascii_slice(grid, options);
  // 30 rows of 30 chars + newline each.
  EXPECT_EQ(art.size(), 30u * 31u);
  // The hot voxel renders as the densest ramp character.
  EXPECT_NE(art.find('@'), std::string::npos);
}

TEST(Render, EmptyGridRendersBlank) {
  mc::VoxelGrid3D grid(mc::GridSpec::cube(10, 5.0, 5.0));
  const std::string art = render_ascii_slice(grid);
  for (char c : art) {
    EXPECT_TRUE(c == ' ' || c == '\n');
  }
}

TEST(Render, DownsamplesWideGrids) {
  mc::VoxelGrid3D grid(mc::GridSpec::cube(200, 10.0, 10.0));
  RenderOptions options;
  options.max_cols = 50;
  options.max_rows = 25;
  const std::string art = render_ascii_slice(grid, options);
  EXPECT_EQ(art.size(), 25u * 51u);
}

TEST(Render, WritesPgmFile) {
  mc::VoxelGrid3D grid(mc::GridSpec::cube(16, 8.0, 8.0));
  grid.deposit({0, 0, 4}, 5.0);
  const std::string path = "/tmp/phodis_test_render.pgm";
  write_pgm_slice(grid, path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P5");
  std::remove(path.c_str());
}

TEST(Render, WritesCsvSlice) {
  mc::VoxelGrid3D grid(mc::GridSpec::cube(8, 4.0, 4.0));
  grid.deposit({0, 0, 2}, 3.0);
  const std::string path = "/tmp/phodis_test_slice.csv";
  write_csv_slice(grid, path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "x_mm,z_mm,value");
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 8 * 8);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace phodis::analysis
