// Edge-case coverage: non-interacting (clear) layers, extreme optical
// parameters, and DataManager thread-safety under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include "dist/datamanager.hpp"
#include "mc/kernel.hpp"
#include "mc/presets.hpp"

namespace phodis::mc {
namespace {

// ---------- clear (µt = 0) layers ----------------------------------------------

/// A perfectly clear layer (idealised CSF): photons must cross it
/// ballistically with no weight change, and the kernel's µt = 0 branch
/// must not lose energy or hang.
LayeredMedium sandwich_with_clear_middle(double n_clear) {
  OpticalProperties scatterer;
  scatterer.mua = 0.02;
  scatterer.mus = 5.0;
  scatterer.g = 0.8;
  scatterer.n = 1.4;
  OpticalProperties clear;
  clear.mua = 0.0;
  clear.mus = 0.0;
  clear.g = 0.0;
  clear.n = n_clear;
  LayeredMediumBuilder builder;
  builder.add_layer("top", scatterer, 2.0);
  builder.add_layer("clear", clear, 3.0);
  builder.add_semi_infinite_layer("bottom", scatterer);
  return builder.build();
}

TEST(ClearLayer, ConservesEnergyWithMatchedIndex) {
  KernelConfig config;
  config.medium = sandwich_with_clear_middle(1.4);
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(81);
  kernel.run(20000, rng, tally);
  EXPECT_LT(tally.weight_conservation_error(), 1e-6 * 20000);
  // Nothing can be absorbed in the clear layer.
  EXPECT_DOUBLE_EQ(tally.absorbed_weight(1), 0.0);
  // Photons do reach and deposit in the bottom layer.
  EXPECT_GT(tally.absorbed_weight(2), 0.0);
}

TEST(ClearLayer, MismatchedIndexStillConserves) {
  // n = 1.0 clear layer between n = 1.4 tissue: internal reflections at
  // both faces of the gap (the CSF situation, exaggerated).
  KernelConfig config;
  config.medium = sandwich_with_clear_middle(1.0);
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(82);
  kernel.run(20000, rng, tally);
  EXPECT_LT(tally.weight_conservation_error(), 1e-6 * 20000);
  EXPECT_GT(tally.absorbed_weight(2), 0.0);
}

TEST(ClearLayer, FullyClearSlabTransmitsBallistically) {
  // A single clear slab with matched boundaries transmits every photon
  // with weight exactly 1 (no specular loss, no interactions).
  OpticalProperties clear;
  clear.n = 1.0;
  KernelConfig config;
  config.medium = homogeneous_slab(clear, 10.0, 1.0);
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(83);
  kernel.run(1000, rng, tally);
  EXPECT_DOUBLE_EQ(tally.transmittance(), 1.0);
  EXPECT_DOUBLE_EQ(tally.diffuse_reflectance(), 0.0);
}

TEST(ClearLayer, PurelyAbsorbingClearLayerAttenuates) {
  // µs = 0 but µa > 0: Beer-Lambert through the layer, no scattering.
  OpticalProperties absorber;
  absorber.mua = 0.2;
  absorber.mus = 0.0;
  absorber.n = 1.0;
  KernelConfig config;
  config.medium = homogeneous_slab(absorber, 5.0, 1.0);
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(84);
  kernel.run(30000, rng, tally);
  EXPECT_NEAR(tally.transmittance(), std::exp(-1.0), 6e-3);
}

// ---------- extreme parameters --------------------------------------------------

TEST(Extremes, NearUnityAnisotropyStillConserves) {
  OpticalProperties p;
  p.mua = 0.01;
  p.mus = 10.0;
  p.g = 0.999;  // almost pure forward scattering
  p.n = 1.0;
  KernelConfig config;
  config.medium = homogeneous_semi_infinite(p, 1.0);
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(85);
  kernel.run(5000, rng, tally);
  EXPECT_LT(tally.weight_conservation_error(), 1e-6 * 5000);
  // Forward scattering drives photons deep: reflectance is modest.
  EXPECT_LT(tally.diffuse_reflectance(), 0.9);
}

TEST(Extremes, BackScatteringMediumReflectsStrongly) {
  OpticalProperties forward;
  forward.mua = 0.1;
  forward.mus = 10.0;
  forward.g = 0.9;
  forward.n = 1.0;
  OpticalProperties backward = forward;
  backward.g = -0.9;
  auto rd = [](const OpticalProperties& p, std::uint64_t seed) {
    KernelConfig config;
    config.medium = homogeneous_semi_infinite(p, 1.0);
    const Kernel kernel(config);
    SimulationTally tally = kernel.make_tally();
    util::Xoshiro256pp rng(seed);
    kernel.run(20000, rng, tally);
    return tally.diffuse_reflectance();
  };
  EXPECT_GT(rd(backward, 86), rd(forward, 87));
}

TEST(Extremes, VeryThinSlabTransmitsAlmostEverything) {
  OpticalProperties p;
  p.mua = 0.01;
  p.mus = 1.0;
  p.g = 0.9;
  p.n = 1.0;
  KernelConfig config;
  config.medium = homogeneous_slab(p, 0.01, 1.0);  // 10 µm
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(88);
  kernel.run(10000, rng, tally);
  EXPECT_GT(tally.transmittance(), 0.98);
}

TEST(Extremes, SingleVoxelGridsWork) {
  GridSpec spec;
  spec.nx = spec.ny = spec.nz = 1;
  VoxelGrid3D grid(spec);
  grid.deposit({0.0, 0.0, 25.0}, 2.0);
  EXPECT_DOUBLE_EQ(grid.total(), 2.0);
  EXPECT_DOUBLE_EQ(grid.at(0, 0, 0), 2.0);
}

}  // namespace
}  // namespace phodis::mc

namespace phodis::dist {
namespace {

// ---------- DataManager under thread contention ----------------------------------

TEST(DataManagerConcurrency, ParallelLeaseCompleteIsExactlyOnce) {
  DataManager manager(60.0);
  constexpr std::uint64_t kTasks = 2000;
  for (std::uint64_t i = 0; i < kTasks; ++i) manager.add_task(i, {});

  std::atomic<std::uint64_t> merged{0};
  std::mutex seen_mutex;
  std::set<std::uint64_t> seen;

  auto worker = [&](int index) {
    std::string name = "w";
    name += std::to_string(index);
    while (auto task = manager.lease_next(name, 0.0)) {
      if (manager.complete(task->task_id, name, 1.0)) {
        merged.fetch_add(1);
        std::lock_guard<std::mutex> lock(seen_mutex);
        // Exactly-once: no id may be merged twice.
        ASSERT_TRUE(seen.insert(task->task_id).second);
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) threads.emplace_back(worker, t);
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(merged.load(), kTasks);
  EXPECT_TRUE(manager.all_done());
  EXPECT_EQ(manager.stats().duplicate_results, 0u);
}

TEST(DataManagerConcurrency, ExpiryRacingCompletionsStaysConsistent) {
  DataManager manager(0.0001);  // leases expire essentially immediately
  constexpr std::uint64_t kTasks = 500;
  for (std::uint64_t i = 0; i < kTasks; ++i) manager.add_task(i, {});

  std::atomic<bool> stop{false};
  std::thread reaper([&] {
    double now = 1.0;
    while (!stop.load()) {
      manager.expire_leases(now);
      now += 1.0;
    }
  });

  std::atomic<std::uint64_t> merged{0};
  auto worker = [&](int index) {
    std::string name = "w";
    name += std::to_string(index);
    while (!manager.all_done()) {
      if (auto task = manager.lease_next(name, 0.0)) {
        if (manager.complete(task->task_id, name, 0.0)) {
          merged.fetch_add(1);
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(worker, t);
  for (auto& thread : threads) thread.join();
  stop.store(true);
  reaper.join();

  // Every task merged exactly once even with constant lease churn.
  EXPECT_EQ(merged.load(), kTasks);
  EXPECT_EQ(manager.completed_count(), kTasks);
}

TEST(DataManagerConcurrency, ConcurrentAddAndLease) {
  DataManager manager(60.0);
  std::atomic<std::uint64_t> merged{0};
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < 1000; ++i) manager.add_task(i, {});
  });
  std::thread consumer([&] {
    std::uint64_t idle_spins = 0;
    while (merged.load() < 1000 && idle_spins < 10'000'000) {
      if (auto task = manager.lease_next("c", 0.0)) {
        manager.complete(task->task_id, "c", 0.0);
        merged.fetch_add(1);
      } else {
        ++idle_spins;
      }
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(merged.load(), 1000u);
}

}  // namespace
}  // namespace phodis::dist
