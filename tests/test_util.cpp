// Tests for the util support modules: bytes, histogram, cli, csv, table,
// vec3, log.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/bytes.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/fastmath.hpp"
#include "util/histogram.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/vec3.hpp"

namespace phodis::util {
namespace {

// ---------- fastmath --------------------------------------------------------

// fast_radius trades std::hypot's overflow rescaling for a plain sqrt; the
// kernel only feeds it photon coordinates in millimetres, so this pins the
// accuracy over the physically reachable range (sub-µm to metres). Three
// roundings instead of one correctly-rounded op bounds the relative error
// by ~2 ulp; 1e-14 leaves a comfortable margin.
TEST(FastMath, FastRadiusMatchesHypotOverPhysicalRange) {
  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  const auto next_coord = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    const double mantissa =
        static_cast<double>(state >> 11) * 0x1.0p-53;  // [0, 1)
    const int exponent = static_cast<int>(state % 21) - 10;  // 1e-10..1e10 mm
    return (mantissa + 0.5) * std::pow(10.0, exponent) *
           (state & 1 ? 1.0 : -1.0);
  };
  for (int i = 0; i < 100000; ++i) {
    const double x = next_coord();
    const double y = next_coord();
    const double reference = std::hypot(x, y);
    const double fast = fast_radius(x, y);
    ASSERT_NEAR(fast, reference, reference * 1e-14)
        << "x=" << x << " y=" << y;
  }
  // Exact cases stay exact.
  EXPECT_EQ(fast_radius(0.0, 0.0), 0.0);
  EXPECT_EQ(fast_radius(3.0, 4.0), 5.0);
  EXPECT_EQ(fast_radius(-3.0, 4.0), 5.0);
}

// ---------- bytes -----------------------------------------------------------

TEST(Bytes, RoundTripAllScalarTypes) {
  ByteWriter w;
  w.u8(250);
  w.u32(123456789u);
  w.u64(0xDEADBEEFCAFEBABEULL);
  w.i64(-42);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 250);
  EXPECT_EQ(r.u32(), 123456789u);
  EXPECT_EQ(r.u64(), 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, RoundTripStringsAndVectors) {
  ByteWriter w;
  w.str("hello world");
  w.str("");
  w.f64_vec({1.0, -2.5, 1e300});
  w.f64_vec({});

  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.f64_vec(), (std::vector<double>{1.0, -2.5, 1e300}));
  EXPECT_TRUE(r.f64_vec().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, SpecialDoublesRoundTrip) {
  ByteWriter w;
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  ByteReader r(w.bytes());
  EXPECT_TRUE(std::isinf(r.f64()));
  EXPECT_EQ(r.f64(), 0.0);
}

TEST(Bytes, TruncatedBufferThrows) {
  ByteWriter w;
  w.u64(1);
  std::vector<std::uint8_t> buf = w.bytes();
  buf.pop_back();
  ByteReader r(buf);
  EXPECT_THROW(r.u64(), std::out_of_range);
}

TEST(Bytes, TruncatedStringThrows) {
  ByteWriter w;
  w.str("abcdef");
  std::vector<std::uint8_t> buf = w.bytes();
  buf.resize(buf.size() - 3);
  ByteReader r(buf);
  EXPECT_THROW(r.str(), std::out_of_range);
}

TEST(Bytes, OversizedVectorLengthThrows) {
  ByteWriter w;
  w.u64(~0ULL);  // claims 2^64-1 doubles follow
  ByteReader r(w.bytes());
  EXPECT_THROW(r.f64_vec(), std::out_of_range);
}

// Regression: a length crafted so len * sizeof(double) wraps to a small
// value (0x2000000000000001 * 8 == 8 mod 2^64). The old multiply-based
// bounds check passed it, leaving a ~2^64-element allocation attempt to
// blow up downstream; the divide-based check must reject it up front.
TEST(Bytes, WrappingVectorLengthThrows) {
  ByteWriter w;
  w.u64(0x2000000000000001ULL);
  w.f64(1.0);  // 8 real bytes, matching the wrapped product
  ByteReader r(w.bytes());
  EXPECT_THROW(r.f64_vec(), std::out_of_range);
}

TEST(Bytes, StoreLoadU32LittleEndianByConstruction) {
  std::uint8_t buf[4];
  store_u32_le(buf, 0x01020304u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[1], 0x03);
  EXPECT_EQ(buf[2], 0x02);
  EXPECT_EQ(buf[3], 0x01);
  EXPECT_EQ(load_u32_le(buf), 0x01020304u);
  store_u32_le(buf, 0xFFFFFFFFu);
  EXPECT_EQ(load_u32_le(buf), 0xFFFFFFFFu);
  store_u32_le(buf, 0u);
  EXPECT_EQ(load_u32_le(buf), 0u);
}

TEST(Bytes, RemainingTracksPosition) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

// ---------- histogram --------------------------------------------------------

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.count(5), 1.0);
  EXPECT_DOUBLE_EQ(h.total_in_range(), 3.0);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1, 2.0);
  h.add(1.0, 3.0);  // hi edge is exclusive
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 2.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 4.0);
  EXPECT_DOUBLE_EQ(h.total(), 6.0);
  EXPECT_DOUBLE_EQ(h.total_in_range(), 0.0);
}

TEST(Histogram, WeightedMeanAndStddevAreExact) {
  Histogram h(0.0, 100.0, 1000);
  h.add(10.0, 1.0);
  h.add(20.0, 3.0);
  // mean = (10 + 60) / 4 = 17.5
  EXPECT_DOUBLE_EQ(h.mean(), 17.5);
  const double var = (1.0 * 10 * 10 + 3.0 * 20 * 20) / 4.0 - 17.5 * 17.5;
  EXPECT_NEAR(h.stddev(), std::sqrt(var), 1e-12);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(0.05 + 0.0999 * i * 1.0);
  const double median = h.quantile(0.5);
  EXPECT_GT(median, 3.5);
  EXPECT_LT(median, 6.5);
  EXPECT_LE(h.quantile(0.0), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(1.0));
}

TEST(Histogram, ModeFindsFullestBin) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(1.5, 5.0);
  h.add(2.5);
  EXPECT_DOUBLE_EQ(h.mode(), 1.5);
}

TEST(Histogram, MergeAccumulates) {
  Histogram a(0.0, 1.0, 10);
  Histogram b(0.0, 1.0, 10);
  a.add(0.25);
  b.add(0.25, 2.0);
  b.add(-1.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.count(2), 3.0);
  EXPECT_DOUBLE_EQ(a.underflow(), 1.0);
}

TEST(Histogram, MergeRejectsMismatchedBinning) {
  Histogram a(0.0, 1.0, 10);
  Histogram b(0.0, 1.0, 20);
  Histogram c(0.0, 2.0, 10);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(Histogram, SerializeRoundTrip) {
  Histogram h(0.0, 50.0, 25);
  h.add(1.0, 0.5);
  h.add(20.0, 2.0);
  h.add(-4.0);
  h.add(60.0);
  ByteWriter w;
  h.serialize(w);
  ByteReader r(w.bytes());
  Histogram back = Histogram::deserialize(r);
  EXPECT_EQ(back.bin_count(), h.bin_count());
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    EXPECT_DOUBLE_EQ(back.count(i), h.count(i));
  }
  EXPECT_DOUBLE_EQ(back.mean(), h.mean());
  EXPECT_DOUBLE_EQ(back.underflow(), h.underflow());
  EXPECT_DOUBLE_EQ(back.overflow(), h.overflow());
}

TEST(Histogram, BinEdgesAreConsistent) {
  Histogram h(2.0, 12.0, 5);
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    EXPECT_DOUBLE_EQ(h.bin_hi(i) - h.bin_lo(i), 2.0);
    EXPECT_DOUBLE_EQ(h.bin_center(i), h.bin_lo(i) + 1.0);
  }
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 12.0);
}

// ---------- cli --------------------------------------------------------------

TEST(Cli, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--alpha", "3", "--beta=hello", "pos1",
                        "--flag"};
  CliArgs args(6, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get("beta", ""), "hello");
  EXPECT_TRUE(args.get_flag("flag"));
  EXPECT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, OptionGreedilyConsumesNextToken) {
  // Documented ambiguity: `--key token` binds token as the value, so a
  // bare flag before a positional must use `--flag=true` instead.
  const char* argv[] = {"prog", "--flag", "pos"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get("flag", ""), "pos");
  EXPECT_TRUE(args.positional().empty());
}

TEST(Cli, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(args.get_flag("missing"));
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, MalformedNumbersFallBack) {
  const char* argv[] = {"prog", "--n", "abc"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("n", 9), 9);
  EXPECT_DOUBLE_EQ(args.get_double("n", 1.5), 1.5);
}

TEST(Cli, ExplicitFalseFlagValues) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=no", "--d=yes"};
  CliArgs args(5, argv);
  EXPECT_FALSE(args.get_flag("a"));
  EXPECT_FALSE(args.get_flag("b"));
  EXPECT_FALSE(args.get_flag("c"));
  EXPECT_TRUE(args.get_flag("d"));
}

TEST(Cli, DoubleParsing) {
  const char* argv[] = {"prog", "--x", "2.75", "--y=-1e3"};
  CliArgs args(4, argv);
  EXPECT_DOUBLE_EQ(args.get_double("x", 0), 2.75);
  EXPECT_DOUBLE_EQ(args.get_double("y", 0), -1000.0);
}

// ---------- csv --------------------------------------------------------------

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/phodis_test_csv1.csv";
  {
    CsvWriter csv(path);
    csv.header({"a", "b"});
    csv.row({"1", "2"});
    csv.row({1.5, 2.5});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2.5");
  std::remove(path.c_str());
}

TEST(Csv, EnforcesProtocol) {
  const std::string path = "/tmp/phodis_test_csv2.csv";
  CsvWriter csv(path);
  EXPECT_THROW(csv.row({"no header yet"}), std::logic_error);
  csv.header({"x"});
  EXPECT_THROW(csv.header({"again"}), std::logic_error);
  EXPECT_THROW(csv.row({"1", "2"}), std::logic_error);
  std::remove(path.c_str());
}

TEST(Csv, EscapesSpecialCells) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, FormatDoubleTrimsNoise) {
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(0.25), "0.25");
  EXPECT_EQ(format_double(1e9, 3), "1e+09");
}

TEST(Csv, OpenFailureThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"),
               std::runtime_error);
}

// ---------- table ------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, PadsShortRowsRejectsLong) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only one"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_THROW(t.add_row({"1", "2", "3", "4"}), std::logic_error);
}

TEST(Table, NumericRows) {
  TextTable t({"x", "y"});
  t.add_row_numeric({1.5, 2.25});
  EXPECT_NE(t.to_string().find("2.25"), std::string::npos);
}

// ---------- vec3 -------------------------------------------------------------

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_EQ(2.0 * a, (Vec3{2, 4, 6}));
  EXPECT_EQ(-a, (Vec3{-1, -2, -3}));
}

TEST(Vec3, DotCrossNorm) {
  const Vec3 x{1, 0, 0};
  const Vec3 y{0, 1, 0};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  EXPECT_EQ(x.cross(y), (Vec3{0, 0, 1}));
  EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}).norm2(), 25.0);
}

TEST(Vec3, NormalizedHandlesZero) {
  EXPECT_NEAR((Vec3{10, 0, 0}).normalized().norm(), 1.0, 1e-15);
  // Zero vector normalizes to the +z convention rather than NaN.
  EXPECT_EQ((Vec3{0, 0, 0}).normalized(), (Vec3{0, 0, 1}));
}

TEST(Vec3, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0, 0}, {0, 3, 4}), 5.0);
}

// ---------- log --------------------------------------------------------------

TEST(Log, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("Error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kInfo);
}

TEST(Log, LevelIsGlobalAndRestorable) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

}  // namespace
}  // namespace phodis::util
