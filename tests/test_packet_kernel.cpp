// Packet-mode (KernelMode::kPacket) test suite:
//
//  * vmath accuracy: the documented ulp/absolute error bounds of vlog and
//    vsincos_2pi, measured against libm / long-double references;
//  * packet golden hashes: packet mode pins its OWN tally bytes (it is
//    deliberately not bitwise-equal to scalar), reproducible serially and
//    through the shard plan at every thread count;
//  * lane-compaction edge cases: streams smaller than the packet width,
//    heavy-absorption lane churn, roulette in packet mode;
//  * statistical equivalence: packet and scalar runs of the same
//    configuration agree on the global energy balance within k·sigma
//    (and the checker itself detects genuinely different physics).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/spec.hpp"
#include "exec/parallel.hpp"
#include "exec/threadpool.hpp"
#include "mc/kernel.hpp"
#include "mc/packet_kernel.hpp"
#include "mc/presets.hpp"
#include "mc/vmath.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace {

using namespace phodis;

// --- vmath accuracy ---------------------------------------------------------

double ulp_distance(double reference, double value) {
  if (reference == value) return 0.0;
  const double ulp = std::abs(
      std::nextafter(reference, std::numeric_limits<double>::infinity()) -
      reference);
  return std::abs(reference - value) / ulp;
}

TEST(Vmath, VlogMatchesStdLogWithinFourUlp) {
  util::Xoshiro256pp rng(7);
  double max_ulp = 0.0;
  constexpr std::size_t kBatch = 64;
  double x[kBatch];
  double out[kBatch];
  for (int rep = 0; rep < 2000; ++rep) {
    for (std::size_t i = 0; i < kBatch; ++i) x[i] = rng.uniform_open0();
    // Include the domain edges and tiny draws in the first batch.
    if (rep == 0) {
      x[0] = 1.0;
      x[1] = 0x1.0p-53;  // smallest uniform_open0() draw
      x[2] = 0.5;
      x[3] = std::nextafter(1.0, 0.0);
    }
    mc::vlog(x, out, kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      max_ulp = std::max(max_ulp, ulp_distance(std::log(x[i]), out[i]));
    }
  }
  EXPECT_LE(max_ulp, 4.0);
}

TEST(Vmath, SincosMatchesLongDoubleWithinTwoPowMinus50) {
  util::Xoshiro256pp rng(11);
  const long double two_pi_l = 2.0L * 3.14159265358979323846264338327950288L;
  double max_err = 0.0;
  constexpr std::size_t kBatch = 64;
  double u[kBatch];
  double s[kBatch];
  double c[kBatch];
  for (int rep = 0; rep < 2000; ++rep) {
    for (std::size_t i = 0; i < kBatch; ++i) u[i] = rng.uniform();
    if (rep == 0) {
      // Quadrant boundaries and their neighbourhoods.
      u[0] = 0.0;
      u[1] = 0.25;
      u[2] = 0.5;
      u[3] = 0.75;
      u[4] = 0.125;
      u[5] = std::nextafter(1.0, 0.0);
      u[6] = std::nextafter(0.25, 0.0);
      u[7] = std::nextafter(0.25, 1.0);
    }
    mc::vsincos_2pi(u, s, c, kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      const long double a = two_pi_l * static_cast<long double>(u[i]);
      max_err = std::max(
          max_err, std::abs(static_cast<double>(
                       static_cast<long double>(s[i]) - std::sin(a))));
      max_err = std::max(
          max_err, std::abs(static_cast<double>(
                       static_cast<long double>(c[i]) - std::cos(a))));
    }
  }
  EXPECT_LE(max_err, 0x1.0p-50);
  // And the pair is a unit vector to the same tolerance class.
  for (std::size_t i = 0; i < kBatch; ++i) {
    EXPECT_NEAR(s[i] * s[i] + c[i] * c[i], 1.0, 1e-14);
  }
}

// --- harness ---------------------------------------------------------------

std::uint64_t fnv1a64(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

mc::SimulationTally run_tally(const mc::KernelConfig& config,
                              std::uint64_t photons, std::uint64_t seed) {
  const mc::Kernel kernel(config);
  mc::SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(seed);
  kernel.run(photons, rng, tally);
  return tally;
}

std::uint64_t run_hash(const mc::KernelConfig& config, std::uint64_t photons,
                       std::uint64_t seed = 42) {
  return fnv1a64(run_tally(config, photons, seed).to_bytes());
}

mc::KernelConfig two_layer_packet() {
  mc::KernelConfig config;
  config.medium = mc::two_layer_model();
  config.mode = mc::KernelMode::kPacket;
  return config;
}

// --- packet golden hashes ---------------------------------------------------
//
// Packet mode's own bitwise pin: the SoA loop, the vmath polynomials, the
// fixed three-draw schedule and the long_jump lane sub-streams together
// make these reproducible on any machine, any thread count, any build
// type in the matrix (the scoped -O3/-mavx2/-ffp-contract=off flags on
// the packet TUs are part of this contract). A hash change here means the
// packet physics stream changed and must be an intentional re-record.

TEST(PacketGolden, TwoLayer) {
  EXPECT_EQ(run_hash(two_layer_packet(), 10'000), 0x780496D06EEC2F2FULL);
}

TEST(PacketGolden, TwoLayerRadialAndDetector) {
  mc::KernelConfig config = two_layer_packet();
  config.tally.enable_radial = true;
  config.detector = mc::DetectorSpec{};
  EXPECT_EQ(run_hash(config, 5'000), 0x8293DD6AB5EBB754ULL);
}

TEST(PacketGolden, TwoLayerFluenceGrid) {
  mc::KernelConfig config = two_layer_packet();
  config.tally.enable_fluence_grid = true;
  config.tally.fluence_spec = mc::GridSpec::cube(40, 20.0, 40.0);
  EXPECT_EQ(run_hash(config, 5'000), 0x75AA1374DE50ED77ULL);
}

TEST(PacketGolden, HeadModel) {
  mc::KernelConfig config;
  config.medium = mc::adult_head_model();
  config.mode = mc::KernelMode::kPacket;
  EXPECT_EQ(run_hash(config, 2'000), 0x0848D6DF2D28B50FULL);
}

TEST(PacketGolden, WhiteMatterDivergingGaussianSource) {
  mc::KernelConfig config;
  config.medium = mc::homogeneous_white_matter();
  config.mode = mc::KernelMode::kPacket;
  config.source.type = mc::SourceType::kGaussian;
  config.source.radius_mm = 1.0;
  config.source.half_angle_deg = 15.0;
  EXPECT_EQ(run_hash(config, 5'000), 0x35B4B19AF2EC90EBULL);
}

TEST(PacketGolden, RunIsSelfReproducible) {
  const mc::KernelConfig config = two_layer_packet();
  EXPECT_EQ(run_tally(config, 4'000, 9).to_bytes(),
            run_tally(config, 4'000, 9).to_bytes());
}

TEST(PacketGolden, ShardPlanMatchesRecordedHashAtEveryThreadCount) {
  const mc::Kernel kernel(two_layer_packet());

  const exec::ParallelKernelRunner serial_runner(kernel, nullptr, 4096);
  const std::vector<std::uint8_t> serial_bytes =
      serial_runner.run(10'000, 42, 0).to_bytes();
  EXPECT_EQ(fnv1a64(serial_bytes), 0x711A72E8CE11073FULL);

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    exec::ThreadPool pool(threads);
    const exec::ParallelKernelRunner runner(kernel, &pool, 4096);
    EXPECT_EQ(runner.run(10'000, 42, 0).to_bytes(), serial_bytes)
        << "thread count " << threads;
  }
}

// --- lane-compaction edge cases --------------------------------------------

TEST(PacketKernel, StreamSmallerThanPacketWidth) {
  for (const std::uint64_t photons : {1ull, 3ull, 7ull}) {
    ASSERT_LT(photons, mc::kPacketWidth);
    const mc::SimulationTally tally =
        run_tally(two_layer_packet(), photons, 5);
    EXPECT_EQ(tally.photons_launched(), photons);
    EXPECT_LT(tally.weight_conservation_error(), 1e-9);
  }
}

TEST(PacketKernel, ZeroPhotonsIsANoOp) {
  const mc::SimulationTally tally = run_tally(two_layer_packet(), 0, 5);
  EXPECT_EQ(tally.photons_launched(), 0u);
}

TEST(PacketKernel, HeavyAbsorptionChurnsLanesThroughRefill) {
  // Nearly pure absorbers die in one or two events, so every lane cycles
  // through many refills (including whole packets dying in the same
  // iteration). The stream must still account for every photon exactly.
  mc::KernelConfig config;
  mc::LayeredMediumBuilder builder;
  builder.add_semi_infinite_layer(
      "absorber", mc::OpticalProperties{/*mua=*/50.0, /*mus=*/0.5,
                                        /*g=*/0.0, /*n=*/1.4});
  config.medium = builder.build();
  config.mode = mc::KernelMode::kPacket;
  const mc::SimulationTally tally = run_tally(config, 1'000, 21);
  EXPECT_EQ(tally.photons_launched(), 1'000u);
  EXPECT_LT(tally.weight_conservation_error(), 1e-9);
  EXPECT_GT(tally.absorbed_fraction(), 0.8);
}

TEST(PacketKernel, RouletteSurvivorsAndTerminationsBalance) {
  // A scattering-dominated slab pushes most packets down to the roulette
  // threshold; conservation holds only if the packet loop plays roulette
  // (and refills terminated lanes) correctly.
  const mc::SimulationTally tally = run_tally(two_layer_packet(), 4'000, 17);
  EXPECT_EQ(tally.photons_launched(), 4'000u);
  EXPECT_LT(tally.weight_conservation_error(), 1e-9);
  // The fraction sum differs from 1 by exactly the net roulette
  // gain-minus-loss, which fluctuates a few parts in 1e6 per run (only
  // its expectation is zero); the conservation identity above is the
  // exact check.
  const double total = tally.specular_reflectance() +
                       tally.diffuse_reflectance() + tally.transmittance() +
                       tally.absorbed_fraction() + tally.lost_fraction();
  EXPECT_NEAR(total, 1.0, 1e-3);
}

// --- configuration gate -----------------------------------------------------

TEST(PacketKernel, ValidateRejectsUnsupportedConfigurations) {
  {
    mc::KernelConfig config = two_layer_packet();
    config.boundary_model = mc::BoundaryModel::kClassical;
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
  {
    mc::KernelConfig config = two_layer_packet();
    config.tally.enable_path_grid = true;
    config.tally.path_spec = mc::GridSpec::cube(10, 10.0, 10.0);
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
  {
    mc::KernelConfig config;
    mc::LayeredMediumBuilder builder;
    builder.add_layer("vacuum",
                      mc::OpticalProperties{0.0, 0.0, 0.0, 1.0}, 5.0);
    builder.add_semi_infinite_layer(
        "tissue", mc::OpticalProperties{0.02, 10.0, 0.9, 1.4});
    config.medium = builder.build();
    config.mode = mc::KernelMode::kPacket;
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
}

TEST(PacketKernel, ParseAndToStringRoundTrip) {
  EXPECT_EQ(mc::parse_kernel_mode("scalar"), mc::KernelMode::kScalar);
  EXPECT_EQ(mc::parse_kernel_mode("packet"), mc::KernelMode::kPacket);
  EXPECT_EQ(mc::parse_kernel_mode("SIMD"), mc::KernelMode::kPacket);
  EXPECT_THROW(mc::parse_kernel_mode("vector"), std::invalid_argument);
  EXPECT_EQ(mc::to_string(mc::KernelMode::kScalar), "scalar");
  EXPECT_EQ(mc::to_string(mc::KernelMode::kPacket), "packet");
}

TEST(PacketKernel, SpecRoundTripCarriesKernelMode) {
  core::SimulationSpec spec;
  spec.kernel = two_layer_packet();
  spec.photons = 123;
  spec.seed = 7;
  util::ByteWriter writer;
  spec.serialize(writer);
  const std::vector<std::uint8_t> bytes = writer.take();
  util::ByteReader reader(bytes);
  const core::SimulationSpec decoded = core::SimulationSpec::deserialize(reader);
  EXPECT_EQ(decoded.kernel.mode, mc::KernelMode::kPacket);
}

// --- statistical equivalence vs the scalar oracle ---------------------------

void expect_equivalent(const mc::KernelConfig& scalar_config,
                       std::uint64_t scalar_photons,
                       std::uint64_t packet_photons) {
  mc::KernelConfig packet_config = scalar_config;
  packet_config.mode = mc::KernelMode::kPacket;
  const mc::SimulationTally reference =
      run_tally(scalar_config, scalar_photons, 42);
  const mc::SimulationTally candidate =
      run_tally(packet_config, packet_photons, 43);
  const mc::StatEquivalence eq =
      mc::statistical_equivalence(reference, candidate);
  EXPECT_TRUE(eq.pass) << eq.summary();
}

TEST(PacketStat, TwoLayerWithRadialAndDetectorMatchesScalar) {
  mc::KernelConfig config;
  config.medium = mc::two_layer_model();
  config.tally.enable_radial = true;
  mc::DetectorSpec detector;
  detector.separation_mm = 10.0;
  detector.radius_mm = 3.0;
  config.detector = detector;
  expect_equivalent(config, 20'000, 20'000);
}

TEST(PacketStat, HeadModelMatchesScalar) {
  mc::KernelConfig config;
  config.medium = mc::adult_head_model();
  expect_equivalent(config, 10'000, 10'000);
}

TEST(PacketStat, DivergingGaussianSourceMatchesScalar) {
  mc::KernelConfig config;
  config.medium = mc::homogeneous_white_matter();
  config.source.type = mc::SourceType::kGaussian;
  config.source.radius_mm = 1.0;
  config.source.half_angle_deg = 15.0;
  expect_equivalent(config, 10'000, 10'000);
}

TEST(PacketStat, CheckerFlagsGenuinelyDifferentPhysics) {
  // Negative control: the equivalence criterion must not be vacuous.
  mc::KernelConfig two_layer;
  two_layer.medium = mc::two_layer_model();
  mc::KernelConfig head;
  head.medium = mc::adult_head_model();
  head.mode = mc::KernelMode::kPacket;
  const mc::StatEquivalence eq = mc::statistical_equivalence(
      run_tally(two_layer, 10'000, 42), run_tally(head, 10'000, 43));
  EXPECT_FALSE(eq.pass);
}

TEST(PacketStat, ScalarAgainstItselfPasses) {
  // Positive control at a different seed: pure Monte Carlo noise stays
  // far inside the gate.
  mc::KernelConfig config;
  config.medium = mc::two_layer_model();
  const mc::StatEquivalence eq = mc::statistical_equivalence(
      run_tally(config, 10'000, 1), run_tally(config, 10'000, 2));
  EXPECT_TRUE(eq.pass) << eq.summary();
  EXPECT_LT(eq.max_z, mc::kDefaultStatSigma);
}

}  // namespace
