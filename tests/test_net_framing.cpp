// Robustness tests of the socket framing layer over a real socketpair:
// torn frames, partial reads, mid-frame disconnects, and hostile length
// prefixes must all surface as exceptions or clean EOF — never a hang,
// never a bad frame delivered.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cstring>
#include <thread>

#include "dist/message.hpp"
#include "net/address.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"

namespace phodis::net {
namespace {

/// A connected AF_UNIX stream pair.
std::pair<Socket, Socket> make_socketpair() {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {Socket(fds[0]), Socket(fds[1])};
}

std::vector<std::uint8_t> pattern_bytes(std::size_t count) {
  std::vector<std::uint8_t> bytes(count);
  for (std::size_t i = 0; i < count; ++i) {
    bytes[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  return bytes;
}

TEST(Framing, RoundTripsFramesInOrder) {
  auto [writer, reader] = make_socketpair();
  const std::vector<std::vector<std::uint8_t>> frames = {
      pattern_bytes(1), pattern_bytes(100), {}, pattern_bytes(4096)};
  for (const auto& frame : frames) {
    ASSERT_TRUE(write_frame(writer, frame));
  }
  writer.close();
  for (const auto& expected : frames) {
    const auto got = read_frame(reader);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, expected);
  }
  EXPECT_FALSE(read_frame(reader).has_value());  // clean EOF at boundary
}

// The length prefix is little-endian *by definition of the protocol*, not
// by the host's layout: pin the exact on-wire bytes so the format can
// never silently follow the architecture.
TEST(Framing, LengthPrefixIsLittleEndianOnTheWire) {
  auto [writer, reader] = make_socketpair();
  ASSERT_TRUE(write_frame(writer, pattern_bytes(0x0102)));
  std::uint8_t prefix[4] = {};
  ASSERT_EQ(reader.recv_upto(prefix, sizeof prefix), sizeof prefix);
  EXPECT_EQ(prefix[0], 0x02);  // least-significant byte first
  EXPECT_EQ(prefix[1], 0x01);
  EXPECT_EQ(prefix[2], 0x00);
  EXPECT_EQ(prefix[3], 0x00);
  std::vector<std::uint8_t> body(0x0102);
  ASSERT_EQ(reader.recv_upto(body.data(), body.size()), body.size());
  EXPECT_EQ(body, pattern_bytes(0x0102));
}

TEST(Framing, LargeFrameRoundTripsAcrossAThread) {
  // Bigger than any socket buffer, so both sides must loop over partial
  // transfers to make progress.
  auto [writer, reader] = make_socketpair();
  const std::vector<std::uint8_t> big = pattern_bytes(1 << 22);  // 4 MiB
  std::thread sender(
      [&writer, &big] { EXPECT_TRUE(write_frame(writer, big)); });
  const auto got = read_frame(reader);
  sender.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, big);
}

TEST(Framing, MessageCodecSurvivesTheWire) {
  auto [writer, reader] = make_socketpair();
  dist::Message msg;
  msg.type = dist::MessageType::kAssignTask;
  msg.task_id = 42;
  msg.sender = "server";
  msg.payload = pattern_bytes(333);
  ASSERT_TRUE(write_frame(writer, msg.encode()));
  const auto frame = read_frame(reader);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(dist::Message::decode(*frame), msg);
}

TEST(Framing, ByteByByteDeliveryReassembles) {
  // A slow sender dribbling one byte at a time exercises every partial-
  // read path in recv_upto.
  auto [writer, reader] = make_socketpair();
  dist::Message msg;
  msg.type = dist::MessageType::kTaskResult;
  msg.task_id = 7;
  msg.sender = "w1";
  msg.payload = pattern_bytes(64);
  const std::vector<std::uint8_t> body = msg.encode();
  std::thread sender([&writer, &body] {
    const auto length = static_cast<std::uint32_t>(body.size());
    std::uint8_t prefix[sizeof length];
    std::memcpy(prefix, &length, sizeof length);
    for (std::uint8_t byte : prefix) {
      ASSERT_TRUE(writer.send_all(&byte, 1));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    for (std::uint8_t byte : body) {
      ASSERT_TRUE(writer.send_all(&byte, 1));
    }
  });
  const auto frame = read_frame(reader);
  sender.join();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(dist::Message::decode(*frame), msg);
}

TEST(Framing, EofInsideLengthPrefixThrows) {
  auto [writer, reader] = make_socketpair();
  const std::uint8_t torn[2] = {0x10, 0x00};
  ASSERT_TRUE(writer.send_all(torn, sizeof torn));
  writer.close();
  EXPECT_THROW(read_frame(reader), FramingError);
}

TEST(Framing, EofInsideBodyThrows) {
  auto [writer, reader] = make_socketpair();
  const std::uint32_t claimed = 100;
  std::uint8_t prefix[sizeof claimed];
  std::memcpy(prefix, &claimed, sizeof claimed);
  ASSERT_TRUE(writer.send_all(prefix, sizeof prefix));
  const auto partial = pattern_bytes(10);  // 10 of the claimed 100 bytes
  ASSERT_TRUE(writer.send_all(partial.data(), partial.size()));
  writer.close();
  EXPECT_THROW(read_frame(reader), FramingError);
}

TEST(Framing, MidFrameShutdownThrowsInsteadOfHanging) {
  // The peer is not closed, just shut down mid-frame from another
  // thread — the blocked reader must surface a torn frame, not hang.
  auto [writer, reader] = make_socketpair();
  const std::uint32_t claimed = 1000;
  std::uint8_t prefix[sizeof claimed];
  std::memcpy(prefix, &claimed, sizeof claimed);
  ASSERT_TRUE(writer.send_all(prefix, sizeof prefix));
  std::thread breaker([&writer] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    writer.shutdown_both();
  });
  EXPECT_THROW(read_frame(reader), FramingError);
  breaker.join();
}

TEST(Framing, OversizeLengthPrefixThrowsWithoutAllocating) {
  auto [writer, reader] = make_socketpair();
  const std::uint32_t hostile = 0xFFFFFFFFu;
  std::uint8_t prefix[sizeof hostile];
  std::memcpy(prefix, &hostile, sizeof hostile);
  ASSERT_TRUE(writer.send_all(prefix, sizeof prefix));
  EXPECT_THROW(read_frame(reader), FramingError);
}

TEST(Framing, GarbageBodyFailsAtDecodeNotAtFraming) {
  // Framing is payload-agnostic: a well-framed garbage body arrives
  // intact and the *message* codec rejects it.
  auto [writer, reader] = make_socketpair();
  ASSERT_TRUE(write_frame(writer, {0xFF, 0x00, 0x01}));
  const auto frame = read_frame(reader);
  ASSERT_TRUE(frame.has_value());
  EXPECT_THROW(dist::Message::decode(*frame), std::invalid_argument);
}

TEST(Address, ParsesAndRoundTrips) {
  const Address tcp = Address::parse("tcp:127.0.0.1:4070");
  EXPECT_EQ(tcp.kind, Address::Kind::kTcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 4070);
  EXPECT_EQ(Address::parse(tcp.to_string()), tcp);

  const Address uds = Address::parse("unix:/tmp/phodis.sock");
  EXPECT_EQ(uds.kind, Address::Kind::kUnix);
  EXPECT_EQ(uds.path, "/tmp/phodis.sock");
  EXPECT_EQ(Address::parse(uds.to_string()), uds);
}

TEST(Address, RejectsMalformedSpecs) {
  EXPECT_THROW(Address::parse("tcp:127.0.0.1"), std::invalid_argument);
  EXPECT_THROW(Address::parse("tcp::4070"), std::invalid_argument);
  EXPECT_THROW(Address::parse("tcp:host:notaport"), std::invalid_argument);
  EXPECT_THROW(Address::parse("tcp:host:99999"), std::invalid_argument);
  EXPECT_THROW(Address::parse("unix:"), std::invalid_argument);
  EXPECT_THROW(Address::parse("udp:1.2.3.4:1"), std::invalid_argument);
  EXPECT_THROW(Address::parse(""), std::invalid_argument);
}

TEST(Listener, EphemeralTcpPortIsResolved) {
  Listener listener = Listener::listen(Address::tcp("127.0.0.1", 0));
  EXPECT_GT(listener.local_address().port, 0);
  EXPECT_FALSE(listener.accept(1).has_value());  // nobody connecting
}

}  // namespace
}  // namespace phodis::net
