// Physics validation of the Monte Carlo kernel against independent
// references:
//  * the exact Chandrasekhar H-function solution for isotropic scattering
//    in a matched semi-infinite medium (computed here from the nonlinear
//    H-equation, not hard-coded from memory),
//  * Giovanelli's classical value for a mismatched boundary (n = 1.5),
//  * diffusion theory in its domain of validity,
//  * cross-implementation regression anchors.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/diffusion.hpp"
#include "mc/kernel.hpp"
#include "mc/presets.hpp"

namespace phodis::mc {
namespace {

/// Solve Chandrasekhar's H-equation for single-scattering albedo `a` and
/// return the reflectance of a semi-infinite isotropically scattering
/// half-space for a normally incident pencil beam:
///   R(mu0 = 1) = 1 - sqrt(1 - a) * H(1).
double chandrasekhar_normal_reflectance(double a) {
  constexpr int kNodes = 800;
  std::vector<double> mu(kNodes);
  std::vector<double> h(kNodes, 1.0);
  std::vector<double> h_next(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    mu[i] = (i + 0.5) / kNodes;
  }
  const double sqrt_term = std::sqrt(1.0 - a);
  for (int iter = 0; iter < 4000; ++iter) {
    double max_diff = 0.0;
    for (int i = 0; i < kNodes; ++i) {
      double integral = 0.0;
      for (int j = 0; j < kNodes; ++j) {
        integral += mu[j] * h[j] / (mu[i] + mu[j]);
      }
      integral /= kNodes;
      h_next[i] = 1.0 / (sqrt_term + 0.5 * a * integral);
      max_diff = std::max(max_diff, std::abs(h_next[i] - h[i]));
    }
    h.swap(h_next);
    if (max_diff < 1e-12) break;
  }
  // Extrapolate H to mu = 1 from the last two nodes.
  const double h1 = h[kNodes - 1] + 0.5 * (h[kNodes - 1] - h[kNodes - 2]);
  return 1.0 - sqrt_term * h1;
}

double run_semi_infinite_rd(const OpticalProperties& props,
                            std::uint64_t photons, std::uint64_t seed,
                            bool total_including_specular = false) {
  KernelConfig config;
  config.medium = homogeneous_semi_infinite(props, 1.0);
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(seed);
  kernel.run(photons, rng, tally);
  double rd = tally.diffuse_reflectance();
  if (total_including_specular) rd += tally.specular_reflectance();
  return rd;
}

// ---------- exact transport references ---------------------------------------

class ChandrasekharSweep : public ::testing::TestWithParam<double> {};

TEST_P(ChandrasekharSweep, IsotropicSemiInfiniteMatchesExactSolution) {
  const double albedo = GetParam();
  // Choose mua + mus = 10/mm with the requested albedo.
  OpticalProperties p;
  p.mus = 10.0 * albedo;
  p.mua = 10.0 * (1.0 - albedo);
  p.g = 0.0;
  p.n = 1.0;
  const double exact = chandrasekhar_normal_reflectance(albedo);
  const double mc = run_semi_infinite_rd(p, 300000, 42);
  // 300k photons: statistical sigma ~9e-4; allow 4 sigma plus H-function
  // discretisation (~5e-4).
  EXPECT_NEAR(mc, exact, 4.5e-3) << "albedo=" << albedo;
}

INSTANTIATE_TEST_SUITE_P(Albedos, ChandrasekharSweep,
                         ::testing::Values(0.5, 0.8, 0.9, 0.99));

TEST(Validation, GiovanelliMismatchedBoundary) {
  // Giovanelli (1955): isotropic scattering, albedo 0.9, refractive index
  // 1.5 against air, normal incidence: total reflectance 0.2600.
  OpticalProperties p;
  p.mua = 1.0;
  p.mus = 9.0;
  p.g = 0.0;
  p.n = 1.5;
  const double mc = run_semi_infinite_rd(p, 400000, 43, true);
  EXPECT_NEAR(mc, 0.2600, 6e-3);
}

TEST(Validation, AnisotropyInvarianceOfSimilarity) {
  // Two media with identical (mua, mus') but different g produce similar
  // diffuse reflectance in the diffusive regime (similarity relation).
  OpticalProperties iso;
  iso.mua = 0.014;
  iso.mus = 9.1;  // mus' = 9.1 with g = 0
  iso.g = 0.0;
  iso.n = 1.0;
  OpticalProperties aniso;
  aniso.mua = 0.014;
  aniso.g = 0.9;
  aniso.mus = 9.1 / (1.0 - 0.9);
  aniso.n = 1.0;
  const double rd_iso = run_semi_infinite_rd(iso, 120000, 44);
  const double rd_aniso = run_semi_infinite_rd(aniso, 120000, 45);
  EXPECT_NEAR(rd_iso, rd_aniso, 0.02);
  // Both should be high: albedo' = 9.1/9.114 ~ 0.9985.
  EXPECT_GT(rd_iso, 0.8);
}

TEST(Validation, RegressionAnchorHg075) {
  // Cross-implementation anchor: an independent minimal MCML-style
  // implementation of the same physics gives Rd = 0.1648 +/- 0.001 for
  // mua=1/mm, mus=9/mm, g=0.75, matched semi-infinite. Guards against
  // silent kernel regressions (value agreed by two codebases).
  OpticalProperties p;
  p.mua = 1.0;
  p.mus = 9.0;
  p.g = 0.75;
  p.n = 1.0;
  const double mc = run_semi_infinite_rd(p, 400000, 46);
  EXPECT_NEAR(mc, 0.1648, 4e-3);
}

// ---------- diffusion-theory cross-checks ------------------------------------

TEST(Validation, MeanDetectedPathlengthMatchesDiffusionDpf) {
  // Diffusive medium with µs' = 1/mm, µa = 0.01/mm, matched boundary,
  // SD = 15 mm. (White matter itself attenuates so strongly at this
  // separation that detections would need the paper's 10^9 photons.)
  OpticalProperties p;
  p.mua = 0.01;
  p.g = 0.9;
  p.mus = 10.0;
  p.n = 1.0;

  KernelConfig config;
  config.medium = homogeneous_semi_infinite(p, 1.0);
  DetectorSpec detector;
  detector.separation_mm = 15.0;
  detector.radius_mm = 2.5;
  config.detector = detector;
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(47);
  kernel.run(300000, rng, tally);
  ASSERT_GT(tally.photons_detected(), 100u);

  const double mc_pathlength = tally.mean_detected_pathlength();
  const double theory =
      analysis::mean_pathlength_semi_infinite(p, detector.separation_mm);
  // Diffusion theory is an approximation; agree within 25%.
  EXPECT_NEAR(mc_pathlength / theory, 1.0, 0.25);
}

TEST(Validation, FluenceDecayFollowsEffectiveAttenuation) {
  // Deep fluence along the z axis decays ~ exp(-mueff z) for a diffusive
  // medium. Compare log-slope over a depth window against theory.
  OpticalProperties p;
  p.mua = 0.02;
  p.g = 0.9;
  p.mus = 10.0;
  p.n = 1.0;

  KernelConfig config;
  config.medium = homogeneous_semi_infinite(p, 1.0);
  config.tally.enable_fluence_grid = true;
  GridSpec grid;
  grid.x_min = -30.0;
  grid.x_max = 30.0;
  grid.y_min = -30.0;
  grid.y_max = 30.0;
  grid.z_min = 0.0;
  grid.z_max = 40.0;
  grid.nx = grid.ny = 30;
  grid.nz = 40;
  config.tally.fluence_spec = grid;

  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(48);
  kernel.run(200000, rng, tally);

  // Integrate each z-slab (planar fluence) and fit the decay between
  // z = 10 and z = 25 mm (beyond the source region, above noise).
  const VoxelGrid3D& fluence = *tally.fluence_grid();
  auto slab = [&](std::size_t iz) {
    double sum = 0.0;
    for (std::size_t iy = 0; iy < grid.ny; ++iy) {
      for (std::size_t ix = 0; ix < grid.nx; ++ix) {
        sum += fluence.at(ix, iy, iz);
      }
    }
    return sum;
  };
  const double z_lo = 10.5;
  const double z_hi = 24.5;
  const double f_lo = slab(10);  // z ~ 10.5 mm (1 mm slabs)
  const double f_hi = slab(24);  // z ~ 24.5 mm
  ASSERT_GT(f_hi, 0.0);
  const double slope = std::log(f_lo / f_hi) / (z_hi - z_lo);
  const double mueff = analysis::effective_attenuation(p);
  EXPECT_NEAR(slope / mueff, 1.0, 0.2);
}

TEST(Validation, PenetrationDepthOrderingAcrossTissues) {
  // mueff(white) > mueff(grey)?  white: mua=.014 mus'=9.1 -> mueff=0.618;
  // grey: mua=.036 mus'=2.2 -> mueff=0.491. Less-attenuating grey matter
  // lets photons reach deeper on average.
  auto mean_depth = [](const OpticalProperties& p, std::uint64_t seed) {
    KernelConfig config;
    config.medium = homogeneous_semi_infinite(p, 1.0);
    const Kernel kernel(config);
    SimulationTally tally = kernel.make_tally();
    util::Xoshiro256pp rng(seed);
    kernel.run(60000, rng, tally);
    return tally.depth_histogram().mean();
  };
  const OpticalProperties white =
      OpticalProperties::from_reduced(0.014, 9.1, 0.9, 1.0);
  const OpticalProperties grey =
      OpticalProperties::from_reduced(0.036, 2.2, 0.9, 1.0);
  EXPECT_GT(analysis::effective_attenuation(white),
            analysis::effective_attenuation(grey));
  EXPECT_GT(mean_depth(grey, 50), mean_depth(white, 51));
}

// ---------- slab energy partition ---------------------------------------------

class SlabThicknessSweep : public ::testing::TestWithParam<double> {};

TEST_P(SlabThicknessSweep, ThickerSlabsTransmitLess) {
  const double thickness = GetParam();
  OpticalProperties p;
  p.mua = 0.1;
  p.mus = 5.0;
  p.g = 0.8;
  p.n = 1.0;
  KernelConfig config;
  config.medium = homogeneous_slab(p, thickness, 1.0);
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(52);
  kernel.run(30000, rng, tally);
  // Store into a static map-ish check via recorded expectations:
  // instead assert physical bounds per-thickness.
  EXPECT_GT(tally.transmittance(), 0.0);
  EXPECT_LT(tally.transmittance(), 1.0);
  EXPECT_LT(tally.weight_conservation_error(), 1e-6 * 30000);
}

INSTANTIATE_TEST_SUITE_P(Thicknesses, SlabThicknessSweep,
                         ::testing::Values(1.0, 2.0, 5.0, 10.0));

TEST(Validation, TransmittanceMonotoneInThickness) {
  OpticalProperties p;
  p.mua = 0.1;
  p.mus = 5.0;
  p.g = 0.8;
  p.n = 1.0;
  double prev = 1.0;
  for (double thickness : {1.0, 2.0, 4.0, 8.0}) {
    KernelConfig config;
    config.medium = homogeneous_slab(p, thickness, 1.0);
    const Kernel kernel(config);
    SimulationTally tally = kernel.make_tally();
    util::Xoshiro256pp rng(53);
    kernel.run(30000, rng, tally);
    EXPECT_LT(tally.transmittance(), prev);
    prev = tally.transmittance();
  }
}

TEST(Validation, MismatchedBoundaryRaisesReflectanceAboveMatched) {
  // Internal reflection at an n=1.4 interface traps light, increasing
  // total reflected + absorbed fractions relative to the matched case.
  OpticalProperties matched;
  matched.mua = 0.05;
  matched.mus = 10.0;
  matched.g = 0.9;
  matched.n = 1.0;
  OpticalProperties mismatched = matched;
  mismatched.n = 1.4;
  const double rd_matched = run_semi_infinite_rd(matched, 80000, 54);
  KernelConfig config;
  config.medium = homogeneous_semi_infinite(mismatched, 1.0);
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(55);
  kernel.run(80000, rng, tally);
  // Escaping is harder, so diffuse reflectance drops but absorption rises;
  // the *absorbed* fraction must exceed the matched case.
  EXPECT_GT(tally.absorbed_fraction(), 1.0 - rd_matched - 0.05);
  EXPECT_LT(tally.diffuse_reflectance(), rd_matched);
}

}  // namespace
}  // namespace phodis::mc
