// obs subsystem: registry semantics, deterministic exposition, wire
// round-trip, cluster merge, the trace recorder — and the tier-1 schema
// checks for --metrics-json / --trace output (a minimal JSON parser below
// validates shape, not just substrings).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/kernel_counters.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace obs = phodis::obs;

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser, just enough to validate the emitted documents.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing JSON");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw std::runtime_error("truncated JSON");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }
  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }
  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      JsonValue key = string_value();
      expect(':');
      v.object.emplace_back(key.string, value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }
  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }
  JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.type = JsonValue::Type::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        switch (text_[pos_]) {
          case 'n':
            v.string += '\n';
            break;
          case 't':
            v.string += '\t';
            break;
          case 'u':
            pos_ += 4;  // keep validation simple: skip the code point
            v.string += '?';
            break;
          default:
            v.string += text_[pos_];
        }
      } else {
        v.string += text_[pos_];
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) throw std::runtime_error("unterminated string");
    ++pos_;  // closing quote
    return v;
  }
  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }
  JsonValue null() {
    if (text_.compare(pos_, 4, "null") != 0) {
      throw std::runtime_error("bad literal");
    }
    pos_ += 4;
    return JsonValue{};
  }
  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---------------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------------

TEST(ObsRegistry, CounterIncrementsAndSnapshots) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("frames_total", {{"side", "server"}});
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("frames_total", {{"side", "server"}}), 42u);
  EXPECT_EQ(snap.counter_value("frames_total", {{"side", "client"}}), 0u);
}

TEST(ObsRegistry, HandlesAreStableAndFindOrCreate) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x_total");
  obs::Counter& b = reg.counter("x_total");
  EXPECT_EQ(&a, &b);
}

TEST(ObsRegistry, LabelOrderDoesNotSplitInstances) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("t", {{"b", "2"}, {"a", "1"}});
  obs::Counter& b = reg.counter("t", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
}

TEST(ObsRegistry, DuplicateLabelKeyThrows) {
  obs::Registry reg;
  EXPECT_THROW(reg.counter("t", {{"a", "1"}, {"a", "2"}}),
               std::invalid_argument);
}

TEST(ObsRegistry, KindMismatchThrows) {
  obs::Registry reg;
  reg.counter("clash");
  EXPECT_THROW(reg.gauge("clash"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("clash", {1.0}), std::invalid_argument);
}

TEST(ObsRegistry, GaugeSetAndAdd) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("queue_depth");
  g.set(5.0);
  g.add(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(ObsRegistry, HistogramBucketsFollowLeConvention) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("lat", {0.1, 1.0, 10.0});
  h.observe(0.05);  // <= 0.1
  h.observe(0.1);   // <= 0.1 (le is inclusive)
  h.observe(0.5);   // <= 1.0
  h.observe(100.0); // +inf bucket
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.observations(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.05 + 0.1 + 0.5 + 100.0);
}

TEST(ObsRegistry, HistogramBoundsMustAscend) {
  obs::Registry reg;
  EXPECT_THROW(reg.histogram("bad", {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("bad2", {2.0, 1.0}), std::invalid_argument);
  reg.histogram("ok", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("ok", {1.0, 3.0}), std::invalid_argument);
}

TEST(ObsRegistry, ConcurrentIncrementsLoseNothing) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("contended_total");
  obs::Histogram& h =
      reg.histogram("contended_lat", obs::Histogram::latency_bounds_s());
  constexpr int kThreads = 8;
  constexpr int kOps = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kOps; ++i) {
        c.inc();
        h.observe(1e-4);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(h.observations(), static_cast<std::uint64_t>(kThreads) * kOps);
}

// ---------------------------------------------------------------------------
// Snapshot: determinism, wire round-trip, merge
// ---------------------------------------------------------------------------

TEST(ObsSnapshot, ExpositionIsDeterministicAcrossInsertionOrder) {
  obs::Registry a;
  a.counter("zeta_total").inc(1);
  a.counter("alpha_total", {{"k", "v"}}).inc(2);
  a.gauge("mid_gauge").set(3.5);

  obs::Registry b;
  b.gauge("mid_gauge").set(3.5);
  b.counter("alpha_total", {{"k", "v"}}).inc(2);
  b.counter("zeta_total").inc(1);

  EXPECT_EQ(a.snapshot().to_json(), b.snapshot().to_json());
  EXPECT_EQ(a.snapshot().encode(), b.snapshot().encode());
}

TEST(ObsSnapshot, EncodeDecodeRoundTrips) {
  obs::Registry reg;
  reg.counter("c_total", {{"side", "client"}}).inc(7);
  reg.gauge("g").set(-2.25);
  obs::Histogram& h = reg.histogram("h", {0.5, 5.0});
  h.observe(0.1);
  h.observe(50.0);

  const obs::Snapshot snap = reg.snapshot();
  const obs::Snapshot back = obs::Snapshot::decode(snap.encode());
  EXPECT_EQ(back.to_json(), snap.to_json());
  EXPECT_EQ(back.counter_value("c_total", {{"side", "client"}}), 7u);
}

TEST(ObsSnapshot, DecodeRejectsGarbage) {
  EXPECT_ANY_THROW(obs::Snapshot::decode({1, 2, 3}));
  std::vector<std::uint8_t> bytes = obs::Snapshot().encode();
  bytes.push_back(0);  // trailing byte
  EXPECT_ANY_THROW(obs::Snapshot::decode(bytes));
}

TEST(ObsSnapshot, MergeAddsCountersGaugesAndBuckets) {
  obs::Registry w1;
  w1.counter("tasks_total").inc(3);
  w1.histogram("lat", {1.0}).observe(0.5);

  obs::Registry w2;
  w2.counter("tasks_total").inc(4);
  w2.counter("only_w2_total").inc(9);
  w2.histogram("lat", {1.0}).observe(2.0);

  obs::Snapshot merged = w1.snapshot();
  merged.merge(w2.snapshot());
  EXPECT_EQ(merged.counter_value("tasks_total"), 7u);
  EXPECT_EQ(merged.counter_value("only_w2_total"), 9u);
  for (const obs::MetricSample& s : merged.samples) {
    if (s.name != "lat") continue;
    ASSERT_EQ(s.bucket_counts.size(), 2u);
    EXPECT_EQ(s.bucket_counts[0], 1u);  // 0.5
    EXPECT_EQ(s.bucket_counts[1], 1u);  // 2.0 -> +inf
    EXPECT_EQ(s.observations, 2u);
  }
}

TEST(ObsSnapshot, MergeRejectsKindAndBoundMismatches) {
  obs::Registry a;
  a.counter("m");
  obs::Registry b;
  b.gauge("m");
  obs::Snapshot snap = a.snapshot();
  EXPECT_THROW(snap.merge(b.snapshot()), std::invalid_argument);

  obs::Registry c;
  c.histogram("h", {1.0});
  obs::Registry d;
  d.histogram("h", {2.0});
  obs::Snapshot hsnap = c.snapshot();
  EXPECT_THROW(hsnap.merge(d.snapshot()), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Tier-1 schema validation: metrics JSON and trace-event JSON
// ---------------------------------------------------------------------------

TEST(ObsSchema, MetricsJsonShape) {
  obs::Registry reg;
  reg.counter("frames_total", {{"side", "server"}}).inc(5);
  reg.gauge("depth").set(2.0);
  reg.histogram("lat_seconds", obs::Histogram::latency_bounds_s())
      .observe(3e-4);

  const std::string path =
      testing::TempDir() + "phodis_test_metrics.json";
  obs::write_metrics_json(reg.snapshot(), path);
  const JsonValue doc = parse_json(read_file(path));
  std::remove(path.c_str());

  ASSERT_EQ(doc.type, JsonValue::Type::kObject);
  const JsonValue* version = doc.find("phodis_metrics_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->number, 1.0);
  const JsonValue* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->type, JsonValue::Type::kArray);
  ASSERT_EQ(metrics->array.size(), 3u);

  std::string previous_key;
  for (const JsonValue& m : metrics->array) {
    ASSERT_EQ(m.type, JsonValue::Type::kObject);
    const JsonValue* name = m.find("name");
    ASSERT_NE(name, nullptr);
    ASSERT_EQ(name->type, JsonValue::Type::kString);
    EXPECT_LT(previous_key, name->string);  // sorted exposition
    previous_key = name->string;
    const JsonValue* labels = m.find("labels");
    ASSERT_NE(labels, nullptr);
    ASSERT_EQ(labels->type, JsonValue::Type::kObject);
    const JsonValue* kind = m.find("kind");
    ASSERT_NE(kind, nullptr);
    if (kind->string == "histogram") {
      const JsonValue* bounds = m.find("bounds");
      const JsonValue* buckets = m.find("bucket_counts");
      ASSERT_NE(bounds, nullptr);
      ASSERT_NE(buckets, nullptr);
      EXPECT_EQ(buckets->array.size(), bounds->array.size() + 1);
      EXPECT_NE(m.find("observations"), nullptr);
      EXPECT_NE(m.find("sum"), nullptr);
    } else {
      ASSERT_NE(m.find("value"), nullptr);
    }
  }
}

TEST(ObsSchema, TraceJsonMatchesTraceEventFormat) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::global();
  recorder.enable();
  {
    obs::ScopedSpan span("unit_span", "test");
    span.arg("task_id", "7");
  }
  { obs::ScopedSpan span("second_span", "test"); }
  recorder.disable();
  ASSERT_EQ(recorder.event_count(), 2u);

  const std::string path = testing::TempDir() + "phodis_test_trace.json";
  recorder.write_json(path);
  const JsonValue doc = parse_json(read_file(path));
  std::remove(path.c_str());

  ASSERT_EQ(doc.type, JsonValue::Type::kObject);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::Type::kArray);
  ASSERT_EQ(events->array.size(), 2u);
  for (const JsonValue& e : events->array) {
    ASSERT_EQ(e.type, JsonValue::Type::kObject);
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->string, "X");  // complete events only
    for (const char* key : {"name", "cat", "ts", "dur", "pid", "tid"}) {
      ASSERT_NE(e.find(key), nullptr) << "missing " << key;
    }
    EXPECT_EQ(e.find("ts")->type, JsonValue::Type::kNumber);
    EXPECT_EQ(e.find("dur")->type, JsonValue::Type::kNumber);
    const JsonValue* args = e.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->type, JsonValue::Type::kObject);
  }
}

TEST(ObsTrace, DisabledRecorderCostsNothingAndRecordsNothing) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::global();
  recorder.disable();
  const std::size_t before = recorder.event_count();
  { obs::ScopedSpan span("ghost", "test"); }
  EXPECT_EQ(recorder.event_count(), before);
}

TEST(ObsTrace, EnableResetsEpochAndBuffer) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::global();
  recorder.enable();
  { obs::ScopedSpan span("a", "test"); }
  EXPECT_EQ(recorder.event_count(), 1u);
  recorder.enable();  // re-enable clears
  EXPECT_EQ(recorder.event_count(), 0u);
  recorder.disable();
}

// ---------------------------------------------------------------------------
// Kernel counters (compile-gated)
// ---------------------------------------------------------------------------

TEST(ObsKernelCounters, AppendMatchesCompileToggle) {
  obs::reset_kernel_counters();
  obs::Snapshot snap;
  obs::append_kernel_counters(snap);
  if (obs::kernel_counters_compiled()) {
    // photons / interactions / roulette counters, the packet loop's
    // lane-refill counter, and the packet-occupancy histogram.
    ASSERT_EQ(snap.samples.size(), 5u);
    EXPECT_EQ(snap.counter_value("mc_kernel_photons_launched_total"), 0u);
    EXPECT_EQ(snap.counter_value("mc_kernel_lane_refills_total"), 0u);
#if defined(PHODIS_OBS_KERNEL)
    obs::KernelCounters::global().photons_launched.fetch_add(
        12, std::memory_order_relaxed);
    obs::KernelCounters::global().lane_refills.fetch_add(
        7, std::memory_order_relaxed);
    obs::KernelCounters::global().packet_occupancy[8].fetch_add(
        3, std::memory_order_relaxed);
    obs::Snapshot after;
    obs::append_kernel_counters(after);
    EXPECT_EQ(after.counter_value("mc_kernel_photons_launched_total"), 12u);
    EXPECT_EQ(after.counter_value("mc_kernel_lane_refills_total"), 7u);
    const auto occ = std::find_if(
        after.samples.begin(), after.samples.end(), [](const auto& s) {
          return s.name == "mc_kernel_packet_occupancy";
        });
    ASSERT_NE(occ, after.samples.end());
    EXPECT_EQ(occ->observations, 3u);
    obs::reset_kernel_counters();
#endif
  } else {
    EXPECT_TRUE(snap.samples.empty());
  }
}

}  // namespace
