// Unit tests for the exec subsystem: ThreadPool (exception propagation,
// zero-work submit, reuse across runs, concurrent submitters) and the
// shard planning / sub-stream derivation underneath the parallel kernel
// runner.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/parallel.hpp"
#include "exec/threadpool.hpp"

namespace phodis::exec {
namespace {

// ---------- ThreadPool -------------------------------------------------------

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool pool(0), std::invalid_argument);
}

TEST(ThreadPool, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  std::vector<std::function<void()>> jobs;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    jobs.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.run(std::move(jobs));
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ZeroWorkSubmitReturnsImmediately) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.run({}));
  EXPECT_NO_THROW(pool.parallel_for(0, 1, [](std::size_t, std::size_t) {
    FAIL() << "body must not run for an empty range";
  }));
}

TEST(ThreadPool, ParallelForCoversTheRangeInChunks) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), 7,
                    [&hits](std::size_t begin, std::size_t end) {
                      EXPECT_LE(end - begin, 7u);
                      for (std::size_t i = begin; i < end; ++i) {
                        hits[i].fetch_add(1);
                      }
                    });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForAutoGrain) {
  ThreadPool pool(2);
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(100, 0, [&covered](std::size_t begin, std::size_t end) {
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), 100u);
}

TEST(ThreadPool, PropagatesTheLowestIndexedException) {
  ThreadPool pool(4);
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 16; ++i) {
    jobs.push_back([i] { throw std::runtime_error(std::to_string(i)); });
  }
  try {
    pool.run(std::move(jobs));
    FAIL() << "expected the batch to rethrow";
  } catch (const std::runtime_error& error) {
    // Every job throws; the surfaced error must not depend on which
    // worker thread ran which job.
    EXPECT_STREQ(error.what(), "0");
  }
}

TEST(ThreadPool, StaysUsableAfterAnException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run({[] { throw std::logic_error("boom"); }}),
               std::logic_error);
  std::atomic<int> ran{0};
  pool.run({[&ran] { ran.fetch_add(1); }, [&ran] { ran.fetch_add(1); }});
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, ReusedAcrossManyRuns) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(20, 4, [&total](std::size_t begin, std::size_t end) {
      total.fetch_add(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 50u * 20u);
}

TEST(ThreadPool, ConcurrentSubmittersEachGetTheirOwnBatchBack) {
  ThreadPool pool(4);
  std::vector<std::thread> submitters;
  std::vector<std::atomic<std::size_t>> sums(6);
  for (std::size_t t = 0; t < sums.size(); ++t) {
    submitters.emplace_back([&pool, &sums, t] {
      for (int round = 0; round < 10; ++round) {
        pool.parallel_for(64, 8,
                          [&sums, t](std::size_t begin, std::size_t end) {
                            sums[t].fetch_add(end - begin);
                          });
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  for (const auto& sum : sums) EXPECT_EQ(sum.load(), 10u * 64u);
}

// ---------- shard planning ---------------------------------------------------

TEST(ShardPlan, SplitsIntoFullShardsPlusRemainder) {
  const auto shards = shard_plan(10'000, 4096);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0], 4096u);
  EXPECT_EQ(shards[1], 4096u);
  EXPECT_EQ(shards[2], 10'000u - 2u * 4096u);
}

TEST(ShardPlan, PreservesTheTotal) {
  for (std::uint64_t photons : {1ULL, 4095ULL, 4096ULL, 4097ULL, 999'983ULL}) {
    const auto shards = shard_plan(photons, kDefaultShardPhotons);
    EXPECT_EQ(std::accumulate(shards.begin(), shards.end(), 0ULL), photons);
  }
}

TEST(ShardPlan, ZeroPhotonsIsAnEmptyPlan) {
  EXPECT_TRUE(shard_plan(0, 4096).empty());
}

TEST(ShardPlan, RejectsZeroShardSize) {
  EXPECT_THROW(shard_plan(100, 0), std::invalid_argument);
}

TEST(ShardStreams, FirstStreamIsTheTaskStream) {
  const auto streams = shard_streams(99, 7, 3);
  ASSERT_EQ(streams.size(), 3u);
  EXPECT_EQ(streams[0].state(),
            util::Xoshiro256pp::for_task(99, 7).state());
  // Sub-streams are distinct (jump() moved each by 2^128 draws).
  EXPECT_NE(streams[1].state(), streams[0].state());
  EXPECT_NE(streams[2].state(), streams[1].state());
}

TEST(ShardStreams, SuccessiveStreamsAreJumps) {
  const auto streams = shard_streams(5, 0, 4);
  util::Xoshiro256pp expected = util::Xoshiro256pp::for_task(5, 0);
  for (const auto& stream : streams) {
    EXPECT_EQ(stream.state(), expected.state());
    expected.jump();
  }
}

}  // namespace
}  // namespace phodis::exec
