// Tests for the voxel scoring grids, the path recorder, and the
// mergeable/serialisable simulation tally.
#include <gtest/gtest.h>

#include <cmath>

#include "mc/grid.hpp"
#include "mc/tally.hpp"

namespace phodis::mc {
namespace {

GridSpec small_grid() {
  GridSpec spec;
  spec.x_min = -5.0;
  spec.x_max = 5.0;
  spec.y_min = -5.0;
  spec.y_max = 5.0;
  spec.z_min = 0.0;
  spec.z_max = 10.0;
  spec.nx = spec.ny = spec.nz = 10;
  return spec;
}

// ---------- GridSpec ---------------------------------------------------------

TEST(GridSpec, ValidatesExtents) {
  GridSpec spec = small_grid();
  EXPECT_NO_THROW(spec.validate());
  spec.x_max = spec.x_min;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = small_grid();
  spec.nz = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(GridSpec, CubeFactory) {
  const GridSpec spec = GridSpec::cube(50, 25.0, 40.0);
  EXPECT_EQ(spec.nx, 50u);
  EXPECT_EQ(spec.ny, 50u);
  EXPECT_EQ(spec.nz, 50u);
  EXPECT_DOUBLE_EQ(spec.x_min, -25.0);
  EXPECT_DOUBLE_EQ(spec.z_max, 40.0);
  EXPECT_EQ(spec.voxel_count(), 125000u);
}

TEST(GridSpec, VoxelVolume) {
  const GridSpec spec = small_grid();  // 1mm x 1mm x 1mm voxels
  EXPECT_DOUBLE_EQ(spec.voxel_volume_mm3(), 1.0);
}

TEST(GridSpec, SerializeRoundTrip) {
  const GridSpec spec = small_grid();
  util::ByteWriter w;
  spec.serialize(w);
  util::ByteReader r(w.bytes());
  EXPECT_EQ(GridSpec::deserialize(r), spec);
}

// ---------- VoxelGrid3D ------------------------------------------------------

TEST(VoxelGrid, IndexOfMapsPositions) {
  VoxelGrid3D grid(small_grid());
  // Center of the first voxel.
  auto idx = grid.index_of({-4.5, -4.5, 0.5});
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 0u);
  // Outside on each axis.
  EXPECT_FALSE(grid.index_of({-5.1, 0, 5}).has_value());
  EXPECT_FALSE(grid.index_of({0, 5.0, 5}).has_value());  // hi edge exclusive
  EXPECT_FALSE(grid.index_of({0, 0, -0.1}).has_value());
  EXPECT_FALSE(grid.index_of({0, 0, 10.0}).has_value());
}

TEST(VoxelGrid, DepositAndReadBack) {
  VoxelGrid3D grid(small_grid());
  grid.deposit({0.5, 0.5, 0.5}, 2.5);
  grid.deposit({0.5, 0.5, 0.5}, 1.5);
  EXPECT_DOUBLE_EQ(grid.at(5, 5, 0), 4.0);
  EXPECT_DOUBLE_EQ(grid.total(), 4.0);
  EXPECT_DOUBLE_EQ(grid.max_value(), 4.0);
}

TEST(VoxelGrid, DepositOutsideIsIgnored) {
  VoxelGrid3D grid(small_grid());
  grid.deposit({100, 100, 100}, 1.0);
  EXPECT_DOUBLE_EQ(grid.total(), 0.0);
}

TEST(VoxelGrid, VoxelCenterInvertsIndex) {
  VoxelGrid3D grid(small_grid());
  for (std::size_t flat : {0u, 17u, 999u, 123u}) {
    const util::Vec3 c = grid.voxel_center(flat);
    const auto idx = grid.index_of(c);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(*idx, flat);
  }
}

TEST(VoxelGrid, MergeAddsAndChecksSpec) {
  VoxelGrid3D a(small_grid());
  VoxelGrid3D b(small_grid());
  a.deposit({0, 0, 1}, 1.0);
  b.deposit({0, 0, 1}, 2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total(), 3.0);

  GridSpec other = small_grid();
  other.nx = 20;
  VoxelGrid3D c(other);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(VoxelGrid, AtBoundsChecks) {
  VoxelGrid3D grid(small_grid());
  EXPECT_THROW(grid.at(10, 0, 0), std::out_of_range);
  EXPECT_THROW(grid.at(0, 0, 10), std::out_of_range);
}

// ---------- PathRecorder -----------------------------------------------------

TEST(PathRecorder, CoalescesConsecutiveSameVoxel) {
  VoxelGrid3D grid(small_grid());
  PathRecorder rec;
  rec.record(grid, {0.1, 0.1, 0.1}, 1.0);
  rec.record(grid, {0.2, 0.2, 0.2}, 1.0);  // same voxel
  rec.record(grid, {2.0, 2.0, 2.0}, 1.0);  // different voxel
  EXPECT_EQ(rec.size(), 2u);
}

TEST(PathRecorder, CommitDepositsEverything) {
  VoxelGrid3D grid(small_grid());
  PathRecorder rec;
  rec.record(grid, {0.1, 0.1, 0.1}, 1.5);
  rec.record(grid, {2.0, 2.0, 2.0}, 2.5);
  rec.commit(grid);
  EXPECT_DOUBLE_EQ(grid.total(), 4.0);
}

TEST(PathRecorder, ClearDiscardsWithoutDeposit) {
  VoxelGrid3D grid(small_grid());
  PathRecorder rec;
  rec.record(grid, {0.1, 0.1, 0.1}, 1.0);
  rec.clear();
  EXPECT_TRUE(rec.empty());
  rec.commit(grid);
  EXPECT_DOUBLE_EQ(grid.total(), 0.0);
}

TEST(PathRecorder, IgnoresOutOfGridPositions) {
  VoxelGrid3D grid(small_grid());
  PathRecorder rec;
  rec.record(grid, {100, 0, 0}, 1.0);
  EXPECT_TRUE(rec.empty());
}

// ---------- SimulationTally --------------------------------------------------

TallyConfig tally_config(bool grids = false) {
  TallyConfig config;
  config.layer_count = 3;
  config.pathlength_bins = 50;
  config.pathlength_max_mm = 500.0;
  config.depth_bins = 20;
  config.depth_max_mm = 20.0;
  if (grids) {
    config.enable_fluence_grid = true;
    config.fluence_spec = small_grid();
    config.enable_path_grid = true;
    config.path_spec = small_grid();
  }
  return config;
}

TEST(Tally, RejectsZeroLayers) {
  TallyConfig config;
  config.layer_count = 0;
  EXPECT_THROW(SimulationTally{config}, std::invalid_argument);
}

TEST(Tally, FractionsNormaliseByLaunches) {
  SimulationTally tally(tally_config());
  for (int i = 0; i < 4; ++i) tally.count_launch();
  tally.add_specular(0.2);
  tally.add_diffuse_reflectance(1.0);
  tally.add_transmittance(0.8);
  tally.add_absorption(0, 0.5);
  tally.add_absorption(2, 1.5);
  EXPECT_DOUBLE_EQ(tally.specular_reflectance(), 0.05);
  EXPECT_DOUBLE_EQ(tally.diffuse_reflectance(), 0.25);
  EXPECT_DOUBLE_EQ(tally.transmittance(), 0.2);
  EXPECT_DOUBLE_EQ(tally.absorbed_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(tally.absorbed_weight(0), 0.5);
  EXPECT_DOUBLE_EQ(tally.absorbed_weight(1), 0.0);
  EXPECT_DOUBLE_EQ(tally.absorbed_weight(2), 1.5);
}

TEST(Tally, EmptyTallyHasZeroFractions) {
  SimulationTally tally(tally_config());
  EXPECT_DOUBLE_EQ(tally.diffuse_reflectance(), 0.0);
  EXPECT_DOUBLE_EQ(tally.mean_detected_pathlength(), 0.0);
  EXPECT_DOUBLE_EQ(tally.weight_conservation_error(), 0.0);
}

TEST(Tally, ConservationLedgerBalances) {
  SimulationTally tally(tally_config());
  tally.count_launch();
  tally.add_specular(0.1);
  tally.add_absorption(1, 0.3);
  tally.add_roulette_gain(0.05);
  tally.add_roulette_loss(0.02);
  // sinks must equal 1 + 0.05 - 0.02 = 1.03; so far sinks = 0.4.
  tally.add_diffuse_reflectance(0.63);
  EXPECT_NEAR(tally.weight_conservation_error(), 0.0, 1e-12);
}

TEST(Tally, ConservationLedgerDetectsImbalance) {
  SimulationTally tally(tally_config());
  tally.count_launch();
  tally.add_diffuse_reflectance(0.5);  // 0.5 missing
  EXPECT_NEAR(tally.weight_conservation_error(), 0.5, 1e-12);
}

TEST(Tally, DetectionStatistics) {
  SimulationTally tally(tally_config());
  tally.count_launch();
  tally.record_detection(0.5, 100.0, 30.0, 10);
  tally.record_detection(0.25, 200.0, 30.0, 20);
  EXPECT_EQ(tally.photons_detected(), 2u);
  EXPECT_DOUBLE_EQ(tally.total_detected_weight(), 0.75);
  // Weighted mean: (0.5*100 + 0.25*200)/0.75
  EXPECT_NEAR(tally.mean_detected_pathlength(), 100.0 / 0.75, 1e-9);
  EXPECT_NEAR(tally.mean_detected_scatter_events(), (5.0 + 5.0) / 0.75,
              1e-9);
  EXPECT_DOUBLE_EQ(tally.pathlength_histogram().total_in_range(), 0.75);
}

TEST(Tally, MergeAccumulatesEverything) {
  SimulationTally a(tally_config(true));
  SimulationTally b(tally_config(true));
  a.count_launch();
  b.count_launch();
  a.add_diffuse_reflectance(0.5);
  b.add_diffuse_reflectance(0.25);
  a.record_detection(0.5, 100.0, 30.0, 5);
  b.record_detection(0.25, 300.0, 30.0, 9);
  a.fluence_grid()->deposit({0, 0, 1}, 1.0);
  b.fluence_grid()->deposit({0, 0, 1}, 2.0);
  b.path_grid()->deposit({1, 1, 1}, 4.0);
  a.record_max_depth(3.0, 1.0);
  b.record_max_depth(7.0, 1.0);

  a.merge(b);
  EXPECT_EQ(a.photons_launched(), 2u);
  EXPECT_EQ(a.photons_detected(), 2u);
  EXPECT_DOUBLE_EQ(a.diffuse_reflectance(), 0.375);
  EXPECT_DOUBLE_EQ(a.fluence_grid()->total(), 3.0);
  EXPECT_DOUBLE_EQ(a.path_grid()->total(), 4.0);
  EXPECT_DOUBLE_EQ(a.depth_histogram().total_in_range(), 2.0);
}

TEST(Tally, MergeRejectsConfigMismatch) {
  SimulationTally a(tally_config());
  TallyConfig other = tally_config();
  other.layer_count = 5;
  SimulationTally b(other);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Tally, SerializeRoundTripScalarsOnly) {
  SimulationTally tally(tally_config());
  tally.count_launch();
  tally.count_launch();
  tally.add_specular(0.08);
  tally.add_diffuse_reflectance(0.9);
  tally.add_absorption(1, 0.7);
  tally.add_roulette_gain(0.01);
  tally.add_roulette_loss(0.02);
  tally.record_detection(0.4, 120.0, 30.0, 7);
  tally.record_max_depth(5.0, 1.0);

  util::ByteWriter w;
  tally.serialize(w);
  util::ByteReader r(w.bytes());
  SimulationTally back = SimulationTally::deserialize(r);
  EXPECT_TRUE(r.exhausted());

  EXPECT_EQ(back.photons_launched(), tally.photons_launched());
  EXPECT_DOUBLE_EQ(back.specular_reflectance(), tally.specular_reflectance());
  EXPECT_DOUBLE_EQ(back.diffuse_reflectance(), tally.diffuse_reflectance());
  EXPECT_DOUBLE_EQ(back.absorbed_weight(1), tally.absorbed_weight(1));
  EXPECT_DOUBLE_EQ(back.mean_detected_pathlength(),
                   tally.mean_detected_pathlength());
  EXPECT_NEAR(back.weight_conservation_error(),
              tally.weight_conservation_error(), 1e-12);
}

TEST(Tally, SerializeRoundTripWithGrids) {
  SimulationTally tally(tally_config(true));
  tally.count_launch();
  tally.fluence_grid()->deposit({0.5, 0.5, 0.5}, 3.0);
  tally.path_grid()->deposit({-1, -1, 2}, 7.0);

  util::ByteWriter w;
  tally.serialize(w);
  util::ByteReader r(w.bytes());
  SimulationTally back = SimulationTally::deserialize(r);

  ASSERT_NE(back.fluence_grid(), nullptr);
  ASSERT_NE(back.path_grid(), nullptr);
  EXPECT_DOUBLE_EQ(back.fluence_grid()->total(), 3.0);
  EXPECT_DOUBLE_EQ(back.path_grid()->total(), 7.0);
  EXPECT_DOUBLE_EQ(back.fluence_grid()->at(5, 5, 0), 3.0);
}

TEST(Tally, DeserializeRejectsCorruptPayload) {
  SimulationTally tally(tally_config());
  util::ByteWriter w;
  tally.serialize(w);
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes.resize(bytes.size() / 2);  // truncate
  util::ByteReader r(bytes);
  EXPECT_THROW(SimulationTally::deserialize(r), std::out_of_range);
}

TEST(Tally, GridsAbsentWhenDisabled) {
  SimulationTally tally(tally_config(false));
  EXPECT_EQ(tally.fluence_grid(), nullptr);
  EXPECT_EQ(tally.path_grid(), nullptr);
}

TEST(Tally, AbsorptionOutOfRangeLayerIsIgnored) {
  SimulationTally tally(tally_config());
  tally.add_absorption(99, 1.0);  // silently dropped by design
  EXPECT_DOUBLE_EQ(tally.absorbed_fraction(), 0.0);
}

}  // namespace
}  // namespace phodis::mc
