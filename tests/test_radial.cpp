// Tests for the cylindrical (r,z) tallies, the divergence source
// extension, and DataManager checkpoint/restore.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "analysis/diffusion.hpp"
#include "dist/datamanager.hpp"
#include "mc/kernel.hpp"
#include "mc/presets.hpp"
#include "mc/radial.hpp"

namespace phodis::mc {
namespace {

RadialSpec small_radial() {
  RadialSpec spec;
  spec.r_max_mm = 10.0;
  spec.nr = 10;
  spec.z_max_mm = 5.0;
  spec.nz = 5;
  return spec;
}

// ---------- RadialSpec --------------------------------------------------------

TEST(RadialSpec, Validation) {
  RadialSpec spec = small_radial();
  EXPECT_NO_THROW(spec.validate());
  spec.nr = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = small_radial();
  spec.r_max_mm = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(RadialSpec, SerializeRoundTrip) {
  util::ByteWriter w;
  small_radial().serialize(w);
  util::ByteReader r(w.bytes());
  EXPECT_EQ(RadialSpec::deserialize(r), small_radial());
}

// ---------- RadialTally --------------------------------------------------------

TEST(RadialTally, ScoresIntoCorrectBins) {
  RadialTally tally(small_radial());
  tally.score_reflectance(0.5, 1.0);   // bin 0
  tally.score_reflectance(9.99, 2.0);  // bin 9
  tally.score_reflectance(10.0, 3.0);  // overflow
  EXPECT_DOUBLE_EQ(tally.reflectance_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(tally.reflectance_weight(9), 2.0);
  EXPECT_DOUBLE_EQ(tally.reflectance_overflow(), 3.0);
  EXPECT_DOUBLE_EQ(tally.total_reflectance(), 6.0);
}

TEST(RadialTally, AbsorptionBinsAndOverflow) {
  RadialTally tally(small_radial());
  tally.score_absorption(1.5, 2.5, 4.0);  // ir=1, iz=2
  tally.score_absorption(1.5, 5.0, 1.0);  // z overflow
  tally.score_absorption(11.0, 1.0, 1.0); // r overflow
  EXPECT_DOUBLE_EQ(tally.absorption_weight(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(tally.absorption_overflow(), 2.0);
  EXPECT_DOUBLE_EQ(tally.total_absorption(), 6.0);
}

TEST(RadialTally, AnnulusAreasTileTheDisc) {
  RadialTally tally(small_radial());
  double total_area = 0.0;
  for (std::size_t ir = 0; ir < 10; ++ir) {
    total_area += tally.annulus_area_mm2(ir);
  }
  EXPECT_NEAR(total_area, std::numbers::pi * 10.0 * 10.0, 1e-9);
}

TEST(RadialTally, PerAreaNormalisation) {
  RadialTally tally(small_radial());
  tally.score_reflectance(0.5, 6.0);
  // Bin 0 is a disc of radius 1 mm: area pi.
  EXPECT_NEAR(tally.reflectance_per_area(0, 3),
              6.0 / (std::numbers::pi * 1.0 * 1.0 * 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(tally.reflectance_per_area(0, 0), 0.0);
}

TEST(RadialTally, DensityNormalisation) {
  RadialTally tally(small_radial());
  tally.score_absorption(0.5, 0.5, 2.0);
  const double volume = std::numbers::pi * 1.0 * 1.0 * 1.0;  // 1mm slab
  EXPECT_NEAR(tally.absorption_density(0, 0, 4),
              2.0 / (volume * 4.0), 1e-12);
}

TEST(RadialTally, MergeAndSerializeRoundTrip) {
  RadialTally a(small_radial());
  RadialTally b(small_radial());
  a.score_reflectance(0.5, 1.0);
  b.score_reflectance(0.5, 2.0);
  b.score_absorption(3.0, 1.0, 5.0);
  b.score_transmittance(2.0, 0.5);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.reflectance_weight(0), 3.0);
  EXPECT_DOUBLE_EQ(a.absorption_weight(3, 1), 5.0);
  EXPECT_DOUBLE_EQ(a.transmittance_weight(2), 0.5);

  util::ByteWriter w;
  a.serialize(w);
  util::ByteReader r(w.bytes());
  const RadialTally back = RadialTally::deserialize(r);
  EXPECT_DOUBLE_EQ(back.reflectance_weight(0), 3.0);
  EXPECT_DOUBLE_EQ(back.total_absorption(), 5.0);
}

TEST(RadialTally, MergeRejectsMismatch) {
  RadialTally a(small_radial());
  RadialSpec other = small_radial();
  other.nr = 20;
  RadialTally b(other);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// ---------- kernel integration -------------------------------------------------

TEST(RadialKernel, TotalsMatchScalarTally) {
  OpticalProperties p;
  p.mua = 0.05;
  p.mus = 5.0;
  p.g = 0.8;
  p.n = 1.0;
  KernelConfig config;
  config.medium = homogeneous_semi_infinite(p, 1.0);
  config.tally.enable_radial = true;
  config.tally.radial_spec.r_max_mm = 1000.0;  // catch everything
  config.tally.radial_spec.nr = 50;
  config.tally.radial_spec.z_max_mm = 1000.0;
  config.tally.radial_spec.nz = 50;
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(61);
  kernel.run(20000, rng, tally);

  ASSERT_NE(tally.radial(), nullptr);
  const double launched = static_cast<double>(tally.photons_launched());
  EXPECT_NEAR(tally.radial()->total_reflectance() / launched,
              tally.diffuse_reflectance(), 1e-12);
  EXPECT_NEAR(tally.radial()->total_absorption() / launched,
              tally.absorbed_fraction(), 1e-9);
}

TEST(RadialKernel, ReflectanceDecreasesWithRadius) {
  OpticalProperties p;
  p.mua = 0.01;
  p.mus = 10.0;
  p.g = 0.9;
  p.n = 1.0;
  KernelConfig config;
  config.medium = homogeneous_semi_infinite(p, 1.0);
  config.tally.enable_radial = true;
  config.tally.radial_spec.r_max_mm = 20.0;
  config.tally.radial_spec.nr = 20;
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(62);
  kernel.run(100000, rng, tally);

  const RadialTally& radial = *tally.radial();
  // Per-area reflectance must fall by orders of magnitude from 1 mm to
  // 15 mm; check a strictly decreasing coarse sequence.
  const double near = radial.reflectance_per_area(1, 100000);
  const double mid = radial.reflectance_per_area(8, 100000);
  const double far = radial.reflectance_per_area(15, 100000);
  EXPECT_GT(near, 10.0 * mid);
  EXPECT_GT(mid, far);
}

TEST(RadialKernel, MatchesFarrellDiffusionShape) {
  // Spatially-resolved reflectance vs the Farrell dipole curve in the
  // diffusive regime (3 <= rho <= 12 mm, rho >> 1/mus'): the MC/theory
  // ratio should be flat within ~30%.
  OpticalProperties p;
  p.mua = 0.01;
  p.mus = 10.0;
  p.g = 0.9;
  p.n = 1.0;
  KernelConfig config;
  config.medium = homogeneous_semi_infinite(p, 1.0);
  config.tally.enable_radial = true;
  config.tally.radial_spec.r_max_mm = 16.0;
  config.tally.radial_spec.nr = 16;
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(63);
  kernel.run(300000, rng, tally);

  const RadialTally& radial = *tally.radial();
  double ratio_min = 1e300;
  double ratio_max = 0.0;
  for (std::size_t ir = 3; ir <= 12; ++ir) {
    const double rho = radial.r_center(ir);
    const double mc = radial.reflectance_per_area(ir, 300000);
    const double theory = analysis::semi_infinite_reflectance(p, rho, 1.0);
    ASSERT_GT(mc, 0.0);
    const double ratio = mc / theory;
    ratio_min = std::min(ratio_min, ratio);
    ratio_max = std::max(ratio_max, ratio);
  }
  EXPECT_LT(ratio_max / ratio_min, 1.6);
  EXPECT_GT(ratio_min, 0.5);
  EXPECT_LT(ratio_max, 2.0);
}

// ---------- divergence source ----------------------------------------------------

TEST(DivergentSource, ValidationAndSampling) {
  SourceSpec spec;
  spec.half_angle_deg = 95.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.half_angle_deg = -1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec.half_angle_deg = 30.0;
  Source source(spec);
  util::Xoshiro256pp rng(64);
  const double cos_max = std::cos(30.0 * std::numbers::pi / 180.0);
  double sum_z = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const util::Vec3 dir = source.sample_direction(rng);
    ASSERT_NEAR(dir.norm(), 1.0, 1e-12);
    ASSERT_GE(dir.z, cos_max - 1e-12);
    sum_z += dir.z;
  }
  // Uniform in solid angle: E[cos] = (1 + cos_max) / 2.
  EXPECT_NEAR(sum_z / n, 0.5 * (1.0 + cos_max), 2e-3);
}

TEST(DivergentSource, CollimatedIsUnchanged) {
  SourceSpec spec;  // half_angle 0
  Source source(spec);
  util::Xoshiro256pp rng(65);
  EXPECT_EQ(source.sample_direction(rng), (util::Vec3{0, 0, 1}));
}

TEST(DivergentSource, ObliqueRaysLoseMoreToSpecularReflection) {
  OpticalProperties p;
  p.mua = 0.05;
  p.mus = 5.0;
  p.g = 0.8;
  p.n = 1.5;

  auto specular_for = [&](double half_angle) {
    KernelConfig config;
    config.medium = homogeneous_semi_infinite(p, 1.0);
    config.source.half_angle_deg = half_angle;
    const Kernel kernel(config);
    SimulationTally tally = kernel.make_tally();
    util::Xoshiro256pp rng(66);
    kernel.run(30000, rng, tally);
    EXPECT_LT(tally.weight_conservation_error(), 1e-6 * 30000);
    return tally.specular_reflectance();
  };
  const double collimated = specular_for(0.0);
  const double wide = specular_for(70.0);
  EXPECT_NEAR(collimated, 0.04, 1e-6);  // exact normal-incidence Fresnel
  EXPECT_GT(wide, collimated);
}

}  // namespace
}  // namespace phodis::mc

namespace phodis::dist {
namespace {

// ---------- DataManager checkpoint/restore ---------------------------------------

TEST(Checkpoint, RoundTripPreservesTasksAndCompletion) {
  DataManager manager(10.0);
  manager.add_task(0, {1, 2, 3});
  manager.add_task(1, {4});
  manager.add_task(2, {});
  manager.lease_next("w", 0.0);
  manager.complete(0, "w", 1.0);
  manager.lease_next("w", 1.0);  // task 1 in flight at checkpoint time

  util::ByteWriter writer;
  manager.checkpoint(writer);

  DataManager restored(10.0);
  util::ByteReader reader(writer.bytes());
  restored.restore(reader);

  EXPECT_EQ(restored.completed_count(), 1u);
  // Task 1 (was in flight) and task 2 (was pending) are pending again.
  EXPECT_EQ(restored.pending_count(), 2u);
  EXPECT_EQ(restored.in_flight_count(), 0u);

  // Completed task 0 is never re-issued.
  std::vector<std::uint64_t> issued;
  while (auto task = restored.lease_next("w2", 2.0)) {
    issued.push_back(task->task_id);
    restored.complete(task->task_id, "w2", 3.0);
  }
  EXPECT_EQ(issued.size(), 2u);
  EXPECT_TRUE(restored.all_done());
}

TEST(Checkpoint, PayloadsSurvive) {
  DataManager manager(10.0);
  manager.add_task(7, {9, 8, 7, 6});
  util::ByteWriter writer;
  manager.checkpoint(writer);
  DataManager restored(10.0);
  util::ByteReader reader(writer.bytes());
  restored.restore(reader);
  auto task = restored.lease_next("w", 0.0);
  ASSERT_TRUE(task.has_value());
  EXPECT_EQ(task->payload, (std::vector<std::uint8_t>{9, 8, 7, 6}));
}

TEST(Checkpoint, RestoreIntoNonEmptyManagerThrows) {
  DataManager source(10.0);
  source.add_task(0, {});
  util::ByteWriter writer;
  source.checkpoint(writer);

  DataManager busy(10.0);
  busy.add_task(5, {});
  util::ByteReader reader(writer.bytes());
  EXPECT_THROW(busy.restore(reader), std::logic_error);
}

TEST(Checkpoint, TruncatedCheckpointThrows) {
  DataManager manager(10.0);
  manager.add_task(0, {1, 2, 3, 4, 5});
  util::ByteWriter writer;
  manager.checkpoint(writer);
  std::vector<std::uint8_t> bytes = writer.bytes();
  bytes.resize(bytes.size() - 3);
  DataManager restored(10.0);
  util::ByteReader reader(bytes);
  EXPECT_THROW(restored.restore(reader), std::out_of_range);
}

TEST(Checkpoint, EmptyManagerRoundTrips) {
  DataManager manager(10.0);
  util::ByteWriter writer;
  manager.checkpoint(writer);
  DataManager restored(10.0);
  util::ByteReader reader(writer.bytes());
  restored.restore(reader);
  EXPECT_TRUE(restored.all_done());
  EXPECT_EQ(restored.pending_count(), 0u);
}

}  // namespace
}  // namespace phodis::dist
