// Scheduler edge cases beyond the core suite: chunk planning at exact
// boundaries, makespan ordering of LPT vs round-robin on heterogeneous
// rates, and genetic-scheduler determinism.
#include <gtest/gtest.h>

#include <numeric>

#include "dist/scheduler.hpp"

namespace phodis::dist {
namespace {

// ---------- chunk planning boundaries ---------------------------------------

TEST(ChunkPlanEdge, TotalEqualsChunkGivesOneFullChunk) {
  const auto chunks = chunk_plan(4096, 4096);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], 4096u);
}

TEST(ChunkPlanEdge, ChunkOfOneEnumeratesEveryUnit) {
  const auto chunks = chunk_plan(17, 1);
  EXPECT_EQ(chunks.size(), 17u);
  EXPECT_EQ(std::accumulate(chunks.begin(), chunks.end(), 0ULL), 17ULL);
}

TEST(ChunkPlanEdge, OneBelowAndAboveExactDivision) {
  EXPECT_EQ(chunk_plan(99, 25).back(), 24u);   // remainder 99 - 75
  EXPECT_EQ(chunk_plan(101, 25).back(), 1u);   // remainder 101 - 100
  EXPECT_EQ(chunk_plan(101, 25).size(), 5u);
}

// ---------- LPT vs round-robin on heterogeneous rates ------------------------

TEST(SchedulerOrdering, LptNeverWorseThanRoundRobinOnHeterogeneousRates) {
  const std::vector<double> tasks(64, 10.0);
  GreedyScheduler greedy;
  RoundRobinScheduler rr;
  for (const auto& rates : {std::vector<double>{1.0, 10.0},
                            std::vector<double>{1.0, 2.0, 4.0, 8.0},
                            std::vector<double>{15.0, 30.0, 200.0}}) {
    const double lpt = greedy.schedule(tasks, rates).makespan;
    const double cyclic = rr.schedule(tasks, rates).makespan;
    EXPECT_LE(lpt, cyclic);
  }
}

TEST(SchedulerOrdering, RoundRobinPaysTheSlowestProcessor) {
  // 3 uniform tasks on rates {1, 100, 100}: round-robin puts one task on
  // the slow machine (makespan 5), LPT avoids it entirely.
  const std::vector<double> tasks(3, 5.0);
  const std::vector<double> rates = {1.0, 100.0, 100.0};
  RoundRobinScheduler rr;
  GreedyScheduler greedy;
  EXPECT_DOUBLE_EQ(rr.schedule(tasks, rates).makespan, 5.0);
  EXPECT_LE(greedy.schedule(tasks, rates).makespan, 0.15);
}

// ---------- genetic scheduler determinism ------------------------------------

TEST(GaDeterminism, RandomInitRunsAreBitwiseReproducible) {
  GaScheduler::Params params;
  params.seed_with_greedy = false;
  params.generations = 40;
  params.seed = 77;
  GaScheduler a(params);
  GaScheduler b(params);
  const std::vector<double> tasks(48, 3.0);
  const std::vector<double> rates = {1.0, 2.0, 5.0};
  const Schedule sa = a.schedule(tasks, rates);
  const Schedule sb = b.schedule(tasks, rates);
  EXPECT_EQ(sa.assignment, sb.assignment);
  EXPECT_DOUBLE_EQ(sa.makespan, sb.makespan);
  EXPECT_EQ(a.convergence(), b.convergence());
}

TEST(GaDeterminism, DifferentSeedsMayDiverge) {
  // Not a strict requirement of the GA, but the seed must actually feed
  // the stochastic path: two far-apart seeds on a rugged instance should
  // not retrace the identical convergence curve.
  GaScheduler::Params params;
  params.seed_with_greedy = false;
  params.generations = 25;
  params.seed = 1;
  GaScheduler a(params);
  params.seed = 999983;
  GaScheduler b(params);
  std::vector<double> tasks;
  for (std::size_t i = 0; i < 40; ++i) {
    tasks.push_back(1.0 + static_cast<double>(i % 7));
  }
  const std::vector<double> rates = {1.0, 3.0, 4.0, 9.0};
  a.schedule(tasks, rates);
  b.schedule(tasks, rates);
  EXPECT_NE(a.convergence(), b.convergence());
}

TEST(GaDeterminism, ScheduleCallResetsConvergence) {
  GaScheduler ga;
  const std::vector<double> tasks(20, 2.0);
  const std::vector<double> rates = {1.0, 2.0};
  ga.schedule(tasks, rates);
  const std::size_t first = ga.convergence().size();
  ga.schedule(tasks, rates);
  EXPECT_EQ(ga.convergence().size(), first);
}

}  // namespace
}  // namespace phodis::dist
