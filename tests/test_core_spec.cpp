// Tests for SimulationSpec/TaskPayload serialisation and the client-side
// Algorithm.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiments.hpp"
#include "core/spec.hpp"
#include "core/app.hpp"
#include "mc/presets.hpp"

namespace phodis::core {
namespace {

SimulationSpec rich_spec() {
  SimulationSpec spec;
  spec.kernel.medium = mc::adult_head_model();
  spec.kernel.source.type = mc::SourceType::kGaussian;
  spec.kernel.source.radius_mm = 2.5;
  mc::DetectorSpec detector;
  detector.separation_mm = 30.0;
  detector.radius_mm = 2.0;
  detector.gate.min_mm = 10.0;
  detector.gate.max_mm = 500.0;
  spec.kernel.detector = detector;
  spec.kernel.boundary_model = mc::BoundaryModel::kClassical;
  spec.kernel.roulette.threshold = 1e-3;
  spec.kernel.roulette.survival_multiplier = 20.0;
  spec.kernel.tally.enable_fluence_grid = true;
  spec.kernel.tally.fluence_spec = mc::GridSpec::cube(10, 20.0, 30.0);
  spec.kernel.tally.enable_path_grid = true;
  spec.kernel.tally.path_spec = mc::GridSpec::cube(12, 25.0, 35.0);
  spec.kernel.max_interactions = 123456;
  spec.photons = 777;
  spec.seed = 424242;
  return spec;
}

TEST(Spec, ValidateRejectsZeroPhotons) {
  SimulationSpec spec = rich_spec();
  spec.photons = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(Spec, SerializeRoundTripPreservesEverything) {
  const SimulationSpec spec = rich_spec();
  util::ByteWriter w;
  spec.serialize(w);
  util::ByteReader r(w.bytes());
  const SimulationSpec back = SimulationSpec::deserialize(r);
  EXPECT_TRUE(r.exhausted());

  EXPECT_EQ(back.photons, spec.photons);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.kernel.medium.layer_count(), 5u);
  EXPECT_EQ(back.kernel.medium.layer(2).name, "CSF");
  EXPECT_DOUBLE_EQ(back.kernel.medium.layer(4).props.mua, 0.014);
  EXPECT_TRUE(std::isinf(back.kernel.medium.layer(4).z1));
  EXPECT_EQ(back.kernel.source.type, mc::SourceType::kGaussian);
  EXPECT_DOUBLE_EQ(back.kernel.source.radius_mm, 2.5);
  ASSERT_TRUE(back.kernel.detector.has_value());
  EXPECT_DOUBLE_EQ(back.kernel.detector->separation_mm, 30.0);
  EXPECT_DOUBLE_EQ(back.kernel.detector->gate.min_mm, 10.0);
  EXPECT_DOUBLE_EQ(back.kernel.detector->gate.max_mm, 500.0);
  EXPECT_EQ(back.kernel.boundary_model, mc::BoundaryModel::kClassical);
  EXPECT_DOUBLE_EQ(back.kernel.roulette.survival_multiplier, 20.0);
  EXPECT_TRUE(back.kernel.tally.enable_fluence_grid);
  EXPECT_EQ(back.kernel.tally.fluence_spec, spec.kernel.tally.fluence_spec);
  EXPECT_EQ(back.kernel.tally.path_spec, spec.kernel.tally.path_spec);
  EXPECT_EQ(back.kernel.max_interactions, 123456u);
}

TEST(Spec, RoundTripWithoutDetector) {
  SimulationSpec spec;
  spec.kernel.medium = mc::homogeneous_white_matter();
  spec.photons = 10;
  util::ByteWriter w;
  spec.serialize(w);
  util::ByteReader r(w.bytes());
  const SimulationSpec back = SimulationSpec::deserialize(r);
  EXPECT_FALSE(back.kernel.detector.has_value());
}

TEST(Spec, OpenGateInfinityRoundTrips) {
  SimulationSpec spec = rich_spec();
  spec.kernel.detector->gate.min_mm = 0.0;
  spec.kernel.detector->gate.max_mm =
      std::numeric_limits<double>::infinity();
  util::ByteWriter w;
  spec.serialize(w);
  util::ByteReader r(w.bytes());
  const SimulationSpec back = SimulationSpec::deserialize(r);
  EXPECT_TRUE(back.kernel.detector->gate.is_open());
}

TEST(TaskPayload, EncodeDecodeRoundTrip) {
  TaskPayload payload;
  payload.spec = rich_spec();
  payload.task_photons = 4321;
  const TaskPayload back = TaskPayload::decode(payload.encode());
  EXPECT_EQ(back.task_photons, 4321u);
  EXPECT_EQ(back.spec.seed, payload.spec.seed);
}

TEST(TaskPayload, RejectsTrailingGarbage) {
  TaskPayload payload;
  payload.spec = rich_spec();
  payload.task_photons = 1;
  std::vector<std::uint8_t> bytes = payload.encode();
  bytes.push_back(0x00);
  EXPECT_THROW(TaskPayload::decode(bytes), std::invalid_argument);
}

TEST(TaskPayload, RejectsTruncation) {
  TaskPayload payload;
  payload.spec = rich_spec();
  payload.task_photons = 1;
  std::vector<std::uint8_t> bytes = payload.encode();
  bytes.resize(bytes.size() / 3);
  EXPECT_THROW(TaskPayload::decode(bytes), std::exception);
}

// ---------- Algorithm ---------------------------------------------------------

TEST(Algorithm, ExecutesTaskAndReturnsTally) {
  TaskPayload payload;
  payload.spec.kernel.medium = mc::homogeneous_white_matter();
  payload.spec.photons = 100;
  payload.spec.seed = 7;
  payload.task_photons = 100;
  const std::vector<std::uint8_t> result =
      Algorithm::execute(0, payload.encode());
  util::ByteReader reader(result);
  const mc::SimulationTally tally = mc::SimulationTally::deserialize(reader);
  EXPECT_EQ(tally.photons_launched(), 100u);
  EXPECT_GT(tally.diffuse_reflectance() + tally.absorbed_fraction(), 0.5);
}

TEST(Algorithm, SameTaskIdGivesIdenticalResult) {
  TaskPayload payload;
  payload.spec.kernel.medium = mc::homogeneous_white_matter();
  payload.spec.photons = 200;
  payload.spec.seed = 7;
  payload.task_photons = 200;
  const auto bytes = payload.encode();
  EXPECT_EQ(Algorithm::execute(3, bytes), Algorithm::execute(3, bytes));
}

TEST(Algorithm, DifferentTaskIdsGiveDifferentResults) {
  TaskPayload payload;
  payload.spec.kernel.medium = mc::homogeneous_white_matter();
  payload.spec.photons = 200;
  payload.spec.seed = 7;
  payload.task_photons = 200;
  const auto bytes = payload.encode();
  EXPECT_NE(Algorithm::execute(0, bytes), Algorithm::execute(1, bytes));
}

TEST(Algorithm, ThrowsOnGarbagePayload) {
  const std::vector<std::uint8_t> garbage = {1, 2, 3};
  EXPECT_THROW(Algorithm::execute(0, garbage), std::exception);
}

// ---------- experiment presets -------------------------------------------------

TEST(Experiments, Fig3SpecIsValid) {
  const SimulationSpec spec = fig3_banana_spec();
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.kernel.medium.layer_count(), 1u);
  EXPECT_EQ(spec.kernel.source.type, mc::SourceType::kDelta);
  EXPECT_TRUE(spec.kernel.tally.enable_path_grid);
  EXPECT_EQ(spec.kernel.tally.path_spec.nx, 50u);  // granularity 50^3
  ASSERT_TRUE(spec.kernel.detector.has_value());
}

TEST(Experiments, Fig4SpecUsesHeadModel) {
  const SimulationSpec spec = fig4_head_spec();
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.kernel.medium.layer_count(), 5u);
  EXPECT_TRUE(spec.kernel.tally.enable_fluence_grid);
}

TEST(Experiments, SourceFootprintSpecVariesSource) {
  const SimulationSpec spec =
      source_footprint_spec(mc::SourceType::kUniform, 5.0);
  EXPECT_EQ(spec.kernel.source.type, mc::SourceType::kUniform);
  EXPECT_DOUBLE_EQ(spec.kernel.source.radius_mm, 5.0);
  EXPECT_NO_THROW(spec.validate());
}

TEST(Experiments, SpecsSerialise) {
  for (const SimulationSpec& spec :
       {fig3_banana_spec(), fig4_head_spec(),
        source_footprint_spec(mc::SourceType::kGaussian, 2.0)}) {
    util::ByteWriter w;
    spec.serialize(w);
    util::ByteReader r(w.bytes());
    EXPECT_NO_THROW(SimulationSpec::deserialize(r));
  }
}

}  // namespace
}  // namespace phodis::core
