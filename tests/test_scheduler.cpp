// Tests for chunk planning and the static schedulers (round-robin,
// greedy LPT, genetic algorithm).
#include <gtest/gtest.h>

#include <numeric>

#include "cluster/fleet.hpp"
#include "dist/scheduler.hpp"

namespace phodis::dist {
namespace {

// ---------- chunk planning ---------------------------------------------------

TEST(ChunkPlan, ExactDivision) {
  const auto chunks = chunk_plan(100, 25);
  ASSERT_EQ(chunks.size(), 4u);
  for (auto c : chunks) EXPECT_EQ(c, 25u);
}

TEST(ChunkPlan, RemainderGoesToLastChunk) {
  const auto chunks = chunk_plan(103, 25);
  ASSERT_EQ(chunks.size(), 5u);
  EXPECT_EQ(chunks.back(), 3u);
  EXPECT_EQ(std::accumulate(chunks.begin(), chunks.end(), 0ULL), 103ULL);
}

TEST(ChunkPlan, SingleOversizedChunk) {
  const auto chunks = chunk_plan(10, 1000);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], 10u);
}

TEST(ChunkPlan, TotalIsAlwaysPreserved) {
  for (std::uint64_t total : {1ULL, 7ULL, 1000ULL, 999983ULL}) {
    for (std::uint64_t chunk : {1ULL, 3ULL, 64ULL, 100000ULL}) {
      const auto chunks = chunk_plan(total, chunk);
      EXPECT_EQ(std::accumulate(chunks.begin(), chunks.end(), 0ULL), total);
    }
  }
}

TEST(ChunkPlan, RejectsZeroInputs) {
  EXPECT_THROW(chunk_plan(0, 10), std::invalid_argument);
  EXPECT_THROW(chunk_plan(10, 0), std::invalid_argument);
}

TEST(SuggestChunkSize, GivesEachProcessorSeveralPulls) {
  const std::uint64_t chunk = suggest_chunk_size(1'000'000, 10, 4);
  EXPECT_EQ(chunk, 25'000u);
  EXPECT_EQ(suggest_chunk_size(10, 100, 4), 1u);  // floors at 1
  EXPECT_THROW(suggest_chunk_size(100, 0), std::invalid_argument);
}

// ---------- makespan ---------------------------------------------------------

TEST(Makespan, ComputesMaxLoadOverRate) {
  const std::vector<double> sizes = {10, 20, 30};
  const std::vector<double> rates = {1.0, 2.0};
  // proc0: 10; proc1: (20+30)/2 = 25.
  EXPECT_DOUBLE_EQ(schedule_makespan(sizes, rates, {0, 1, 1}), 25.0);
}

TEST(Makespan, ValidatesInputs) {
  EXPECT_THROW(schedule_makespan({1, 2}, {1.0}, {0}), std::invalid_argument);
  EXPECT_THROW(schedule_makespan({1}, {1.0}, {5}), std::invalid_argument);
  EXPECT_THROW(schedule_makespan({1}, {0.0}, {0}), std::invalid_argument);
}

// ---------- schedulers -------------------------------------------------------

std::vector<double> uniform_tasks(std::size_t count, double size) {
  return std::vector<double>(count, size);
}

/// Rates of the paper's Table 2 fleet (150 heterogeneous processors).
std::vector<double> table2_rates() {
  std::vector<double> rates;
  for (const auto& node : cluster::table2_fleet()) {
    rates.push_back(node.mflops);
  }
  return rates;
}

TEST(RoundRobin, AssignsCyclically) {
  RoundRobinScheduler rr;
  const Schedule s = rr.schedule(uniform_tasks(6, 1.0), {1.0, 1.0, 1.0});
  EXPECT_EQ(s.assignment, (std::vector<std::size_t>{0, 1, 2, 0, 1, 2}));
  EXPECT_DOUBLE_EQ(s.makespan, 2.0);
}

TEST(Greedy, BeatsRoundRobinOnHeterogeneousFleet) {
  GreedyScheduler greedy;
  RoundRobinScheduler rr;
  const auto tasks = uniform_tasks(300, 1'000'000.0);
  const auto rates = table2_rates();
  const Schedule g = greedy.schedule(tasks, rates);
  const Schedule r = rr.schedule(tasks, rates);
  EXPECT_LT(g.makespan, r.makespan);
}

TEST(Greedy, PerfectBalanceOnHomogeneousUniformTasks) {
  GreedyScheduler greedy;
  const Schedule s = greedy.schedule(uniform_tasks(40, 2.0),
                                     std::vector<double>(8, 1.0));
  EXPECT_DOUBLE_EQ(s.makespan, 40.0 * 2.0 / 8.0);
}

TEST(Ga, ParamsValidation) {
  GaScheduler::Params params;
  EXPECT_NO_THROW(params.validate());
  params.population = 1;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params.population = 10;
  params.elites = 10;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params.elites = 2;
  params.mutation_rate = 1.5;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST(Ga, RejectsEmptyInputs) {
  GaScheduler ga;
  EXPECT_THROW(ga.schedule({}, {1.0}), std::invalid_argument);
  EXPECT_THROW(ga.schedule({1.0}, {}), std::invalid_argument);
}

TEST(Ga, IsDeterministicForFixedSeed) {
  GaScheduler::Params params;
  params.generations = 30;
  GaScheduler a(params);
  GaScheduler b(params);
  const auto tasks = uniform_tasks(50, 3.0);
  const std::vector<double> rates = {1.0, 2.0, 4.0};
  EXPECT_EQ(a.schedule(tasks, rates).assignment,
            b.schedule(tasks, rates).assignment);
}

TEST(Ga, NeverWorseThanGreedyWhenSeededWithIt) {
  GaScheduler ga;  // seed_with_greedy = true, elitism keeps it
  GreedyScheduler greedy;
  const auto tasks = uniform_tasks(120, 1'000'000.0);
  const auto rates = table2_rates();
  const double ga_makespan = ga.schedule(tasks, rates).makespan;
  const double greedy_makespan = greedy.schedule(tasks, rates).makespan;
  EXPECT_LE(ga_makespan, greedy_makespan * (1.0 + 1e-12));
}

TEST(Ga, ImprovesOnRandomInitialPopulation) {
  GaScheduler::Params params;
  params.seed_with_greedy = false;
  params.generations = 60;
  GaScheduler ga(params);
  const auto tasks = uniform_tasks(60, 5.0);
  const std::vector<double> rates = {1.0, 1.0, 3.0, 5.0};
  ga.schedule(tasks, rates);
  const auto& curve = ga.convergence();
  ASSERT_GE(curve.size(), 2u);
  EXPECT_LT(curve.back(), curve.front());
}

TEST(Ga, ConvergenceIsMonotoneWithElitism) {
  GaScheduler ga;  // elites >= 1 by default
  ga.schedule(uniform_tasks(40, 2.0), {1.0, 2.0, 3.0});
  const auto& curve = ga.convergence();
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1] + 1e-12);
  }
}

TEST(Ga, ApproachesRateProportionalLowerBound) {
  // Lower bound on makespan: total work / total rate.
  GaScheduler::Params params;
  params.generations = 200;
  GaScheduler ga(params);
  const auto tasks = uniform_tasks(100, 7.0);
  const std::vector<double> rates = {1.0, 2.0, 3.0, 4.0};
  const Schedule s = ga.schedule(tasks, rates);
  const double bound = 100.0 * 7.0 / (1.0 + 2.0 + 3.0 + 4.0);
  EXPECT_GE(s.makespan, bound - 1e-9);
  EXPECT_LE(s.makespan, bound * 1.15);  // within 15% of the bound
}

TEST(Ga, MoveMutationRateIsValidated) {
  GaScheduler::Params params;
  params.move_mutation_rate = -0.1;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params.move_mutation_rate = 1.1;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST(Ga, LoadAwareMutationBeatsRandomMutationOnTable2Fleet) {
  // The ablation behind the default: from a random population on the
  // 150-processor fleet, the GA with the load-aware move must strictly
  // beat the pure random-mutation GA of the paper's ref. [4].
  const auto chunks = chunk_plan(200'000'000, 250'000);  // 800 tasks
  const std::vector<double> sizes(chunks.begin(), chunks.end());
  const auto rates = table2_rates();
  ASSERT_EQ(rates.size(), 150u);

  GaScheduler::Params random_only;
  random_only.seed_with_greedy = false;
  random_only.generations = 120;
  random_only.move_mutation_rate = 0.0;
  GaScheduler::Params with_move = random_only;
  with_move.move_mutation_rate = 0.2;

  const double random_only_makespan =
      GaScheduler(random_only).schedule(sizes, rates).makespan;
  const double with_move_makespan =
      GaScheduler(with_move).schedule(sizes, rates).makespan;
  EXPECT_LT(with_move_makespan, random_only_makespan);
}

TEST(BestMoveDescent, ImprovesARateBlindAssignment) {
  const auto tasks = uniform_tasks(300, 1'000'000.0);
  const auto rates = table2_rates();
  RoundRobinScheduler rr;
  Schedule schedule = rr.schedule(tasks, rates);
  const double before = schedule.makespan;
  const std::size_t moves =
      best_move_descent(schedule.assignment, tasks, rates, 10'000);
  EXPECT_GT(moves, 0u);
  const double after = schedule_makespan(tasks, rates, schedule.assignment);
  EXPECT_LT(after, before);
}

TEST(BestMoveDescent, StopsAtASingleMoveLocalOptimum) {
  const std::vector<double> sizes = {4.0, 4.0, 4.0, 4.0};
  const std::vector<double> rates = {1.0, 1.0};
  std::vector<std::size_t> assignment = {0, 0, 1, 1};  // already balanced
  EXPECT_EQ(best_move_descent(assignment, sizes, rates, 100), 0u);
  EXPECT_EQ(assignment, (std::vector<std::size_t>{0, 0, 1, 1}));
}

TEST(BestMoveDescent, ValidatesInputs) {
  std::vector<std::size_t> assignment = {0};
  EXPECT_THROW(best_move_descent(assignment, {1.0, 2.0}, {1.0}, 10),
               std::invalid_argument);
  std::vector<std::size_t> bad_proc = {5};
  EXPECT_THROW(best_move_descent(bad_proc, {1.0}, {1.0}, 10),
               std::invalid_argument);
}

TEST(Ga, EliteDescentClosesTheGapToGreedyOnTable2Fleet) {
  // The ROADMAP gap: from a random population the GA (even with the
  // load-aware move mutation) plateaus above greedy LPT on the
  // 150-processor fleet. Best-move descent on the elites must close the
  // remaining distance: at worst greedy-level, typically below it.
  const auto chunks = chunk_plan(200'000'000, 250'000);  // 800 tasks
  const std::vector<double> sizes(chunks.begin(), chunks.end());
  const auto rates = table2_rates();

  GaScheduler::Params params;
  params.seed_with_greedy = false;
  params.generations = 120;
  params.elite_descent_moves = 16;
  const double with_descent =
      GaScheduler(params).schedule(sizes, rates).makespan;

  GaScheduler::Params no_descent = params;
  no_descent.elite_descent_moves = 0;
  const double without_descent =
      GaScheduler(no_descent).schedule(sizes, rates).makespan;

  const double greedy = GreedyScheduler().schedule(sizes, rates).makespan;
  EXPECT_LT(with_descent, without_descent);
  EXPECT_LE(with_descent, greedy * (1.0 + 1e-9));
}

TEST(Ga, DescentKeepsDeterminismAndMonotonicity) {
  GaScheduler::Params params;
  params.generations = 40;
  params.seed_with_greedy = false;
  params.elite_descent_moves = 8;
  GaScheduler a(params);
  GaScheduler b(params);
  const auto tasks = uniform_tasks(60, 3.0);
  const std::vector<double> rates = {1.0, 2.0, 4.0, 8.0};
  EXPECT_EQ(a.schedule(tasks, rates).assignment,
            b.schedule(tasks, rates).assignment);
  const auto& curve = a.convergence();
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1] + 1e-12);
  }
}

TEST(Ga, AssignmentUsesOnlyValidProcessors) {
  GaScheduler ga;
  const Schedule s = ga.schedule(uniform_tasks(30, 1.0), {1.0, 2.0});
  for (std::size_t p : s.assignment) EXPECT_LT(p, 2u);
  EXPECT_EQ(s.assignment.size(), 30u);
}

TEST(Schedulers, NamesAreStable) {
  EXPECT_EQ(RoundRobinScheduler{}.name(), "round-robin");
  EXPECT_EQ(GreedyScheduler{}.name(), "greedy-lpt");
  EXPECT_EQ(GaScheduler{}.name(), "genetic");
}

}  // namespace
}  // namespace phodis::dist
