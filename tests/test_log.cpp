// util::log coverage: level filtering, sink capture, the one-shot
// unknown-level warning, and concurrent emission (this test is in the
// TSan CI suite list, so the mutex discipline is race-checked for real).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/log.hpp"

namespace util = phodis::util;

namespace {

/// RAII capture of every emitted line; restores stderr + kInfo on exit.
class SinkCapture {
 public:
  SinkCapture() {
    util::set_log_sink([this](util::LogLevel level, const std::string& msg) {
      lines_.emplace_back(level, msg);
    });
  }
  ~SinkCapture() {
    util::set_log_sink({});
    util::set_log_level(util::LogLevel::kInfo);
  }

  const std::vector<std::pair<util::LogLevel, std::string>>& lines() const {
    return lines_;
  }

 private:
  std::vector<std::pair<util::LogLevel, std::string>> lines_;
};

TEST(Log, LevelFilteringDropsBelowThreshold) {
  SinkCapture capture;
  util::set_log_level(util::LogLevel::kWarn);
  util::log_debug() << "dropped debug";
  util::log_info() << "dropped info";
  util::log_warn() << "kept warn";
  util::log_error() << "kept error";
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_EQ(capture.lines()[0].first, util::LogLevel::kWarn);
  EXPECT_EQ(capture.lines()[0].second, "kept warn");
  EXPECT_EQ(capture.lines()[1].first, util::LogLevel::kError);
  EXPECT_EQ(capture.lines()[1].second, "kept error");
}

TEST(Log, OffSilencesEverything) {
  SinkCapture capture;
  util::set_log_level(util::LogLevel::kOff);
  util::log_error() << "even errors";
  EXPECT_TRUE(capture.lines().empty());
}

TEST(Log, SinkCapturesMessageBodyWithStreamedValues) {
  SinkCapture capture;
  util::log_info() << "photon " << 42 << " weight " << 0.5;
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].second, "photon 42 weight 0.5");
}

TEST(Log, EmptySinkRestoresDefaultWriter) {
  {
    SinkCapture capture;
    util::log_info() << "captured";
    ASSERT_EQ(capture.lines().size(), 1u);
  }
  // After restore this must not crash or deadlock (goes to stderr).
  util::log_info() << "back to stderr";
}

TEST(Log, ParseKnownLevels) {
  EXPECT_EQ(util::parse_log_level("debug"), util::LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("INFO"), util::LogLevel::kInfo);
  EXPECT_EQ(util::parse_log_level("Warn"), util::LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("warning"), util::LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("error"), util::LogLevel::kError);
  EXPECT_EQ(util::parse_log_level("off"), util::LogLevel::kOff);
  EXPECT_EQ(util::parse_log_level("none"), util::LogLevel::kOff);
}

TEST(Log, ParseUnknownLevelWarnsOnceAndDefaultsToInfo) {
  SinkCapture capture;
  util::detail::reset_parse_log_level_warning();
  EXPECT_EQ(util::parse_log_level("bogus"), util::LogLevel::kInfo);
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].first, util::LogLevel::kWarn);
  EXPECT_NE(capture.lines()[0].second.find("bogus"), std::string::npos);

  // Second unknown name: the warning does not repeat.
  EXPECT_EQ(util::parse_log_level("also-bogus"), util::LogLevel::kInfo);
  EXPECT_EQ(capture.lines().size(), 1u);

  // Known names never trip it.
  util::detail::reset_parse_log_level_warning();
  EXPECT_EQ(util::parse_log_level("debug"), util::LogLevel::kDebug);
  EXPECT_EQ(capture.lines().size(), 1u);
}

TEST(Log, ConcurrentEmissionIsRaceFreeAndLosesNothing) {
  SinkCapture capture;
  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLinesPerThread; ++i) {
        util::log_info() << "t" << t << " line " << i;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(capture.lines().size(),
            static_cast<std::size_t>(kThreads * kLinesPerThread));
}

}  // namespace
