// Tests for MonteCarloApp: the headline reproducibility property (serial
// == distributed, bitwise, under any worker count and fault injection)
// plus execution-option handling and the incremental result merger.
#include <gtest/gtest.h>

#include "core/app.hpp"
#include "core/merger.hpp"
#include "mc/presets.hpp"

namespace phodis::core {
namespace {

SimulationSpec small_spec(std::uint64_t photons = 4000) {
  SimulationSpec spec;
  // Light medium so the test suite stays fast.
  mc::OpticalProperties p;
  p.mua = 0.05;
  p.mus = 5.0;
  p.g = 0.8;
  p.n = 1.4;
  mc::LayeredMediumBuilder builder;
  builder.add_layer("top", p, 3.0);
  p.mua = 0.01;
  builder.add_semi_infinite_layer("bottom", p);
  spec.kernel.medium = builder.build();
  mc::DetectorSpec detector;
  detector.separation_mm = 5.0;
  detector.radius_mm = 2.0;
  spec.kernel.detector = detector;
  spec.photons = photons;
  spec.seed = 99;
  return spec;
}

TEST(ExecutionOptions, Validation) {
  ExecutionOptions options;
  options.workers = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.workers = 2;
  options.worker_death_probability = 1.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.worker_death_probability = 0.0;
  options.lease_duration_s = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
}

TEST(App, PlanChunksCoversBudgetExactly) {
  MonteCarloApp app(small_spec(1000));
  const auto chunks = app.plan_chunks(128, 1);
  std::uint64_t total = 0;
  for (auto c : chunks) total += c;
  EXPECT_EQ(total, 1000u);
  // Auto chunking gives each worker several pulls.
  const auto auto_chunks = app.plan_chunks(0, 4);
  EXPECT_GE(auto_chunks.size(), 8u);
}

TEST(App, SerialRunAccountsForAllPhotons) {
  MonteCarloApp app(small_spec(2000));
  const mc::SimulationTally tally = app.run_serial(500);
  EXPECT_EQ(tally.photons_launched(), 2000u);
  EXPECT_LT(tally.weight_conservation_error(), 1e-6 * 2000);
}

TEST(App, SerialIsChunkSizeInvariantStatistically) {
  // Different chunk sizes use different RNG stream layouts, so results
  // differ bitwise but must agree statistically.
  MonteCarloApp app(small_spec(20000));
  const double rd_small = app.run_serial(1000).diffuse_reflectance();
  const double rd_large = app.run_serial(10000).diffuse_reflectance();
  EXPECT_NEAR(rd_small, rd_large, 0.02);
}

TEST(App, DistributedMatchesSerialBitwise) {
  MonteCarloApp app(small_spec(3000));
  const mc::SimulationTally serial = app.run_serial(250);

  ExecutionOptions options;
  options.workers = 4;
  options.chunk_photons = 250;
  const RunSummary summary = app.run_distributed(options);

  EXPECT_EQ(summary.tally.photons_launched(), serial.photons_launched());
  // Bitwise identical: same chunks, same per-task streams, same merge order.
  EXPECT_EQ(summary.tally.diffuse_reflectance(),
            serial.diffuse_reflectance());
  EXPECT_EQ(summary.tally.absorbed_fraction(), serial.absorbed_fraction());
  EXPECT_EQ(summary.tally.mean_detected_pathlength(),
            serial.mean_detected_pathlength());
  EXPECT_EQ(summary.tally.photons_detected(), serial.photons_detected());
}

class WorkerCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorkerCountSweep, ResultIndependentOfWorkerCount) {
  MonteCarloApp app(small_spec(2000));
  ExecutionOptions options;
  options.workers = GetParam();
  options.chunk_photons = 200;
  const RunSummary summary = app.run_distributed(options);

  ExecutionOptions baseline;
  baseline.workers = 1;
  baseline.chunk_photons = 200;
  const RunSummary reference = app.run_distributed(baseline);

  EXPECT_EQ(summary.tally.diffuse_reflectance(),
            reference.tally.diffuse_reflectance());
  EXPECT_EQ(summary.tally.photons_detected(),
            reference.tally.photons_detected());
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerCountSweep,
                         ::testing::Values(1, 2, 3, 8));

TEST(App, FaultInjectionDoesNotChangeTheResult) {
  MonteCarloApp app(small_spec(2000));
  ExecutionOptions clean;
  clean.workers = 3;
  clean.chunk_photons = 200;
  const RunSummary a = app.run_distributed(clean);

  ExecutionOptions faulty = clean;
  faulty.transport_faults.drop_probability = 0.1;
  faulty.transport_faults.seed = 5;
  faulty.worker_death_probability = 0.15;
  faulty.lease_duration_s = 0.2;
  const RunSummary b = app.run_distributed(faulty);

  EXPECT_EQ(a.tally.diffuse_reflectance(), b.tally.diffuse_reflectance());
  EXPECT_EQ(a.tally.absorbed_fraction(), b.tally.absorbed_fraction());
  EXPECT_EQ(a.tally.photons_launched(), b.tally.photons_launched());
}

TEST(App, ReportsPlatformStatistics) {
  MonteCarloApp app(small_spec(1000));
  ExecutionOptions options;
  options.workers = 2;
  options.chunk_photons = 100;
  const RunSummary summary = app.run_distributed(options);
  EXPECT_EQ(summary.tasks, 10u);
  EXPECT_EQ(summary.manager_stats.completions, 10u);
  EXPECT_GT(summary.frames_sent, 20u);
  EXPECT_GT(summary.bytes_sent, 0u);
  EXPECT_GT(summary.wall_seconds, 0.0);
}

TEST(IncrementalTallyMerger, OutOfOrderFoldMatchesMergeResultsBitwise) {
  const SimulationSpec spec = small_spec(3000);
  const MonteCarloApp app(spec);
  const auto tasks = app.build_tasks(500, 1);
  std::map<std::uint64_t, std::vector<std::uint8_t>> results;
  for (const auto& task : tasks) {
    results.emplace(task.task_id,
                    Algorithm::execute(task.task_id, task.payload));
  }

  // Deliver in a scrambled arrival order; the reorder buffer must keep
  // the fold in task-id order and hence bitwise equal to merge_results.
  IncrementalTallyMerger merger(spec);
  const std::vector<std::uint64_t> arrival = {2, 0, 1, 5, 4, 3};
  ASSERT_EQ(arrival.size(), tasks.size());
  for (std::uint64_t id : arrival) merger.fold(id, results.at(id));
  EXPECT_EQ(merger.frontier(), tasks.size());
  EXPECT_EQ(merger.buffered_count(), 0u);
  EXPECT_EQ(merger.merged().to_bytes(),
            app.merge_results(results).to_bytes());
}

TEST(IncrementalTallyMerger, BuffersAheadOfTheFrontier) {
  const SimulationSpec spec = small_spec(1000);
  const MonteCarloApp app(spec);
  const auto tasks = app.build_tasks(500, 1);
  ASSERT_EQ(tasks.size(), 2u);
  IncrementalTallyMerger merger(spec);
  merger.fold(1, Algorithm::execute(1, tasks[1].payload));
  EXPECT_EQ(merger.frontier(), 0u);  // waiting for task 0
  EXPECT_EQ(merger.buffered_count(), 1u);
  merger.fold(0, Algorithm::execute(0, tasks[0].payload));
  EXPECT_EQ(merger.frontier(), 2u);
  EXPECT_EQ(merger.buffered_count(), 0u);
}

TEST(IncrementalTallyMerger, StateRoundTripResumesMidRun) {
  const SimulationSpec spec = small_spec(3000);
  const MonteCarloApp app(spec);
  const auto tasks = app.build_tasks(500, 1);
  std::map<std::uint64_t, std::vector<std::uint8_t>> results;
  for (const auto& task : tasks) {
    results.emplace(task.task_id,
                    Algorithm::execute(task.task_id, task.payload));
  }

  IncrementalTallyMerger first(spec);
  first.fold(0, results.at(0));
  first.fold(3, results.at(3));  // stays buffered across the checkpoint

  IncrementalTallyMerger resumed(spec);
  resumed.restore(first.state_bytes());
  EXPECT_EQ(resumed.frontier(), 1u);
  EXPECT_EQ(resumed.buffered_count(), 1u);
  resumed.fold(0, results.at(0));  // replay of a folded task: ignored
  for (std::uint64_t id : {1u, 2u, 4u, 5u}) resumed.fold(id, results.at(id));

  EXPECT_EQ(resumed.frontier(), tasks.size());
  EXPECT_EQ(resumed.merged().to_bytes(),
            app.merge_results(results).to_bytes());
}

TEST(IncrementalTallyMerger, RestoreRequiresFreshMerger) {
  const SimulationSpec spec = small_spec(1000);
  const MonteCarloApp app(spec);
  const auto tasks = app.build_tasks(500, 1);
  IncrementalTallyMerger merger(spec);
  merger.fold(0, Algorithm::execute(0, tasks[0].payload));
  EXPECT_THROW(merger.restore(merger.state_bytes()), std::logic_error);
}

TEST(App, GridsSurviveDistributionAndMerge) {
  SimulationSpec spec = small_spec(2000);
  spec.kernel.tally.enable_fluence_grid = true;
  spec.kernel.tally.fluence_spec = mc::GridSpec::cube(10, 10.0, 10.0);
  MonteCarloApp app(spec);

  const mc::SimulationTally serial = app.run_serial(250);
  ExecutionOptions options;
  options.workers = 3;
  options.chunk_photons = 250;
  const RunSummary distributed = app.run_distributed(options);

  ASSERT_NE(serial.fluence_grid(), nullptr);
  ASSERT_NE(distributed.tally.fluence_grid(), nullptr);
  EXPECT_EQ(distributed.tally.fluence_grid()->total(),
            serial.fluence_grid()->total());
}

}  // namespace
}  // namespace phodis::core
