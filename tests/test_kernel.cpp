// Behavioural tests of the Monte Carlo kernel: configuration validation,
// weight conservation, detection, gating, tracing, boundary models.
#include <gtest/gtest.h>

#include <cmath>

#include "mc/kernel.hpp"
#include "mc/presets.hpp"

namespace phodis::mc {
namespace {

OpticalProperties tissue_like() {
  OpticalProperties p;
  p.mua = 0.02;
  p.mus = 10.0;
  p.g = 0.9;
  p.n = 1.4;
  return p;
}

KernelConfig semi_infinite_config(double n_tissue = 1.4) {
  OpticalProperties p = tissue_like();
  p.n = n_tissue;
  KernelConfig config;
  config.medium = homogeneous_semi_infinite(p, 1.0);
  return config;
}

// ---------- configuration ----------------------------------------------------

TEST(KernelConfig, ParseBoundaryModel) {
  EXPECT_EQ(parse_boundary_model("probabilistic"),
            BoundaryModel::kProbabilistic);
  EXPECT_EQ(parse_boundary_model("Classical"), BoundaryModel::kClassical);
  EXPECT_THROW(parse_boundary_model("quantum"), std::invalid_argument);
  EXPECT_EQ(to_string(BoundaryModel::kClassical), "classical");
}

TEST(KernelConfig, ValidateCatchesBadSettings) {
  KernelConfig config = semi_infinite_config();
  config.max_interactions = 0;
  EXPECT_THROW(Kernel{config}, std::invalid_argument);

  config = semi_infinite_config();
  config.record_all_paths = true;  // without a path grid
  EXPECT_THROW(Kernel{config}, std::invalid_argument);

  config = semi_infinite_config();
  config.roulette.threshold = 2.0;
  EXPECT_THROW(Kernel{config}, std::invalid_argument);
}

TEST(KernelConfig, TallyLayerCountFollowsMedium) {
  KernelConfig config;
  config.medium = adult_head_model();
  const Kernel kernel(config);
  EXPECT_EQ(kernel.make_tally().layer_absorption().size(), 5u);
}

// ---------- conservation -----------------------------------------------------

struct ConservationCase {
  const char* name;
  double n_tissue;
  BoundaryModel model;
};

class ConservationSweep
    : public ::testing::TestWithParam<ConservationCase> {};

TEST_P(ConservationSweep, WeightLedgerBalances) {
  const ConservationCase& c = GetParam();
  KernelConfig config = semi_infinite_config(c.n_tissue);
  config.boundary_model = c.model;
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(17);
  kernel.run(20000, rng, tally);
  EXPECT_EQ(tally.photons_launched(), 20000u);
  // Ledger closes to floating-point accumulation error.
  EXPECT_LT(tally.weight_conservation_error(), 1e-6 * 20000);
  // All fractions are probabilities.
  for (double f : {tally.specular_reflectance(), tally.diffuse_reflectance(),
                   tally.transmittance(), tally.absorbed_fraction(),
                   tally.lost_fraction()}) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MediaAndModels, ConservationSweep,
    ::testing::Values(
        ConservationCase{"matched_prob", 1.0, BoundaryModel::kProbabilistic},
        ConservationCase{"matched_classical", 1.0, BoundaryModel::kClassical},
        ConservationCase{"mismatched_prob", 1.4,
                         BoundaryModel::kProbabilistic},
        ConservationCase{"mismatched_classical", 1.4,
                         BoundaryModel::kClassical}),
    [](const ::testing::TestParamInfo<ConservationCase>& info) {
      return info.param.name;
    });

TEST(Kernel, LayeredHeadConservation) {
  KernelConfig config;
  config.medium = adult_head_model();
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(11);
  kernel.run(10000, rng, tally);
  EXPECT_LT(tally.weight_conservation_error(), 1e-6 * 10000);
  // Everything that entered is somewhere.
  const double sum = tally.specular_reflectance() +
                     tally.diffuse_reflectance() + tally.transmittance() +
                     tally.absorbed_fraction() + tally.lost_fraction();
  EXPECT_NEAR(sum, 1.0, 1e-2);  // roulette adds sampling noise only
}

// ---------- deterministic degenerate media ----------------------------------

TEST(Kernel, PureAbsorberFollowsBeerLambert) {
  // No scattering, matched boundaries: transmittance through a slab of
  // thickness d is exactly exp(-mua d); nothing reflects diffusely.
  OpticalProperties p;
  p.mua = 0.5;
  p.mus = 0.0;
  p.g = 0.0;
  p.n = 1.0;
  KernelConfig config;
  config.medium = homogeneous_slab(p, 4.0, 1.0);
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(3);
  kernel.run(50000, rng, tally);
  EXPECT_NEAR(tally.transmittance(), std::exp(-0.5 * 4.0), 5e-3);
  EXPECT_DOUBLE_EQ(tally.diffuse_reflectance(), 0.0);
  EXPECT_DOUBLE_EQ(tally.specular_reflectance(), 0.0);
  EXPECT_NEAR(tally.absorbed_fraction(), 1.0 - std::exp(-2.0), 5e-3);
}

TEST(Kernel, SpecularReflectanceAtLaunchMatchesFresnel) {
  KernelConfig config = semi_infinite_config(1.5);
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(5);
  kernel.run(1000, rng, tally);
  EXPECT_NEAR(tally.specular_reflectance(), 0.04, 1e-12);
}

TEST(Kernel, MaxInteractionsSafetyValve) {
  // A lossless scattering medium would bounce forever; the valve reports
  // the stuck weight as lost instead of hanging.
  OpticalProperties p;
  p.mua = 0.0;
  p.mus = 10.0;
  p.g = 0.0;
  p.n = 1.0;
  KernelConfig config;
  config.medium = homogeneous_semi_infinite(p, 1.0);
  config.max_interactions = 50;
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(6);
  kernel.run(2000, rng, tally);
  EXPECT_GT(tally.lost_fraction(), 0.0);
  EXPECT_LT(tally.weight_conservation_error(), 1e-9 * 2000);
}

// ---------- detection & gating -----------------------------------------------

KernelConfig detection_config() {
  // A light diffusive medium (µs' = 1/mm, µa = 0.01/mm, matched boundary):
  // detections at a 10 mm separation are plentiful, so these behavioural
  // tests stay fast. (White matter's µt = 91/mm would need paper-scale
  // photon counts for the same statistics.)
  OpticalProperties p;
  p.mua = 0.01;
  p.mus = 10.0;
  p.g = 0.9;
  p.n = 1.0;
  KernelConfig config;
  config.medium = homogeneous_semi_infinite(p, 1.0);
  DetectorSpec detector;
  detector.separation_mm = 10.0;
  detector.radius_mm = 2.0;
  config.detector = detector;
  return config;
}

TEST(Kernel, DetectsSomePhotons) {
  const Kernel kernel(detection_config());
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(7);
  kernel.run(50000, rng, tally);
  EXPECT_GT(tally.photons_detected(), 0u);
  EXPECT_GT(tally.mean_detected_pathlength(), 10.0);  // longer than SD line
  EXPECT_LE(tally.detected_fraction(), tally.diffuse_reflectance());
}

TEST(Kernel, DetectedPathlengthExceedsGeometricDistance) {
  // The differential-pathlength property: scattering makes detected paths
  // much longer than the straight-line separation.
  const Kernel kernel(detection_config());
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(8);
  kernel.run(50000, rng, tally);
  EXPECT_GT(tally.mean_detected_pathlength(), 2.0 * 10.0);
}

TEST(Kernel, PathlengthGateReducesDetections) {
  KernelConfig open_config = detection_config();
  KernelConfig gated_config = detection_config();
  // Mean detected pathlength here is ~DPF * 10mm ~ 85mm; an 80mm gate
  // rejects the long-path tail but keeps plenty of detections.
  gated_config.detector->gate.min_mm = 0.0;
  gated_config.detector->gate.max_mm = 80.0;

  util::Xoshiro256pp rng_a(9);
  util::Xoshiro256pp rng_b(9);
  const Kernel open_kernel(open_config);
  const Kernel gated_kernel(gated_config);
  SimulationTally open_tally = open_kernel.make_tally();
  SimulationTally gated_tally = gated_kernel.make_tally();
  open_kernel.run(50000, rng_a, open_tally);
  gated_kernel.run(50000, rng_b, gated_tally);

  EXPECT_LT(gated_tally.photons_detected(), open_tally.photons_detected());
  EXPECT_GT(gated_tally.photons_detected(), 0u);
  // Same seed, same physics: total reflectance unchanged by gating.
  EXPECT_DOUBLE_EQ(gated_tally.diffuse_reflectance(),
                   open_tally.diffuse_reflectance());
  // Gated mean pathlength is inside the gate.
  EXPECT_LE(gated_tally.mean_detected_pathlength(), 80.0);
}

TEST(Kernel, GateWindowSelectsPathlengthBand) {
  KernelConfig config = detection_config();
  config.detector->gate.min_mm = 50.0;
  config.detector->gate.max_mm = 100.0;
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(10);
  kernel.run(100000, rng, tally);
  if (tally.photons_detected() > 0) {
    EXPECT_GE(tally.mean_detected_pathlength(), 50.0);
    EXPECT_LE(tally.mean_detected_pathlength(), 100.0);
  }
}

TEST(Kernel, DetectorFurtherAwaySeesFewerPhotons) {
  auto detected_at = [](double separation) {
    KernelConfig config = detection_config();
    config.detector->separation_mm = separation;
    const Kernel kernel(config);
    SimulationTally tally = kernel.make_tally();
    util::Xoshiro256pp rng(12);
    kernel.run(80000, rng, tally);
    return tally.detected_fraction();
  };
  const double near = detected_at(5.0);
  const double mid = detected_at(15.0);
  const double far = detected_at(30.0);
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, far);
}

// ---------- path grid --------------------------------------------------------

TEST(Kernel, PathGridOnlyFillsOnDetection) {
  KernelConfig config = detection_config();
  config.tally.enable_path_grid = true;
  config.tally.path_spec = GridSpec::cube(20, 15.0, 20.0);
  // Make detection impossible: gate window nothing can satisfy.
  config.detector->gate.min_mm = 1e7;
  config.detector->gate.max_mm = 1e8;
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(13);
  kernel.run(5000, rng, tally);
  EXPECT_EQ(tally.photons_detected(), 0u);
  EXPECT_DOUBLE_EQ(tally.path_grid()->total(), 0.0);
}

TEST(Kernel, PathGridFillsWhenDetecting) {
  KernelConfig config = detection_config();
  config.tally.enable_path_grid = true;
  config.tally.path_spec = GridSpec::cube(20, 15.0, 20.0);
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(14);
  kernel.run(50000, rng, tally);
  ASSERT_GT(tally.photons_detected(), 0u);
  EXPECT_GT(tally.path_grid()->total(), 0.0);
}

TEST(Kernel, RecordAllPathsFillsWithoutDetector) {
  KernelConfig config;
  config.medium = homogeneous_white_matter();
  config.tally.enable_path_grid = true;
  config.tally.path_spec = GridSpec::cube(20, 15.0, 20.0);
  config.record_all_paths = true;
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(15);
  kernel.run(2000, rng, tally);
  EXPECT_GT(tally.path_grid()->total(), 0.0);
}

TEST(Kernel, FluenceGridAccumulatesAbsorption) {
  KernelConfig config;
  config.medium = homogeneous_white_matter();
  config.tally.enable_fluence_grid = true;
  config.tally.fluence_spec = GridSpec::cube(20, 15.0, 20.0);
  const Kernel kernel(config);
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(16);
  kernel.run(5000, rng, tally);
  // The grid holds (most of) the absorbed weight: deposits outside the
  // window are the only loss.
  EXPECT_GT(tally.fluence_grid()->total(), 0.0);
  EXPECT_LE(tally.fluence_grid()->total(),
            tally.absorbed_fraction() * 5000 + 1e-9);
}

// ---------- boundary models --------------------------------------------------

TEST(Kernel, BoundaryModelsAgreeOnAverages) {
  KernelConfig prob_config = semi_infinite_config(1.4);
  KernelConfig classical_config = semi_infinite_config(1.4);
  classical_config.boundary_model = BoundaryModel::kClassical;

  const Kernel prob_kernel(prob_config);
  const Kernel classical_kernel(classical_config);
  SimulationTally prob_tally = prob_kernel.make_tally();
  SimulationTally classical_tally = classical_kernel.make_tally();
  util::Xoshiro256pp rng_a(21);
  util::Xoshiro256pp rng_b(22);
  prob_kernel.run(60000, rng_a, prob_tally);
  classical_kernel.run(60000, rng_b, classical_tally);

  // Both are unbiased estimators of the same physical reflectance.
  EXPECT_NEAR(prob_tally.diffuse_reflectance(),
              classical_tally.diffuse_reflectance(), 0.01);
  EXPECT_NEAR(prob_tally.absorbed_fraction(),
              classical_tally.absorbed_fraction(), 0.01);
}

// ---------- tracing ----------------------------------------------------------

TEST(Kernel, TraceProducesVertices) {
  const Kernel kernel(semi_infinite_config(1.4));
  util::Xoshiro256pp rng(23);
  const PhotonTrace trace = kernel.trace(rng);
  EXPECT_GE(trace.vertices.size(), 2u);
  // First vertex is the launch point on the surface.
  EXPECT_DOUBLE_EQ(trace.vertices.front().z, 0.0);
  // All vertices stay inside the tissue half-space (small fp slack).
  for (const util::Vec3& v : trace.vertices) {
    EXPECT_GE(v.z, -1e-9);
  }
}

TEST(Kernel, TraceRespectsVertexCap) {
  const Kernel kernel(semi_infinite_config(1.4));
  util::Xoshiro256pp rng(24);
  const PhotonTrace trace = kernel.trace(rng, 5);
  EXPECT_LE(trace.vertices.size(), 5u);
}

// ---------- determinism ------------------------------------------------------

TEST(Kernel, RunsAreSeedDeterministic) {
  const Kernel kernel(detection_config());
  SimulationTally a = kernel.make_tally();
  SimulationTally b = kernel.make_tally();
  util::Xoshiro256pp rng_a(77);
  util::Xoshiro256pp rng_b(77);
  kernel.run(20000, rng_a, a);
  kernel.run(20000, rng_b, b);
  EXPECT_DOUBLE_EQ(a.diffuse_reflectance(), b.diffuse_reflectance());
  EXPECT_DOUBLE_EQ(a.absorbed_fraction(), b.absorbed_fraction());
  EXPECT_EQ(a.photons_detected(), b.photons_detected());
  EXPECT_DOUBLE_EQ(a.mean_detected_pathlength(),
                   b.mean_detected_pathlength());
}

TEST(Kernel, DepthHistogramTracksMaxDepth) {
  const Kernel kernel(semi_infinite_config(1.4));
  SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(25);
  kernel.run(5000, rng, tally);
  // One max-depth sample per launched photon.
  EXPECT_NEAR(tally.depth_histogram().total(), 5000.0, 1e-9);
  EXPECT_GT(tally.depth_histogram().mean(), 0.0);
}

}  // namespace
}  // namespace phodis::mc
