// Tests for the fleet descriptions (Table 2) and the discrete-event
// cluster simulator, including the Fig. 2 speedup series properties.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/fleet.hpp"
#include "cluster/simulator.hpp"

namespace phodis::cluster {
namespace {

// ---------- fleets -----------------------------------------------------------

TEST(Fleet, Table2RowsSumTo150Machines) {
  std::uint32_t total = 0;
  for (const auto& row : table2_rows()) total += row.count;
  EXPECT_EQ(total, 150u);
  EXPECT_EQ(table2_fleet().size(), 150u);
}

TEST(Fleet, Table2RowContentsMatchPaper) {
  const auto& rows = table2_rows();
  ASSERT_EQ(rows.size(), 8u);
  EXPECT_EQ(rows[0].count, 91u);
  EXPECT_DOUBLE_EQ(rows[0].mflops_lo, 28.0);
  EXPECT_DOUBLE_EQ(rows[0].mflops_hi, 31.0);
  EXPECT_EQ(rows[0].cpu, "P3 600MHz");
  EXPECT_EQ(rows[1].count, 50u);
  EXPECT_EQ(rows[1].ram_mb, 512u);
  EXPECT_EQ(rows[3].os, "Windows XP");
  EXPECT_EQ(rows[7].os, "FreeBSD");
}

TEST(Fleet, Table2RatesStayInsideRowRanges) {
  const auto fleet = table2_fleet();
  // First 91 nodes are the P3 600MHz row with rates in [28, 31].
  for (std::size_t i = 0; i < 91; ++i) {
    EXPECT_GE(fleet[i].mflops, 28.0);
    EXPECT_LE(fleet[i].mflops, 31.0);
  }
}

TEST(Fleet, Table2IsDeterministic) {
  const auto a = table2_fleet();
  const auto b = table2_fleet();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_DOUBLE_EQ(a[i].mflops, b[i].mflops);
  }
}

TEST(Fleet, HomogeneousFleetIsUniform) {
  const auto fleet = homogeneous_p4_fleet(60);
  EXPECT_EQ(fleet.size(), 60u);
  for (const auto& node : fleet) {
    EXPECT_DOUBLE_EQ(node.mflops, 200.0);
    EXPECT_EQ(node.ram_mb, 512u);
  }
  EXPECT_THROW(homogeneous_p4_fleet(0), std::invalid_argument);
}

TEST(Fleet, AggregateMflops) {
  EXPECT_DOUBLE_EQ(aggregate_mflops(homogeneous_p4_fleet(10)), 2000.0);
  // Table 2 aggregate: dominated by the 50 P4s and 91 P3s.
  const double total = aggregate_mflops(table2_fleet());
  EXPECT_GT(total, 10000.0);
  EXPECT_LT(total, 20000.0);
}

// ---------- simulator config --------------------------------------------------

ClusterConfig small_config(std::size_t nodes = 4) {
  ClusterConfig config;
  config.fleet = homogeneous_p4_fleet(nodes);
  config.total_photons = 10'000'000;
  config.chunk_photons = 500'000;
  config.load.min_availability = 1.0;
  config.load.max_availability = 1.0;
  return config;
}

TEST(ClusterConfig, Validation) {
  ClusterConfig config = small_config();
  EXPECT_NO_THROW(config.validate());
  config.fleet.clear();
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.total_photons = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.load.min_availability = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.cost.flops_per_photon = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(LoadModel, Validation) {
  LoadModel load;
  load.min_availability = 0.8;
  load.max_availability = 0.7;
  EXPECT_THROW(load.validate(), std::invalid_argument);
  load.max_availability = 1.5;
  EXPECT_THROW(load.validate(), std::invalid_argument);
}

// ---------- simulation behaviour ----------------------------------------------

TEST(Simulator, IsDeterministic) {
  ClusterConfig config = small_config();
  config.load.min_availability = 0.7;  // stochastic but seeded
  const ClusterReport a = ClusterSimulator(config).run();
  const ClusterReport b = ClusterSimulator(config).run();
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.tasks, b.tasks);
}

TEST(Simulator, CompletesAllTasks) {
  const ClusterConfig config = small_config();
  const ClusterReport report = ClusterSimulator(config).run();
  EXPECT_EQ(report.tasks, 20u);  // 10M / 500k
  std::uint64_t photons = 0;
  for (const auto& node : report.nodes) photons += node.photons_computed;
  EXPECT_EQ(photons, config.total_photons);
}

TEST(Simulator, MakespanShrinksWithMoreNodes) {
  const double t1 = ClusterSimulator(small_config(1)).run().makespan_s;
  const double t4 = ClusterSimulator(small_config(4)).run().makespan_s;
  const double t16 = ClusterSimulator(small_config(16)).run().makespan_s;
  EXPECT_GT(t1, t4);
  EXPECT_GT(t4, t16);
}

TEST(Simulator, SingleNodeMakespanMatchesHandComputation) {
  ClusterConfig config = small_config(1);
  config.network.latency_s = 0.0;
  config.network.bandwidth_bps = 1e18;  // zero transfer time
  config.cost.assign_cost_s = 0.0;
  config.cost.merge_cost_s = 0.0;
  const ClusterReport report = ClusterSimulator(config).run();
  // 10M photons * 1e5 flop / (200 Mflop/s) = 1e12 / 2e8 = 5000 s.
  EXPECT_NEAR(report.makespan_s, 5000.0, 1e-6);
}

TEST(Simulator, ServerBusyTimeCountsAssignAndMerge) {
  ClusterConfig config = small_config(2);
  const ClusterReport report = ClusterSimulator(config).run();
  const double expected =
      report.tasks * (config.cost.assign_cost_s + config.cost.merge_cost_s);
  EXPECT_NEAR(report.server_busy_s, expected, 1e-9);
  EXPECT_GT(report.server_utilisation(), 0.0);
  EXPECT_LT(report.server_utilisation(), 1.0);
}

TEST(Simulator, StochasticLoadSlowsThingsDown) {
  ClusterConfig dedicated = small_config(8);
  ClusterConfig loaded = small_config(8);
  loaded.load.min_availability = 0.5;
  loaded.load.max_availability = 0.7;
  EXPECT_LT(ClusterSimulator(dedicated).run().makespan_s,
            ClusterSimulator(loaded).run().makespan_s);
}

TEST(Simulator, HeterogeneousFleetFasterNodesDoMoreWork) {
  ClusterConfig config;
  config.fleet = table2_fleet();
  config.total_photons = 100'000'000;
  config.chunk_photons = 500'000;
  config.load.min_availability = 1.0;
  config.load.max_availability = 1.0;
  const ClusterReport report = ClusterSimulator(config).run();
  // A P4 2.4GHz (~200 Mflop/s, index 91..140) must complete more photons
  // than a P2 266MHz (15 Mflop/s, index 141..144).
  EXPECT_GT(report.nodes[100].photons_computed,
            report.nodes[142].photons_computed);
}

TEST(Simulator, StaticScheduleRunsToCompletion) {
  ClusterConfig config = small_config(4);
  config.mode = ScheduleMode::kStatic;
  const ClusterReport report = ClusterSimulator(config).run();
  EXPECT_EQ(report.tasks, 20u);
}

TEST(Simulator, StaticGreedyCloseToDynamicOnDedicatedFleet) {
  // With no load variance, static greedy and dynamic self-scheduling land
  // within a chunk-duration of each other.
  ClusterConfig config = small_config(5);
  dist::GreedyScheduler greedy;
  const double dynamic_t = ClusterSimulator(config).run().makespan_s;
  const double static_t =
      ClusterSimulator(config).run_static(greedy).makespan_s;
  EXPECT_NEAR(dynamic_t, static_t, dynamic_t * 0.3);
}

// ---------- speedup series (Fig. 2 properties) ---------------------------------

TEST(SpeedupSeries, IsMonotoneAndEfficient) {
  ClusterConfig base = small_config(1);
  // Enough chunks that each of 60 processors gets >= 13 pulls; with only
  // ~3 pulls each, the end-of-run straggler tail alone costs ~15%.
  base.total_photons = 200'000'000;
  base.chunk_photons = 250'000;
  const auto series = speedup_series(base, 60, {1, 2, 4, 8, 16, 32, 60});
  ASSERT_EQ(series.size(), 7u);
  EXPECT_NEAR(series[0].speedup, 1.0, 1e-9);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].speedup, series[i - 1].speedup);
  }
  for (const auto& point : series) {
    EXPECT_GT(point.efficiency, 0.85);
    EXPECT_LE(point.efficiency, 1.0 + 1e-9);
  }
}

TEST(SpeedupSeries, EfficiencyAt60IsNearPaperValue) {
  // The paper reports >= 97% efficiency at 60 homogeneous processors.
  ClusterConfig base = small_config(1);
  base.total_photons = 1'000'000'000;
  base.chunk_photons = 1'000'000;
  const auto series = speedup_series(base, 60, {60});
  ASSERT_EQ(series.size(), 1u);
  EXPECT_GT(series[0].efficiency, 0.95);
  EXPECT_LE(series[0].efficiency, 1.0);
}

TEST(SpeedupSeries, SkipsInvalidCounts) {
  const auto series = speedup_series(small_config(1), 10, {0, 5, 100});
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].processors, 5u);
}

TEST(Simulator, NodeUtilisationIsReported) {
  const ClusterReport report = ClusterSimulator(small_config(4)).run();
  EXPECT_GT(report.mean_node_utilisation(), 0.5);
  EXPECT_LE(report.mean_node_utilisation(), 1.0);
}

}  // namespace
}  // namespace phodis::cluster
