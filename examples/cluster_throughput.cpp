// Cluster-throughput walkthrough: the distributed side of the paper from
// both angles —
//   1. a *real* run on the in-process platform with fault injection,
//      showing the DataManager statistics a platform operator sees;
//   2. the *simulated* fleets: speedup on 60 homogeneous P4s (Fig. 2) and
//      a production projection on the 150-client Table 2 fleet.
//
// Run: ./cluster_throughput [--photons 60000] [--workers 4] [--threads 1]
#include <iostream>

#include "cluster/fleet.hpp"
#include "cluster/simulator.hpp"
#include "core/app.hpp"
#include "dist/scheduler.hpp"
#include "mc/presets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace phodis;
  const util::CliArgs args(argc, argv);
  const auto photons =
      static_cast<std::uint64_t>(args.get_int("photons", 60'000));
  const auto workers =
      static_cast<std::size_t>(args.get_int("workers", 4));

  // --- 1. Real platform run with injected faults ----------------------------
  std::cout << "== Real distributed run (loopback transport, " << workers
            << " workers, 5% frame loss, 10% worker deaths) ==\n\n";
  core::SimulationSpec spec;
  mc::LayeredMediumBuilder builder;
  builder.add_semi_infinite_layer(
      "grey matter",
      mc::OpticalProperties::from_reduced(0.036, 2.2, 0.9, 1.4));
  spec.kernel.medium = builder.build();
  spec.photons = photons;
  spec.seed = 11;

  core::MonteCarloApp app(spec);
  core::ExecutionOptions options;
  options.workers = workers;
  // Pin the chunk size so the serial cross-check below uses the *same*
  // task plan (auto-chunking scales with worker count).
  options.chunk_photons = dist::suggest_chunk_size(photons, workers);
  options.transport_faults.drop_probability = 0.05;
  options.worker_death_probability = 0.10;
  options.lease_duration_s = 1.0;
  // Worker-side shard threads: changes wall time only, never the bits.
  options.threads_per_worker =
      static_cast<std::size_t>(args.get_int("threads", 1));
  const core::RunSummary summary = app.run_distributed(options);

  util::TextTable stats({"metric", "value"});
  stats.add_row({"tasks", std::to_string(summary.tasks)});
  stats.add_row({"completions",
                 std::to_string(summary.manager_stats.completions)});
  stats.add_row({"re-issued leases",
                 std::to_string(summary.manager_stats.lease_expirations)});
  stats.add_row({"duplicate results discarded",
                 std::to_string(summary.manager_stats.duplicate_results)});
  stats.add_row({"frames sent / dropped",
                 std::to_string(summary.frames_sent) + " / " +
                     std::to_string(summary.frames_dropped)});
  stats.add_row({"workers died", std::to_string(summary.workers_died)});
  stats.add_row({"wall seconds",
                 util::format_double(summary.wall_seconds, 4)});
  stats.add_row({"diffuse reflectance",
                 util::format_double(summary.tally.diffuse_reflectance(), 6)});
  stats.print(std::cout);

  const mc::SimulationTally serial = app.run_serial(options.chunk_photons);
  std::cout << "\nserial re-run matches distributed bitwise: "
            << (serial.diffuse_reflectance() ==
                        summary.tally.diffuse_reflectance()
                    ? "yes"
                    : "NO")
            << "\n\n";

  // --- 2. Simulated fleets ----------------------------------------------------
  std::cout << "== Simulated fleets (discrete-event model) ==\n\n";
  cluster::ClusterConfig homogeneous;
  homogeneous.fleet = cluster::homogeneous_p4_fleet(1);
  homogeneous.total_photons = 1'000'000'000;
  homogeneous.chunk_photons = 1'000'000;
  homogeneous.load.min_availability = 0.9;
  const auto series =
      cluster::speedup_series(homogeneous, 60, {1, 15, 30, 60});
  util::TextTable fleet_table({"processors", "hours", "speedup",
                               "efficiency"});
  for (const auto& point : series) {
    fleet_table.add_row({std::to_string(point.processors),
                         util::format_double(point.makespan_s / 3600.0, 4),
                         util::format_double(point.speedup, 4),
                         util::format_double(point.efficiency, 4)});
  }
  fleet_table.print(std::cout);

  cluster::ClusterConfig production;
  production.fleet = cluster::table2_fleet();
  production.total_photons = 1'000'000'000;
  production.chunk_photons = 250'000;
  const auto report = cluster::ClusterSimulator(production).run();
  std::cout << "\nTable 2 fleet (150 clients, non-dedicated): 1e9 photons "
               "in "
            << report.makespan_s / 3600.0 << " hours (paper: ~2 h)\n";
  return 0;
}
