// The CSF effect — the paper's §2: "the cerebrospinal fluid, a layer of
// low scattering properties 'sandwiched' between highly scattering tissue
// ... has a significant effect on light propagation" (after Okada & Delpy
// 2003). This example simulates the Table 1 head model twice — once as
// printed, once with the CSF layer's optics replaced by grey-matter-like
// scattering — and compares where the light goes.
//
// Run: ./csf_effect [--photons 60000]
#include <cmath>
#include <iostream>

#include "core/app.hpp"
#include "mc/presets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace phodis;

/// Table 1 head model, optionally with the CSF layer's optical properties
/// overridden by a highly scattering surrogate (same thickness, so the
/// geometry is identical and only the "clear layer" effect differs).
mc::LayeredMedium head_model(bool clear_csf) {
  const auto& rows = mc::table1_rows();
  mc::LayeredMediumBuilder builder;
  builder.ambient_above(1.0).ambient_below(1.0);
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
    mc::OpticalProperties props = mc::OpticalProperties::from_reduced(
        rows[i].mua_per_mm, rows[i].mus_prime_per_mm, 0.9, 1.4);
    if (rows[i].tissue == "CSF" && !clear_csf) {
      // Replace the near-transparent CSF with grey-matter-like scattering.
      props = mc::OpticalProperties::from_reduced(rows[i].mua_per_mm, 2.2,
                                                  0.9, 1.4);
    }
    builder.add_layer(rows[i].tissue, props, rows[i].thickness_used_mm);
  }
  builder.add_semi_infinite_layer(
      rows.back().tissue,
      mc::OpticalProperties::from_reduced(rows.back().mua_per_mm,
                                          rows.back().mus_prime_per_mm, 0.9,
                                          1.4));
  return builder.build();
}

struct Outcome {
  double grey_abs = 0.0;
  double white_abs = 0.0;
  double reach_grey = 0.0;   // photons with max depth >= 12 mm
  double reach_white = 0.0;  // photons with max depth >= 16 mm
  double detected = 0.0;
};

Outcome simulate(bool clear_csf, std::uint64_t photons) {
  core::SimulationSpec spec;
  spec.kernel.medium = head_model(clear_csf);
  mc::DetectorSpec detector;
  detector.separation_mm = 30.0;
  detector.radius_mm = 2.5;
  spec.kernel.detector = detector;
  spec.kernel.tally.depth_max_mm = 40.0;
  spec.photons = photons;
  spec.seed = 33;
  core::MonteCarloApp app(spec);
  const mc::SimulationTally tally = app.run_serial();

  Outcome outcome;
  const double launched = static_cast<double>(tally.photons_launched());
  outcome.grey_abs = tally.absorbed_weight(3) / launched;
  outcome.white_abs = tally.absorbed_weight(4) / launched;
  const auto& depth = tally.depth_histogram();
  double reach_grey = 0.0;
  double reach_white = 0.0;
  for (std::size_t i = 0; i < depth.bin_count(); ++i) {
    if (depth.bin_center(i) >= 12.0) reach_grey += depth.count(i);
    if (depth.bin_center(i) >= 16.0) reach_white += depth.count(i);
  }
  outcome.reach_grey = (reach_grey + depth.overflow()) / depth.total();
  outcome.reach_white = (reach_white + depth.overflow()) / depth.total();
  outcome.detected = static_cast<double>(tally.photons_detected());
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto photons =
      static_cast<std::uint64_t>(args.get_int("photons", 60'000));

  std::cout << "CSF effect study (paper Sect. 2 / Okada & Delpy): "
            << photons << " photons per model\n\n";

  const Outcome with_csf = simulate(true, photons);
  const Outcome without_csf = simulate(false, photons);

  util::TextTable table({"quantity", "clear CSF (Table 1)",
                         "scattering 'CSF'"});
  auto row = [&](const char* label, double a, double b) {
    table.add_row({label, util::format_double(a, 5),
                   util::format_double(b, 5)});
  };
  row("grey-matter absorption", with_csf.grey_abs, without_csf.grey_abs);
  row("white-matter absorption", with_csf.white_abs, without_csf.white_abs);
  row("photons reaching grey (z>=12mm)", with_csf.reach_grey,
      without_csf.reach_grey);
  row("photons reaching white (z>=16mm)", with_csf.reach_white,
      without_csf.reach_white);
  row("detected at 30mm", with_csf.detected, without_csf.detected);
  table.print(std::cout);

  std::cout << "\n(the low-scattering CSF acts as a light guide under the "
               "skull: photons that reach it spread laterally and shuttle "
               "into the grey matter instead of being scattered straight "
               "back — compare the reach and absorption columns)\n";
  return 0;
}
