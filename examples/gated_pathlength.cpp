// Gated differential pathlengths — the paper's pulsed source/detector
// feature. Shows the detected-pathlength distribution and what different
// gate windows select, including the banana-depth consequence: late gates
// (long paths) correspond to deeper interrogation.
//
// Run: ./gated_pathlength [--photons 200000] [--separation 10]
#include <cmath>
#include <iostream>
#include <limits>

#include "analysis/banana.hpp"
#include "core/app.hpp"
#include "core/experiments.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace phodis;
  const util::CliArgs args(argc, argv);
  const auto photons =
      static_cast<std::uint64_t>(args.get_int("photons", 200'000));
  const double separation = args.get_double("separation", 10.0);

  // Diffusive medium with plentiful detections.
  const mc::OpticalProperties props =
      mc::OpticalProperties::from_reduced(0.01, 1.0, 0.9, 1.0);

  auto make_spec = [&](double gate_lo, double gate_hi) {
    core::SimulationSpec spec = core::fig3_banana_spec(
        photons, 40, separation, 21);
    mc::LayeredMediumBuilder builder;
    builder.add_semi_infinite_layer("tissue", props);
    spec.kernel.medium = builder.build();
    spec.kernel.detector->gate.min_mm = gate_lo;
    spec.kernel.detector->gate.max_mm = gate_hi;
    return spec;
  };

  std::cout << "Gated pathlength demo: " << photons
            << " photons, separation " << separation << " mm\n\n";

  // Open-gate run for the distribution.
  core::MonteCarloApp open_app(
      make_spec(0.0, std::numeric_limits<double>::infinity()));
  const mc::SimulationTally open_tally = open_app.run_serial();
  const auto& hist = open_tally.pathlength_histogram();
  std::cout << "detected (ungated): " << open_tally.photons_detected()
            << ", mean path " << open_tally.mean_detected_pathlength()
            << " mm\n\npathlength distribution (one '#' ~ 2% of peak):\n";
  // Coarse ASCII histogram over the central 20 bins around the median.
  const double median = hist.quantile(0.5);
  double peak = 0.0;
  for (std::size_t i = 0; i < hist.bin_count(); ++i) {
    peak = std::max(peak, hist.count(i));
  }
  for (std::size_t i = 0; i < hist.bin_count(); i += 10) {
    double group = 0.0;
    for (std::size_t j = i; j < std::min(i + 10, hist.bin_count()); ++j) {
      group += hist.count(j);
    }
    if (group <= 0.0) continue;
    const int bars =
        static_cast<int>(50.0 * group / (peak * 10.0) + 0.5);
    std::cout << "  " << util::format_double(hist.bin_lo(i), 4) << "-"
              << util::format_double(hist.bin_hi(std::min(
                                         i + 9, hist.bin_count() - 1)),
                                     4)
              << " mm " << std::string(static_cast<std::size_t>(bars), '#')
              << "\n";
  }

  // Early / middle / late gates and the depth each one interrogates.
  std::cout << "\ngate windows (optical pathlength) and interrogated "
               "depth:\n\n";
  util::TextTable table({"gate (mm)", "detected", "mean path (mm)",
                         "banana mid depth (mm)"});
  struct Window {
    double lo, hi;
    const char* label;
  };
  const Window windows[] = {
      {0.0, median, "early"},
      {median, 2.0 * median, "middle"},
      {2.0 * median, std::numeric_limits<double>::infinity(), "late"},
  };
  for (const Window& window : windows) {
    core::MonteCarloApp app(make_spec(window.lo, window.hi));
    const mc::SimulationTally tally = app.run_serial();
    double depth = 0.0;
    if (tally.photons_detected() > 0) {
      depth = analysis::banana_metrics(*tally.path_grid(), separation)
                  .midpoint_mean_depth_mm;
    }
    table.add_row(
        {std::string(window.label) + " [" +
             util::format_double(window.lo, 4) + ", " +
             (std::isinf(window.hi) ? std::string("inf")
                                    : util::format_double(window.hi, 4)) +
             ")",
         std::to_string(tally.photons_detected()),
         util::format_double(tally.mean_detected_pathlength(), 5),
         util::format_double(depth, 4)});
  }
  table.print(std::cout);
  std::cout << "\n(late gates select long paths, which dive deeper: time "
               "gating is depth selection)\n";
  return 0;
}
