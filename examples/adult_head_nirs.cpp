// Near-infrared spectroscopy of the adult head — the paper's motivating
// application. Simulates the Table 1 five-layer head model with a chosen
// source footprint and optode separation, then reports what a NIRS
// experimenter needs: the energy budget per layer, the penetration-depth
// percentiles, the differential pathlength, and an ASCII map of where the
// light went.
//
// Run: ./adult_head_nirs [--photons 60000] [--separation 30]
//                        [--source delta|gaussian|uniform] [--radius 2.5]
//                        [--workers 4] [--trace 3]
#include <cmath>
#include <iostream>

#include "analysis/diffusion.hpp"
#include "analysis/render.hpp"
#include "core/app.hpp"
#include "core/experiments.hpp"
#include "mc/presets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace phodis;
  const util::CliArgs args(argc, argv);
  const auto photons =
      static_cast<std::uint64_t>(args.get_int("photons", 60'000));
  const double separation = args.get_double("separation", 30.0);

  core::SimulationSpec spec =
      core::fig4_head_spec(photons, 50, separation, 7);
  spec.kernel.source.type =
      mc::parse_source_type(args.get("source", "delta"));
  if (spec.kernel.source.type != mc::SourceType::kDelta) {
    spec.kernel.source.radius_mm = args.get_double("radius", 2.5);
  }

  std::cout << "Adult-head NIRS simulation: " << photons << " photons, "
            << mc::to_string(spec.kernel.source.type) << " source, optodes "
            << separation << " mm apart\n\n";

  core::MonteCarloApp app(spec);
  core::ExecutionOptions options;
  options.workers = static_cast<std::size_t>(args.get_int("workers", 4));
  const core::RunSummary summary = app.run_distributed(options);
  const mc::SimulationTally& tally = summary.tally;

  // Energy budget per layer.
  const mc::LayeredMedium& head = spec.kernel.medium;
  util::TextTable table({"layer", "span (mm)", "absorbed fraction",
                         "diffusion 1/e depth (mm)"});
  for (std::size_t i = 0; i < head.layer_count(); ++i) {
    const mc::Layer& layer = head.layer(i);
    table.add_row(
        {layer.name,
         util::format_double(layer.z0, 3) + "-" +
             (std::isinf(layer.z1) ? std::string("inf")
                                   : util::format_double(layer.z1, 3)),
         util::format_double(tally.absorbed_weight(i) /
                                 static_cast<double>(photons),
                             4),
         util::format_double(analysis::penetration_depth(layer.props), 4)});
  }
  table.print(std::cout);

  std::cout << "\nreflected (diffuse + specular): "
            << tally.diffuse_reflectance() + tally.specular_reflectance()
            << "\n";
  std::cout << "photons detected at " << separation
            << " mm: " << tally.photons_detected();
  if (tally.photons_detected() > 0) {
    std::cout << "   mean optical pathlength "
              << tally.mean_detected_pathlength() << " mm (DPF "
              << tally.mean_detected_pathlength() / separation << ")";
  } else {
    std::cout << "   (none at this budget: the paper used 10^9 photons "
                 "for this geometry)";
  }
  std::cout << "\n\nmax-depth percentiles: 50% "
            << tally.depth_histogram().quantile(0.5) << " mm, 95% "
            << tally.depth_histogram().quantile(0.95) << " mm, 99.9% "
            << tally.depth_histogram().quantile(0.999) << " mm\n";

  // Sample individual photon paths for intuition.
  const auto traces = static_cast<std::size_t>(args.get_int("trace", 3));
  if (traces > 0) {
    std::cout << "\nsample photon paths (first vertices):\n";
    const mc::Kernel kernel(spec.kernel);
    util::Xoshiro256pp rng(123);
    for (std::size_t t = 0; t < traces; ++t) {
      const mc::PhotonTrace trace = kernel.trace(rng, 6);
      std::cout << "  photon " << t << ": ";
      for (const auto& v : trace.vertices) {
        std::cout << "(" << util::format_double(v.x, 3) << ","
                  << util::format_double(v.z, 3) << ") ";
      }
      std::cout << "... [" << trace.vertices.size() << "+ vertices]\n";
    }
  }

  std::cout << "\nfluence map (y=0 slice, 80 cols x 30 rows):\n"
            << analysis::render_ascii_slice(*tally.fluence_grid(),
                                            {0.0, true, 1e-4, 80, 30});
  return 0;
}
