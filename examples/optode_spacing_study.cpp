// Optode-spacing study — the relationship the paper's introduction calls
// "an important factor for optode geometry and positioning": how the
// interrogated depth and the differential pathlength grow with
// source-detector spacing.
//
// Uses a diffusive test medium so that every spacing yields detections at
// a laptop photon budget, and compares the Monte Carlo answers with
// diffusion theory at each spacing.
//
// Run: ./optode_spacing_study [--photons 150000] [--mua 0.01] [--musp 1.0]
#include <iostream>

#include "analysis/banana.hpp"
#include "analysis/diffusion.hpp"
#include "core/app.hpp"
#include "core/experiments.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace phodis;
  const util::CliArgs args(argc, argv);
  const auto photons =
      static_cast<std::uint64_t>(args.get_int("photons", 150'000));
  const double mua = args.get_double("mua", 0.01);
  const double musp = args.get_double("musp", 1.0);

  const mc::OpticalProperties props =
      mc::OpticalProperties::from_reduced(mua, musp, 0.9, 1.0);

  std::cout << "Optode spacing study: mua=" << mua << "/mm, mus'=" << musp
            << "/mm, " << photons << " photons per spacing\n\n";

  util::TextTable table({"spacing (mm)", "detected", "mean path (mm)",
                         "DPF (MC)", "DPF (diffusion)",
                         "banana mid depth (mm)"});
  util::CsvWriter csv(util::output_file(args, "optode_spacing.csv"));
  csv.header({"spacing_mm", "detections", "mean_path_mm", "dpf_mc",
              "dpf_theory", "mid_depth_mm"});

  for (const double spacing : {5.0, 10.0, 15.0, 20.0, 25.0}) {
    core::SimulationSpec spec = core::fig3_banana_spec(
        photons, 40, spacing, static_cast<std::uint64_t>(spacing));
    mc::LayeredMediumBuilder builder;
    builder.add_semi_infinite_layer("tissue", props);
    spec.kernel.medium = builder.build();

    core::MonteCarloApp app(spec);
    const mc::SimulationTally tally = app.run_serial();
    const double dpf_mc =
        tally.photons_detected()
            ? tally.mean_detected_pathlength() / spacing
            : 0.0;
    const double dpf_theory =
        analysis::differential_pathlength_factor(props, spacing);
    double mid_depth = 0.0;
    if (tally.photons_detected() > 0) {
      const analysis::BananaMetrics metrics =
          analysis::banana_metrics(*tally.path_grid(), spacing);
      mid_depth = metrics.midpoint_mean_depth_mm;
    }
    table.add_row({util::format_double(spacing, 4),
                   std::to_string(tally.photons_detected()),
                   util::format_double(tally.mean_detected_pathlength(), 5),
                   util::format_double(dpf_mc, 4),
                   util::format_double(dpf_theory, 4),
                   util::format_double(mid_depth, 4)});
    csv.row({spacing, static_cast<double>(tally.photons_detected()),
             tally.mean_detected_pathlength(), dpf_mc, dpf_theory,
             mid_depth});
  }
  table.print(std::cout);
  std::cout << "\n(wider optode spacing probes deeper and stretches the "
               "differential pathlength — the paper's Sect. 1/2 "
               "discussion)\nwritten to " << csv.path() << "\n";
  return 0;
}
