// Quickstart: the smallest complete use of the library.
//
//   1. describe a tissue (one semi-infinite layer of grey matter),
//   2. put a laser on the surface and a detector 10 mm away,
//   3. run the simulation through the distributed application,
//   4. read the answers off the merged tally.
//
// Build & run:  ./quickstart [--photons 50000] [--workers 4] [--threads 1]
//               [--kernel-mode {scalar,packet}]
//               [--metrics-json PATH] [--trace PATH]
// (--threads N shards each task over a worker-side pool — same bits,
//  more cores; --kernel-mode packet selects the batched SoA photon loop,
//  ~3x faster and statistically equivalent, with its own deterministic
//  bit-stream; --metrics-json/--trace dump the run's observability:
//  counters as JSON, spans as Chrome trace-event JSON for Perfetto)
#include <iostream>

#include "core/app.hpp"
#include "mc/presets.hpp"
#include "obs/kernel_counters.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace phodis;
  const util::CliArgs args(argc, argv);
  const std::string metrics_path = args.get("metrics-json", "");
  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) obs::TraceRecorder::global().enable();

  // 1. The tissue: grey matter from the paper's Table 1 (µs' = 2.2/mm,
  //    µa = 0.036/mm), anisotropy 0.9, refractive index 1.4, below air.
  core::SimulationSpec spec;
  mc::LayeredMediumBuilder tissue;
  tissue.ambient_above(1.0);
  tissue.add_semi_infinite_layer(
      "grey matter",
      mc::OpticalProperties::from_reduced(0.036, 2.2, 0.9, 1.4));
  spec.kernel.medium = tissue.build();

  // 2. A delta (laser) source at the origin and a 2 mm detector disc
  //    10 mm away on the surface.
  spec.kernel.source.type = mc::SourceType::kDelta;
  mc::DetectorSpec detector;
  detector.separation_mm = 10.0;
  detector.radius_mm = 2.0;
  spec.kernel.detector = detector;

  spec.photons =
      static_cast<std::uint64_t>(args.get_int("photons", 50'000));
  spec.seed = 42;
  spec.kernel.mode = mc::parse_kernel_mode(args.get("kernel-mode", "scalar"));

  // 3. Run on the in-process distributed platform (DataManager + workers).
  core::MonteCarloApp app(spec);
  core::ExecutionOptions options;
  options.workers = static_cast<std::size_t>(args.get_int("workers", 4));
  options.threads_per_worker =
      static_cast<std::size_t>(args.get_int("threads", 1));
  const core::RunSummary summary = app.run_distributed(options);
  const mc::SimulationTally& tally = summary.tally;

  // 4. The answers.
  std::cout << "photons launched:        " << tally.photons_launched() << "\n"
            << "specular reflectance:    " << tally.specular_reflectance()
            << "\n"
            << "diffuse reflectance:     " << tally.diffuse_reflectance()
            << "\n"
            << "absorbed fraction:       " << tally.absorbed_fraction()
            << "\n"
            << "photons detected:        " << tally.photons_detected()
            << "\n"
            << "mean detected pathlength: "
            << tally.mean_detected_pathlength() << " mm  ("
            << tally.mean_detected_pathlength() / detector.separation_mm
            << "x the optode separation)\n"
            << "tasks / workers:         " << summary.tasks << " / "
            << options.workers << "\n"
            << "energy ledger error:     "
            << tally.weight_conservation_error() << "\n";

  if (!metrics_path.empty()) {
    obs::Snapshot snapshot = obs::registry().snapshot();
    obs::append_kernel_counters(snapshot);
    obs::write_metrics_json(snapshot, metrics_path);
    std::cout << "metrics report:          " << metrics_path << "\n";
  }
  if (!trace_path.empty()) {
    obs::TraceRecorder::global().write_json(trace_path);
    std::cout << "trace:                   " << trace_path << "\n";
  }
  return 0;
}
