// Platform overhead bench: runs the real in-process distributed runtime
// (DataManager + workers over the loopback transport) and measures
// photons/s, protocol traffic, and the cost of fault injection, versus a
// plain serial run of the same workload. On a single-core host the worker
// pool cannot speed up the physics; what this measures is the platform's
// overhead — the quantity that Fig. 2's efficiency is about.
//
// Flags: --photons N (default 100000), --chunk N (10000)
#include <iostream>

#include "core/app.hpp"
#include "mc/presets.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace phodis;
  const util::CliArgs args(argc, argv);
  const auto photons =
      static_cast<std::uint64_t>(args.get_int("photons", 100'000));
  const auto chunk =
      static_cast<std::uint64_t>(args.get_int("chunk", 10'000));

  core::SimulationSpec spec;
  mc::OpticalProperties p;
  p.mua = 0.05;
  p.mus = 5.0;
  p.g = 0.8;
  p.n = 1.4;
  mc::LayeredMediumBuilder builder;
  builder.add_semi_infinite_layer("tissue", p);
  spec.kernel.medium = builder.build();
  spec.photons = photons;
  spec.seed = 2006;
  core::MonteCarloApp app(spec);

  std::cout << "=== Distributed-platform overhead (real threads, loopback "
               "transport) ===\n"
            << photons << " photons in chunks of " << chunk << "\n\n";

  util::Stopwatch stopwatch;
  const mc::SimulationTally serial = app.run_serial(chunk);
  const double serial_s = stopwatch.seconds();

  util::TextTable table({"configuration", "wall (s)", "photons/s",
                         "frames", "dropped", "bytes", "re-issues"});
  table.add_row({"serial baseline", util::format_double(serial_s, 4),
                 util::format_double(photons / serial_s, 6), "-", "-", "-",
                 "-"});

  for (const auto& [workers, drop, death, label] :
       {std::tuple{std::size_t{1}, 0.0, 0.0, "1 worker"},
        std::tuple{std::size_t{4}, 0.0, 0.0, "4 workers"},
        std::tuple{std::size_t{4}, 0.05, 0.0, "4 workers, 5% frame loss"},
        std::tuple{std::size_t{4}, 0.05, 0.1,
                   "4 workers, 5% loss + 10% deaths"}}) {
    core::ExecutionOptions options;
    options.workers = workers;
    options.chunk_photons = chunk;
    options.transport_faults.drop_probability = drop;
    options.worker_death_probability = death;
    options.lease_duration_s = 2.0;
    const core::RunSummary summary = app.run_distributed(options);
    // Cross-check: distributed result must equal serial bitwise.
    if (summary.tally.diffuse_reflectance() !=
        serial.diffuse_reflectance()) {
      util::log_error() << "bench_dist_overhead: determinism violation!";
      return 1;
    }
    table.add_row({label, util::format_double(summary.wall_seconds, 4),
                   util::format_double(photons / summary.wall_seconds, 6),
                   std::to_string(summary.frames_sent),
                   std::to_string(summary.frames_dropped),
                   std::to_string(summary.bytes_sent),
                   std::to_string(summary.manager_stats.lease_expirations)});
  }
  table.print(std::cout);
  std::cout << "\n(every distributed run reproduced the serial tally "
               "bitwise, including under fault injection)\n";
  return 0;
}
