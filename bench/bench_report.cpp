#include "bench_report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "mc/kernel.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace phodis::bench {

PresetResult finalize_preset(std::string name, std::uint64_t photons,
                             std::vector<double> rep_pps) {
  if (rep_pps.empty()) {
    throw std::invalid_argument("finalize_preset: need at least one rep");
  }
  PresetResult result;
  result.name = std::move(name);
  result.photons = photons;
  result.rep_pps = std::move(rep_pps);
  std::vector<double> sorted = result.rep_pps;
  std::sort(sorted.begin(), sorted.end());
  result.best_pps = sorted.back();
  result.median_pps = sorted[sorted.size() / 2];
  return result;
}

PresetResult measure_preset(const std::string& name, const mc::Kernel& kernel,
                            const MeasureOptions& options) {
  const mc::Kernel::CompiledRun run = kernel.compiled_run();

  {  // warm-up: prime code paths and allocations, then discard
    mc::SimulationTally tally = kernel.make_tally();
    util::Xoshiro256pp rng(options.seed ^ 0x9E3779B97F4A7C15ULL);
    run(options.warmup_photons, rng, tally);
  }

  std::vector<double> rep_pps;
  rep_pps.reserve(static_cast<std::size_t>(options.reps));
  for (int rep = 0; rep < options.reps; ++rep) {
    mc::SimulationTally tally = kernel.make_tally();
    util::Xoshiro256pp rng(options.seed + static_cast<std::uint64_t>(rep));
    const util::Stopwatch timer;
    run(options.photons, rng, tally);
    const double seconds = timer.seconds();
    rep_pps.push_back(static_cast<double>(options.photons) / seconds);
  }
  return finalize_preset(name, options.photons, std::move(rep_pps));
}

void write_json(const Report& report, const std::string& path) {
  std::ostringstream out;
  out << "{\n  \"benchmark\": \"bench_kernel\",\n  \"schema\": 2,\n"
         "  \"unit\": \"photons_per_sec\",\n  \"presets\": [\n";
  for (std::size_t i = 0; i < report.presets.size(); ++i) {
    const PresetResult& p = report.presets[i];
    out << "    {\n";
    out << "      \"name\": \"" << p.name << "\",\n";
    out << "      \"mode\": \"" << p.mode << "\",\n";
    out << "      \"photons\": " << p.photons << ",\n";
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.1f", p.best_pps);
    out << "      \"photons_per_sec_best\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof buffer, "%.1f", p.median_pps);
    out << "      \"photons_per_sec_median\": " << buffer << ",\n";
    out << "      \"rep_photons_per_sec\": [";
    for (std::size_t r = 0; r < p.rep_pps.size(); ++r) {
      std::snprintf(buffer, sizeof buffer, "%.1f", p.rep_pps[r]);
      out << (r == 0 ? "" : ", ") << buffer;
    }
    out << "]\n    }" << (i + 1 < report.presets.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";

  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("bench_report: cannot open " + path);
  }
  file << out.str();
}

namespace {

/// Extract the first JSON string value following `key` at or after `from`.
/// Returns npos-terminated empty string when absent.
std::string scan_string(const std::string& text, const std::string& key,
                        std::size_t from, std::size_t* end_pos) {
  const std::size_t key_pos = text.find("\"" + key + "\"", from);
  if (key_pos == std::string::npos) return {};
  const std::size_t open = text.find('"', text.find(':', key_pos));
  const std::size_t close = text.find('"', open + 1);
  if (open == std::string::npos || close == std::string::npos) return {};
  *end_pos = close;
  return text.substr(open + 1, close - open - 1);
}

}  // namespace

std::vector<BaselineEntry> read_baseline(const std::string& path) {
  std::vector<BaselineEntry> result;
  std::ifstream file(path);
  if (!file) return result;
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();

  std::size_t cursor = 0;
  while (true) {
    std::size_t after_name = cursor;
    const std::string name = scan_string(text, "name", cursor, &after_name);
    if (name.empty()) break;
    // The schema-v2 "mode" field sits between this preset's "name" and the
    // next one's; a v1 file has no "mode" at all. Only accept a match that
    // stays inside the current preset object so v1 files (and the final
    // v2 preset) fall back to "scalar" instead of stealing a later key.
    const std::size_t next_name = text.find("\"name\"", after_name);
    std::size_t after_mode = after_name;
    std::string mode = scan_string(text, "mode", after_name, &after_mode);
    if (mode.empty() || after_mode > next_name) mode = "scalar";
    const std::size_t value_key =
        text.find("\"photons_per_sec_best\"", after_name);
    if (value_key == std::string::npos || value_key > next_name) break;
    const std::size_t colon = text.find(':', value_key);
    if (colon == std::string::npos) break;
    try {
      result.push_back(
          BaselineEntry{name, mode, std::stod(text.substr(colon + 1))});
    } catch (const std::exception&) {
      // Malformed value (truncated/hand-edited file): treat the whole
      // baseline as unusable rather than aborting the bench run.
      result.clear();
      return result;
    }
    cursor = colon;
  }
  return result;
}

CheckResult check_against_baseline(const Report& report,
                                   const std::string& baseline_path,
                                   double tolerance) {
  CheckResult check;
  const auto baseline = read_baseline(baseline_path);
  if (baseline.empty()) {
    check.lines.push_back("baseline " + baseline_path +
                          " absent or empty; skipping regression check");
    return check;
  }
  check.baseline_found = true;

  for (const PresetResult& preset : report.presets) {
    const auto it = std::find_if(
        baseline.begin(), baseline.end(), [&](const BaselineEntry& entry) {
          return entry.name == preset.name && entry.mode == preset.mode;
        });
    const std::string label = preset.name + "/" + preset.mode;
    char line[256];
    if (it == baseline.end()) {
      // Skip-if-absent, per (name, mode): a v2 binary run with
      // --kernel-mode both checks cleanly against a v1 baseline that
      // only ever recorded scalar numbers.
      std::snprintf(line, sizeof line, "%-28s %10.0f pps (no baseline)",
                    label.c_str(), preset.best_pps);
      check.lines.push_back(line);
      continue;
    }
    const double floor = (1.0 - tolerance) * it->best_pps;
    const bool regressed = preset.best_pps < floor;
    std::snprintf(line, sizeof line,
                  "%-28s %10.0f pps vs baseline %10.0f (floor %10.0f) %s",
                  label.c_str(), preset.best_pps, it->best_pps, floor,
                  regressed ? "REGRESSED" : "ok");
    check.lines.push_back(line);
    if (regressed) check.regressions.push_back(label);
  }
  return check;
}

}  // namespace phodis::bench
