// Table 2 — "Distributed system resources": the 150 heterogeneous
// non-dedicated clients of the paper's production runs. Prints the fleet
// rows, the aggregate compute rate, and the projected duration of the
// paper's 10^9-photon production run on this fleet (the paper reports
// "approximately 2 hours").
#include <iostream>

#include "cluster/fleet.hpp"
#include "cluster/simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace phodis;

  std::cout << "=== Table 2: Distributed system resources ===\n\n";
  util::TextTable table({"#", "Mflop/s", "RAM (MB)", "O/S", "Processor"});
  for (const cluster::Table2Row& row : cluster::table2_rows()) {
    std::string rate =
        row.mflops_lo == row.mflops_hi
            ? util::format_double(row.mflops_lo)
            : util::format_double(row.mflops_lo) + "-" +
                  util::format_double(row.mflops_hi);
    table.add_row({std::to_string(row.count), rate,
                   std::to_string(row.ram_mb), row.os, row.cpu});
  }
  table.print(std::cout);

  const auto fleet = cluster::table2_fleet();
  const double aggregate = cluster::aggregate_mflops(fleet);
  std::cout << "\nClients: " << fleet.size()
            << "   aggregate rate: " << aggregate << " Mflop/s\n";

  // Project the paper's production run (10^9 photon paths) on this fleet
  // with the calibrated per-photon cost and non-dedicated load.
  cluster::ClusterConfig config;
  config.fleet = fleet;
  config.total_photons = 1'000'000'000;
  config.chunk_photons = 250'000;
  const cluster::ClusterReport report =
      cluster::ClusterSimulator(config).run();
  std::cout << "Simulated 1e9-photon production run on the Table 2 fleet: "
            << report.makespan_s / 3600.0 << " hours (paper: ~2 hours)\n";
  std::cout << "Server utilisation: " << report.server_utilisation() * 100.0
            << " %   mean client utilisation: "
            << report.mean_node_utilisation() * 100.0 << " %\n";

  const bool ok = fleet.size() == 150 && report.makespan_s > 0.0;
  return ok ? 0 : 1;
}
