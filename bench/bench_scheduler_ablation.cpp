// Ablation 1 — task scheduling on the heterogeneous Table 2 fleet.
//
// The paper defers heterogeneous-efficiency discussion to its ref. [4]
// (Page & Naughton 2005, GA-based scheduling). This bench shows the
// trade-off that motivates rate-aware scheduling on the simulated
// 150-client fleet:
//   * dynamic self-scheduling needs small chunks to avoid stragglers on
//     the 15 Mflop/s P2s — but small chunks saturate the serial server;
//   * static round-robin is rate-blind and starves on the slow machines;
//   * static greedy LPT and the GA schedule (reproduction of ref. [4])
//     give slow nodes proportionally less work and avoid both failure
//     modes.
//
// Flags: --photons N (default 2e8), --seed S
#include <iostream>
#include <memory>

#include "cluster/fleet.hpp"
#include "cluster/simulator.hpp"
#include "dist/scheduler.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace phodis;
  const util::CliArgs args(argc, argv);
  const auto photons =
      static_cast<std::uint64_t>(args.get_int("photons", 200'000'000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2006));

  cluster::ClusterConfig base;
  base.fleet = cluster::table2_fleet();
  base.total_photons = photons;
  base.seed = seed;
  base.load.min_availability = 0.7;  // non-dedicated clients
  base.load.max_availability = 1.0;

  // Ideal lower bound: all aggregate Mflop/s busy all the time.
  const double ideal_s =
      static_cast<double>(photons) * base.cost.flops_per_photon /
      (cluster::aggregate_mflops(base.fleet) * 1.0e6);

  std::cout << "=== Scheduler ablation on the Table 2 fleet (150 "
               "heterogeneous, non-dedicated clients) ===\n"
            << photons << " photons; ideal makespan (dedicated, zero "
               "overhead): "
            << ideal_s << " s\n\n";

  struct Row {
    std::string policy;
    std::string chunk;
    double makespan;
    double server_util;
  };
  std::vector<Row> rows;

  for (const std::uint64_t chunk :
       {std::uint64_t{1'000'000}, std::uint64_t{250'000},
        std::uint64_t{50'000}}) {
    cluster::ClusterConfig config = base;
    config.chunk_photons = chunk;
    const auto report = cluster::ClusterSimulator(config).run();
    rows.push_back({"dynamic self-scheduling", std::to_string(chunk),
                    report.makespan_s, report.server_utilisation()});
  }

  dist::RoundRobinScheduler round_robin;
  dist::GreedyScheduler greedy;
  dist::GaScheduler::Params ga_params;
  ga_params.seed = seed;
  ga_params.generations = 120;
  dist::GaScheduler genetic(ga_params);
  for (dist::StaticScheduler* scheduler :
       std::initializer_list<dist::StaticScheduler*>{&round_robin, &greedy,
                                                     &genetic}) {
    cluster::ClusterConfig config = base;
    config.mode = cluster::ScheduleMode::kStatic;
    config.chunk_photons = 250'000;
    const auto report =
        cluster::ClusterSimulator(config).run_static(*scheduler);
    rows.push_back({"static " + scheduler->name(), "250000",
                    report.makespan_s, report.server_utilisation()});
  }

  util::TextTable table({"policy", "chunk (photons)", "makespan (s)",
                         "vs ideal", "efficiency", "server util"});
  util::CsvWriter csv(util::output_file(args, "scheduler_ablation.csv"));
  csv.header({"policy", "chunk", "makespan_s", "efficiency"});
  for (const Row& row : rows) {
    table.add_row({row.policy, row.chunk,
                   util::format_double(row.makespan, 6),
                   util::format_double(row.makespan / ideal_s, 4),
                   util::format_double(ideal_s / row.makespan, 4),
                   util::format_double(row.server_util, 4)});
    csv.row({row.policy, row.chunk, util::format_double(row.makespan),
             util::format_double(ideal_s / row.makespan)});
  }
  table.print(std::cout);

  // GA optimisation behaviour from a *random* initial population (the
  // seeded GA above simply keeps the greedy schedule through elitism).
  // Ablation 2: the load-aware move mutation vs the pure random-mutation
  // GA of ref. [4]; the directed repair must strictly win on this fleet.
  dist::GaScheduler::Params raw_params;
  raw_params.seed = seed;
  raw_params.generations = 150;
  raw_params.seed_with_greedy = false;
  dist::GaScheduler raw_ga(raw_params);
  dist::GaScheduler::Params random_only_params = raw_params;
  random_only_params.move_mutation_rate = 0.0;
  dist::GaScheduler random_only_ga(random_only_params);
  {
    const auto chunks = dist::chunk_plan(photons, 250'000);
    std::vector<double> sizes(chunks.begin(), chunks.end());
    std::vector<double> rates;
    for (const auto& node : base.fleet) rates.push_back(node.mflops);
    const double with_move = raw_ga.schedule(sizes, rates).makespan;
    const double random_only =
        random_only_ga.schedule(sizes, rates).makespan;
    // Ablation 3: best-move descent on the elites (memetic GA) — must
    // close the remaining gap to greedy LPT from a random population.
    dist::GaScheduler::Params descent_params = raw_params;
    descent_params.elite_descent_moves = 16;
    const double with_descent =
        dist::GaScheduler(descent_params).schedule(sizes, rates).makespan;
    const double to_seconds = base.cost.flops_per_photon / 1.0e6;
    const auto& curve = raw_ga.convergence();
    std::cout << "\nGA convergence from a random population (model "
                 "makespan, s; load-aware move mutation on):\n";
    for (std::size_t i = 0; i < curve.size();
         i += std::max<std::size_t>(1, curve.size() / 8)) {
      std::cout << "  gen " << i << ": " << curve[i] * to_seconds << "\n";
    }
    const double greedy_makespan = greedy.schedule(sizes, rates).makespan;
    std::cout << "  final: " << with_move * to_seconds
              << "  (random-mutation-only GA: " << random_only * to_seconds
              << ", + elite best-move descent: " << with_descent * to_seconds
              << ", greedy: " << greedy_makespan * to_seconds << ")\n";
    if (!(with_move < random_only)) {
      std::cout << "ABLATION FAIL: load-aware move mutation did not beat "
                   "the random-mutation GA\n";
      return 1;
    }
    if (with_descent > greedy_makespan * (1.0 + 1e-9)) {
      std::cout << "ABLATION FAIL: elite descent left a gap to greedy LPT\n";
      return 1;
    }
  }

  std::cout << "\n(dynamic needs small chunks to tame the P2 stragglers, "
               "but small chunks raise the serial server load; rate-aware "
               "static schedules — greedy / GA of ref. [4] — avoid both)\n"
            << "written to " << csv.path() << "\n";
  return 0;
}
