// Fig. 2 — "Speedup graph with varying numbers of homogeneous processors
// for the distributed Monte Carlo simulation".
//
// Regenerates the speedup/efficiency series on the simulated homogeneous
// Pentium-IV fleet (see DESIGN.md §1 for why the cluster is simulated).
// The paper reports near-linear speedup with >= 97% efficiency at 60
// processors; this bench prints the series and an ASCII speedup plot.
//
// A second, *measured* section re-takes the Fig. 2 curve on real
// hardware: the actual kernel through exec::ParallelKernelRunner at
// 1, 2, 4, ... threads, reporting photons/sec, speedup, and a bitwise
// cross-check against the 1-thread tally (exits non-zero on mismatch).
//
// Flags: --photons N (default 1e9), --chunk N (1e6), --max-procs K (60),
//        --measure-photons N (default 60000; 0 skips the measured
//        section), --measure-threads K (default max(4, cores))
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/fleet.hpp"
#include "cluster/simulator.hpp"
#include "core/app.hpp"
#include "exec/parallel.hpp"
#include "mc/presets.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

/// Measured threaded-kernel speedup on this machine: the same photon
/// budget through MonteCarloApp::run_parallel at increasing thread
/// counts. Returns false when any thread count diverged bitwise.
bool run_measured_section(std::uint64_t photons, std::size_t max_threads,
                          const std::string& out_dir) {
  using namespace phodis;
  std::cout << "\n=== Measured: threaded kernel on this host ("
            << exec::ThreadPool::default_thread_count()
            << " hardware threads) ===\n"
            << photons << " photons, grey-matter medium, shards of "
            << exec::kDefaultShardPhotons << " photons\n\n";

  core::SimulationSpec spec;
  mc::LayeredMediumBuilder builder;
  builder.add_semi_infinite_layer(
      "grey matter",
      mc::OpticalProperties::from_reduced(0.036, 2.2, 0.9, 1.4));
  spec.kernel.medium = builder.build();
  spec.photons = photons;
  spec.seed = 2006;
  const core::MonteCarloApp app(spec);

  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != max_threads) thread_counts.push_back(max_threads);

  util::TextTable table(
      {"threads", "wall (s)", "photons/sec", "speedup", "bitwise"});
  util::CsvWriter csv(util::output_file(out_dir, "fig2_measured_threads.csv"));
  csv.header({"threads", "wall_s", "photons_per_s", "speedup"});

  std::vector<std::uint8_t> reference;
  double serial_seconds = 0.0;
  bool all_identical = true;
  for (std::size_t threads : thread_counts) {
    util::Stopwatch stopwatch;
    const mc::SimulationTally tally = app.run_parallel(threads);
    const double seconds = stopwatch.seconds();
    std::vector<std::uint8_t> bytes = tally.to_bytes();
    bool identical = true;
    if (reference.empty()) {
      reference = std::move(bytes);
      serial_seconds = seconds;
    } else {
      identical = bytes == reference;
      all_identical = all_identical && identical;
    }
    const double rate = static_cast<double>(photons) / seconds;
    const double speedup = serial_seconds / seconds;
    table.add_row({std::to_string(threads), util::format_double(seconds, 4),
                   util::format_double(rate, 6),
                   util::format_double(speedup, 4),
                   identical ? "yes" : "NO"});
    csv.row({static_cast<double>(threads), seconds, rate, speedup});
  }
  table.print(std::cout);
  std::cout << "(speedup is relative to 1 thread; expect ~min(threads, "
               "cores) on an idle machine)\nmeasured series written to "
            << csv.path() << "\n";
  return all_identical;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace phodis;
  const util::CliArgs args(argc, argv);
  const std::string out_dir =
      args.get("out-dir", util::default_output_dir());
  const auto photons =
      static_cast<std::uint64_t>(args.get_int("photons", 1'000'000'000));
  const auto chunk =
      static_cast<std::uint64_t>(args.get_int("chunk", 1'000'000));
  const auto max_procs =
      static_cast<std::size_t>(args.get_int("max-procs", 60));

  std::cout << "=== Fig. 2: speedup vs number of homogeneous processors ===\n"
            << "workload: " << photons << " photons, chunks of " << chunk
            << ", P4-class nodes (200 Mflop/s), semi-idle (90-100% "
               "available)\n\n";

  cluster::ClusterConfig base;
  base.fleet = cluster::homogeneous_p4_fleet(1);
  base.total_photons = photons;
  base.chunk_photons = chunk;
  base.load.min_availability = 0.9;  // "semi-idle PCs"
  base.load.max_availability = 1.0;

  std::vector<std::size_t> counts;
  for (std::size_t k = 1; k <= max_procs; k += (k < 10 ? 1 : 5)) {
    counts.push_back(k);
  }
  if (counts.back() != max_procs) counts.push_back(max_procs);

  const auto series = cluster::speedup_series(base, max_procs, counts);

  util::TextTable table(
      {"processors", "makespan (s)", "speedup", "efficiency"});
  util::CsvWriter csv(util::output_file(out_dir, "fig2_speedup.csv"));
  csv.header({"processors", "makespan_s", "speedup", "efficiency"});
  for (const auto& point : series) {
    table.add_row({std::to_string(point.processors),
                   util::format_double(point.makespan_s, 6),
                   util::format_double(point.speedup, 4),
                   util::format_double(point.efficiency, 4)});
    csv.row({static_cast<double>(point.processors), point.makespan_s,
             point.speedup, point.efficiency});
  }
  table.print(std::cout);

  // ASCII speedup plot (x: processors, y: speedup), ideal line shown as '.'.
  std::cout << "\nspeedup plot ('*' measured, '.' ideal):\n";
  const int plot_rows = 20;
  const double y_max = static_cast<double>(max_procs);
  for (int row = plot_rows; row >= 0; --row) {
    const double y = y_max * row / plot_rows;
    std::string line(counts.size() * 2 + 2, ' ');
    for (std::size_t i = 0; i < series.size(); ++i) {
      const double ideal = static_cast<double>(series[i].processors);
      if (std::abs(ideal - y) <= y_max / (2.0 * plot_rows)) {
        line[2 + i * 2] = '.';
      }
      if (std::abs(series[i].speedup - y) <= y_max / (2.0 * plot_rows)) {
        line[2 + i * 2] = '*';
      }
    }
    std::cout << line << "\n";
  }

  const auto& last = series.back();
  std::cout << "\nefficiency at " << last.processors
            << " processors: " << last.efficiency * 100.0
            << " %  (paper: ~97 % at 60)\n"
            << "series written to " << csv.path() << "\n";
  const bool simulated_ok = last.efficiency > 0.90 && last.efficiency <= 1.0;

  const auto measure_photons = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, args.get_int("measure-photons", 60'000)));
  bool measured_ok = true;
  if (measure_photons > 0) {
    // 0 (or anything non-positive) means "one per core", like
    // phodis_worker --threads.
    const std::int64_t requested = args.get_int(
        "measure-threads",
        static_cast<std::int64_t>(std::max<std::size_t>(
            4, exec::ThreadPool::default_thread_count())));
    const std::size_t measure_threads =
        requested > 0 ? static_cast<std::size_t>(requested)
                      : exec::ThreadPool::default_thread_count();
    measured_ok =
        run_measured_section(measure_photons, measure_threads, out_dir);
    if (!measured_ok) {
      std::cout << "MEASURED FAIL: a thread count changed the tally "
                   "bitwise\n";
    }
  }
  return (simulated_ok && measured_ok) ? 0 : 1;
}
