// Fig. 2 — "Speedup graph with varying numbers of homogeneous processors
// for the distributed Monte Carlo simulation".
//
// Regenerates the speedup/efficiency series on the simulated homogeneous
// Pentium-IV fleet (see DESIGN.md §1 for why the cluster is simulated).
// The paper reports near-linear speedup with >= 97% efficiency at 60
// processors; this bench prints the series and an ASCII speedup plot.
//
// Flags: --photons N (default 1e9), --chunk N (1e6), --max-procs K (60)
#include <iostream>
#include <string>
#include <vector>

#include "cluster/fleet.hpp"
#include "cluster/simulator.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace phodis;
  const util::CliArgs args(argc, argv);
  const auto photons =
      static_cast<std::uint64_t>(args.get_int("photons", 1'000'000'000));
  const auto chunk =
      static_cast<std::uint64_t>(args.get_int("chunk", 1'000'000));
  const auto max_procs =
      static_cast<std::size_t>(args.get_int("max-procs", 60));

  std::cout << "=== Fig. 2: speedup vs number of homogeneous processors ===\n"
            << "workload: " << photons << " photons, chunks of " << chunk
            << ", P4-class nodes (200 Mflop/s), semi-idle (90-100% "
               "available)\n\n";

  cluster::ClusterConfig base;
  base.fleet = cluster::homogeneous_p4_fleet(1);
  base.total_photons = photons;
  base.chunk_photons = chunk;
  base.load.min_availability = 0.9;  // "semi-idle PCs"
  base.load.max_availability = 1.0;

  std::vector<std::size_t> counts;
  for (std::size_t k = 1; k <= max_procs; k += (k < 10 ? 1 : 5)) {
    counts.push_back(k);
  }
  if (counts.back() != max_procs) counts.push_back(max_procs);

  const auto series = cluster::speedup_series(base, max_procs, counts);

  util::TextTable table(
      {"processors", "makespan (s)", "speedup", "efficiency"});
  util::CsvWriter csv("fig2_speedup.csv");
  csv.header({"processors", "makespan_s", "speedup", "efficiency"});
  for (const auto& point : series) {
    table.add_row({std::to_string(point.processors),
                   util::format_double(point.makespan_s, 6),
                   util::format_double(point.speedup, 4),
                   util::format_double(point.efficiency, 4)});
    csv.row({static_cast<double>(point.processors), point.makespan_s,
             point.speedup, point.efficiency});
  }
  table.print(std::cout);

  // ASCII speedup plot (x: processors, y: speedup), ideal line shown as '.'.
  std::cout << "\nspeedup plot ('*' measured, '.' ideal):\n";
  const int plot_rows = 20;
  const double y_max = static_cast<double>(max_procs);
  for (int row = plot_rows; row >= 0; --row) {
    const double y = y_max * row / plot_rows;
    std::string line(counts.size() * 2 + 2, ' ');
    for (std::size_t i = 0; i < series.size(); ++i) {
      const double ideal = static_cast<double>(series[i].processors);
      if (std::abs(ideal - y) <= y_max / (2.0 * plot_rows)) {
        line[2 + i * 2] = '.';
      }
      if (std::abs(series[i].speedup - y) <= y_max / (2.0 * plot_rows)) {
        line[2 + i * 2] = '*';
      }
    }
    std::cout << line << "\n";
  }

  const auto& last = series.back();
  std::cout << "\nefficiency at " << last.processors
            << " processors: " << last.efficiency * 100.0
            << " %  (paper: ~97 % at 60)\n"
            << "series written to fig2_speedup.csv\n";
  return (last.efficiency > 0.90 && last.efficiency <= 1.0) ? 0 : 1;
}
