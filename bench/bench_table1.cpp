// Table 1 — "Thickness and Optical properties (NIR range) of Tissue in
// Adult Head". Prints the table exactly as encoded in the presets and
// verifies its physical invariants (the same data every simulation bench
// consumes).
#include <cmath>
#include <iostream>

#include "mc/presets.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace phodis;

  std::cout << "=== Table 1: Thickness and optical properties (NIR) of "
               "tissue in the adult head ===\n\n";

  util::TextTable table({"Tissue Type", "Thickness (cm)", "mus' (1/mm)",
                         "mua (1/mm)", "adopted thickness (mm)"});
  for (const mc::Table1Row& row : mc::table1_rows()) {
    std::string thickness;
    if (row.tissue == "White matter") {
      thickness = "-";
    } else if (row.thickness_cm_lo == row.thickness_cm_hi) {
      thickness = util::format_double(row.thickness_cm_lo);
    } else {
      thickness = util::format_double(row.thickness_cm_lo) + "-" +
                  util::format_double(row.thickness_cm_hi);
    }
    table.add_row({row.tissue, thickness,
                   util::format_double(row.mus_prime_per_mm),
                   util::format_double(row.mua_per_mm),
                   row.tissue == "White matter"
                       ? "semi-infinite"
                       : util::format_double(row.thickness_used_mm)});
  }
  table.print(std::cout);

  // Derived per-layer transport quantities of the head model actually
  // simulated (g = 0.9, n = 1.4).
  std::cout << "\nDerived transport quantities (g = 0.9, n = 1.4):\n\n";
  const mc::LayeredMedium head = mc::adult_head_model();
  util::TextTable derived(
      {"Layer", "z0 (mm)", "z1 (mm)", "mus (1/mm)", "mut (1/mm)",
       "albedo", "mueff (1/mm)", "1/e depth (mm)"});
  for (std::size_t i = 0; i < head.layer_count(); ++i) {
    const mc::Layer& layer = head.layer(i);
    derived.add_row(
        {layer.name, util::format_double(layer.z0),
         std::isinf(layer.z1) ? "inf" : util::format_double(layer.z1),
         util::format_double(layer.props.mus, 4),
         util::format_double(layer.props.mut(), 4),
         util::format_double(layer.props.albedo(), 6),
         util::format_double(layer.props.mueff(), 4),
         util::format_double(1.0 / layer.props.mueff(), 4)});
  }
  derived.print(std::cout);

  // Invariants the rest of the suite relies on.
  bool ok = true;
  const auto& rows = mc::table1_rows();
  ok &= rows.size() == 5;
  ok &= head.layer_count() == 5;
  // CSF is the low-scattering sandwich layer.
  ok &= head.layer(2).props.mus_reduced() < head.layer(1).props.mus_reduced();
  ok &= head.layer(2).props.mus_reduced() < head.layer(3).props.mus_reduced();
  std::cout << "\nInvariants: " << (ok ? "OK" : "VIOLATED") << "\n";
  return ok ? 0 : 1;
}
