// Machine-readable kernel-benchmark reporting: fixed-work measurement,
// JSON emission (BENCH_kernel.json), and regression checking against a
// committed baseline. Self-contained (no google-benchmark) so the perf
// trajectory is tracked on every machine the repo builds on.
//
// Measurement discipline for thresholdable numbers on noisy 1-core CI
// runners (the satellite this file exists for):
//  * photon counts are PINNED per preset — never time-adaptive — so every
//    run does identical work and two JSON files are directly comparable;
//  * a warm-up batch runs first (touches the code path, the tally
//    allocations, and the instruction/page cache) and is discarded;
//  * each preset runs `reps` times and reports the BEST photons/sec along
//    with the median and every rep. Interference from co-tenants only ever
//    *slows* a rep, so the max over reps is the stablest estimator of
//    machine capability, and it is the number the regression check
//    thresholds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phodis::mc {
class Kernel;
}

namespace phodis::bench {

struct PresetResult {
  std::string name;
  std::string mode = "scalar";  ///< kernel mode ("scalar" | "packet")
  std::uint64_t photons = 0;  ///< photons per rep (pinned)
  double best_pps = 0.0;      ///< max photons/sec over reps (thresholded)
  double median_pps = 0.0;
  std::vector<double> rep_pps;
};

struct Report {
  std::vector<PresetResult> presets;
};

struct MeasureOptions {
  std::uint64_t warmup_photons = 2'000;
  std::uint64_t photons = 20'000;
  int reps = 5;
  std::uint64_t seed = 42;
};

/// Run `kernel` under the fixed-work protocol above.
PresetResult measure_preset(const std::string& name, const mc::Kernel& kernel,
                            const MeasureOptions& options);

/// Assemble a PresetResult from raw per-rep photons/sec samples (computes
/// best and median). Shared by measure_preset and custom measurement
/// loops (e.g. bench_kernel's threaded shard variant) so every preset in
/// one JSON file uses the same statistics.
PresetResult finalize_preset(std::string name, std::uint64_t photons,
                             std::vector<double> rep_pps);

/// Serialize the report as pretty-printed JSON at `path`.
void write_json(const Report& report, const std::string& path);

/// One baseline entry, keyed by (name, mode). Schema-v1 files (no
/// per-preset "mode" field) load with mode = "scalar", so a v2 binary
/// checks cleanly against a v1 baseline.
struct BaselineEntry {
  std::string name;
  std::string mode;
  double best_pps = 0.0;
};

/// Extract the baseline entries from a JSON file previously written by
/// write_json (targeted scan, not a general JSON parser). Returns an
/// empty vector when the file is missing or contains no presets.
std::vector<BaselineEntry> read_baseline(const std::string& path);

struct CheckResult {
  bool baseline_found = false;
  /// Presets whose best_pps fell more than `tolerance` below baseline.
  std::vector<std::string> regressions;
  /// Human-readable per-preset comparison lines.
  std::vector<std::string> lines;
};

/// Compare `report` against a committed baseline JSON. A preset regresses
/// when current best_pps < (1 - tolerance) * baseline best_pps. Presets
/// present on only one side are reported but never fail the check.
CheckResult check_against_baseline(const Report& report,
                                   const std::string& baseline_path,
                                   double tolerance);

}  // namespace phodis::bench
