// Extension bench — spatially-resolved diffuse reflectance R(rho).
//
// The quantity behind the paper's source/detector-spacing discussion:
// how much light comes back out at each distance from the source. The MC
// kernel (cylindrical tally) is compared bin-by-bin against the Farrell
// diffusion dipole — an independent analytic model — in its domain of
// validity. This doubles as the deepest physics validation in the suite.
//
// Flags: --photons N (default 300000), --seed S
#include <cmath>
#include <iostream>

#include "analysis/diffusion.hpp"
#include "mc/kernel.hpp"
#include "mc/presets.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace phodis;
  const util::CliArgs args(argc, argv);
  const auto photons =
      static_cast<std::uint64_t>(args.get_int("photons", 300'000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2006));

  mc::OpticalProperties p;
  p.mua = 0.01;
  p.mus = 10.0;
  p.g = 0.9;
  p.n = 1.0;

  std::cout << "=== Spatially-resolved diffuse reflectance R(rho): Monte "
               "Carlo vs Farrell diffusion dipole ===\n"
            << photons << " photons; mua=0.01/mm mus'=1.0/mm g=0.9 "
               "matched boundary\n\n";

  mc::KernelConfig config;
  config.medium = mc::homogeneous_semi_infinite(p, 1.0);
  config.tally.enable_radial = true;
  config.tally.radial_spec.r_max_mm = 20.0;
  config.tally.radial_spec.nr = 40;
  config.tally.radial_spec.z_max_mm = 40.0;
  config.tally.radial_spec.nz = 40;
  const mc::Kernel kernel(config);
  mc::SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(seed);
  util::Stopwatch stopwatch;
  kernel.run(photons, rng, tally);
  std::cout << "simulated in " << stopwatch.seconds() << " s; total Rd = "
            << tally.diffuse_reflectance() << "\n\n";

  const mc::RadialTally& radial = *tally.radial();
  util::TextTable table({"rho (mm)", "R_mc (1/mm^2)", "R_diffusion",
                         "MC/theory"});
  util::CsvWriter csv(util::output_file(args, "radial_reflectance.csv"));
  csv.header({"rho_mm", "r_mc_per_mm2", "r_diffusion_per_mm2", "ratio"});
  double worst_ratio = 1.0;
  for (std::size_t ir = 2; ir < radial.spec().nr; ir += 2) {
    const double rho = radial.r_center(ir);
    const double mc_value = radial.reflectance_per_area(ir, photons);
    const double theory = analysis::semi_infinite_reflectance(p, rho, 1.0);
    const double ratio = theory > 0.0 ? mc_value / theory : 0.0;
    if (rho > 3.0 && mc_value > 0.0) {
      worst_ratio = std::max(worst_ratio,
                             std::max(ratio, ratio > 0 ? 1.0 / ratio : 1e9));
    }
    table.add_row({util::format_double(rho, 4),
                   util::format_double(mc_value, 4),
                   util::format_double(theory, 4),
                   util::format_double(ratio, 4)});
    csv.row({rho, mc_value, theory, ratio});
  }
  table.print(std::cout);

  std::cout << "\nworst MC/theory disagreement beyond 3 mm: "
            << util::format_double(worst_ratio, 4)
            << "x (diffusion theory itself is ~10-20% off near the "
               "source; agreement within ~1.5x in the diffusive regime "
               "validates the kernel)\n"
            << "series written to " << csv.path() << "\n";
  return worst_ratio < 2.0 ? 0 : 1;
}
