// Kernel throughput benchmark — the tracked perf baseline of the compiled
// hot path (photons/sec per preset) and the producer of BENCH_kernel.json.
//
// Presets:
//  * two_layer        — grey-over-white phantom with the cylindrical
//                       (r,z) radial tally, i.e. the standard MCML-style
//                       output mode (R(rho) + A(r,z)). The DEFAULT,
//                       headline preset: no real run scores nothing.
//  * two_layer_bare   — the same phantom with scalar totals only: the
//                       pure transport loop, no per-interaction scoring.
//  * white_matter     — homogeneous semi-infinite white matter (Fig. 3).
//  * head_model       — the five-layer adult head of Table 1 (Fig. 4).
//  * two_layer_mt<N>  — with --threads N: one task's shard plan through
//                       exec::ParallelKernelRunner on an N-thread pool.
//
// Usage:
//   bench_kernel                      human-readable table
//   bench_kernel --json               ...plus BENCH_kernel.json in cwd
//   bench_kernel --json=path.json     ...at an explicit path
//   bench_kernel --check BASE.json [--tolerance 0.2]
//                                     exit 1 if any preset's best
//                                     photons/sec fell >20% below the
//                                     committed baseline (skips, exit 0,
//                                     when the baseline file is absent)
//   --photons N --reps R --quick --threads N --seed S
//   --kernel-mode {scalar,packet,both}
//                                     which photon loop(s) to measure
//                                     (default scalar; "both" emits one
//                                     JSON entry per preset per mode)
//   --metrics-json PATH               dump the obs registry (plus any
//                                     compile-gated kernel counters)
//   --trace PATH                      Chrome trace-event spans (Perfetto)
//
// Numbers are comparable only within one machine; see bench_report.hpp
// for the fixed-work/warm-up/best-of-reps protocol that makes them stable
// enough to threshold on a 1-core CI runner.
#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "exec/parallel.hpp"
#include "exec/threadpool.hpp"
#include "mc/kernel.hpp"
#include "mc/presets.hpp"
#include "obs/kernel_counters.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace phodis;

mc::Kernel two_layer_radial_kernel(mc::KernelMode mode) {
  mc::KernelConfig config;
  config.medium = mc::two_layer_model();
  config.tally.enable_radial = true;
  config.mode = mode;
  return mc::Kernel(std::move(config));
}

mc::Kernel bare_kernel(mc::LayeredMedium medium, mc::KernelMode mode) {
  mc::KernelConfig config;
  config.medium = std::move(medium);
  config.mode = mode;
  return mc::Kernel(std::move(config));
}

/// Threaded variant: the same fixed-work protocol as measure_preset, but
/// each rep runs one task's shard plan on the pool.
bench::PresetResult measure_sharded(const std::string& name,
                                    const mc::Kernel& kernel,
                                    std::size_t threads,
                                    const bench::MeasureOptions& options) {
  std::optional<exec::ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  const exec::ParallelKernelRunner runner(kernel, pool ? &*pool : nullptr,
                                          4096);
  (void)runner.run(options.warmup_photons, options.seed, /*task_id=*/0);
  std::vector<double> rep_pps;
  rep_pps.reserve(static_cast<std::size_t>(options.reps));
  for (int rep = 0; rep < options.reps; ++rep) {
    const util::Stopwatch timer;
    const mc::SimulationTally tally = runner.run(
        options.photons, options.seed, static_cast<std::uint64_t>(rep + 1));
    const double seconds = timer.seconds();
    (void)tally;
    rep_pps.push_back(static_cast<double>(options.photons) / seconds);
  }
  return bench::finalize_preset(name, options.photons, std::move(rep_pps));
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::string metrics_path = args.get("metrics-json", "");
  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) obs::TraceRecorder::global().enable();

  bench::MeasureOptions options;
  options.photons =
      static_cast<std::uint64_t>(args.get_int("photons", 20'000));
  options.reps = std::max(1, static_cast<int>(args.get_int("reps", 5)));
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  if (args.get_flag("quick")) {
    options.photons = 4'000;
    options.reps = 3;
    options.warmup_photons = 1'000;
  }

  const std::string mode_arg = args.get("kernel-mode", "scalar");
  std::vector<mc::KernelMode> modes;
  if (mode_arg == "both") {
    modes = {mc::KernelMode::kScalar, mc::KernelMode::kPacket};
  } else {
    modes = {mc::parse_kernel_mode(mode_arg)};  // throws on junk
  }

  bench::Report report;
  std::printf("bench_kernel: %llu photons/rep, %d reps (best-of shown)\n",
              static_cast<unsigned long long>(options.photons), options.reps);

  for (const mc::KernelMode mode : modes) {
    const std::string mode_name = mc::to_string(mode);
    const struct {
      const char* name;
      mc::Kernel kernel;
    } presets[] = {
        {"two_layer", two_layer_radial_kernel(mode)},
        {"two_layer_bare", bare_kernel(mc::two_layer_model(), mode)},
        {"white_matter", bare_kernel(mc::homogeneous_white_matter(), mode)},
        {"head_model", bare_kernel(mc::adult_head_model(), mode)},
    };
    for (const auto& preset : presets) {
      bench::PresetResult r =
          bench::measure_preset(preset.name, preset.kernel, options);
      r.mode = mode_name;
      std::printf("  %-18s %-7s %10.0f photons/sec (median %10.0f)\n",
                  r.name.c_str(), r.mode.c_str(), r.best_pps, r.median_pps);
      report.presets.push_back(std::move(r));
    }

    if (const auto threads = args.get_int("threads", 0); threads > 1) {
      const std::string name = "two_layer_mt" + std::to_string(threads);
      bench::PresetResult r =
          measure_sharded(name, presets[0].kernel,
                          static_cast<std::size_t>(threads), options);
      r.mode = mode_name;
      std::printf("  %-18s %-7s %10.0f photons/sec (median %10.0f)\n",
                  r.name.c_str(), r.mode.c_str(), r.best_pps, r.median_pps);
      report.presets.push_back(std::move(r));
    }
  }

  if (args.has("json") || args.get_flag("json")) {
    const std::string path = [&] {
      const std::string value = args.get("json", "");
      return (value.empty() || value == "true") ? "BENCH_kernel.json" : value;
    }();
    bench::write_json(report, path);
    std::printf("wrote %s\n", path.c_str());
  }

  if (!metrics_path.empty()) {
    obs::Snapshot snapshot = obs::registry().snapshot();
    obs::append_kernel_counters(snapshot);
    obs::write_metrics_json(snapshot, metrics_path);
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    obs::TraceRecorder::global().write_json(trace_path);
    std::printf("wrote %s\n", trace_path.c_str());
  }

  if (args.has("check")) {
    const std::string baseline = args.get("check", "");
    const double tolerance = args.get_double("tolerance", 0.20);
    const bench::CheckResult check =
        bench::check_against_baseline(report, baseline, tolerance);
    for (const std::string& line : check.lines) {
      std::printf("%s\n", line.c_str());
    }
    if (!check.regressions.empty()) {
      std::printf("FAIL: %zu preset(s) regressed more than %.0f%%\n",
                  check.regressions.size(), tolerance * 100.0);
      return 1;
    }
  }
  return 0;
}
