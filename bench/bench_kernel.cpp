// Microbenchmarks of the kernel stages (google-benchmark): the per-stage
// costs behind the flops-per-photon parameter the cluster simulator
// uses, plus the threaded-kernel scaling curve (photons/sec vs thread
// count through exec::ParallelKernelRunner — compare items_per_second
// across the Threads arguments; determinism is asserted in
// tests/test_parallel_kernel.cpp, throughput is measured here).
#include <benchmark/benchmark.h>

#include <optional>

#include "core/spec.hpp"
#include "exec/parallel.hpp"
#include "exec/threadpool.hpp"
#include "mc/fresnel.hpp"
#include "mc/kernel.hpp"
#include "mc/presets.hpp"
#include "mc/scatter.hpp"
#include "util/rng.hpp"

namespace {

using namespace phodis;

void BM_RngUniform(benchmark::State& state) {
  util::Xoshiro256pp rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_RngNormal(benchmark::State& state) {
  util::Xoshiro256pp rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal());
  }
}
BENCHMARK(BM_RngNormal);

void BM_HgSample(benchmark::State& state) {
  util::Xoshiro256pp rng(3);
  const double g = state.range(0) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc::sample_hg_cosine(g, rng));
  }
}
BENCHMARK(BM_HgSample)->Arg(0)->Arg(75)->Arg(90);

void BM_ScatterDirection(benchmark::State& state) {
  util::Xoshiro256pp rng(4);
  util::Vec3 dir{0.0, 0.0, 1.0};
  for (auto _ : state) {
    dir = mc::scatter_direction(dir, 0.9, rng);
    benchmark::DoNotOptimize(dir);
  }
}
BENCHMARK(BM_ScatterDirection);

void BM_Fresnel(benchmark::State& state) {
  double cos_i = 0.0;
  for (auto _ : state) {
    cos_i += 0.001;
    if (cos_i > 1.0) cos_i = 0.001;
    benchmark::DoNotOptimize(mc::fresnel(1.4, 1.0, cos_i));
  }
}
BENCHMARK(BM_Fresnel);

/// Full photon histories per second in the white-matter medium of Fig. 3.
void BM_PhotonWhiteMatter(benchmark::State& state) {
  mc::KernelConfig config;
  config.medium = mc::homogeneous_white_matter();
  const mc::Kernel kernel(config);
  mc::SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(5);
  for (auto _ : state) {
    kernel.run(1, rng, tally);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhotonWhiteMatter);

/// Full photon histories per second in the layered head model of Fig. 4.
void BM_PhotonHeadModel(benchmark::State& state) {
  mc::KernelConfig config;
  config.medium = mc::adult_head_model();
  const mc::Kernel kernel(config);
  mc::SimulationTally tally = kernel.make_tally();
  util::Xoshiro256pp rng(6);
  for (auto _ : state) {
    kernel.run(1, rng, tally);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhotonHeadModel);

/// Threaded full-kernel throughput in the default (white-matter) preset:
/// one task's shard plan executed on N pool threads. items_per_second is
/// photons/sec; the serial baseline is the Threads=1 run (which skips
/// the pool entirely, exactly like run_serial).
void BM_PhotonsSharded(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kPhotonsPerIteration = 16'384;

  mc::KernelConfig config;
  config.medium = mc::homogeneous_white_matter();
  const mc::Kernel kernel(config);
  std::optional<exec::ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  const exec::ParallelKernelRunner runner(kernel, pool ? &*pool : nullptr,
                                          1024);
  std::uint64_t task_id = 0;
  for (auto _ : state) {
    const mc::SimulationTally tally =
        runner.run(kPhotonsPerIteration, 5, task_id++);
    benchmark::DoNotOptimize(tally.diffuse_reflectance());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPhotonsPerIteration));
}
BENCHMARK(BM_PhotonsSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_GridDeposit(benchmark::State& state) {
  mc::VoxelGrid3D grid(mc::GridSpec::cube(50, 25.0, 50.0));
  util::Xoshiro256pp rng(7);
  for (auto _ : state) {
    grid.deposit({rng.uniform(-25, 25), rng.uniform(-25, 25),
                  rng.uniform(0, 50)},
                 1.0);
  }
  benchmark::DoNotOptimize(grid.total());
}
BENCHMARK(BM_GridDeposit);

void BM_TallySerialize(benchmark::State& state) {
  mc::TallyConfig config;
  config.layer_count = 5;
  config.enable_path_grid = true;
  config.path_spec = mc::GridSpec::cube(50, 25.0, 50.0);
  mc::SimulationTally tally(config);
  for (auto _ : state) {
    util::ByteWriter writer;
    tally.serialize(writer);
    benchmark::DoNotOptimize(writer.size());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(50 * 50 * 50 * sizeof(double)));
}
BENCHMARK(BM_TallySerialize);

void BM_TallyMerge(benchmark::State& state) {
  mc::TallyConfig config;
  config.layer_count = 5;
  config.enable_path_grid = true;
  config.path_spec = mc::GridSpec::cube(50, 25.0, 50.0);
  mc::SimulationTally a(config);
  const mc::SimulationTally b(config);
  for (auto _ : state) {
    a.merge(b);
  }
}
BENCHMARK(BM_TallyMerge);

void BM_SpecRoundTrip(benchmark::State& state) {
  core::SimulationSpec spec;
  spec.kernel.medium = mc::adult_head_model();
  spec.photons = 1;
  for (auto _ : state) {
    util::ByteWriter writer;
    spec.serialize(writer);
    util::ByteReader reader(writer.bytes());
    benchmark::DoNotOptimize(core::SimulationSpec::deserialize(reader));
  }
}
BENCHMARK(BM_SpecRoundTrip);

}  // namespace

BENCHMARK_MAIN();
