// Fig. 4 — "Simulated paths taken by photons with layers of brain tissue
// as defined in Table 1": light distribution through scalp, skull, CSF,
// grey and white matter.
//
// The paper's observation: "Most of the photons are reflected before they
// enter the CSF, however some do penetrate all the way into the white
// matter tissue". This bench prints the per-layer energy budget, the
// penetration-depth profile, and an ASCII fluence map.
//
// Flags: --photons N (default 60000), --granularity G (50),
//        --separation mm (30), --seed S (2006)
#include <cmath>
#include <iostream>

#include "analysis/render.hpp"
#include "core/app.hpp"
#include "core/experiments.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace phodis;
  const util::CliArgs args(argc, argv);
  const auto photons =
      static_cast<std::uint64_t>(args.get_int("photons", 60'000));
  const auto granularity =
      static_cast<std::size_t>(args.get_int("granularity", 50));
  const double separation = args.get_double("separation", 30.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2006));

  std::cout << "=== Fig. 4: photon paths through the layered adult head "
               "model (Table 1) ===\n"
            << photons << " photons, optode separation " << separation
            << " mm\n\n";

  core::SimulationSpec spec =
      core::fig4_head_spec(photons, granularity, separation, seed);
  core::MonteCarloApp app(spec);
  util::Stopwatch stopwatch;
  const mc::SimulationTally tally = app.run_serial();
  std::cout << "simulated in " << stopwatch.seconds() << " s\n\n";

  // Global energy budget.
  util::TextTable budget({"destination", "fraction of launched weight"});
  budget.add_row({"specular reflection",
                  util::format_double(tally.specular_reflectance(), 5)});
  budget.add_row({"diffuse reflectance (escaped top)",
                  util::format_double(tally.diffuse_reflectance(), 5)});
  budget.add_row(
      {"absorbed in tissue", util::format_double(tally.absorbed_fraction(), 5)});
  budget.add_row({"transmitted/lost",
                  util::format_double(
                      tally.transmittance() + tally.lost_fraction(), 5)});
  budget.print(std::cout);

  // Per-layer absorption: where does the light go?
  std::cout << "\nper-layer absorption:\n\n";
  const mc::LayeredMedium& head = spec.kernel.medium;
  const double launched = static_cast<double>(tally.photons_launched());
  util::TextTable layers({"layer", "absorbed weight", "fraction of launched",
                          "fraction of absorbed"});
  util::CsvWriter csv(util::output_file(args, "fig4_layer_absorption.csv"));
  csv.header({"layer", "absorbed_fraction"});
  double absorbed_total = 0.0;
  for (std::size_t i = 0; i < head.layer_count(); ++i) {
    absorbed_total += tally.absorbed_weight(i);
  }
  for (std::size_t i = 0; i < head.layer_count(); ++i) {
    const double w = tally.absorbed_weight(i);
    layers.add_row({head.layer(i).name, util::format_double(w, 5),
                    util::format_double(w / launched, 5),
                    util::format_double(w / absorbed_total, 5)});
    csv.row({static_cast<double>(i), w / launched});
  }
  layers.print(std::cout);

  // Penetration-depth profile: how deep do photons get before dying or
  // escaping? Key percentiles against the layer interfaces.
  const auto& depth = tally.depth_histogram();
  std::cout << "\nmaximum-depth percentiles (layer interfaces: scalp|skull "
               "3, skull|CSF 10, CSF|grey 12, grey|white 16 mm):\n\n";
  util::TextTable depths({"percentile", "max depth (mm)"});
  for (double q : {0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    depths.add_row({util::format_double(q * 100.0, 4),
                    util::format_double(depth.quantile(q), 5)});
  }
  depths.print(std::cout);

  const double reached_white =
      1.0 - depth.quantile(0.0);  // placeholder replaced below
  (void)reached_white;
  // Fraction of photons whose paths reached each interface.
  double reach_csf = 0.0;
  double reach_white = 0.0;
  for (std::size_t i = 0; i < depth.bin_count(); ++i) {
    if (depth.bin_center(i) >= 10.0) reach_csf += depth.count(i);
    if (depth.bin_center(i) >= 16.0) reach_white += depth.count(i);
  }
  reach_csf = (reach_csf + depth.overflow()) / depth.total();
  reach_white = (reach_white + depth.overflow()) / depth.total();
  std::cout << "\nphotons reaching the CSF (z >= 10 mm): "
            << reach_csf * 100.0 << " %\n"
            << "photons reaching white matter (z >= 16 mm): "
            << reach_white * 100.0
            << " %   (paper: \"most ... reflected before they enter the "
               "CSF, however some do penetrate\")\n";

  // ASCII fluence map (all-photon absorption density).
  analysis::RenderOptions options;
  options.max_cols = 80;
  options.max_rows = 30;
  std::cout << "\nfluence map, y = 0 slice (rows ~1 mm of depth):\n"
            << analysis::render_ascii_slice(*tally.fluence_grid(), options);
  const std::string slice_path =
      util::output_file(args, "fig4_fluence_slice.csv");
  analysis::write_csv_slice(*tally.fluence_grid(), slice_path);
  std::cout << "\nfluence slice written to " << slice_path << "\n";

  const bool ok = tally.diffuse_reflectance() + tally.specular_reflectance() >
                      0.3 &&          // most photons come back out
                  reach_white > 0.0;  // but some reach white matter
  return ok ? 0 : 1;
}
