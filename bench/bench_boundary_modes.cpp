// Ablation 2 — "refraction and internal reflection (classical physics or
// probabilistic methods)": the paper's kernel supports both; this bench
// compares the two boundary models on the same media for agreement of the
// physical estimates, variance, and speed.
//
// Flags: --photons N (default 80000), --seed S
#include <cmath>
#include <iostream>

#include "mc/kernel.hpp"
#include "mc/presets.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

struct Medium {
  const char* label;
  phodis::mc::OpticalProperties props;
  double n_ambient;
};

struct Estimate {
  double rd_mean = 0.0;
  double rd_stderr = 0.0;
  double absorbed = 0.0;
  double seconds = 0.0;
};

Estimate run(const Medium& medium, phodis::mc::BoundaryModel model,
             std::uint64_t photons, std::uint64_t seed) {
  using namespace phodis;
  constexpr int kReplicas = 8;
  std::vector<double> rd(kReplicas);
  Estimate estimate;
  util::Stopwatch stopwatch;
  mc::KernelConfig config;
  config.medium = mc::homogeneous_semi_infinite(medium.props,
                                                medium.n_ambient);
  config.boundary_model = model;
  const mc::Kernel kernel(config);
  for (int r = 0; r < kReplicas; ++r) {
    mc::SimulationTally tally = kernel.make_tally();
    util::Xoshiro256pp rng(seed + static_cast<std::uint64_t>(r));
    kernel.run(photons / kReplicas, rng, tally);
    rd[r] = tally.diffuse_reflectance();
    estimate.absorbed += tally.absorbed_fraction() / kReplicas;
  }
  estimate.seconds = stopwatch.seconds();
  for (double v : rd) estimate.rd_mean += v / kReplicas;
  double var = 0.0;
  for (double v : rd) var += (v - estimate.rd_mean) * (v - estimate.rd_mean);
  var /= (kReplicas - 1);
  estimate.rd_stderr = std::sqrt(var / kReplicas);
  return estimate;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace phodis;
  const util::CliArgs args(argc, argv);
  const auto photons =
      static_cast<std::uint64_t>(args.get_int("photons", 80'000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2006));

  std::cout << "=== Boundary-model ablation: probabilistic vs classical "
               "(deterministic weight splitting at exterior interfaces) "
               "===\n"
            << photons << " photons per (medium, model), 8 replicas for "
               "standard errors\n\n";

  Medium media[] = {
      {"matched a=0.9 iso", {}, 1.0},
      {"tissue n=1.4 g=0.9", {}, 1.0},
  };
  media[0].props.mua = 1.0;
  media[0].props.mus = 9.0;
  media[0].props.g = 0.0;
  media[0].props.n = 1.0;
  media[1].props.mua = 0.02;
  media[1].props.mus = 10.0;
  media[1].props.g = 0.9;
  media[1].props.n = 1.4;

  util::TextTable table({"medium", "model", "Rd", "stderr", "absorbed",
                         "time (s)"});
  util::CsvWriter csv(util::output_file(args, "boundary_modes.csv"));
  csv.header({"medium", "model", "rd", "stderr", "seconds"});
  for (const Medium& medium : media) {
    for (const mc::BoundaryModel model :
         {mc::BoundaryModel::kProbabilistic, mc::BoundaryModel::kClassical}) {
      const Estimate e = run(medium, model, photons, seed);
      table.add_row({medium.label, mc::to_string(model),
                     util::format_double(e.rd_mean, 5),
                     util::format_double(e.rd_stderr, 3),
                     util::format_double(e.absorbed, 5),
                     util::format_double(e.seconds, 4)});
      csv.row({medium.label, mc::to_string(model),
               util::format_double(e.rd_mean),
               util::format_double(e.rd_stderr),
               util::format_double(e.seconds)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(the two models are unbiased estimators of the same "
               "reflectance; classical splitting trades per-photon cost "
               "for variance at mismatched boundaries)\n"
            << "written to " << csv.path() << "\n";
  return 0;
}
