// §3 feature — gated differential pathlengths: "In a real world experiment
// the pulse interferes with the paths taken by photons so the source and
// detector only operate between pulses. Thus the ability to gate the
// pathlengths allows for the simulation of this."
//
// Sweeps the gate window over the detected-pathlength distribution of a
// diffusive medium and reports detected fraction + mean pathlength per
// gate, plus the ungated pathlength histogram.
//
// Flags: --photons N (default 120000), --separation mm (10), --seed S
#include <cmath>
#include <iostream>
#include <limits>

#include "core/app.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace phodis;
  const util::CliArgs args(argc, argv);
  const auto photons =
      static_cast<std::uint64_t>(args.get_int("photons", 60'000));
  const double separation = args.get_double("separation", 10.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2006));

  // Diffusive reference medium (detections plentiful at laptop budgets).
  core::SimulationSpec spec;
  mc::OpticalProperties p;
  p.mua = 0.01;
  p.mus = 10.0;
  p.g = 0.9;
  p.n = 1.4;
  mc::LayeredMediumBuilder builder;
  builder.add_semi_infinite_layer("tissue", p);
  spec.kernel.medium = builder.build();
  mc::DetectorSpec detector;
  detector.separation_mm = separation;
  detector.radius_mm = 2.0;
  spec.kernel.detector = detector;
  spec.photons = photons;
  spec.seed = seed;

  std::cout << "=== Gated differential pathlengths ===\n"
            << photons << " photons, separation " << separation
            << " mm, tissue mua=0.01 mus'=1.0 n=1.4\n\n";

  // Ungated baseline and its pathlength distribution.
  core::MonteCarloApp open_app(spec);
  const mc::SimulationTally open_tally = open_app.run_serial();
  const auto& hist = open_tally.pathlength_histogram();
  std::cout << "ungated: " << open_tally.photons_detected()
            << " detections, mean optical pathlength "
            << open_tally.mean_detected_pathlength() << " mm (DPF "
            << open_tally.mean_detected_pathlength() / separation << ")\n"
            << "pathlength quartiles (mm): "
            << hist.quantile(0.25) << " / " << hist.quantile(0.5) << " / "
            << hist.quantile(0.75) << "\n\n";

  // Gate sweep: windows in optical pathlength.
  struct Gate {
    double lo;
    double hi;
  };
  const double q50 = hist.quantile(0.5);
  const Gate gates[] = {
      {0.0, 0.5 * q50}, {0.0, q50},    {0.0, 2.0 * q50},
      {q50, 2.0 * q50}, {2.0 * q50, std::numeric_limits<double>::infinity()},
  };

  util::TextTable table({"gate (mm optical)", "detected", "fraction of open",
                         "mean pathlength (mm)"});
  util::CsvWriter csv(util::output_file(args, "gating_sweep.csv"));
  csv.header({"gate_lo_mm", "gate_hi_mm", "detections", "mean_path_mm"});
  for (const Gate& gate : gates) {
    core::SimulationSpec gated = spec;
    gated.kernel.detector->gate.min_mm = gate.lo;
    gated.kernel.detector->gate.max_mm = gate.hi;
    core::MonteCarloApp app(gated);
    const mc::SimulationTally tally = app.run_serial();
    const std::string label =
        util::format_double(gate.lo, 4) + " - " +
        (std::isinf(gate.hi) ? "inf" : util::format_double(gate.hi, 4));
    table.add_row(
        {label, std::to_string(tally.photons_detected()),
         util::format_double(
             open_tally.photons_detected()
                 ? static_cast<double>(tally.photons_detected()) /
                       static_cast<double>(open_tally.photons_detected())
                 : 0.0,
             4),
         util::format_double(tally.mean_detected_pathlength(), 5)});
    csv.row({gate.lo, std::isinf(gate.hi) ? -1.0 : gate.hi,
             static_cast<double>(tally.photons_detected()),
             tally.mean_detected_pathlength()});
  }
  table.print(std::cout);

  std::cout << "\n(gating selects a pathlength band: early gates see the "
               "short, shallow paths; late gates the deep wanderers)\n"
            << "sweep written to " << csv.path() << "\n";
  return open_tally.photons_detected() > 0 ? 0 : 1;
}
