// §4 claims — source-footprint ablation:
//  A. "the source illumination footprint has an effect on the distribution
//      of photons in the head"  -> compare delta / Gaussian / uniform
//      sources on the Table 1 head model;
//  B. "lasers do produce a small beam in a highly scattering medium"
//      -> RMS beam radius vs depth for a delta source in white matter.
//
// Flags: --photons N (default 40000), --seed S (2006)
#include <iostream>

#include "analysis/banana.hpp"
#include "core/app.hpp"
#include "core/experiments.hpp"
#include "mc/presets.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

struct SourceCase {
  const char* label;
  phodis::mc::SourceType type;
  double radius_mm;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace phodis;
  const util::CliArgs args(argc, argv);
  const auto photons =
      static_cast<std::uint64_t>(args.get_int("photons", 40'000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2006));

  std::cout << "=== Source-footprint study (paper Sect. 4) ===\n\n";

  // --- Claim A: footprint changes the distribution in the head -------------
  const SourceCase cases[] = {
      {"delta (laser)", mc::SourceType::kDelta, 0.0},
      {"gaussian r=2mm", mc::SourceType::kGaussian, 2.0},
      {"gaussian r=5mm", mc::SourceType::kGaussian, 5.0},
      {"uniform r=5mm", mc::SourceType::kUniform, 5.0},
      {"uniform r=10mm", mc::SourceType::kUniform, 10.0},
  };

  util::TextTable table({"source", "shallow RMS radius (mm)",
                         "scalp absorption", "white-matter absorption",
                         "median max depth (mm)"});
  util::CsvWriter csv(util::output_file(args, "sources_footprint.csv"));
  csv.header({"source", "shallow_rms_mm", "scalp_abs", "white_abs",
              "median_depth_mm"});

  for (const SourceCase& source_case : cases) {
    core::SimulationSpec spec = core::source_footprint_spec(
        source_case.type, source_case.radius_mm, photons, seed);
    core::MonteCarloApp app(spec);
    const mc::SimulationTally tally = app.run_serial();
    const auto spread =
        analysis::beam_spread_by_depth(*tally.fluence_grid());
    double shallow_rms = 0.0;
    for (const auto& point : spread) {
      if (point.total_weight > 1.0) {
        shallow_rms = point.rms_radius_mm;
        break;
      }
    }
    const double launched = static_cast<double>(tally.photons_launched());
    const double scalp = tally.absorbed_weight(0) / launched;
    const double white = tally.absorbed_weight(4) / launched;
    const double median_depth = tally.depth_histogram().quantile(0.5);
    table.add_row({source_case.label, util::format_double(shallow_rms, 4),
                   util::format_double(scalp, 5),
                   util::format_double(white, 5),
                   util::format_double(median_depth, 4)});
    csv.row({std::string(source_case.label),
             util::format_double(shallow_rms),
             util::format_double(scalp), util::format_double(white),
             util::format_double(median_depth)});
  }
  table.print(std::cout);
  std::cout << "\n(footprint widens the shallow illumination and shifts "
               "where superficial absorption happens -> claim A)\n\n";

  // --- Claim B: a laser stays narrow in white matter -------------------------
  std::cout << "=== Beam spread of a delta (laser) source in homogeneous "
               "white matter ===\n\n";
  core::SimulationSpec wm_spec;
  wm_spec.kernel.medium = mc::homogeneous_white_matter();
  wm_spec.kernel.source.type = mc::SourceType::kDelta;
  wm_spec.kernel.tally.enable_fluence_grid = true;
  mc::GridSpec grid;
  grid.x_min = grid.y_min = -10.0;
  grid.x_max = grid.y_max = 10.0;
  grid.z_min = 0.0;
  grid.z_max = 10.0;
  grid.nx = grid.ny = 80;
  grid.nz = 20;
  wm_spec.kernel.tally.fluence_spec = grid;
  wm_spec.photons = photons;
  wm_spec.seed = seed + 1;
  core::MonteCarloApp wm_app(wm_spec);
  const mc::SimulationTally wm_tally = wm_app.run_serial();

  util::TextTable beam({"depth (mm)", "RMS beam radius (mm)"});
  util::CsvWriter beam_csv(util::output_file(args, "sources_beam_spread.csv"));
  beam_csv.header({"z_mm", "rms_radius_mm"});
  const auto beam_series =
      analysis::beam_spread_by_depth(*wm_tally.fluence_grid());
  for (const auto& point : beam_series) {
    if (point.total_weight <= 0.0) continue;
    beam.add_row({util::format_double(point.z_mm, 4),
                  util::format_double(point.rms_radius_mm, 4)});
    beam_csv.row({point.z_mm, point.rms_radius_mm});
  }
  beam.print(std::cout);
  std::cout << "\n(transport mean free path 1/mus' = "
            << 1.0 / mc::homogeneous_white_matter()
                         .layer(0)
                         .props.mus_reduced()
            << " mm: the laser footprint stays a few mm RMS even 10 mm "
               "deep -> claim B)\n"
            << "series written to " << csv.path() << ", "
            << beam_csv.path() << "\n";
  return 0;
}
