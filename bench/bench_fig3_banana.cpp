// Fig. 3 — "Simulation with a laser source and granularity of 50^3 in
// homogeneous white matter tissue": the banana-shaped spatial sensitivity
// profile of detected photon paths, after thresholding.
//
// The paper traced 10^9 photons at a 2 h cluster budget; the default here
// is laptop-scale (shorter source-detector separation so that detections
// are plentiful), and --photons/--separation restore paper-scale runs.
//
// Flags: --photons N (default 150000), --granularity G (50),
//        --separation mm (8), --threshold f (0.001), --seed S (2006)
#include <iostream>

#include "analysis/banana.hpp"
#include "analysis/render.hpp"
#include "core/app.hpp"
#include "core/experiments.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace phodis;
  const util::CliArgs args(argc, argv);
  const auto photons =
      static_cast<std::uint64_t>(args.get_int("photons", 150'000));
  const auto granularity =
      static_cast<std::size_t>(args.get_int("granularity", 50));
  const double separation = args.get_double("separation", 8.0);
  const double threshold = args.get_double("threshold", 1e-3);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2006));

  std::cout << "=== Fig. 3: detected photon paths in homogeneous white "
               "matter (laser source, granularity "
            << granularity << "^3) ===\n"
            << photons << " photons, source-detector separation "
            << separation << " mm\n\n";

  core::SimulationSpec spec =
      core::fig3_banana_spec(photons, granularity, separation, seed);
  core::MonteCarloApp app(spec);
  util::Stopwatch stopwatch;
  const mc::SimulationTally tally = app.run_serial();
  std::cout << "simulated in " << stopwatch.seconds() << " s; detected "
            << tally.photons_detected() << " photons ("
            << tally.detected_fraction() * 100.0 << " % of weight)\n\n";

  if (tally.photons_detected() == 0) {
    std::cout << "no detections at this photon budget; increase --photons "
                 "or reduce --separation\n";
    return 1;
  }

  mc::VoxelGrid3D grid = *tally.path_grid();
  const double kept = analysis::threshold_grid(grid, threshold);
  std::cout << "thresholding at " << threshold
            << " of max keeps " << kept * 100.0 << " % of visit weight\n\n";

  analysis::RenderOptions options;
  options.max_cols = 80;
  options.max_rows = 32;
  std::cout << "y = 0 slice (x: source->detector, z: depth):\n"
            << analysis::render_ascii_slice(grid, options) << "\n";

  const analysis::BananaMetrics metrics =
      analysis::banana_metrics(grid, separation);
  util::TextTable table({"metric", "value"});
  table.add_row({"banana shaped", metrics.is_banana_shaped() ? "yes" : "no"});
  table.add_row({"midpoint mean depth (mm)",
                 util::format_double(metrics.midpoint_mean_depth_mm, 4)});
  table.add_row({"endpoint mean depth (mm)",
                 util::format_double(metrics.endpoint_mean_depth_mm, 4)});
  table.add_row({"left/right asymmetry",
                 util::format_double(metrics.asymmetry, 4)});
  table.add_row({"visits between optodes",
                 util::format_double(metrics.between_fraction * 100.0, 4) +
                     " %"});
  table.add_row({"mean detected pathlength (mm)",
                 util::format_double(tally.mean_detected_pathlength(), 5)});
  table.add_row({"differential pathlength factor",
                 util::format_double(
                     tally.mean_detected_pathlength() / separation, 4)});
  table.print(std::cout);

  analysis::write_csv_slice(grid, "fig3_banana_slice.csv");
  util::CsvWriter profile_csv("fig3_depth_profile.csv");
  profile_csv.header({"x_mm", "total_visits", "mean_depth_mm"});
  for (const auto& point : metrics.profile) {
    profile_csv.row({point.x_mm, point.total_visits, point.mean_depth_mm});
  }
  std::cout << "\nslice written to fig3_banana_slice.csv, depth profile to "
               "fig3_depth_profile.csv\n";
  return metrics.is_banana_shaped() ? 0 : 1;
}
