// phodis_lint CLI: walk the tree, build the project model, run the
// determinism rules, report.
//
//   phodis_lint --root . [--stats] [--baseline tools/lint_baseline.txt]
//               [--list-suppressions] [--sarif FILE] [--jobs N] [paths...]
//
// Default paths are src tools bench (relative to --root). Per-file model
// building and the per-file passes (D1–D5, D7) run on an exec::ThreadPool;
// the cross-TU passes (D6, D8) run once over the aggregated model. Output
// is file:line: rule: message, sorted by path then line regardless of the
// thread count — the tool's own output order is deterministic for the same
// reason the code it checks must be. Exit 1 on any unsuppressed violation
// or a broken ratchet, 2 on usage/IO errors.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exec/threadpool.hpp"
#include "lint/linter.hpp"
#include "lint/model.hpp"
#include "lint/passes.hpp"
#include "lint/sarif.hpp"
#include "util/log.hpp"

namespace fs = std::filesystem;
using phodis::lint::Diagnostic;
using phodis::lint::FileModel;
using phodis::lint::ProjectModel;
using phodis::lint::Stats;

namespace {

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void usage() {
  std::cout
      << "usage: phodis_lint [--root DIR] [--stats] [--baseline FILE]\n"
         "                   [--list-suppressions] [--sarif FILE]\n"
         "                   [--jobs N] [paths...]\n"
         "  paths default to: src tools bench\n";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool stats_requested = false;
  bool list_suppressions = false;
  std::string baseline_path;
  std::string sarif_path;
  std::size_t jobs = 0;  // 0 = one per core
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--stats") {
      stats_requested = true;
    } else if (arg == "--list-suppressions") {
      list_suppressions = true;
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      phodis::util::log_error() << "phodis_lint: unknown option " << arg;
      usage();
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots = {"src", "tools", "bench"};

  // Gather files deterministically: collect, then sort by relative path.
  std::vector<fs::path> files;
  try {
    for (const std::string& r : roots) {
      const fs::path dir = root / r;
      if (!fs::exists(dir)) {
        phodis::util::log_error()
            << "phodis_lint: no such path: " << dir.string();
        return 2;
      }
      if (fs::is_regular_file(dir)) {
        files.push_back(dir);
        continue;
      }
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (entry.is_regular_file() && has_source_extension(entry.path())) {
          files.push_back(entry.path());
        }
      }
    }
  } catch (const std::exception& error) {
    phodis::util::log_error() << "phodis_lint: " << error.what();
    return 2;
  }

  std::vector<std::pair<std::string, fs::path>> rel_files;
  rel_files.reserve(files.size());
  for (const fs::path& f : files) {
    rel_files.emplace_back(fs::relative(f, root).generic_string(), f);
  }
  std::sort(rel_files.begin(), rel_files.end());
  rel_files.erase(std::unique(rel_files.begin(), rel_files.end()),
                  rel_files.end());

  // Build every file's model and run its per-file passes on the pool.
  // Slots are pre-sized and indexed, so the result is identical at any
  // thread count; the final sort pins the report order either way.
  if (jobs == 0) jobs = phodis::exec::ThreadPool::default_thread_count();
  std::vector<FileModel> models(rel_files.size());
  std::vector<std::vector<Diagnostic>> file_diags(rel_files.size());
  std::string io_error;
  try {
    phodis::exec::ThreadPool pool(jobs);
    pool.parallel_for(
        rel_files.size(), 1, [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            models[i] = phodis::lint::build_file_model(
                rel_files[i].first, read_file(rel_files[i].second));
            file_diags[i] = phodis::lint::run_file_passes(models[i]);
          }
        });
  } catch (const std::exception& error) {
    phodis::util::log_error() << "phodis_lint: " << error.what();
    return 2;
  }

  // Cross-TU passes over the aggregated model, then suppression + order.
  Stats stats;
  stats.files_scanned = static_cast<int>(rel_files.size());
  std::vector<Diagnostic> all;
  for (std::vector<Diagnostic>& d : file_diags) {
    all.insert(all.end(), std::make_move_iterator(d.begin()),
               std::make_move_iterator(d.end()));
  }
  const ProjectModel pm = ProjectModel::build(std::move(models));
  std::vector<Diagnostic> project_diags =
      phodis::lint::run_project_passes(pm);
  all.insert(all.end(), std::make_move_iterator(project_diags.begin()),
             std::make_move_iterator(project_diags.end()));
  phodis::lint::apply_suppressions(all, pm);
  phodis::lint::sort_diagnostics(all);
  for (const Diagnostic& d : all) stats.add(d);

  for (const Diagnostic& d : all) {
    if (!d.suppressed || list_suppressions) {
      std::cout << phodis::lint::format_diagnostic(d) << "\n";
    }
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      phodis::util::log_error()
          << "phodis_lint: cannot write " << sarif_path;
      return 2;
    }
    out << phodis::lint::to_sarif(all);
  }

  if (stats_requested) {
    std::cout << "phodis_lint: scanned " << stats.files_scanned << " files, "
              << stats.total_violations() << " violations, "
              << stats.total_suppressions() << " suppressions\n";
    for (const char* rule : phodis::lint::kAllRules) {
      const auto v = stats.violations.find(rule);
      const auto s = stats.suppressions.find(rule);
      std::cout << "  " << rule << ": "
                << (v == stats.violations.end() ? 0 : v->second)
                << " violations, "
                << (s == stats.suppressions.end() ? 0 : s->second)
                << " suppressions\n";
    }
  }

  bool ratchet_broken = false;
  if (!baseline_path.empty()) {
    try {
      const auto baseline =
          phodis::lint::parse_baseline(read_file(baseline_path));
      std::vector<std::string> improvements;
      const auto failures =
          phodis::lint::check_baseline(stats, baseline, &improvements);
      for (const std::string& f : failures) {
        std::cout << "phodis_lint: ratchet: " << f << "\n";
      }
      for (const std::string& msg : improvements) {
        std::cout << "phodis_lint: note: " << msg << "\n";
      }
      ratchet_broken = !failures.empty();
    } catch (const std::exception& error) {
      phodis::util::log_error() << "phodis_lint: " << error.what();
      return 2;
    }
  }

  if (stats.total_violations() > 0) {
    std::cout << "phodis_lint: " << stats.total_violations()
              << " unsuppressed violation(s) — fix, or justify with "
                 "'// phodis-lint: allow(Dn) reason'\n";
    return 1;
  }
  return ratchet_broken ? 1 : 0;
}
