// phodis_lint CLI: walk the tree, run the determinism rules, report.
//
//   phodis_lint --root . [--stats] [--baseline tools/lint_baseline.txt]
//               [--list-suppressions] [paths...]
//
// Default paths are src tools bench (relative to --root). Output is
// file:line: rule: message, sorted by path then line — the tool's own
// output order is deterministic for the same reason the code it checks
// must be. Exit 1 on any unsuppressed violation or a broken ratchet,
// 2 on usage/IO errors.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/linter.hpp"
#include "util/log.hpp"

namespace fs = std::filesystem;
using phodis::lint::Diagnostic;
using phodis::lint::Stats;

namespace {

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void usage() {
  std::cout
      << "usage: phodis_lint [--root DIR] [--stats] [--baseline FILE]\n"
         "                   [--list-suppressions] [paths...]\n"
         "  paths default to: src tools bench\n";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool stats_requested = false;
  bool list_suppressions = false;
  std::string baseline_path;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--stats") {
      stats_requested = true;
    } else if (arg == "--list-suppressions") {
      list_suppressions = true;
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      phodis::util::log_error() << "phodis_lint: unknown option " << arg;
      usage();
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots = {"src", "tools", "bench"};

  // Gather files deterministically: collect, then sort by relative path.
  std::vector<fs::path> files;
  try {
    for (const std::string& r : roots) {
      const fs::path dir = root / r;
      if (!fs::exists(dir)) {
        phodis::util::log_error()
            << "phodis_lint: no such path: " << dir.string();
        return 2;
      }
      if (fs::is_regular_file(dir)) {
        files.push_back(dir);
        continue;
      }
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (entry.is_regular_file() && has_source_extension(entry.path())) {
          files.push_back(entry.path());
        }
      }
    }
  } catch (const std::exception& error) {
    phodis::util::log_error() << "phodis_lint: " << error.what();
    return 2;
  }

  std::vector<std::pair<std::string, fs::path>> rel_files;
  rel_files.reserve(files.size());
  for (const fs::path& f : files) {
    rel_files.emplace_back(fs::relative(f, root).generic_string(), f);
  }
  std::sort(rel_files.begin(), rel_files.end());
  rel_files.erase(std::unique(rel_files.begin(), rel_files.end()),
                  rel_files.end());

  Stats stats;
  std::vector<Diagnostic> all;
  try {
    for (const auto& [rel, abs] : rel_files) {
      ++stats.files_scanned;
      for (Diagnostic& d : phodis::lint::lint_source(rel, read_file(abs))) {
        stats.add(d);
        all.push_back(std::move(d));
      }
    }
  } catch (const std::exception& error) {
    phodis::util::log_error() << "phodis_lint: " << error.what();
    return 2;
  }

  for (const Diagnostic& d : all) {
    if (!d.suppressed) {
      std::cout << phodis::lint::format_diagnostic(d) << "\n";
    } else if (list_suppressions) {
      std::cout << phodis::lint::format_diagnostic(d) << "\n";
    }
  }

  if (stats_requested) {
    std::cout << "phodis_lint: scanned " << stats.files_scanned << " files, "
              << stats.total_violations() << " violations, "
              << stats.total_suppressions() << " suppressions\n";
    for (const char* rule : {"D1", "D2", "D3", "D4", "D5"}) {
      const auto v = stats.violations.find(rule);
      const auto s = stats.suppressions.find(rule);
      std::cout << "  " << rule << ": "
                << (v == stats.violations.end() ? 0 : v->second)
                << " violations, "
                << (s == stats.suppressions.end() ? 0 : s->second)
                << " suppressions\n";
    }
  }

  bool ratchet_broken = false;
  if (!baseline_path.empty()) {
    try {
      const auto baseline =
          phodis::lint::parse_baseline(read_file(baseline_path));
      std::vector<std::string> improvements;
      const auto failures =
          phodis::lint::check_baseline(stats, baseline, &improvements);
      for (const std::string& f : failures) {
        std::cout << "phodis_lint: ratchet: " << f << "\n";
      }
      for (const std::string& msg : improvements) {
        std::cout << "phodis_lint: note: " << msg << "\n";
      }
      ratchet_broken = !failures.empty();
    } catch (const std::exception& error) {
      phodis::util::log_error() << "phodis_lint: " << error.what();
      return 2;
    }
  }

  if (stats.total_violations() > 0) {
    std::cout << "phodis_lint: " << stats.total_violations()
              << " unsuppressed violation(s) — fix, or justify with "
                 "'// phodis-lint: allow(Dn) reason'\n";
    return 1;
  }
  return ratchet_broken ? 1 : 0;
}
