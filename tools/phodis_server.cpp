// phodis_server — the DataManager side of a real multi-process cluster.
//
// Serves the photon task pool over a TCP or Unix-domain socket, collects
// the partial tallies returned by phodis_worker processes, merges them in
// task-id order, and (unless --no-verify) re-runs the same task plan
// serially to prove the distributed result is bitwise identical — the
// repo's core reproducibility invariant, now across process boundaries.
//
//   ./phodis_server --listen unix:/tmp/phodis.sock --photons 200000
//                   --chunk 5000 [--seed 11] [--lease 2.0] [--drop 0.05]
//                   [--checkpoint run.ckpt] [--merge-incremental]
//                   [--verify-threads N] [--no-verify]
//                   [--kernel-mode {scalar,packet}]
//                   [--metrics-json PATH] [--trace PATH] [--log-level LEVEL]
//
// --kernel-mode selects the photon loop the whole cluster runs (the mode
// ships inside the spec, so workers follow automatically). In packet mode
// the verify step also runs a scalar-mode reference of the same plan and
// prints an assertable "packet-vs-scalar statistical check: ... PASS"
// line (see mc/packet_kernel.hpp for the criterion).
//
// With --metrics-json, the server writes one cluster-wide metrics report
// at exit: its own registry (scheduling, wire, kernel counters) merged
// with every MetricsSnapshot frame the workers shipped after Shutdown.
// With --trace, spans (per-task on the server, per-shard on its verify
// rerun) are written as Chrome trace-event JSON for Perfetto.
//
// With --checkpoint, progress (tasks, completion bits, result bytes) is
// persisted atomically as results arrive; a SIGKILLed server restarted
// with the same flags resumes instead of recomputing. With
// --merge-incremental, results are folded into one running tally in
// task-id order (reorder buffer) instead of retained raw, bounding
// server memory for huge runs; checkpoints then carry the merged tally.
// Exits 0 only when every task completed (and, unless --no-verify, the
// local cross-check — run on --verify-threads pool threads — matched
// the distributed tally bitwise).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <optional>

#include "core/app.hpp"
#include "core/merger.hpp"
#include "dist/runtime.hpp"
#include "dist/scheduler.hpp"
#include "mc/packet_kernel.hpp"
#include "mc/presets.hpp"
#include "net/server.hpp"
#include "obs/kernel_counters.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/bytes.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

/// The walkthrough medium of examples/cluster_throughput.cpp: grey
/// matter, semi-infinite.
phodis::core::SimulationSpec make_spec(std::uint64_t photons,
                                       std::uint64_t seed,
                                       phodis::mc::KernelMode mode) {
  using namespace phodis;
  core::SimulationSpec spec;
  mc::LayeredMediumBuilder builder;
  builder.add_semi_infinite_layer(
      "grey matter",
      mc::OpticalProperties::from_reduced(0.036, 2.2, 0.9, 1.4));
  spec.kernel.medium = builder.build();
  spec.kernel.mode = mode;
  spec.photons = photons;
  spec.seed = seed;
  return spec;
}

/// A checkpoint is only resumable into the task plan that produced it;
/// a sidecar `<checkpoint>.meta` records the plan parameters so a
/// restart with different flags is refused instead of silently merging
/// a stale run's results.
std::string plan_fingerprint(std::uint64_t photons, std::uint64_t chunk,
                             std::uint64_t seed, phodis::mc::KernelMode mode) {
  return "photons=" + std::to_string(photons) +
         " chunk=" + std::to_string(chunk) +
         " seed=" + std::to_string(seed) +
         " mode=" + phodis::mc::to_string(mode) + "\n";
}

void write_plan_meta(const std::string& path, const std::string& fingerprint) {
  std::ofstream out(path, std::ios::trunc);
  out << fingerprint;
  if (!out) {
    throw std::runtime_error("phodis_server: cannot write " + path);
  }
}

std::string read_plan_meta(const std::string& path) {
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace phodis;
  const util::CliArgs args(argc, argv);
  const std::string listen_spec =
      args.get("listen", "tcp:127.0.0.1:4070");
  const auto photons =
      static_cast<std::uint64_t>(args.get_int("photons", 200'000));
  auto chunk = static_cast<std::uint64_t>(args.get_int("chunk", 0));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));
  const double lease_s = args.get_double("lease", 2.0);
  const std::string checkpoint_path = args.get("checkpoint", "");
  const bool merge_incremental = args.get_flag("merge-incremental");
  const auto verify_threads =
      static_cast<std::size_t>(args.get_int("verify-threads", 1));
  dist::FaultSpec faults;
  faults.drop_probability = args.get_double("drop", 0.0);
  faults.seed = static_cast<std::uint64_t>(args.get_int("drop-seed", 2006));
  const std::string metrics_path = args.get("metrics-json", "");
  const std::string trace_path = args.get("trace", "");
  util::set_log_level(util::parse_log_level(args.get("log-level", "info")));
  if (!trace_path.empty()) obs::TraceRecorder::global().enable();

  try {
    const mc::KernelMode mode =
        mc::parse_kernel_mode(args.get("kernel-mode", "scalar"));
    const core::MonteCarloApp app(make_spec(photons, seed, mode));
    if (chunk == 0) chunk = dist::suggest_chunk_size(photons, 4);
    const std::vector<dist::TaskRecord> tasks = app.build_tasks(chunk, 1);

    dist::DataManager manager(lease_s);
    std::optional<core::IncrementalTallyMerger> merger;
    if (merge_incremental) {
      merger.emplace(app.spec());
      manager.set_result_sink(
          [&merger](std::uint64_t task_id, std::vector<std::uint8_t> bytes) {
            merger->fold(task_id, std::move(bytes));
          });
    }
    const std::string meta_path = checkpoint_path + ".meta";
    const std::string fingerprint =
        plan_fingerprint(photons, chunk, seed, mode);
    if (!checkpoint_path.empty() &&
        std::filesystem::exists(checkpoint_path)) {
      if (read_plan_meta(meta_path) != fingerprint) {
        util::log_error() << "phodis_server: " << checkpoint_path
                          << " was written for a different task plan (see "
                          << meta_path << "); refusing to resume";
        return 1;
      }
      const std::vector<std::uint8_t> sink_state =
          manager.restore_from_file(checkpoint_path);
      if (merger) {
        if (sink_state.empty() && manager.completed_count() > 0) {
          util::log_error() << "phodis_server: " << checkpoint_path
                            << " retains raw results (written without "
                               "--merge-incremental); refusing to resume "
                               "incrementally";
          return 1;
        }
        merger->restore(sink_state);
      } else if (!sink_state.empty()) {
        util::log_error() << "phodis_server: " << checkpoint_path
                          << " carries a merged tally; rerun with "
                             "--merge-incremental to resume it";
        return 1;
      }
      std::cout << "phodis_server: resumed " << manager.completed_count()
                << " completed / "
                << manager.completed_count() + manager.pending_count()
                << " tasks from " << checkpoint_path << "\n";
    } else {
      if (!checkpoint_path.empty()) {
        write_plan_meta(meta_path, fingerprint);
      }
      for (const dist::TaskRecord& task : tasks) {
        manager.add_task(task.task_id, task.payload);
      }
    }

    net::Server transport(net::Address::parse(listen_spec), faults);
    std::cout << "phodis_server: listening on "
              << transport.local_address().to_string() << " ("
              << tasks.size() << " tasks of <= " << chunk
              << " photons, lease " << lease_s << " s)" << std::endl;

    util::Stopwatch clock;
    dist::ServerLoopOptions loop_options;
    loop_options.checkpoint_path = checkpoint_path;
    loop_options.checkpoint_every = 4;
    if (merger) {
      loop_options.checkpoint_state = [&merger] {
        return merger->state_bytes();
      };
    }
    // Workers ship their registries (MetricsSnapshot frames) when they see
    // Shutdown; merge them here and give the frames a bounded drain window.
    obs::Snapshot worker_snapshots;
    loop_options.metrics_snapshot_sink =
        [&worker_snapshots](const std::string& sender,
                            const std::vector<std::uint8_t>& payload) {
          try {
            worker_snapshots.merge(obs::Snapshot::decode(payload));
          } catch (const std::exception& error) {
            util::log_warn()
                << "phodis_server: discarding bad metrics snapshot from \""
                << sender << "\": " << error.what();
          }
        };
    if (!metrics_path.empty()) loop_options.metrics_drain_ms = 400;

    // One cluster-wide report: the server registry (scheduling, wire, and
    // compile-gated kernel counters, including the verify rerun) folded
    // with every worker snapshot that arrived.
    const auto dump_observability = [&] {
      if (!metrics_path.empty()) {
        obs::Snapshot cluster = obs::registry().snapshot();
        obs::append_kernel_counters(cluster);
        cluster.merge(worker_snapshots);
        obs::write_metrics_json(cluster, metrics_path);
        std::cout << "phodis_server: metrics report: " << metrics_path
                  << "\n";
      }
      if (!trace_path.empty()) {
        obs::TraceRecorder::global().write_json(trace_path);
        std::cout << "phodis_server: trace: " << trace_path << "\n";
      }
    };

    dist::run_server_loop(transport, manager, loop_options);
    const double serve_seconds = clock.seconds();

    if (manager.completed_count() != tasks.size()) {
      util::log_error() << "phodis_server: completed "
                        << manager.completed_count() << " of "
                        << tasks.size() << " tasks";
      dump_observability();
      return 1;
    }
    mc::SimulationTally tally = [&] {
      if (!merger) return app.merge_results(manager.results());
      if (merger->frontier() != tasks.size()) {
        throw std::runtime_error(
            "phodis_server: incremental merge frontier " +
            std::to_string(merger->frontier()) + " != " +
            std::to_string(tasks.size()) + " tasks");
      }
      return merger->merged();
    }();
    const auto stats = manager.stats();

    util::TextTable table({"metric", "value"});
    table.add_row({"tasks", std::to_string(tasks.size())});
    table.add_row({"completions", std::to_string(stats.completions)});
    table.add_row({"re-issued leases",
                   std::to_string(stats.lease_expirations)});
    table.add_row({"duplicate results discarded",
                   std::to_string(stats.duplicate_results)});
    table.add_row({"frames sent / dropped",
                   std::to_string(transport.frames_sent()) + " / " +
                       std::to_string(transport.frames_dropped())});
    table.add_row({"serve wall seconds",
                   util::format_double(serve_seconds, 4)});
    table.add_row({"diffuse reflectance",
                   util::format_double(tally.diffuse_reflectance(), 6)});
    table.print(std::cout);

    transport.shutdown();

    if (args.get_flag("no-verify")) {
      std::cout << "serial cross-check: skipped (--no-verify)\n";
      dump_observability();
      return 0;
    }
    // run_parallel(1) is run_serial; more threads must not change a bit.
    // The rerun reconstructs the kernel from the same spec, so it checks
    // the distributed result in the SAME kernel mode — packet mode is
    // deterministic in itself and must merge bitwise-identically too.
    const mc::SimulationTally serial = app.run_parallel(verify_threads, chunk);
    const bool identical = serial.to_bytes() == tally.to_bytes();
    std::cout << "serial cross-check: bitwise-identical: "
              << (identical ? "yes" : "NO") << "\n";
    bool stat_ok = true;
    if (mode == mc::KernelMode::kPacket) {
      // Packet mode additionally proves physics equivalence: an
      // independent scalar-mode reference of the same plan must agree
      // within kDefaultStatSigma combined standard errors. The line
      // below is asserted by tools/cluster_smoke.sh.
      const core::MonteCarloApp scalar_app(
          make_spec(photons, seed, mc::KernelMode::kScalar));
      const mc::SimulationTally reference =
          scalar_app.run_parallel(verify_threads, chunk);
      const mc::StatEquivalence eq =
          mc::statistical_equivalence(reference, tally);
      stat_ok = eq.pass;
      std::cout << "packet-vs-scalar statistical check: max_z="
                << util::format_double(eq.max_z, 2) << " (threshold "
                << util::format_double(mc::kDefaultStatSigma, 1)
                << "): " << (eq.pass ? "PASS" : "FAIL") << "\n";
      if (!eq.pass) std::cout << eq.summary();
    }
    dump_observability();
    return identical && stat_ok ? 0 : 1;
  } catch (const std::exception& error) {
    util::log_error() << "phodis_server: " << error.what();
    return 1;
  }
}
