// phodis_worker — the client side of a real multi-process cluster (the
// paper's `Algorithm` on a non-dedicated PC).
//
// Connects to a phodis_server, pulls tasks, runs their photons, returns
// serialised partial tallies, and exits when the server says the run is
// complete. Connection loss is survived by reconnecting with backoff; a
// server that stays gone makes the worker exit non-zero instead of
// spinning.
//
//   ./phodis_worker --connect unix:/tmp/phodis.sock [--name w0]
//                   [--threads 1] [--drop 0.0] [--drop-seed 2006]
//                   [--death 0.0] [--death-seed 2006]
//                   [--reconnect-attempts 20]
//                   [--kernel-mode {auto,scalar,packet}]
//                   [--metrics-json PATH] [--trace PATH] [--log-level LEVEL]
//
// --kernel-mode auto (the default) runs each task in the mode its spec
// names — the server decides, workers follow. scalar/packet force that
// loop regardless of the spec: an operator escape hatch (e.g. a host
// where one loop is known-bad). A forced mode that differs from the
// server's own produces statistically-equivalent but not bitwise-equal
// tallies, so the server's bitwise cross-check will rightly flag it.
//
// --threads N runs each task's photon shards on an N-thread pool
// (0 = one per core) so a single worker process saturates a multi-core
// host; the returned tallies are bitwise identical for every N.
// --death injects the paper's client churn without a kill(1): the worker
// abandons that assignment and rejoins under a fresh name, leaving the
// lease to expire server-side.
//
// On Shutdown the worker always ships its registry (kernel, pool, wire
// counters) to the server as a MetricsSnapshot frame for the cluster-wide
// report; --metrics-json additionally writes the same snapshot locally,
// and --trace writes this process's spans as Chrome trace-event JSON.
#include <unistd.h>

#include <iostream>

#include "core/app.hpp"
#include "core/spec.hpp"
#include "dist/runtime.hpp"
#include "mc/kernel.hpp"
#include "net/client.hpp"
#include "obs/kernel_counters.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace phodis;
  const util::CliArgs args(argc, argv);
  const std::string connect_spec =
      args.get("connect", "tcp:127.0.0.1:4070");
  std::string default_name = "w";
  default_name += std::to_string(::getpid());
  const std::string name = args.get("name", default_name);
  const auto threads =
      static_cast<std::size_t>(args.get_int("threads", 1));
  dist::FaultSpec faults;
  faults.drop_probability = args.get_double("drop", 0.0);
  faults.seed = static_cast<std::uint64_t>(args.get_int("drop-seed", 2006));
  net::ReconnectPolicy reconnect;
  reconnect.max_attempts =
      static_cast<std::size_t>(args.get_int("reconnect-attempts", 20));
  const std::string metrics_path = args.get("metrics-json", "");
  const std::string trace_path = args.get("trace", "");
  util::set_log_level(util::parse_log_level(args.get("log-level", "info")));
  if (!trace_path.empty()) obs::TraceRecorder::global().enable();

  try {
    net::Client transport(net::Address::parse(connect_spec), name, faults,
                          reconnect);
    dist::WorkerLoopOptions options;
    options.name = name;
    options.death_probability = args.get_double("death", 0.0);
    options.death_seed =
        static_cast<std::uint64_t>(args.get_int("death-seed", 2006));
    options.send_metrics_snapshot = true;
    dist::TaskExecutor executor = core::Algorithm::executor(threads);
    if (const std::string mode_arg = args.get("kernel-mode", "auto");
        mode_arg != "auto") {
      const mc::KernelMode forced = mc::parse_kernel_mode(mode_arg);
      executor = [inner = std::move(executor), forced](
                     std::uint64_t task_id,
                     const std::vector<std::uint8_t>& payload) {
        core::TaskPayload task = core::TaskPayload::decode(payload);
        if (task.spec.kernel.mode == forced) return inner(task_id, payload);
        task.spec.kernel.mode = forced;
        return inner(task_id, task.encode());
      };
    }
    const dist::WorkerLoopOutcome outcome =
        dist::run_worker_loop(transport, executor, options);
    std::cout << "phodis_worker " << outcome.final_name << ": executed "
              << outcome.tasks_executed << " tasks, died "
              << outcome.deaths << " times, "
              << (outcome.saw_shutdown ? "shut down by server"
                                       : "lost the server")
              << "\n";
    if (!metrics_path.empty()) {
      obs::Snapshot snapshot = obs::registry().snapshot();
      obs::append_kernel_counters(snapshot);
      obs::write_metrics_json(snapshot, metrics_path);
      std::cout << "phodis_worker " << outcome.final_name
                << ": metrics report: " << metrics_path << "\n";
    }
    if (!trace_path.empty()) {
      obs::TraceRecorder::global().write_json(trace_path);
      std::cout << "phodis_worker " << outcome.final_name
                << ": trace: " << trace_path << "\n";
    }
    return outcome.saw_shutdown ? 0 : 2;
  } catch (const std::exception& error) {
    util::log_error() << "phodis_worker: " << error.what();
    return 1;
  }
}
