#!/usr/bin/env bash
# Run clang-tidy (config in .clang-tidy) over the first-party sources
# using a compile_commands.json build. Reporting wrapper: prints every
# finding and a summary count, exits 0 unless --strict is given — CI runs
# it non-blocking while the finding count is paid down.
#
#   tools/run_clang_tidy.sh [--build-dir DIR] [--strict] [--checks GLOB]
#                           [files...]
#
# --checks overrides the .clang-tidy check list (clang-tidy glob syntax,
# e.g. '-*,bugprone-use-after-move'): CI uses it to gate a curated subset
# with --strict while the full profile stays a non-blocking report.
# Degrades gracefully (exit 0 with a notice) when clang-tidy is not
# installed, so the wrapper is safe to call from any dev box.
set -u

BUILD_DIR=build
STRICT=0
CHECKS=""
FILES=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --strict)    STRICT=1; shift ;;
    --checks)    CHECKS="$2"; shift 2 ;;
    -h|--help)
      grep '^#' "$0" | sed 's/^# \{0,1\}//' | head -12
      exit 0 ;;
    *) FILES+=("$1"); shift ;;
  esac
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: $TIDY not installed; skipping (install clang-tidy" \
       "to run this locally)"
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "run_clang_tidy: generating $BUILD_DIR/compile_commands.json"
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

if [[ ${#FILES[@]} -eq 0 ]]; then
  # First-party translation units only: gtest/system headers are not ours
  # to fix, and headers are covered through HeaderFilterRegex.
  mapfile -t FILES < <(find src tools bench -name '*.cpp' | sort)
fi

TIDY_ARGS=(-p "$BUILD_DIR" --quiet)
if [[ -n "$CHECKS" ]]; then
  TIDY_ARGS+=("--checks=$CHECKS")
fi

LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT
STATUS=0
"$TIDY" "${TIDY_ARGS[@]}" "${FILES[@]}" 2>/dev/null | tee "$LOG" \
  || STATUS=$?

WARNINGS=$(grep -c 'warning:' "$LOG" || true)
echo "run_clang_tidy: ${WARNINGS} finding(s) across ${#FILES[@]} files"
if [[ $STRICT -eq 1 && ( $WARNINGS -gt 0 || $STATUS -ne 0 ) ]]; then
  exit 1
fi
exit 0
