#!/usr/bin/env bash
# End-to-end smoke of the multi-process cluster over a Unix-domain socket.
#
# Phase 1: phodis_server + 3 phodis_worker processes with 5% frame drops;
#          one worker is SIGKILLed mid-run (lease expiry must recover its
#          task). Two workers run their shards on 2 pool threads
#          (--threads 2), which must not change a bit of the tally. The
#          server must report a bitwise-identical serial cross-check.
# Phase 2: server with --checkpoint and --merge-incremental (results
#          folded into one running tally, checkpointed as merged state)
#          is SIGKILLed mid-run and restarted; the surviving
#          multi-threaded worker reconnects and the resumed run must
#          still match the serial tally bitwise.
# Phase 3: the whole cluster runs the batched packet loop
#          (--kernel-mode packet on the server, and explicitly on the
#          workers). The merged tally must match the server's packet-mode
#          rerun bitwise AND pass the packet-vs-scalar statistical
#          equivalence check against an independently computed scalar
#          reference of the same plan.
#
# Both phases ask the server for a cluster-wide metrics report
# (--metrics-json) and cross-check its counters against the configured
# faults: phase 1 must show injected frame drops and the killed worker's
# lease expiry; phase 2 runs fault-free and must show zero drops.
#
# Usage: cluster_smoke.sh PATH_TO_phodis_server PATH_TO_phodis_worker
#        [ARTIFACT_DIR]
# When ARTIFACT_DIR is given, the metrics reports and trace files are
# copied there (CI uploads them).
set -u

SERVER_BIN=${1:?usage: cluster_smoke.sh SERVER_BIN WORKER_BIN}
WORKER_BIN=${2:?usage: cluster_smoke.sh SERVER_BIN WORKER_BIN}
ARTIFACT_DIR=${3:-}

TMP=$(mktemp -d "${TMPDIR:-/tmp}/phodis_smoke.XXXXXX")
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) >/dev/null 2>&1
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
  echo "cluster_smoke: FAIL: $1" >&2
  for log in "$TMP"/*.log; do
    echo "--- $log ---" >&2
    cat "$log" >&2
  done
  exit 1
}

wait_for_socket() {
  for _ in $(seq 150); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  return 1
}

# counter_value FILE NAME LABELS — print the counter's value from a
# metrics report (the writer emits one metric object per line, so plain
# sed suffices). LABELS is the literal label-object body, e.g.
# '"side": "server"' or '' for an unlabeled metric. Prints 0 if absent.
counter_value() {
  local v
  v=$(sed -n "s/.*\"name\": \"$2\", \"labels\": {$3}, \"kind\": \"counter\", \"value\": \([0-9][0-9]*\).*/\1/p" "$1" | head -1)
  echo "${v:-0}"
}

save_artifacts() {
  [ -n "$ARTIFACT_DIR" ] || return 0
  mkdir -p "$ARTIFACT_DIR"
  cp -f "$TMP"/*.json "$ARTIFACT_DIR"/ 2>/dev/null || true
}

echo "== Phase 1: 3 workers (2 multi-threaded), 5% drops, one SIGKILLed =="
SOCK="$TMP/phase1.sock"
METRICS1="$TMP/metrics_phase1.json"
"$SERVER_BIN" --listen "unix:$SOCK" --photons 120000 --chunk 4000 \
  --seed 11 --lease 1.0 --drop 0.05 \
  --metrics-json "$METRICS1" --trace "$TMP/trace_phase1.json" \
  >"$TMP/server1.log" 2>&1 &
SERVER=$!
wait_for_socket "$SOCK" || fail "phase 1 server never bound $SOCK"

"$WORKER_BIN" --connect "unix:$SOCK" --name smoke-w0 --threads 2 \
  --reconnect-attempts 5 >"$TMP/w0.log" 2>&1 &
W0=$!
"$WORKER_BIN" --connect "unix:$SOCK" --name smoke-w1 --threads 2 \
  --reconnect-attempts 5 >"$TMP/w1.log" 2>&1 &
W1=$!
"$WORKER_BIN" --connect "unix:$SOCK" --name smoke-victim \
  --reconnect-attempts 5 >"$TMP/victim.log" 2>&1 &
VICTIM=$!

sleep 1  # let the victim lease a task, then kill it holding the lease
kill -9 "$VICTIM" >/dev/null 2>&1

wait "$SERVER"
SERVER_RC=$?
[ "$SERVER_RC" -eq 0 ] || fail "phase 1 server exited $SERVER_RC"
grep -q "bitwise-identical: yes" "$TMP/server1.log" ||
  fail "phase 1 tally did not match serial bitwise"
kill "$W0" "$W1" >/dev/null 2>&1

# The metrics report must reflect the faults this phase configured:
# --drop 0.05 on the server side means injected frame drops, and the
# SIGKILLed victim left a lease behind that had to expire to recover
# its task.
[ -f "$METRICS1" ] || fail "phase 1 server wrote no metrics report"
DROPPED=$(counter_value "$METRICS1" net_frames_dropped_total '"side": "server"')
[ "$DROPPED" -gt 0 ] ||
  fail "phase 1: --drop 0.05 configured but net_frames_dropped_total{side=server} = $DROPPED"
EXPIRED=$(counter_value "$METRICS1" dist_server_lease_expirations_total '')
[ "$EXPIRED" -ge 1 ] ||
  fail "phase 1: victim was SIGKILLed holding a lease but dist_server_lease_expirations_total = $EXPIRED"
echo "phase 1 metrics: frames dropped = $DROPPED, leases expired = $EXPIRED"

echo "== Phase 2: incremental-merge server SIGKILLed, resumed from checkpoint =="
SOCK="$TMP/phase2.sock"
CKPT="$TMP/phase2.ckpt"
"$SERVER_BIN" --listen "unix:$SOCK" --photons 120000 --chunk 4000 \
  --seed 11 --lease 1.0 --checkpoint "$CKPT" --merge-incremental \
  >"$TMP/server2a.log" 2>&1 &
SERVER=$!
wait_for_socket "$SOCK" || fail "phase 2 server never bound $SOCK"

"$WORKER_BIN" --connect "unix:$SOCK" --name smoke-w2 --threads 2 \
  --reconnect-attempts 40 >"$TMP/w2.log" 2>&1 &
W2=$!

# Kill as soon as the first checkpoint lands (not after a fixed sleep):
# on a fast host a fixed sleep can outlive the whole run, silently
# degenerating this phase into a fresh restart instead of a resume.
for _ in $(seq 300); do
  [ -f "$CKPT" ] && break
  kill -0 "$SERVER" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER" 2>/dev/null; then
  kill -9 "$SERVER" >/dev/null 2>&1
else
  echo "(note: phase 2 server finished before the kill; resume not exercised)"
fi
sleep 0.5

METRICS2="$TMP/metrics_phase2.json"
"$SERVER_BIN" --listen "unix:$SOCK" --photons 120000 --chunk 4000 \
  --seed 11 --lease 1.0 --checkpoint "$CKPT" --merge-incremental \
  --metrics-json "$METRICS2" \
  >"$TMP/server2b.log" 2>&1 &
SERVER=$!
wait "$SERVER"
SERVER_RC=$?
[ "$SERVER_RC" -eq 0 ] || fail "phase 2 restarted server exited $SERVER_RC"
grep -q "bitwise-identical: yes" "$TMP/server2b.log" ||
  fail "phase 2 resumed tally did not match serial bitwise"
if grep -q "resumed" "$TMP/server2b.log"; then
  grep "resumed" "$TMP/server2b.log"
else
  echo "(note: no checkpoint had landed before the kill; restart ran fresh)"
fi
kill "$W2" >/dev/null 2>&1

# Phase 2 ran without fault injection: the restarted server's report must
# show a clean wire.
[ -f "$METRICS2" ] || fail "phase 2 server wrote no metrics report"
DROPPED2=$(counter_value "$METRICS2" net_frames_dropped_total '"side": "server"')
[ "$DROPPED2" -eq 0 ] ||
  fail "phase 2: no --drop configured but net_frames_dropped_total{side=server} = $DROPPED2"
echo "phase 2 metrics: frames dropped = $DROPPED2 (fault-free, as configured)"

echo "== Phase 3: packet-mode cluster, statistical check vs scalar reference =="
SOCK="$TMP/phase3.sock"
"$SERVER_BIN" --listen "unix:$SOCK" --photons 60000 --chunk 4000 \
  --seed 11 --lease 1.0 --kernel-mode packet \
  >"$TMP/server3.log" 2>&1 &
SERVER=$!
wait_for_socket "$SOCK" || fail "phase 3 server never bound $SOCK"

"$WORKER_BIN" --connect "unix:$SOCK" --name smoke-p0 --threads 2 \
  --kernel-mode packet --reconnect-attempts 5 >"$TMP/p0.log" 2>&1 &
P0=$!
"$WORKER_BIN" --connect "unix:$SOCK" --name smoke-p1 \
  --kernel-mode packet --reconnect-attempts 5 >"$TMP/p1.log" 2>&1 &
P1=$!

wait "$SERVER"
SERVER_RC=$?
[ "$SERVER_RC" -eq 0 ] || fail "phase 3 server exited $SERVER_RC"
# Packet mode is deterministic in itself: the merged distributed tally
# must equal the server's packet-mode rerun bit for bit...
grep -q "bitwise-identical: yes" "$TMP/server3.log" ||
  fail "phase 3 packet tally did not match the packet-mode rerun bitwise"
# ...and must sit within the statistical-equivalence envelope of the
# scalar reference (the physics contract between the two loops).
grep -q "packet-vs-scalar statistical check: .*PASS" "$TMP/server3.log" ||
  fail "phase 3 merged packet tally failed the statistical check vs scalar"
grep "packet-vs-scalar statistical check" "$TMP/server3.log"
kill "$P0" "$P1" >/dev/null 2>&1

save_artifacts
echo "cluster_smoke: PASS"
exit 0
