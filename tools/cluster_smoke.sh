#!/usr/bin/env bash
# End-to-end smoke of the multi-process cluster over a Unix-domain socket.
#
# Phase 1: phodis_server + 3 phodis_worker processes with 5% frame drops;
#          one worker is SIGKILLed mid-run (lease expiry must recover its
#          task). Two workers run their shards on 2 pool threads
#          (--threads 2), which must not change a bit of the tally. The
#          server must report a bitwise-identical serial cross-check.
# Phase 2: server with --checkpoint and --merge-incremental (results
#          folded into one running tally, checkpointed as merged state)
#          is SIGKILLed mid-run and restarted; the surviving
#          multi-threaded worker reconnects and the resumed run must
#          still match the serial tally bitwise.
#
# Usage: cluster_smoke.sh PATH_TO_phodis_server PATH_TO_phodis_worker
set -u

SERVER_BIN=${1:?usage: cluster_smoke.sh SERVER_BIN WORKER_BIN}
WORKER_BIN=${2:?usage: cluster_smoke.sh SERVER_BIN WORKER_BIN}

TMP=$(mktemp -d "${TMPDIR:-/tmp}/phodis_smoke.XXXXXX")
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) >/dev/null 2>&1
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
  echo "cluster_smoke: FAIL: $1" >&2
  for log in "$TMP"/*.log; do
    echo "--- $log ---" >&2
    cat "$log" >&2
  done
  exit 1
}

wait_for_socket() {
  for _ in $(seq 150); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  return 1
}

echo "== Phase 1: 3 workers (2 multi-threaded), 5% drops, one SIGKILLed =="
SOCK="$TMP/phase1.sock"
"$SERVER_BIN" --listen "unix:$SOCK" --photons 120000 --chunk 4000 \
  --seed 11 --lease 1.0 --drop 0.05 >"$TMP/server1.log" 2>&1 &
SERVER=$!
wait_for_socket "$SOCK" || fail "phase 1 server never bound $SOCK"

"$WORKER_BIN" --connect "unix:$SOCK" --name smoke-w0 --threads 2 \
  --reconnect-attempts 5 >"$TMP/w0.log" 2>&1 &
W0=$!
"$WORKER_BIN" --connect "unix:$SOCK" --name smoke-w1 --threads 2 \
  --reconnect-attempts 5 >"$TMP/w1.log" 2>&1 &
W1=$!
"$WORKER_BIN" --connect "unix:$SOCK" --name smoke-victim \
  --reconnect-attempts 5 >"$TMP/victim.log" 2>&1 &
VICTIM=$!

sleep 1  # let the victim lease a task, then kill it holding the lease
kill -9 "$VICTIM" >/dev/null 2>&1

wait "$SERVER"
SERVER_RC=$?
[ "$SERVER_RC" -eq 0 ] || fail "phase 1 server exited $SERVER_RC"
grep -q "bitwise-identical: yes" "$TMP/server1.log" ||
  fail "phase 1 tally did not match serial bitwise"
kill "$W0" "$W1" >/dev/null 2>&1

echo "== Phase 2: incremental-merge server SIGKILLed, resumed from checkpoint =="
SOCK="$TMP/phase2.sock"
CKPT="$TMP/phase2.ckpt"
"$SERVER_BIN" --listen "unix:$SOCK" --photons 120000 --chunk 4000 \
  --seed 11 --lease 1.0 --checkpoint "$CKPT" --merge-incremental \
  >"$TMP/server2a.log" 2>&1 &
SERVER=$!
wait_for_socket "$SOCK" || fail "phase 2 server never bound $SOCK"

"$WORKER_BIN" --connect "unix:$SOCK" --name smoke-w2 --threads 2 \
  --reconnect-attempts 40 >"$TMP/w2.log" 2>&1 &
W2=$!

# Kill as soon as the first checkpoint lands (not after a fixed sleep):
# on a fast host a fixed sleep can outlive the whole run, silently
# degenerating this phase into a fresh restart instead of a resume.
for _ in $(seq 300); do
  [ -f "$CKPT" ] && break
  kill -0 "$SERVER" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER" 2>/dev/null; then
  kill -9 "$SERVER" >/dev/null 2>&1
else
  echo "(note: phase 2 server finished before the kill; resume not exercised)"
fi
sleep 0.5

"$SERVER_BIN" --listen "unix:$SOCK" --photons 120000 --chunk 4000 \
  --seed 11 --lease 1.0 --checkpoint "$CKPT" --merge-incremental \
  >"$TMP/server2b.log" 2>&1 &
SERVER=$!
wait "$SERVER"
SERVER_RC=$?
[ "$SERVER_RC" -eq 0 ] || fail "phase 2 restarted server exited $SERVER_RC"
grep -q "bitwise-identical: yes" "$TMP/server2b.log" ||
  fail "phase 2 resumed tally did not match serial bitwise"
if grep -q "resumed" "$TMP/server2b.log"; then
  grep "resumed" "$TMP/server2b.log"
else
  echo "(note: no checkpoint had landed before the kill; restart ran fresh)"
fi
kill "$W2" >/dev/null 2>&1

echo "cluster_smoke: PASS"
exit 0
