// Rule passes over the project model.
//
// `run_file_passes` holds every rule that only needs one file: the
// line-pattern rules D1–D5 (unchanged from the per-file engine) and the
// token-level D7 draw-order rule (scoped to src/mc/). `run_project_passes`
// holds the cross-TU rules: D6 wire-protocol symmetry (codec pairing and
// enum-switch exhaustiveness across files) and D8 lock-order cycles over
// the interprocedural acquisition graph.
//
// Writing a new pass: build on FileModel (lexed lines + tokens +
// functions/enums/switches/codecs/lock_info) or ProjectModel (all files +
// the lock graph), emit Diagnostics, and let apply_suppressions /
// sort_diagnostics handle the allow() comments and deterministic ordering
// — passes never deal with suppression themselves.
#pragma once

#include <vector>

#include "lint/model.hpp"

namespace phodis::lint {

/// D1–D5 and D7 for one file.
std::vector<Diagnostic> run_file_passes(const FileModel& fm);

/// D6 and D8 across the whole model.
std::vector<Diagnostic> run_project_passes(const ProjectModel& pm);

/// Mark diagnostics covered by `// phodis-lint: allow(Dn) reason` comments
/// (same line or the line above, in the diagnostic's own file).
void apply_suppressions(std::vector<Diagnostic>& diags,
                        const ProjectModel& pm);

/// Deterministic report order: (file, line, rule, message).
void sort_diagnostics(std::vector<Diagnostic>& diags);

}  // namespace phodis::lint
