#include "lint/linter.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "lint/model.hpp"
#include "lint/passes.hpp"

namespace phodis::lint {

namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

// ---------------------------------------------------------------------------
// Lexer: one pass, blanking literal contents and routing comment text to a
// per-line side channel. Line structure is preserved exactly so diagnostics
// and suppression comments line up with the original file.
// ---------------------------------------------------------------------------
LexedFile lex(const std::string& source) {
  LexedFile out;
  std::string code_line;
  std::string comment_line;

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"

  auto flush_line = [&] {
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  const std::size_t n = source.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = source[i];
    const char next = (i + 1 < n) ? source[i + 1] : '\0';

    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated ordinary literals cannot span lines; reset so one
      // stray quote cannot blank the rest of the file.
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      flush_line();
      continue;
    }

    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          // Raw string? The R must be its own token (R"..., not a name
          // ending in R like FOUR"...).
          const bool raw =
              i > 0 && source[i - 1] == 'R' &&
              (i < 2 || !is_ident(source[i - 2]));
          if (raw) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < n && source[j] != '(') raw_delim += source[j++];
            i = j;  // consume up to and including '('
            code_line += "\"";
            state = State::kRawString;
          } else {
            code_line += '"';
            state = State::kString;
          }
        } else if (c == '\'') {
          code_line += '\'';
          state = State::kChar;
        } else {
          code_line += c;
        }
        break;

      case State::kLineComment:
        comment_line += c;
        break;

      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          comment_line += c;
        }
        break;

      case State::kString:
        if (c == '\\' && next != '\0') {
          ++i;  // skip escaped char (handles \" and \\)
        } else if (c == '"') {
          code_line += '"';
          state = State::kCode;
        }
        break;

      case State::kChar:
        if (c == '\\' && next != '\0') {
          ++i;
        } else if (c == '\'') {
          code_line += '\'';
          state = State::kCode;
        }
        break;

      case State::kRawString: {
        // Looking for )delim"
        if (c == ')' &&
            source.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < n &&
            source[i + 1 + raw_delim.size()] == '"') {
          i += raw_delim.size() + 1;
          code_line += '"';
          state = State::kCode;
        }
        // Raw strings may span lines: swallow the newline handling above?
        // No: '\n' is handled before the switch and flushes the line while
        // keeping state, which is what we want.
        break;
      }
    }
  }
  flush_line();  // final (possibly empty) line
  return out;
}

// ---------------------------------------------------------------------------
// Project-model rule engine: build every file's model, aggregate, run the
// per-file and cross-TU passes, then resolve suppressions and pin order.
// ---------------------------------------------------------------------------
std::vector<Diagnostic> lint_project(const std::vector<SourceFile>& files) {
  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const SourceFile& f : files) {
    models.push_back(build_file_model(f.path, f.source));
  }
  const ProjectModel pm = ProjectModel::build(std::move(models));

  std::vector<Diagnostic> diags;
  for (const FileModel& fm : pm.files) {
    std::vector<Diagnostic> file_diags = run_file_passes(fm);
    diags.insert(diags.end(),
                 std::make_move_iterator(file_diags.begin()),
                 std::make_move_iterator(file_diags.end()));
  }
  std::vector<Diagnostic> project_diags = run_project_passes(pm);
  diags.insert(diags.end(),
               std::make_move_iterator(project_diags.begin()),
               std::make_move_iterator(project_diags.end()));

  apply_suppressions(diags, pm);
  sort_diagnostics(diags);
  return diags;
}

std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& source) {
  return lint_project({SourceFile{path, source}});
}

// ---------------------------------------------------------------------------
// Baseline ratchet
// ---------------------------------------------------------------------------
std::map<std::string, int> parse_baseline(const std::string& text) {
  std::map<std::string, int> baseline;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream fields(line);
    std::string rule;
    if (!(fields >> rule)) continue;  // blank / comment-only
    int count = 0;
    if (!(fields >> count) || count < 0) {
      throw std::runtime_error("baseline line " + std::to_string(line_no) +
                               ": expected '<rule> <count>'");
    }
    baseline[rule] = count;
  }
  return baseline;
}

std::vector<std::string> check_baseline(
    const Stats& stats, const std::map<std::string, int>& baseline,
    std::vector<std::string>* improvements) {
  std::vector<std::string> failures;
  for (const auto& [rule, count] : stats.suppressions) {
    const auto it = baseline.find(rule);
    const int allowed = (it == baseline.end()) ? 0 : it->second;
    if (count > allowed) {
      failures.push_back(rule + ": " + std::to_string(count) +
                         " suppressions exceed the baseline of " +
                         std::to_string(allowed) +
                         " — fix the new violation instead of allowing it, "
                         "or argue the baseline up in review");
    }
  }
  if (improvements != nullptr) {
    for (const auto& [rule, allowed] : baseline) {
      const auto it = stats.suppressions.find(rule);
      const int count = (it == stats.suppressions.end()) ? 0 : it->second;
      if (count < allowed) {
        improvements->push_back(
            rule + ": " + std::to_string(count) + " suppressions, baseline " +
            std::to_string(allowed) + " — ratchet the baseline down");
      }
    }
  }
  return failures;
}

std::string format_diagnostic(const Diagnostic& d) {
  std::string out =
      d.file + ":" + std::to_string(d.line) + ": " + d.rule + ": " + d.message;
  if (d.suppressed) {
    out += " [suppressed: " +
           (d.suppress_reason.empty() ? std::string("<no reason given>")
                                      : d.suppress_reason) +
           "]";
  }
  return out;
}

}  // namespace phodis::lint
