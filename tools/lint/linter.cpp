#include "lint/linter.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace phodis::lint {

namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

// ---------------------------------------------------------------------------
// Lexer: one pass, blanking literal contents and routing comment text to a
// per-line side channel. Line structure is preserved exactly so diagnostics
// and suppression comments line up with the original file.
// ---------------------------------------------------------------------------
LexedFile lex(const std::string& source) {
  LexedFile out;
  std::string code_line;
  std::string comment_line;

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"

  auto flush_line = [&] {
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  const std::size_t n = source.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = source[i];
    const char next = (i + 1 < n) ? source[i + 1] : '\0';

    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated ordinary literals cannot span lines; reset so one
      // stray quote cannot blank the rest of the file.
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      flush_line();
      continue;
    }

    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          // Raw string? The R must be its own token (R"..., not a name
          // ending in R like FOUR"...).
          const bool raw =
              i > 0 && source[i - 1] == 'R' &&
              (i < 2 || !is_ident(source[i - 2]));
          if (raw) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < n && source[j] != '(') raw_delim += source[j++];
            i = j;  // consume up to and including '('
            code_line += "\"";
            state = State::kRawString;
          } else {
            code_line += '"';
            state = State::kString;
          }
        } else if (c == '\'') {
          code_line += '\'';
          state = State::kChar;
        } else {
          code_line += c;
        }
        break;

      case State::kLineComment:
        comment_line += c;
        break;

      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          comment_line += c;
        }
        break;

      case State::kString:
        if (c == '\\' && next != '\0') {
          ++i;  // skip escaped char (handles \" and \\)
        } else if (c == '"') {
          code_line += '"';
          state = State::kCode;
        }
        break;

      case State::kChar:
        if (c == '\\' && next != '\0') {
          ++i;
        } else if (c == '\'') {
          code_line += '\'';
          state = State::kCode;
        }
        break;

      case State::kRawString: {
        // Looking for )delim"
        if (c == ')' &&
            source.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < n &&
            source[i + 1 + raw_delim.size()] == '"') {
          i += raw_delim.size() + 1;
          code_line += '"';
          state = State::kCode;
        }
        // Raw strings may span lines: swallow the newline handling above?
        // No: '\n' is handled before the switch and flushes the line while
        // keeping state, which is what we want.
        break;
      }
    }
  }
  flush_line();  // final (possibly empty) line
  return out;
}

// ---------------------------------------------------------------------------
// Pattern helpers (operate on blanked code lines)
// ---------------------------------------------------------------------------
namespace {

/// Positions where `word` occurs with identifier boundaries on both sides.
std::vector<std::size_t> find_word(const std::string& line,
                                   const std::string& word) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = line.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(line[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !is_ident(line[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

/// True if `word` occurs as an identifier immediately followed by '('
/// (optionally with spaces) — a call or macro-call shape.
bool has_call(const std::string& line, const std::string& word) {
  for (const std::size_t pos : find_word(line, word)) {
    std::size_t j = pos + word.size();
    while (j < line.size() && line[j] == ' ') ++j;
    if (j < line.size() && line[j] == '(') return true;
  }
  return false;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

/// First non-space character is '#': preprocessor line.
bool is_preprocessor(const std::string& line) {
  for (const char c : line) {
    if (c == ' ' || c == '\t') continue;
    return c == '#';
  }
  return false;
}

/// A float literal with a '.' or exponent and an f/F suffix (1.0f, .5F,
/// 2e3f). Integer-f like suffixed user literals won't match.
bool has_float_literal(const std::string& line) {
  const std::size_t n = line.size();
  for (std::size_t i = 0; i < n; ++i) {
    const bool digit = std::isdigit(static_cast<unsigned char>(line[i])) != 0;
    const bool dot_digit = line[i] == '.' && i + 1 < n &&
                           std::isdigit(static_cast<unsigned char>(line[i + 1]));
    if (!digit && !dot_digit) continue;
    if (i > 0 && (is_ident(line[i - 1]) || line[i - 1] == '.')) continue;
    std::size_t j = i;
    bool fractional = false;
    while (j < n && std::isdigit(static_cast<unsigned char>(line[j]))) ++j;
    if (j < n && line[j] == '.') {
      fractional = true;
      ++j;
      while (j < n && std::isdigit(static_cast<unsigned char>(line[j]))) ++j;
    }
    if (j < n && (line[j] == 'e' || line[j] == 'E')) {
      std::size_t k = j + 1;
      if (k < n && (line[k] == '+' || line[k] == '-')) ++k;
      if (k < n && std::isdigit(static_cast<unsigned char>(line[k]))) {
        fractional = true;
        j = k;
        while (j < n && std::isdigit(static_cast<unsigned char>(line[j]))) ++j;
      }
    }
    if (fractional && j < n && (line[j] == 'f' || line[j] == 'F')) {
      return true;
    }
    i = j;
  }
  return false;
}

/// Variable names declared on this line with an unordered container type:
/// "std::unordered_map<K, V> name" (template args must close on the line).
std::vector<std::string> unordered_decl_names(const std::string& line) {
  std::vector<std::string> names;
  for (const char* type : {"unordered_map", "unordered_set"}) {
    for (const std::size_t pos : find_word(line, type)) {
      std::size_t j = pos + std::string(type).size();
      if (j >= line.size() || line[j] != '<') continue;
      int depth = 0;
      while (j < line.size()) {
        if (line[j] == '<') ++depth;
        if (line[j] == '>') {
          --depth;
          if (depth == 0) break;
        }
        ++j;
      }
      if (j >= line.size()) continue;  // args span lines: name unknown
      ++j;
      while (j < line.size() && (line[j] == ' ' || line[j] == '&')) ++j;
      std::string name;
      while (j < line.size() && is_ident(line[j])) name += line[j++];
      if (!name.empty()) names.push_back(name);
    }
  }
  return names;
}

struct PathScope {
  bool in_mc = false;            // D3 territory
  bool in_wire = false;          // D4: src/net/ + src/dist/message.*
  bool ordered_domain = false;   // D2 declaration ban
  bool timing_allowlisted = false;  // D1 ::now() sanctuary
};

// D3 carve-outs inside src/mc/: the batched-packet TUs own their FP
// environment (scoped relaxed-FP compile flags, documented ulp bounds,
// their own golden hashes), so the double-only hot-path hygiene rule does
// not apply there. File-scoped by explicit prefix — nothing else in
// src/mc/ is exempt. The trailing '.' pins the extension boundary so
// e.g. src/mc/vmath_tables.cpp would still be D3 territory.
constexpr const char* kD3ExemptPrefixes[] = {
    "src/mc/packet_kernel.",
    "src/mc/vmath.",
};

PathScope classify(const std::string& path) {
  PathScope s;
  s.in_mc = starts_with(path, "src/mc/");
  for (const char* prefix : kD3ExemptPrefixes) {
    if (starts_with(path, prefix)) s.in_mc = false;
  }
  s.in_wire = starts_with(path, "src/net/") ||
              starts_with(path, "src/dist/message");
  s.ordered_domain = starts_with(path, "src/core/") ||
                     starts_with(path, "src/dist/") ||
                     starts_with(path, "src/mc/");
  // The one place wall-clock reads are sanctioned: the timing wrapper
  // everything else (benches, lease expiry, runtime reports) goes through.
  s.timing_allowlisted = path == "src/util/stopwatch.hpp";
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Rule engine
// ---------------------------------------------------------------------------
std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& source) {
  const LexedFile lexed = lex(source);
  const PathScope scope = classify(path);
  std::vector<Diagnostic> diags;

  auto report = [&](int line_index, const char* rule, std::string message) {
    Diagnostic d;
    d.file = path;
    d.line = line_index + 1;
    d.rule = rule;
    d.message = std::move(message);
    diags.push_back(std::move(d));
  };

  std::vector<std::string> unordered_names;

  // D5 lock tracking: depths of currently-held lock guards, maintained by
  // a char-level brace walk so a '}' closing the guard's scope releases it.
  std::vector<int> lock_depths;
  int depth = 0;

  for (std::size_t li = 0; li < lexed.code.size(); ++li) {
    const std::string& line = lexed.code[li];

    // --- D1: nondeterministic sources --------------------------------
    if (!find_word(line, "random_device").empty()) {
      report(static_cast<int>(li), "D1",
             "std::random_device is nondeterministic; seeds must come from "
             "the plan spec (util::Rng streams) so runs replay bitwise");
    }
    for (const char* fn : {"rand", "srand", "rand_r", "drand48"}) {
      if (has_call(line, fn)) {
        report(static_cast<int>(li), "D1",
               std::string(fn) +
                   "() is a hidden global RNG; use util::Rng streams derived "
                   "from the plan seed");
      }
    }
    if (has_call(line, "time")) {
      report(static_cast<int>(li), "D1",
             "time() as input is nondeterministic; timing belongs in "
             "util::Stopwatch, seeds in the plan spec");
    }
    if (!scope.timing_allowlisted && contains(line, "::now(")) {
      report(static_cast<int>(li), "D1",
             "clock ::now() outside util/stopwatch.hpp; wall-clock reads go "
             "through util::Stopwatch and must never feed seeds or results");
    }

    // --- D2: unordered-container iteration / ordered-domain ban ------
    for (const std::string& name : unordered_decl_names(line)) {
      unordered_names.push_back(name);
    }
    if (!is_preprocessor(line) &&
        (!find_word(line, "unordered_map").empty() ||
         !find_word(line, "unordered_set").empty())) {
      if (scope.ordered_domain) {
        report(static_cast<int>(li), "D2",
               "unordered container in an ordered domain (src/core, "
               "src/dist, src/mc): tally folds, result merges and frames "
               "must have a deterministic order — use std::map/std::vector "
               "or sort explicitly");
      }
    }
    for (const std::string& name : unordered_names) {
      // ": name" inside a range-for, with an identifier boundary after the
      // name so container 'm' does not match ': my_vec'.
      bool range_for = false;
      if (!find_word(line, "for").empty()) {
        const std::string needle = ": " + name;
        std::size_t pos = 0;
        while ((pos = line.find(needle, pos)) != std::string::npos) {
          const std::size_t end = pos + needle.size();
          if (end >= line.size() || !is_ident(line[end])) {
            range_for = true;
            break;
          }
          pos = end;
        }
      }
      bool begin_call = false;
      for (const char* suffix : {".begin()", ".cbegin()", "->begin()"}) {
        const std::string needle = name + suffix;
        for (const std::size_t pos : find_word(line, name)) {
          if (line.compare(pos, needle.size(), needle) == 0) {
            begin_call = true;
            break;
          }
        }
        if (begin_call) break;
      }
      if (range_for || begin_call) {
        report(static_cast<int>(li), "D2",
               "iteration over unordered container '" + name +
                   "': traversal order is implementation-defined and would "
                   "reorder FP folds / emitted frames — sort keys first or "
                   "use an ordered container");
      }
    }

    // --- D3: hot-path FP hygiene in src/mc/ --------------------------
    if (scope.in_mc) {
      if (!find_word(line, "hypot").empty()) {
        report(static_cast<int>(li), "D3",
               "std::hypot in the kernel hot path: slower than the pinned "
               "sqrt(x*x + y*y) form and not part of the golden-hash "
               "contract — use util::fast_radius");
      }
      for (const char* fn : {"powf", "sqrtf", "sinf", "cosf", "expf", "logf",
                             "fabsf", "atan2f", "fmaf", "tanf"}) {
        if (has_call(line, fn)) {
          report(static_cast<int>(li), "D3",
                 std::string(fn) +
                     "() computes in float; kernel math stays double with "
                     "pinned expression order (see util/fastmath.hpp)");
        }
      }
      if (!find_word(line, "float").empty()) {
        report(static_cast<int>(li), "D3",
               "float declaration in src/mc/: silent double->float "
               "truncation changes tallies across compilers — kernel state "
               "is double");
      }
      if (has_float_literal(line)) {
        report(static_cast<int>(li), "D3",
               "float literal in src/mc/: promotes expressions through "
               "float and truncates silently — write the double literal");
      }
    }

    // --- D4: wire hygiene in src/net/ + src/dist/message.* -----------
    if (scope.in_wire) {
      if (has_call(line, "memcpy")) {
        report(static_cast<int>(li), "D4",
               "memcpy in wire code: struct layout and host endianness are "
               "not a protocol — encode through util::ByteWriter/ByteReader "
               "or the explicit little-endian helpers in util/bytes.hpp");
      }
      if (contains(line, "reinterpret_cast<char*") ||
          contains(line, "reinterpret_cast<unsigned char*") ||
          contains(line, "reinterpret_cast<uint8_t*") ||
          contains(line, "reinterpret_cast<std::uint8_t*")) {
        report(static_cast<int>(li), "D4",
               "byte-punning a struct for the wire; encode fields "
               "explicitly via util/bytes.hpp");
      }
    }

    // --- D5: concurrency hygiene -------------------------------------
    if (contains(line, ".detach()")) {
      report(static_cast<int>(li), "D5",
             "std::thread::detach(): detached threads outlive shutdown and "
             "race teardown — join every thread (exec::ThreadPool does)");
    }
    if (!find_word(line, "volatile").empty()) {
      report(static_cast<int>(li), "D5",
             "volatile is not synchronisation; use std::atomic (or a "
             "mutex) for cross-thread flags");
    }

    // Lock-across-send: walk the line once, tracking brace depth and the
    // positions where guards appear / sends happen.
    for (std::size_t ci = 0; ci < line.size(); ++ci) {
      const char c = line[ci];
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        while (!lock_depths.empty() && lock_depths.back() > depth) {
          lock_depths.pop_back();
        }
      }
      auto at = [&](const char* token) {
        return line.compare(ci, std::string(token).size(), token) == 0;
      };
      if (at("lock_guard<") || at("scoped_lock<") || at("unique_lock<") ||
          at("scoped_lock ") || at(".lock()")) {
        lock_depths.push_back(depth);
      }
      if (at(".unlock()") && !lock_depths.empty()) {
        lock_depths.pop_back();
      }
      if ((at("write_frame(") || at("send_all(") || at(".send(") ||
           at("->send(")) &&
          !lock_depths.empty()) {
        report(static_cast<int>(li), "D5",
               "transport send while holding a mutex: a slow or dead peer "
               "stalls every thread queued on that lock — copy the frame, "
               "release, then send");
      }
    }
  }

  // ----- suppression pass -------------------------------------------------
  auto suppression_for = [&](const Diagnostic& d) -> const std::string* {
    for (int delta = 0; delta <= 1; ++delta) {
      const int idx = d.line - 1 - delta;
      if (idx < 0 || idx >= static_cast<int>(lexed.comments.size())) continue;
      const std::string& comment = lexed.comments[idx];
      const std::size_t tag = comment.find("phodis-lint:");
      if (tag == std::string::npos) continue;
      const std::size_t open = comment.find("allow(", tag);
      if (open == std::string::npos) continue;
      const std::size_t close = comment.find(')', open);
      if (close == std::string::npos) continue;
      const std::string rules = comment.substr(open + 6, close - open - 6);
      std::stringstream ss(rules);
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        std::size_t a = rule.find_first_not_of(' ');
        std::size_t b = rule.find_last_not_of(' ');
        if (a == std::string::npos) continue;
        if (rule.substr(a, b - a + 1) == d.rule) {
          static thread_local std::string reason;
          reason = comment.substr(close + 1);
          const std::size_t r = reason.find_first_not_of(' ');
          reason = (r == std::string::npos) ? "" : reason.substr(r);
          return &reason;
        }
      }
    }
    return nullptr;
  };

  for (Diagnostic& d : diags) {
    if (const std::string* reason = suppression_for(d)) {
      d.suppressed = true;
      d.suppress_reason = *reason;
    }
  }
  return diags;
}

// ---------------------------------------------------------------------------
// Baseline ratchet
// ---------------------------------------------------------------------------
std::map<std::string, int> parse_baseline(const std::string& text) {
  std::map<std::string, int> baseline;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream fields(line);
    std::string rule;
    if (!(fields >> rule)) continue;  // blank / comment-only
    int count = 0;
    if (!(fields >> count) || count < 0) {
      throw std::runtime_error("baseline line " + std::to_string(line_no) +
                               ": expected '<rule> <count>'");
    }
    baseline[rule] = count;
  }
  return baseline;
}

std::vector<std::string> check_baseline(
    const Stats& stats, const std::map<std::string, int>& baseline,
    std::vector<std::string>* improvements) {
  std::vector<std::string> failures;
  for (const auto& [rule, count] : stats.suppressions) {
    const auto it = baseline.find(rule);
    const int allowed = (it == baseline.end()) ? 0 : it->second;
    if (count > allowed) {
      failures.push_back(rule + ": " + std::to_string(count) +
                         " suppressions exceed the baseline of " +
                         std::to_string(allowed) +
                         " — fix the new violation instead of allowing it, "
                         "or argue the baseline up in review");
    }
  }
  if (improvements != nullptr) {
    for (const auto& [rule, allowed] : baseline) {
      const auto it = stats.suppressions.find(rule);
      const int count = (it == stats.suppressions.end()) ? 0 : it->second;
      if (count < allowed) {
        improvements->push_back(
            rule + ": " + std::to_string(count) + " suppressions, baseline " +
            std::to_string(allowed) + " — ratchet the baseline down");
      }
    }
  }
  return failures;
}

std::string format_diagnostic(const Diagnostic& d) {
  std::string out =
      d.file + ":" + std::to_string(d.line) + ": " + d.rule + ": " + d.message;
  if (d.suppressed) {
    out += " [suppressed: " +
           (d.suppress_reason.empty() ? std::string("<no reason given>")
                                      : d.suppress_reason) +
           "]";
  }
  return out;
}

}  // namespace phodis::lint
