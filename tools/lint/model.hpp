// The project model: what the cross-TU rules (D6–D8) see.
//
// `build_file_model` turns one lexed file into a token stream plus the
// structural facts a pass needs — function definitions (with token ranges),
// enum definitions, switch sites, ByteWriter/ByteReader call sequences in
// codec-named functions, and per-function mutex acquisition info. All of
// that is per-file and embarrassingly parallel; `ProjectModel::build` then
// stitches the files into the cross-file index (codec pairing happens in
// the D6 pass; the interprocedural lock-acquisition graph is built here
// because it needs a call-graph fixpoint over every file at once).
//
// The model is deliberately token-level, not an AST: it only has to be
// right about the constructs this codebase's style produces (out-of-line
// `Type Class::method(...)` definitions, enum class, brace-scoped guards),
// and a token walk that is conservative about what it claims keeps the
// false-positive rate at zero on the real tree — the property the whole
// suppression-ratchet workflow depends on.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/linter.hpp"

namespace phodis::lint {

/// One lexical token from the blanked code. String/char literals survive
/// as the punctuation tokens `""` / `''` (contents were blanked by lex()).
struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;  // 1-based source line
};

/// Tokenize blanked code. Identifiers, pp-numbers (1e-3, 0x1p2), and
/// punctuation; only `::`, `->`, `&&`, `||` are merged into two-char
/// tokens (notably NOT `>>`, so nested template closes stay two tokens).
/// Preprocessor lines (and their backslash continuations) are skipped so
/// macro bodies cannot unbalance the structural walk.
std::vector<Token> tokenize(const LexedFile& lexed);

/// A function definition found in the token stream.
struct FunctionInfo {
  std::string name;       // unqualified
  std::string qualifier;  // `X` in `X::name`, or enclosing class; "" if free
  int line = 0;           // line of the name token
  std::size_t sig_begin = 0;   // token index of the name
  std::size_t body_begin = 0;  // token index of the body '{'
  std::size_t body_end = 0;    // token index of the matching '}'
};

/// An enum definition (enum or enum class), possibly anonymous.
struct EnumDef {
  std::string name;
  std::vector<std::string> enumerators;
  std::string file;
  int line = 0;
};

/// A `switch` whose case labels name enumerators as `Enum::kValue`.
/// Sites whose labels are numbers/chars or mix enums are not recorded.
struct SwitchSite {
  std::string file;
  int line = 0;
  std::string enum_name;           // simple name from the case labels
  std::vector<std::string> cases;  // enumerators the labels name
  bool has_default = false;
};

/// One ByteWriter/ByteReader call in a codec function, in source order.
/// `op` is the member name (u8, u32, u64, i64, f64, boolean, str, blob,
/// f64_vec) or "sub" for a nested codec call that passes the writer/reader.
struct CodecOp {
  std::string op;
  int line = 0;
};

/// A codec-named function: name is a codec verb (serialize/encode/
/// checkpoint and their read-side mirrors) or verb_<suffix>. `key` is the
/// pairing key — "qualifier|suffix" with `_to_`/`_from_` collapsed so
/// checkpoint_to_file pairs with restore_from_file.
struct CodecFn {
  std::string file;
  std::string key;
  bool writer = false;  // encoder side (serialize/encode/checkpoint)
  std::string display;  // Qualifier::name for diagnostics
  int line = 0;
  std::vector<CodecOp> ops;
};

/// Per-function mutex facts feeding the cross-TU lock graph.
struct FunctionLockInfo {
  std::string display;      // Qualifier::name
  std::string simple_name;  // callee-resolution key
  std::string qualifier;    // owning class; "" for free functions
  std::string file;
  /// Mutex nodes this function acquires directly (guards, .lock()).
  std::vector<std::string> acquires;
  /// Direct held->acquired edges observed inside this body.
  struct Edge {
    std::string from, to;
    int line = 0;
  };
  std::vector<Edge> edges;
  /// Call sites (simple callee name + the mutexes held at the call).
  /// Member calls through a receiver other than `this` are NOT recorded —
  /// the receiver's type is unknown, and resolving them by simple name is
  /// what turns `socket_->shutdown_both()` into a phantom edge through
  /// `Client::shutdown`. Lambda bodies are skipped too: their calls run
  /// when the closure is invoked, not under the locks held where it is
  /// built.
  struct Call {
    std::string callee;
    std::string qualifier;  // `X` in `X::callee(...)`; "" if unqualified
    std::vector<std::string> held;
    int line = 0;
  };
  std::vector<Call> calls;
};

/// Everything the passes need from one file. Built independently per file
/// (safe to build in parallel), then aggregated by ProjectModel::build.
struct FileModel {
  std::string path;
  LexedFile lexed;
  std::vector<Token> tokens;
  std::vector<FunctionInfo> functions;
  std::vector<EnumDef> enums;
  std::vector<SwitchSite> switches;
  std::vector<CodecFn> codecs;
  std::vector<FunctionLockInfo> lock_info;
};

FileModel build_file_model(const std::string& path, const std::string& source);

/// A held->acquired edge in the project-wide lock graph, with the source
/// site it was first observed at (edges are deduped on (from, to) keeping
/// the lexicographically smallest (file, line) so diagnostics — and the
/// suppression comments that target them — land on a stable line).
struct LockEdge {
  std::string from, to;
  std::string file;
  int line = 0;
  std::string function;  // display name of the function with the edge
};

/// The cross-file index: files sorted by path plus the interprocedural
/// lock-acquisition graph (direct edges plus held-at-callsite edges into
/// everything a callee may transitively acquire, resolved by simple name
/// over the project's own function definitions — conservative by design).
struct ProjectModel {
  std::vector<FileModel> files;  // sorted by path
  std::vector<LockEdge> lock_edges;

  static ProjectModel build(std::vector<FileModel> file_models);

  /// Lookup by exact path; nullptr if absent.
  const FileModel* file(const std::string& path) const;
};

}  // namespace phodis::lint
