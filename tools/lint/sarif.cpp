#include "lint/sarif.hpp"

#include <array>
#include <sstream>

namespace phodis::lint {

namespace {

/// JSON string escaping (control chars, quotes, backslash).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct RuleDoc {
  const char* id;
  const char* text;
};

constexpr std::array<RuleDoc, 8> kRuleDocs = {{
    {"D1", "No nondeterministic sources (random_device, rand, time, "
           "clock ::now outside the timing wrapper)"},
    {"D2", "No unordered-container iteration; no unordered containers in "
           "ordered domains (src/core, src/dist, src/mc)"},
    {"D3", "src/mc hot-path FP hygiene: double-only, no float literals or "
           "float-suffixed math"},
    {"D4", "Wire hygiene: no memcpy/byte-punning in src/net and "
           "src/dist/message — encode via util/bytes.hpp"},
    {"D5", "Concurrency hygiene: no detach, no volatile-as-sync, no mutex "
           "held across a transport send"},
    {"D6", "Wire-protocol symmetry: encoder/decoder field sequences must "
           "mirror; switches over message-type enums must be exhaustive"},
    {"D7", "RNG draw-order discipline in src/mc: no draws in short-circuit "
           "operands, ternary arms, or unsequenced expressions; no std "
           "<random> distributions"},
    {"D8", "Lock-order discipline: the cross-TU mutex acquisition graph "
           "must be acyclic"},
}};

}  // namespace

std::string to_sarif(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"phodis_lint\",\n"
      << "          \"informationUri\": "
         "\"https://example.invalid/phodis/tools/lint\",\n"
      << "          \"rules\": [\n";
  for (std::size_t i = 0; i < kRuleDocs.size(); ++i) {
    out << "            {\"id\": \"" << kRuleDocs[i].id
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(kRuleDocs[i].text) << "\"}}"
        << (i + 1 < kRuleDocs.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    int rule_index = -1;
    for (std::size_t r = 0; r < kRuleDocs.size(); ++r) {
      if (d.rule == kRuleDocs[r].id) rule_index = static_cast<int>(r);
    }
    out << "        {\n"
        << "          \"ruleId\": \"" << json_escape(d.rule) << "\",\n";
    if (rule_index >= 0) {
      out << "          \"ruleIndex\": " << rule_index << ",\n";
    }
    out << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(d.message)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\"physicalLocation\": {\"artifactLocation\": "
           "{\"uri\": \""
        << json_escape(d.file)
        << "\", \"uriBaseId\": \"%SRCROOT%\"}, \"region\": {\"startLine\": "
        << d.line << "}}}\n"
        << "          ]";
    if (d.suppressed) {
      out << ",\n"
          << "          \"suppressions\": [\n"
          << "            {\"kind\": \"inSource\", \"justification\": \""
          << json_escape(d.suppress_reason) << "\"}\n"
          << "          ]";
    }
    out << "\n        }" << (i + 1 < diags.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace phodis::lint
