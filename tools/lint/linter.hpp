// phodis_lint: the project's determinism/portability rule engine.
//
// The whole platform rests on one contract — tallies are bitwise identical
// across serial, threaded, and multi-process execution — and the golden-hash
// tests only prove it *after* a violation lands. This linter enforces,
// with no compiler dependency, the statically checkable rules that
// contract implies. Since PR 10 the engine is a **project-model analysis**:
// the whole tree is parsed once into per-file token streams plus a
// lightweight cross-file index (function definitions, ByteWriter/ByteReader
// call sequences, enum switches, mutex acquisition sites), and every rule
// is a pass over that model — which is what lets D6–D8 check *cross-file*
// properties a per-file rule loop can never see.
//
//   D1  no nondeterministic sources (std::random_device, rand, srand,
//       time(), std::chrono::*::now()) anywhere a seed or a result could
//       flow from them; wall-clock reads are allowed only in the sanctioned
//       timing wrapper (util/stopwatch.hpp).
//   D2  no iteration over std::unordered_map / std::unordered_set, and no
//       unordered containers at all in the ordered domains (src/core/,
//       src/dist/, src/mc/): order-dependent FP folds and protocol frames
//       must come from ordered containers or an explicit sort.
//   D3  hot-path FP hygiene in src/mc/: no std::hypot, no float-suffixed
//       math calls (powf, sqrtf, ...), no float literals, no `float`
//       declarations — everything outside util/fastmath.hpp stays double
//       with pinned expression order.
//   D4  wire hygiene in src/net/ and src/dist/message.*: no memcpy of
//       structs into frames, no reinterpret_cast'ed buffer writes — all
//       multi-byte encoding goes through util/bytes.hpp's explicit
//       little-endian writers.
//   D5  concurrency hygiene everywhere: no std::thread::detach(), no
//       volatile-as-synchronisation, no mutex held across a transport
//       send / frame write.
//   D6  wire-protocol symmetry (cross-TU): for every encoder/decoder pair
//       matched by naming convention (encode/decode, serialize/deserialize,
//       checkpoint/restore, same class or same name suffix), the textual
//       ByteWriter field sequence must mirror the ByteReader sequence in
//       order and width; and every `switch` over a message-type-style enum
//       must name every enumerator (a `default:` does not substitute —
//       that is exactly how a new message type ships half-wired).
//   D7  RNG draw-order discipline in src/mc/: no draw inside a
//       short-circuit right operand or a ternary arm, no two draws in one
//       unsequenced expression (function argument lists, operands of
//       arithmetic), and no <random> distribution objects (their output is
//       implementation-defined across standard libraries). Draw-count
//       divergence is the way new media break the golden hashes.
//   D8  lock-order discipline (cross-TU): every mutex acquisition is a
//       node in a project-wide acquisition graph (edges held -> acquired,
//       propagated through the call graph); cycles are reported. This
//       complements TSan, which only sees executed interleavings.
//
// A diagnostic is suppressed by a comment on the same line or the line
// directly above:
//
//   // phodis-lint: allow(D4) kernel-internal memcpy of a POD tally blob
//
// Suppressions are counted; `phodis_lint --stats` reports them and the
// baseline ratchet (`--baseline tools/lint_baseline.txt`) fails the build
// if the count per rule ever grows. The lexer is deliberately small:
// strings and comments are stripped before pattern rules run, so a rule
// name in a log message can never trip the rule itself.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace phodis::lint {

/// Every rule the engine knows, in report order.
inline constexpr const char* kAllRules[] = {"D1", "D2", "D3", "D4",
                                            "D5", "D6", "D7", "D8"};

/// One finding. `rule` is "D1".."D8"; `suppressed` marks a finding covered
/// by a phodis-lint: allow(...) comment (counted, not fatal).
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
  std::string suppress_reason;
};

/// A source file after lexing: per-line code with comments and
/// string/char-literal *contents* blanked out (quotes remain, so call
/// shapes like str("...") keep their arity), plus per-line comment text
/// for suppression matching.
struct LexedFile {
  std::vector<std::string> code;      // [line] code with literals blanked
  std::vector<std::string> comments;  // [line] concatenated comment text
};

/// Strip comments and literal contents, preserving line structure.
/// Handles //, /*...*/ (multi-line), "..." with escapes, '...' with
/// escapes, and raw strings R"delim(...)delim".
LexedFile lex(const std::string& source);

/// One source file handed to the project linter. `path` is repo-relative
/// with forward slashes and drives the path-scoped rules.
struct SourceFile {
  std::string path;
  std::string source;
};

/// Lint a whole project: build the project model (one parse per file plus
/// the cross-file index) and run every pass, D1–D8, including the
/// cross-TU rules. Diagnostics are sorted by (file, line, rule, message)
/// so output order is deterministic.
std::vector<Diagnostic> lint_project(const std::vector<SourceFile>& files);

/// Lint one file's contents: a single-file project. Cross-TU rules still
/// run (an encoder/decoder pair in one TU is checked); they simply see a
/// one-file model.
std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& source);

/// Per-rule tallies across a run.
struct Stats {
  std::map<std::string, int> violations;    // unsuppressed, fatal
  std::map<std::string, int> suppressions;  // allow()-covered
  int files_scanned = 0;

  void add(const Diagnostic& d) {
    (d.suppressed ? suppressions : violations)[d.rule]++;
  }
  int total_violations() const {
    int n = 0;
    for (const auto& [rule, count] : violations) n += count;
    return n;
  }
  int total_suppressions() const {
    int n = 0;
    for (const auto& [rule, count] : suppressions) n += count;
    return n;
  }
};

/// Baseline ratchet: "<rule> <max-suppressions>" per line, '#' comments.
/// Returns rule -> allowed count. Throws std::runtime_error on parse error.
std::map<std::string, int> parse_baseline(const std::string& text);

/// Compare stats against a baseline. Returns human-readable failure lines
/// (empty == ratchet holds). A rule above its baseline fails; a rule below
/// it is reported via `improvements` so the baseline can be paid down.
std::vector<std::string> check_baseline(
    const Stats& stats, const std::map<std::string, int>& baseline,
    std::vector<std::string>* improvements);

/// Format one diagnostic as "file:line: rule: message".
std::string format_diagnostic(const Diagnostic& d);

}  // namespace phodis::lint
