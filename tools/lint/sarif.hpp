// SARIF 2.1.0 output: the same diagnostics the text report prints, in the
// interchange format GitHub code scanning (and most editors) ingest, so
// lint findings annotate PR diffs instead of hiding in a job log.
#pragma once

#include <string>
#include <vector>

#include "lint/linter.hpp"

namespace phodis::lint {

/// Render diagnostics (already sorted) as a SARIF 2.1.0 run. Suppressed
/// findings are included with an inSource suppression carrying the
/// allow() justification; viewers hide them by default but the record
/// stays auditable. Output is deterministic for a given diagnostic list.
std::string to_sarif(const std::vector<Diagnostic>& diags);

}  // namespace phodis::lint
