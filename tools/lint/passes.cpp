#include "lint/passes.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace phodis::lint {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---------------------------------------------------------------------------
// Line-pattern helpers for D1–D5 (unchanged from the per-file engine)
// ---------------------------------------------------------------------------

/// Positions where `word` occurs with identifier boundaries on both sides.
std::vector<std::size_t> find_word(const std::string& line,
                                   const std::string& word) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = line.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(line[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !is_ident(line[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

/// True if `word` occurs as an identifier immediately followed by '('
/// (optionally with spaces) — a call or macro-call shape.
bool has_call(const std::string& line, const std::string& word) {
  for (const std::size_t pos : find_word(line, word)) {
    std::size_t j = pos + word.size();
    while (j < line.size() && line[j] == ' ') ++j;
    if (j < line.size() && line[j] == '(') return true;
  }
  return false;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

/// First non-space character is '#': preprocessor line.
bool is_preprocessor(const std::string& line) {
  for (const char c : line) {
    if (c == ' ' || c == '\t') continue;
    return c == '#';
  }
  return false;
}

/// A float literal with a '.' or exponent and an f/F suffix (1.0f, .5F,
/// 2e3f). Integer-f like suffixed user literals won't match.
bool has_float_literal(const std::string& line) {
  const std::size_t n = line.size();
  for (std::size_t i = 0; i < n; ++i) {
    const bool digit = std::isdigit(static_cast<unsigned char>(line[i])) != 0;
    const bool dot_digit = line[i] == '.' && i + 1 < n &&
                           std::isdigit(static_cast<unsigned char>(line[i + 1]));
    if (!digit && !dot_digit) continue;
    if (i > 0 && (is_ident(line[i - 1]) || line[i - 1] == '.')) continue;
    std::size_t j = i;
    bool fractional = false;
    while (j < n && std::isdigit(static_cast<unsigned char>(line[j]))) ++j;
    if (j < n && line[j] == '.') {
      fractional = true;
      ++j;
      while (j < n && std::isdigit(static_cast<unsigned char>(line[j]))) ++j;
    }
    if (j < n && (line[j] == 'e' || line[j] == 'E')) {
      std::size_t k = j + 1;
      if (k < n && (line[k] == '+' || line[k] == '-')) ++k;
      if (k < n && std::isdigit(static_cast<unsigned char>(line[k]))) {
        fractional = true;
        j = k;
        while (j < n && std::isdigit(static_cast<unsigned char>(line[j]))) ++j;
      }
    }
    if (fractional && j < n && (line[j] == 'f' || line[j] == 'F')) {
      return true;
    }
    i = j;
  }
  return false;
}

/// Variable names declared on this line with an unordered container type:
/// "std::unordered_map<K, V> name" (template args must close on the line).
std::vector<std::string> unordered_decl_names(const std::string& line) {
  std::vector<std::string> names;
  for (const char* type : {"unordered_map", "unordered_set"}) {
    for (const std::size_t pos : find_word(line, type)) {
      std::size_t j = pos + std::string(type).size();
      if (j >= line.size() || line[j] != '<') continue;
      int depth = 0;
      while (j < line.size()) {
        if (line[j] == '<') ++depth;
        if (line[j] == '>') {
          --depth;
          if (depth == 0) break;
        }
        ++j;
      }
      if (j >= line.size()) continue;  // args span lines: name unknown
      ++j;
      while (j < line.size() && (line[j] == ' ' || line[j] == '&')) ++j;
      std::string name;
      while (j < line.size() && is_ident(line[j])) name += line[j++];
      if (!name.empty()) names.push_back(name);
    }
  }
  return names;
}

struct PathScope {
  bool in_mc = false;              // D3 territory
  bool in_mc_rng = false;          // D7 territory (no packet/vmath carve-out)
  bool in_wire = false;            // D4: src/net/ + src/dist/message.*
  bool ordered_domain = false;     // D2 declaration ban
  bool timing_allowlisted = false; // D1 ::now() sanctuary
};

// D3 carve-outs inside src/mc/: the batched-packet TUs own their FP
// environment (scoped relaxed-FP compile flags, documented ulp bounds,
// their own golden hashes), so the double-only hot-path hygiene rule does
// not apply there. File-scoped by explicit prefix — nothing else in
// src/mc/ is exempt. The trailing '.' pins the extension boundary so
// e.g. src/mc/vmath_tables.cpp would still be D3 territory.
// D7 draw-order discipline has NO such carve-out: the packet kernel's
// per-lane draw sequence is exactly as pinned as the scalar loop's.
constexpr const char* kD3ExemptPrefixes[] = {
    "src/mc/packet_kernel.",
    "src/mc/vmath.",
};

PathScope classify(const std::string& path) {
  PathScope s;
  s.in_mc = starts_with(path, "src/mc/");
  s.in_mc_rng = s.in_mc;
  for (const char* prefix : kD3ExemptPrefixes) {
    if (starts_with(path, prefix)) s.in_mc = false;
  }
  s.in_wire = starts_with(path, "src/net/") ||
              starts_with(path, "src/dist/message");
  s.ordered_domain = starts_with(path, "src/core/") ||
                     starts_with(path, "src/dist/") ||
                     starts_with(path, "src/mc/");
  // The one place wall-clock reads are sanctioned: the timing wrapper
  // everything else (benches, lease expiry, runtime reports) goes through.
  s.timing_allowlisted = path == "src/util/stopwatch.hpp";
  return s;
}

// ---------------------------------------------------------------------------
// D1–D5: line-pattern rules (ported unchanged onto the model)
// ---------------------------------------------------------------------------
void run_line_rules(const FileModel& fm, const PathScope& scope,
                    std::vector<Diagnostic>& diags) {
  const LexedFile& lexed = fm.lexed;

  auto report = [&](int line_index, const char* rule, std::string message) {
    Diagnostic d;
    d.file = fm.path;
    d.line = line_index + 1;
    d.rule = rule;
    d.message = std::move(message);
    diags.push_back(std::move(d));
  };

  std::vector<std::string> unordered_names;

  // D5 lock tracking: depths of currently-held lock guards, maintained by
  // a char-level brace walk so a '}' closing the guard's scope releases it.
  std::vector<int> lock_depths;
  int depth = 0;

  for (std::size_t li = 0; li < lexed.code.size(); ++li) {
    const std::string& line = lexed.code[li];

    // --- D1: nondeterministic sources --------------------------------
    if (!find_word(line, "random_device").empty()) {
      report(static_cast<int>(li), "D1",
             "std::random_device is nondeterministic; seeds must come from "
             "the plan spec (util::Rng streams) so runs replay bitwise");
    }
    for (const char* fn : {"rand", "srand", "rand_r", "drand48"}) {
      if (has_call(line, fn)) {
        report(static_cast<int>(li), "D1",
               std::string(fn) +
                   "() is a hidden global RNG; use util::Rng streams derived "
                   "from the plan seed");
      }
    }
    if (has_call(line, "time")) {
      report(static_cast<int>(li), "D1",
             "time() as input is nondeterministic; timing belongs in "
             "util::Stopwatch, seeds in the plan spec");
    }
    if (!scope.timing_allowlisted && contains(line, "::now(")) {
      report(static_cast<int>(li), "D1",
             "clock ::now() outside util/stopwatch.hpp; wall-clock reads go "
             "through util::Stopwatch and must never feed seeds or results");
    }

    // --- D2: unordered-container iteration / ordered-domain ban ------
    for (const std::string& name : unordered_decl_names(line)) {
      unordered_names.push_back(name);
    }
    if (!is_preprocessor(line) &&
        (!find_word(line, "unordered_map").empty() ||
         !find_word(line, "unordered_set").empty())) {
      if (scope.ordered_domain) {
        report(static_cast<int>(li), "D2",
               "unordered container in an ordered domain (src/core, "
               "src/dist, src/mc): tally folds, result merges and frames "
               "must have a deterministic order — use std::map/std::vector "
               "or sort explicitly");
      }
    }
    for (const std::string& name : unordered_names) {
      // ": name" inside a range-for, with an identifier boundary after the
      // name so container 'm' does not match ': my_vec'.
      bool range_for = false;
      if (!find_word(line, "for").empty()) {
        const std::string needle = ": " + name;
        std::size_t pos = 0;
        while ((pos = line.find(needle, pos)) != std::string::npos) {
          const std::size_t end = pos + needle.size();
          if (end >= line.size() || !is_ident(line[end])) {
            range_for = true;
            break;
          }
          pos = end;
        }
      }
      bool begin_call = false;
      for (const char* suffix : {".begin()", ".cbegin()", "->begin()"}) {
        const std::string needle = name + suffix;
        for (const std::size_t pos : find_word(line, name)) {
          if (line.compare(pos, needle.size(), needle) == 0) {
            begin_call = true;
            break;
          }
        }
        if (begin_call) break;
      }
      if (range_for || begin_call) {
        report(static_cast<int>(li), "D2",
               "iteration over unordered container '" + name +
                   "': traversal order is implementation-defined and would "
                   "reorder FP folds / emitted frames — sort keys first or "
                   "use an ordered container");
      }
    }

    // --- D3: hot-path FP hygiene in src/mc/ --------------------------
    if (scope.in_mc) {
      if (!find_word(line, "hypot").empty()) {
        report(static_cast<int>(li), "D3",
               "std::hypot in the kernel hot path: slower than the pinned "
               "sqrt(x*x + y*y) form and not part of the golden-hash "
               "contract — use util::fast_radius");
      }
      for (const char* fn : {"powf", "sqrtf", "sinf", "cosf", "expf", "logf",
                             "fabsf", "atan2f", "fmaf", "tanf"}) {
        if (has_call(line, fn)) {
          report(static_cast<int>(li), "D3",
                 std::string(fn) +
                     "() computes in float; kernel math stays double with "
                     "pinned expression order (see util/fastmath.hpp)");
        }
      }
      if (!find_word(line, "float").empty()) {
        report(static_cast<int>(li), "D3",
               "float declaration in src/mc/: silent double->float "
               "truncation changes tallies across compilers — kernel state "
               "is double");
      }
      if (has_float_literal(line)) {
        report(static_cast<int>(li), "D3",
               "float literal in src/mc/: promotes expressions through "
               "float and truncates silently — write the double literal");
      }
    }

    // --- D4: wire hygiene in src/net/ + src/dist/message.* -----------
    if (scope.in_wire) {
      if (has_call(line, "memcpy")) {
        report(static_cast<int>(li), "D4",
               "memcpy in wire code: struct layout and host endianness are "
               "not a protocol — encode through util::ByteWriter/ByteReader "
               "or the explicit little-endian helpers in util/bytes.hpp");
      }
      if (contains(line, "reinterpret_cast<char*") ||
          contains(line, "reinterpret_cast<unsigned char*") ||
          contains(line, "reinterpret_cast<uint8_t*") ||
          contains(line, "reinterpret_cast<std::uint8_t*")) {
        report(static_cast<int>(li), "D4",
               "byte-punning a struct for the wire; encode fields "
               "explicitly via util/bytes.hpp");
      }
    }

    // --- D5: concurrency hygiene -------------------------------------
    if (contains(line, ".detach()")) {
      report(static_cast<int>(li), "D5",
             "std::thread::detach(): detached threads outlive shutdown and "
             "race teardown — join every thread (exec::ThreadPool does)");
    }
    if (!find_word(line, "volatile").empty()) {
      report(static_cast<int>(li), "D5",
             "volatile is not synchronisation; use std::atomic (or a "
             "mutex) for cross-thread flags");
    }

    // Lock-across-send: walk the line once, tracking brace depth and the
    // positions where guards appear / sends happen.
    for (std::size_t ci = 0; ci < line.size(); ++ci) {
      const char c = line[ci];
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        while (!lock_depths.empty() && lock_depths.back() > depth) {
          lock_depths.pop_back();
        }
      }
      auto at = [&](const char* token) {
        return line.compare(ci, std::string(token).size(), token) == 0;
      };
      if (at("lock_guard<") || at("scoped_lock<") || at("unique_lock<") ||
          at("scoped_lock ") || at(".lock()")) {
        lock_depths.push_back(depth);
      }
      if (at(".unlock()") && !lock_depths.empty()) {
        lock_depths.pop_back();
      }
      if ((at("write_frame(") || at("send_all(") || at(".send(") ||
           at("->send(")) &&
          !lock_depths.empty()) {
        report(static_cast<int>(li), "D5",
               "transport send while holding a mutex: a slow or dead peer "
               "stalls every thread queued on that lock — copy the frame, "
               "release, then send");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// D7: RNG draw-order discipline in src/mc/ (token-level)
// ---------------------------------------------------------------------------

const std::set<std::string>& draw_members() {
  static const std::set<std::string> m = {"uniform", "uniform_open0",
                                          "normal"};
  return m;
}

const std::set<std::string>& std_distributions() {
  static const std::set<std::string> d = {
      "uniform_real_distribution", "uniform_int_distribution",
      "normal_distribution",       "exponential_distribution",
      "bernoulli_distribution",    "poisson_distribution",
      "discrete_distribution",     "generate_canonical"};
  return d;
}

void run_d7(const FileModel& fm, std::vector<Diagnostic>& diags) {
  const std::vector<Token>& t = fm.tokens;
  const std::size_t n = t.size();

  auto report = [&](int line, std::string message) {
    Diagnostic d;
    d.file = fm.path;
    d.line = line;
    d.rule = "D7";
    d.message = std::move(message);
    diags.push_back(std::move(d));
  };

  // Group structure: parent[i] = token index of the innermost (, [, {
  // containing token i; open_of[close] = its opener.
  std::vector<std::size_t> parent(n, kNpos);
  std::vector<std::size_t> open_of(n, kNpos);
  {
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < n; ++i) {
      parent[i] = stack.empty() ? kNpos : stack.back();
      const std::string& s = t[i].text;
      if (s == "(" || s == "[" || s == "{") {
        stack.push_back(i);
      } else if (s == ")" || s == "]" || s == "}") {
        if (!stack.empty()) {
          open_of[i] = stack.back();
          stack.pop_back();
        }
      }
    }
  }

  auto is_draw = [&](std::size_t i) {
    if (t[i].kind != Token::Kind::kIdent) return false;
    if (i + 1 >= n || t[i + 1].text != "(") return false;
    const std::string& s = t[i].text;
    if (s == "lane_uniform") return true;
    if (draw_members().count(s) == 0) return false;
    return i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");
  };

  // Is the draw at `site` inside the right operand of && / || or inside a
  // ternary arm? Scan backward level by level: at each group level, look
  // left for a sequencing operator before the draw; a complete sibling
  // (ended by ',') or a statement boundary stops the level; parens/
  // brackets ascend, braces are sequenced contexts.
  enum class Conditional { kNone, kShortCircuit, kTernary };
  auto conditional_context = [&](std::size_t site) {
    std::size_t cur = site;
    while (true) {
      const std::size_t group = parent[cur];
      std::size_t k = cur;
      while (k > 0) {
        --k;
        if (group != kNpos && k <= group) break;
        const std::string& s = t[k].text;
        if ((s == ")" || s == "]" || s == "}")) {
          if (open_of[k] == kNpos) return Conditional::kNone;  // stray close
          k = open_of[k];  // skip the complete nested group
          continue;
        }
        if (s == ";" || s == "{" || s == "}") return Conditional::kNone;
        if (s == ",") break;  // complete sibling before us; check outer
        if (s == "&&" || s == "||") return Conditional::kShortCircuit;
        if (s == "?") return Conditional::kTernary;
      }
      if (group == kNpos) return Conditional::kNone;
      if (t[group].text == "{") return Conditional::kNone;  // sequenced
      cur = group;  // ascend past ( or [
    }
  };

  std::vector<std::size_t> draws;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_draw(i)) draws.push_back(i);
    if (t[i].kind == Token::Kind::kIdent &&
        std_distributions().count(t[i].text) != 0) {
      report(t[i].line,
             "std::" + t[i].text +
                 " draws an implementation-defined number of engine values "
                 "(libstdc++ and libc++ disagree); use util::Xoshiro256pp's "
                 "uniform()/normal() so the draw sequence is portable");
    }
  }

  std::set<std::size_t> flagged;
  for (const std::size_t site : draws) {
    const Conditional ctx = conditional_context(site);
    if (ctx == Conditional::kShortCircuit) {
      flagged.insert(site);
      report(t[site].line,
             "RNG draw in a short-circuit right operand: whether this draw "
             "happens depends on the left-hand side, so the draw count — "
             "and every tally after it — diverges between paths; hoist the "
             "draw into its own statement");
    } else if (ctx == Conditional::kTernary) {
      flagged.insert(site);
      report(t[site].line,
             "RNG draw inside a ternary arm: the draw only happens on one "
             "branch, which breaks the replayable draw sequence; hoist the "
             "draw above the ?:");
    }
  }

  // Two draws in one unsequenced expression (argument lists, arithmetic
  // operands). Braced-init-lists sequence left-to-right and are fine.
  for (std::size_t d = 0; d + 1 < draws.size(); ++d) {
    const std::size_t a = draws[d];
    const std::size_t b = draws[d + 1];
    if (flagged.count(b) != 0) continue;
    bool boundary = false;
    for (std::size_t k = a; k < b && !boundary; ++k) {
      if (t[k].text == ";") boundary = true;
    }
    if (boundary) continue;

    // Innermost common group of the two draws.
    std::set<std::size_t> ancestors;
    for (std::size_t x = parent[a]; x != kNpos; x = parent[x]) {
      ancestors.insert(x);
    }
    std::size_t common = kNpos;
    for (std::size_t x = parent[b]; x != kNpos; x = parent[x]) {
      if (ancestors.count(x) != 0) {
        common = x;
        break;
      }
    }

    bool sequenced = false;
    bool comma = false;
    for (std::size_t k = a + 1; k < b; ++k) {
      if (parent[k] != common) continue;
      const std::string& s = t[k].text;
      if (s == "&&" || s == "||" || s == "?" || s == ":" || s == ";") {
        sequenced = true;  // handled by the conditional rules above
        break;
      }
      if (s == ",") comma = true;
    }
    if (sequenced) continue;
    if (comma && common != kNpos && t[common].text == "{") {
      continue;  // braced-init-list: sequenced left-to-right
    }
    report(t[b].line,
           "two RNG draws in one unsequenced expression: argument and "
           "operand evaluation order is unspecified, so the draw order — "
           "and the tally — differs across compilers; split into separate "
           "statements (a braced init-list would also sequence them)");
  }
}

// ---------------------------------------------------------------------------
// D6: wire-protocol symmetry
// ---------------------------------------------------------------------------

bool width_compatible(const std::string& a, const std::string& b) {
  if (a == b) return true;
  return (a == "u64" && b == "i64") || (a == "i64" && b == "u64");
}

void compare_codec_pair(const CodecFn& w, const CodecFn& r,
                        std::vector<Diagnostic>& diags) {
  auto report = [&](const std::string& file, int line, std::string message) {
    Diagnostic d;
    d.file = file;
    d.line = line;
    d.rule = "D6";
    d.message = std::move(message);
    diags.push_back(std::move(d));
  };
  const std::size_t common = std::min(w.ops.size(), r.ops.size());
  for (std::size_t k = 0; k < common; ++k) {
    if (width_compatible(w.ops[k].op, r.ops[k].op)) continue;
    report(r.file, r.ops[k].line,
           "wire-protocol asymmetry between " + w.display + " and " +
               r.display + ": field " + std::to_string(k + 1) +
               " is written as " + w.ops[k].op + " (" + w.file + ":" +
               std::to_string(w.ops[k].line) + ") but read as " +
               r.ops[k].op + " — encoder and decoder must walk the same "
               "field sequence");
    return;
  }
  if (w.ops.size() > r.ops.size()) {
    const CodecOp& extra = w.ops[common];
    report(w.file, extra.line,
           "wire-protocol asymmetry between " + w.display + " and " +
               r.display + ": field " + std::to_string(common + 1) +
               " is written as " + extra.op + " but " + r.display + " (" +
               r.file + ":" + std::to_string(r.line) +
               ") stops reading after " + std::to_string(r.ops.size()) +
               " field(s) — the decoder silently drops trailing fields");
  } else if (r.ops.size() > w.ops.size()) {
    const CodecOp& extra = r.ops[common];
    report(r.file, extra.line,
           "wire-protocol asymmetry between " + w.display + " and " +
               r.display + ": field " + std::to_string(common + 1) +
               " is read as " + extra.op + " but " + w.display + " (" +
               w.file + ":" + std::to_string(w.line) +
               ") stops writing after " + std::to_string(w.ops.size()) +
               " field(s) — the decoder reads past the payload");
  }
}

void run_d6(const ProjectModel& pm, std::vector<Diagnostic>& diags) {
  // --- encoder/decoder field-sequence symmetry -----------------------
  std::map<std::string, std::vector<const CodecFn*>> by_key;
  for (const FileModel& fm : pm.files) {
    for (const CodecFn& c : fm.codecs) by_key[c.key].push_back(&c);
  }
  for (const auto& [key, fns] : by_key) {
    std::vector<const CodecFn*> writers;
    std::vector<const CodecFn*> readers;
    for (const CodecFn* c : fns) (c->writer ? writers : readers).push_back(c);
    for (const CodecFn* w : writers) {
      // Prefer the reader defined next to the writer; otherwise pair only
      // when the project has exactly one candidate (ambiguity is skipped,
      // never guessed).
      std::vector<const CodecFn*> same_file;
      for (const CodecFn* r : readers) {
        if (r->file == w->file) same_file.push_back(r);
      }
      const CodecFn* r = nullptr;
      if (same_file.size() == 1) {
        r = same_file.front();
      } else if (same_file.empty() && readers.size() == 1) {
        r = readers.front();
      }
      if (r != nullptr) compare_codec_pair(*w, *r, diags);
    }
  }

  // --- exhaustive switches over message-type enums -------------------
  // Only enums defined in the wire layers (src/dist, src/net) count: a
  // non-exhaustive switch over MessageType ships a half-wired protocol,
  // whereas general enum exhaustiveness is the compiler's -Wswitch job.
  std::map<std::string, std::vector<const EnumDef*>> enums;
  for (const FileModel& fm : pm.files) {
    const bool wire_layer = fm.path.rfind("src/dist/", 0) == 0 ||
                            fm.path.rfind("src/net/", 0) == 0;
    if (!wire_layer) continue;
    for (const EnumDef& e : fm.enums) {
      if (!e.name.empty()) enums[e.name].push_back(&e);
    }
  }
  for (const FileModel& fm : pm.files) {
    for (const SwitchSite& site : fm.switches) {
      const auto it = enums.find(site.enum_name);
      if (it == enums.end()) continue;  // not one of ours (std::, system)
      // Same simple name may exist in several scopes (two `State` enums):
      // pick the definition whose enumerators best overlap the labels,
      // and skip on a tie rather than guess.
      const std::set<std::string> cases(site.cases.begin(),
                                        site.cases.end());
      const EnumDef* def = nullptr;
      int best_overlap = 0;
      bool tie = false;
      for (const EnumDef* candidate : it->second) {
        int overlap = 0;
        for (const std::string& e : candidate->enumerators) {
          if (cases.count(e) != 0) ++overlap;
        }
        if (overlap > best_overlap) {
          def = candidate;
          best_overlap = overlap;
          tie = false;
        } else if (overlap == best_overlap && overlap > 0) {
          tie = true;
        }
      }
      if (def == nullptr || tie) continue;
      std::string missing;
      int missing_count = 0;
      for (const std::string& e : def->enumerators) {
        if (cases.count(e) != 0) continue;
        if (!missing.empty()) missing += ", ";
        missing += e;
        ++missing_count;
      }
      if (missing_count == 0) continue;
      Diagnostic d;
      d.file = site.file;
      d.line = site.line;
      d.rule = "D6";
      d.message = "switch over " + site.enum_name + " (" + def->file + ":" +
                  std::to_string(def->line) + ") does not handle " +
                  missing +
                  (site.has_default
                       ? " — a default: branch hides new message types "
                         "instead of forcing a decision; name every "
                         "enumerator"
                       : " — name every enumerator so the next message "
                         "type cannot ship half-wired");
      diags.push_back(std::move(d));
    }
  }
}

// ---------------------------------------------------------------------------
// D8: lock-order cycles over the project acquisition graph
// ---------------------------------------------------------------------------
void run_d8(const ProjectModel& pm, std::vector<Diagnostic>& diags) {
  // Index nodes.
  std::map<std::string, int> index;
  std::vector<std::string> names;
  auto node_id = [&](const std::string& name) {
    const auto it = index.find(name);
    if (it != index.end()) return it->second;
    const int id = static_cast<int>(names.size());
    index[name] = id;
    names.push_back(name);
    return id;
  };
  std::vector<std::vector<int>> adj;
  for (const LockEdge& e : pm.lock_edges) {
    const int from = node_id(e.from);
    const int to = node_id(e.to);
    if (static_cast<int>(adj.size()) <= std::max(from, to)) {
      adj.resize(std::max(from, to) + 1);
    }
    adj[from].push_back(to);
  }
  const int node_count = static_cast<int>(names.size());
  adj.resize(node_count);

  // Tarjan strongly connected components (iteration order is by node id,
  // which is first-appearance order over the already-deterministic edge
  // list, so components come out in a stable order).
  std::vector<int> comp(node_count, -1);
  std::vector<int> low(node_count, 0);
  std::vector<int> num(node_count, -1);
  std::vector<int> stack_nodes;
  std::vector<bool> on_stack(node_count, false);
  std::vector<std::vector<int>> components;
  int counter = 0;

  struct Frame {
    int node = 0;
    std::size_t next_edge = 0;
  };
  for (int start = 0; start < node_count; ++start) {
    if (num[start] != -1) continue;
    std::vector<Frame> call_stack{{start, 0}};
    num[start] = low[start] = counter++;
    stack_nodes.push_back(start);
    on_stack[start] = true;
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const int v = frame.node;
      if (frame.next_edge < adj[v].size()) {
        const int w = adj[v][frame.next_edge++];
        if (num[w] == -1) {
          num[w] = low[w] = counter++;
          stack_nodes.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], num[w]);
        }
        continue;
      }
      if (low[v] == num[v]) {
        std::vector<int> component;
        while (true) {
          const int w = stack_nodes.back();
          stack_nodes.pop_back();
          on_stack[w] = false;
          comp[w] = static_cast<int>(components.size());
          component.push_back(w);
          if (w == v) break;
        }
        components.push_back(std::move(component));
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const int parent = call_stack.back().node;
        low[parent] = std::min(low[parent], low[v]);
      }
    }
  }

  for (const std::vector<int>& component : components) {
    const std::set<int> members(component.begin(), component.end());
    std::vector<const LockEdge*> internal;
    bool self_edge = false;
    for (const LockEdge& e : pm.lock_edges) {
      const int from = index[e.from];
      const int to = index[e.to];
      if (members.count(from) == 0 || members.count(to) == 0) continue;
      if (comp[from] != comp[to]) continue;
      internal.push_back(&e);
      if (from == to) self_edge = true;
    }
    if (component.size() < 2 && !self_edge) continue;

    const LockEdge* anchor = internal.front();
    for (const LockEdge* e : internal) {
      if (std::tie(e->file, e->line, e->from, e->to) <
          std::tie(anchor->file, anchor->line, anchor->from, anchor->to)) {
        anchor = e;
      }
    }
    std::string path;
    for (const LockEdge* e : internal) {
      if (!path.empty()) path += "; ";
      path += e->from + " -> " + e->to + " (" + e->file + ":" +
              std::to_string(e->line) + " in " + e->function + ")";
    }
    Diagnostic d;
    d.file = anchor->file;
    d.line = anchor->line;
    d.rule = "D8";
    d.message =
        "lock-order cycle: " + path +
        " — threads acquiring these mutexes in different orders can "
        "deadlock; pick one global order (TSan only sees interleavings "
        "that actually ran, this graph covers all of them)";
    diags.push_back(std::move(d));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------
std::vector<Diagnostic> run_file_passes(const FileModel& fm) {
  std::vector<Diagnostic> diags;
  const PathScope scope = classify(fm.path);
  run_line_rules(fm, scope, diags);
  if (scope.in_mc_rng) run_d7(fm, diags);
  return diags;
}

std::vector<Diagnostic> run_project_passes(const ProjectModel& pm) {
  std::vector<Diagnostic> diags;
  run_d6(pm, diags);
  run_d8(pm, diags);
  return diags;
}

void apply_suppressions(std::vector<Diagnostic>& diags,
                        const ProjectModel& pm) {
  const FileModel* cached = nullptr;
  for (Diagnostic& d : diags) {
    if (cached == nullptr || cached->path != d.file) cached = pm.file(d.file);
    if (cached == nullptr) continue;
    const std::vector<std::string>& comments = cached->lexed.comments;
    for (int delta = 0; delta <= 1 && !d.suppressed; ++delta) {
      const int idx = d.line - 1 - delta;
      if (idx < 0 || idx >= static_cast<int>(comments.size())) continue;
      const std::string& comment = comments[idx];
      const std::size_t tag = comment.find("phodis-lint:");
      if (tag == std::string::npos) continue;
      const std::size_t open = comment.find("allow(", tag);
      if (open == std::string::npos) continue;
      const std::size_t close = comment.find(')', open);
      if (close == std::string::npos) continue;
      const std::string rules = comment.substr(open + 6, close - open - 6);
      std::stringstream ss(rules);
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        const std::size_t a = rule.find_first_not_of(' ');
        const std::size_t b = rule.find_last_not_of(' ');
        if (a == std::string::npos) continue;
        if (rule.substr(a, b - a + 1) != d.rule) continue;
        std::string reason = comment.substr(close + 1);
        const std::size_t r = reason.find_first_not_of(' ');
        reason = (r == std::string::npos) ? "" : reason.substr(r);
        d.suppressed = true;
        d.suppress_reason = std::move(reason);
        break;
      }
    }
  }
}

void sort_diagnostics(std::vector<Diagnostic>& diags) {
  std::stable_sort(diags.begin(), diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.file, a.line, a.rule, a.message) <
                            std::tie(b.file, b.line, b.rule, b.message);
                   });
}

}  // namespace phodis::lint
